#!/usr/bin/env python3
"""The §3.3 cellular experiment: SNTP on a 4G phone.

A simulated Galaxy-S4-class phone polls ``0.pool.ntp.org`` over a 4G
RAN whose RRC state machine charges a radio-promotion delay on the
first uplink packet after idle.  A GPS time-sync app keeps the system
clock true, so the large reported SNTP offsets are pure measurement
error from the asymmetric cellular path — Figure 5's result
(mean 192 ms, sd 55 ms, max 840 ms).

Usage::

    python examples/cellular_phone.py [seed]
"""

import sys

from repro.cellular import CellularExperiment, CellularOptions
from repro.reporting import render_cdf, render_series


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("Running 3 simulated hours of SNTP on a 4G phone...")
    result = CellularExperiment(seed=seed, options=CellularOptions()).run()
    stats = result.stats()
    print()
    print(f"samples   : {stats.count} ({result.failures} failed)")
    print(f"mean |off|: {stats.mean_abs * 1000:6.1f} ms   (paper: 192 ms)")
    print(f"std  |off|: {stats.std_abs * 1000:6.1f} ms   (paper:  55 ms)")
    print(f"max  |off|: {stats.max_abs * 1000:6.1f} ms   (paper: 840 ms)")
    print(f"radio promotions paid: {result.promotions} "
          f"(cadence > RRC inactivity timeout, so nearly every request)")
    print(f"GPS fixes applied    : {result.gps_fixes}")
    print()
    print(render_series([p.offset for p in result.offsets], label="SNTP offset"))
    print(render_cdf([p.offset for p in result.offsets], label="offset CDF"))


if __name__ == "__main__":
    main()

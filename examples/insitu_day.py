#!/usr/bin/env python3
"""A day in the life of a deployed MNTP device (paper §7 in-situ).

Runs the 24-hour in-situ scenario: a free-running laptop clock steered
only by MNTP (30-min warm-ups, 15-min regular rounds, 4-hour resets)
through diurnal temperature and round-the-clock channel hostility, and
prints where the clock actually was, hour by hour.

Usage::

    python examples/insitu_day.py [seed]
"""

import sys

import numpy as np

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("Simulating 24 hours of deployed MNTP (a few seconds of wall time)...")
    result = run_scenario("mntp_insitu_24h", seed=seed)

    truth = np.array([(p.time, p.offset) for p in result.true_offsets])
    rows = []
    for hour in range(0, 24, 3):
        window = truth[(truth[:, 0] >= hour * 3600)
                       & (truth[:, 0] < (hour + 3) * 3600)]
        offsets = np.abs(window[:, 1])
        rows.append([f"{hour:02d}:00-{hour + 3:02d}:00",
                     f"{offsets.mean() * 1000:.1f}",
                     f"{offsets.max() * 1000:.1f}"])
    print()
    print(render_table(["window", "mean |offset| (ms)", "max (ms)"], rows))

    corrections = sum(1 for r in result.mntp_reports if r.corrected)
    rejected = len(result.mntp_rejected())
    all_abs = np.abs(truth[:, 1])
    print()
    print(render_series(list(truth[:, 1]), label="clock offset (24 h)"))
    print()
    print(f"day summary: mean |offset| {all_abs.mean() * 1000:.1f} ms, "
          f"max {all_abs.max() * 1000:.1f} ms, "
          f"{corrections} corrections, {rejected} channel outliers rejected.")
    drift_free = 17e-6 * 86_400 * 1000
    print(f"(free-running, this clock would have drifted ~{drift_free:.0f} ms)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The §3.1 NTP-server log study, end to end.

Generates synthetic one-day pcap traces for three of the paper's 19 NTP
servers (AG1, JW2, SU1 — the three shown in Figure 1), runs the
dissect -> filter -> classify pipeline on the raw bytes, and prints:

* the Table-1-style per-server summary,
* per-category median min-OWDs (Figure 1's headline),
* SNTP/NTP shares per server and the pooled mobile share (Figure 2).

Usage::

    python examples/log_study.py [seed]
"""

import sys

from repro.logs import LogStudy
from repro.logs.generator import GeneratorOptions
from repro.logs.servers import server_by_id
from repro.reporting import render_table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    servers = [server_by_id(s) for s in ("AG1", "JW2", "SU1")]
    study = LogStudy(
        seed=seed,
        options=GeneratorOptions(scale=3e-4, min_clients=150, max_clients=400),
        servers=servers,
    )
    study.run()

    rows = []
    for r in study.table1():
        rows.append([
            r.server_id, r.stratum, r.ip_versions,
            f"{r.published_clients:,}", r.generated_clients,
            r.generated_measurements, r.synchronized_clients,
            f"{r.sntp_share * 100:.0f}%",
        ])
    print("Per-server summary (generated subsample beside published):")
    print(render_table(
        ["server", "stratum", "ipv", "published clients", "gen clients",
         "gen meas", "synced", "SNTP share"],
        rows,
    ))

    print("\nMedian min-OWD per provider category (paper: cloud ~40 ms, "
          "ISP ~50 ms, broadband ~250 ms, mobile ~550 ms):")
    for server in ("AG1", "JW2", "SU1"):
        medians = study.category_medians(server)
        line = "  ".join(
            f"{cat}={medians.get(cat, 0) * 1000:5.0f}ms"
            for cat in ("cloud", "isp", "broadband", "mobile")
        )
        print(f"  {server}: {line}")

    print("\nSNTP vs NTP clients per server (paper Fig. 2):")
    for server, (sntp, ntp) in study.figure2_per_server().items():
        total = sntp + ntp
        print(f"  {server}: {sntp / total * 100:5.1f}% SNTP "
              f"({sntp}/{total} clients)")
    print(f"\nMobile-provider SNTP share at SU1: "
          f"{study.mobile_sntp_share('SU1') * 100:.1f}% (paper: >95%)")


if __name__ == "__main__":
    main()

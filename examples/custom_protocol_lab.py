#!/usr/bin/env python3
"""Build-your-own experiment: wiring the pieces by hand.

Shows the library's lower-level API — constructing the simulator,
testbed, MNTP instance, and a custom measurement loop directly instead
of using the scenario registry.  The scenario here is an MNTP variant
with tightened hint thresholds and a false-ticker-contaminated pool,
demonstrating both the channel gate and the warm-up rejection.

Usage::

    python examples/custom_protocol_lab.py [seed]
"""

import sys

from repro.clock.discipline_api import ClockCorrector
from repro.core import HintThresholds, Mntp, MntpConfig
from repro.core.events import MntpEventKind
from repro.simcore import Simulator
from repro.testbed.nodes import Testbed, TestbedOptions


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    sim = Simulator(seed=seed)
    testbed = Testbed(
        sim,
        TestbedOptions(
            wireless=True,
            ntp_correction=False,     # free-running laptop clock
            include_falseticker=True,  # one liar in every pool
        ),
    )

    config = MntpConfig(
        warmup_period=600.0,          # 10 min warm-up
        warmup_wait_time=10.0,
        regular_wait_time=60.0,
        reset_period=7200.0,
        thresholds=HintThresholds(    # stricter than the paper's gate
            min_rssi_dbm=-70.0,
            max_noise_dbm=-75.0,
            min_snr_margin_db=25.0,
        ),
    )
    mntp = Mntp(
        sim=sim,
        client=testbed.mntp_app,
        hints=testbed.hints,
        corrector=ClockCorrector(testbed.tn_clock),
        config=config,
    )

    testbed.start_background()
    mntp.start()
    print("Simulating 2 hours of MNTP with a strict gate and lying servers...")
    sim.run_until(7200.0)
    mntp.stop()
    testbed.stop_background()

    accepted = mntp.accepted_offsets()
    rejected = mntp.rejected_offsets()
    false_tickers = sim.trace.select(component="mntp",
                                     kind=MntpEventKind.FALSE_TICKER.value)
    deferred = sim.trace.select(component="mntp",
                                kind=MntpEventKind.DEFERRED.value)
    corrected = sim.trace.select(component="mntp",
                                 kind=MntpEventKind.CLOCK_CORRECTED.value)

    print()
    print(f"accepted offsets      : {len(accepted)}")
    print(f"filter rejections     : {len(rejected)}")
    print(f"false-ticker verdicts : {len(false_tickers)} "
          f"(sources: {sorted({r.data['source'] for r in false_tickers})})")
    print(f"gate deferrals        : {len(deferred)}")
    print(f"clock corrections     : {len(corrected)}")
    print(f"drift estimate        : "
          f"{(mntp.drift_estimate or 0) * 1e6:+.1f} ppm (offset slope)")
    print(f"final clock offset    : "
          f"{testbed.tn_clock.true_offset() * 1000:+.1f} ms "
          f"(free-running clock, MNTP-corrected)")


if __name__ == "__main__":
    main()

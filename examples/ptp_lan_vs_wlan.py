#!/usr/bin/env python3
"""PTP (IEEE 1588) on a clean LAN vs the paper's degraded wireless hop.

§2 names PTP as the high-precision protocol variant.  This example runs
a two-step PTP master/slave pair over both hop types and shows why it
is not the answer for mobile devices: hardware timestamping removes
endpoint jitter but not path asymmetry, so the bursty wireless hop
pushes PTP into the same error class as SNTP.

Usage::

    python examples/ptp_lan_vs_wlan.py [seed]
"""

import sys

import numpy as np

from repro.net.link import Link
from repro.net.path import PathModel
from repro.ptp import PtpMaster, PtpSlave
from repro.reporting import render_series
from repro.simcore import Simulator
from repro.wireless.channel import ChannelParams, WirelessChannel
from repro.wireless.crosstraffic import CrossTrafficGenerator
from repro.clock.oscillator import Oscillator, OscillatorGrade
from repro.clock.simclock import SimClock
from repro.wireless.effects import ChannelEffects

_PERFECT = OscillatorGrade(
    name="perfect", base_skew_ppm_sigma=0.0, wander_ppm_per_sqrt_s=0.0,
    temp_coeff_ppm_per_k=0.0,
)


def perfect_clock(sim, stream):
    """A drift-free clock bound to the simulator."""
    return SimClock(Oscillator(_PERFECT, sim.rng.stream(stream)),
                    now_fn=lambda: sim.now)


def run_hop(seed: int, wireless: bool, duration: float = 900.0):
    """One PTP session over the chosen hop; returns |offset errors|."""
    sim = Simulator(seed=seed)
    if wireless:
        channel = WirelessChannel(ChannelParams(), sim.rng.stream("ch"),
                                  now_fn=lambda: sim.now)
        cross_traffic = CrossTrafficGenerator(sim)
        cross_traffic.start()
        effects = ChannelEffects(channel, sim.rng.stream("fx"),
                                 cross_traffic=cross_traffic)
        hook = effects.as_hook()
    else:
        hook = None

    master_clock = perfect_clock(sim, stream="m")
    slave_clock = perfect_clock(sim, stream="s")
    slave = PtpSlave(sim, slave_clock, send=lambda d: None)
    master = PtpMaster(sim, master_clock, send=lambda d: None, sync_interval=1.0)
    down = Link(sim, PathModel(sim.rng.stream("d"), base_delay=0.002,
                               queue_mean=0.0005), receive=slave.on_datagram,
                effect_hook=hook)
    up = Link(sim, PathModel(sim.rng.stream("u"), base_delay=0.002,
                             queue_mean=0.0005), receive=master.on_datagram,
              effect_hook=hook)
    master._send = down.send
    slave._send = up.send
    master.start()
    sim.run_until(duration)
    return np.abs([s.offset for s in slave.samples])


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    print("Running 15 simulated minutes of PTP per hop type...")
    lan = run_hop(seed, wireless=False)
    wlan = run_hop(seed, wireless=True)
    print()
    print(f"LAN : {len(lan)} exchanges, mean |err| {lan.mean() * 1e6:8.1f} us, "
          f"max {lan.max() * 1e6:8.1f} us")
    print(f"WLAN: {len(wlan)} exchanges, mean |err| {wlan.mean() * 1e3:8.2f} ms, "
          f"max {wlan.max() * 1e3:8.2f} ms")
    print()
    print(render_series(list(lan), label="LAN |err| "))
    print(render_series(list(wlan), label="WLAN |err|"))
    print()
    print(f"Degradation factor: {wlan.mean() / lan.mean():.0f}x — "
          "the asymmetric wireless hop erases PTP's precision, which is "
          "why MNTP gates on channel state instead.")


if __name__ == "__main__":
    main()

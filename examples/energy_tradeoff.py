#!/usr/bin/env python3
"""Accuracy vs battery: the paper's §7 future-work benchmark.

Runs four hours of the wireless testbed and prices each strategy's
transmission schedule through a radio power-state model (promotion /
active / tail, after Balasubramanian et al. IMC'09, cited by the
paper): blind 5 s SNTP polling, MNTP's paced schedule, the ntpd
daemon's adaptive polling, and Android's stock daily poll.

Usage::

    python examples/energy_tradeoff.py [seed]
"""

import sys

from repro.core.config import MntpConfig
from repro.energy import EnergyAccountant
from repro.reporting import render_table
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

DURATION = 4 * 3600.0


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("Running 4 simulated hours of SNTP + MNTP + ntpd on wireless...")
    runner = ExperimentRunner(
        seed=seed,
        options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=DURATION,
        mntp_config=MntpConfig.baseline_headtohead().with_overrides(
            warmup_period=1800.0, warmup_wait_time=15.0,
            regular_wait_time=300.0, reset_period=DURATION * 2,
        ),
    )
    result = runner.run()
    trace = runner.sim.trace
    accountant = EnergyAccountant()

    sntp = accountant.price_schedule(
        "SNTP @5s", [p.time for p in result.sntp], DURATION
    )
    mntp = accountant.price_events(
        "MNTP",
        [(r.time, len(r.data["sources"]))
         for r in trace.select(component="mntp", kind="query_sent")],
        DURATION,
    )
    ntpd_times = sorted({round(r.time)
                         for r in trace.select(component="ntpd", kind="update")})
    ntpd = accountant.price_events("NTP (ntpd)", [(t, 4) for t in ntpd_times],
                                   DURATION)
    android = accountant.price_schedule("Android stock", [0.0], DURATION)

    sntp_err = result.sntp_error_stats().mean_abs * 1000
    mntp_err = result.mntp_error_stats().mean_abs * 1000
    rows = [
        [r.name, r.requests, f"{r.wakeups_per_hour:.1f}",
         f"{r.joules_per_hour:.1f}", err]
        for r, err in (
            (sntp, f"{sntp_err:.2f}"),
            (mntp, f"{mntp_err:.2f}"),
            (ntpd, "(disciplines the clock)"),
            (android, "(clock drifts for a day)"),
        )
    ]
    print()
    print(render_table(
        ["strategy", "requests", "wakeups/h", "J/h", "mean |err| (ms)"], rows,
    ))
    print()
    print(f"MNTP is {sntp.joules_per_hour / mntp.joules_per_hour:.1f}x cheaper "
          f"than blind SNTP polling and {sntp_err / mntp_err:.1f}x more accurate.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Self-tuning MNTP (the paper's §7 future work).

Collects a testbed trace, asks the AutoTuner for the cheapest
configuration that achieves a target accuracy within a request budget,
and prints the accuracy/request Pareto front — the trade-off curve the
paper planned to evaluate.

Usage::

    python examples/autotune_demo.py [seed] [target_ms]
"""

import sys

from repro.reporting import render_table
from repro.tuner import (
    AutoTuneOptions,
    AutoTuner,
    LoggerOptions,
    TraceLogger,
)


def main() -> None:
    args = sys.argv[1:]
    seed = int(args[0]) if args else 5
    target_ms = float(args[1]) if len(args) > 1 else 8.0

    print("Logging a 4-hour trace...")
    trace = TraceLogger(seed=seed, options=LoggerOptions()).run()

    tuner = AutoTuner(options=AutoTuneOptions(
        target_rmse_ms=target_ms,
        max_requests_per_hour=400.0,
    ))
    outcome = tuner.tune(trace)

    print(f"\ntarget: RMSE <= {target_ms} ms within 400 requests/hour")
    if outcome.recommended is None:
        print("no viable configuration found")
        return
    c = outcome.recommended
    status = "meets the target" if outcome.met_target else "best affordable"
    print(f"recommended ({status}): warmup={c.warmup_period / 60:.0f} min, "
          f"warmupWait={c.warmup_wait_time / 60:.2f} min, "
          f"regularWait={c.regular_wait_time / 60:.0f} min, "
          f"reset={c.reset_period / 60:.0f} min")

    print("\naccuracy/request Pareto front:")
    rows = [
        [f"{r.config.warmup_period / 60:.0f}",
         f"{r.config.warmup_wait_time / 60:.2f}",
         f"{r.config.regular_wait_time / 60:.0f}",
         r.requests, f"{r.rmse_ms:.2f}"]
        for r in outcome.pareto
    ]
    print(render_table(
        ["warmup (min)", "warmup wait (min)", "regular wait (min)",
         "requests", "RMSE (ms)"], rows,
    ))
    print(f"\n({len(outcome.evaluated)} configurations evaluated; "
          "the front shows where extra requests stop buying accuracy)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The MNTP tuner (§5.3): log a trace, then grid-search parameters.

Collects a 4-hour trace on the simulated testbed (offsets from three
pool servers plus wireless hints, every 5 s) and evaluates the paper's
six sample configurations (Table 2) plus a full grid search.

Usage::

    python examples/tuner_sweep.py [seed] [--save trace.jsonl]
"""

import sys

from repro.core.config import TABLE2_CONFIGS
from repro.reporting import render_table
from repro.tuner import LoggerOptions, ParameterSearcher, TraceLogger
from repro.tuner.searcher import SearchSpace


def main() -> None:
    args = sys.argv[1:]
    seed = int(args[0]) if args and args[0].isdigit() else 5
    print("Logging a 4-hour trace (5 s cadence, 3 sources + hints)...")
    trace = TraceLogger(seed=seed, options=LoggerOptions()).run()
    print(f"  {len(trace)} entries covering {trace.duration / 3600:.1f} h")

    if "--save" in args:
        path = args[args.index("--save") + 1]
        with open(path, "w") as f:
            trace.save(f)
        print(f"  trace saved to {path}")

    searcher = ParameterSearcher(trace)

    print("\nTable 2's six sample configurations:")
    rows = []
    for num, config in TABLE2_CONFIGS.items():
        result = searcher.evaluate(config)
        wp, ww, rw, rp, rmse_ms, requests = result.row()
        rows.append([num, f"{wp:.0f}", f"{ww:.3f}", f"{rw:.0f}", f"{rp:.0f}",
                     f"{rmse_ms:.2f}", requests])
    print(render_table(
        ["config", "warmup (min)", "warmup wait (min)", "regular wait (min)",
         "reset (min)", "RMSE (ms)", "requests"],
        rows,
    ))

    print("\nFull grid search (best five):")
    results = ParameterSearcher(trace, space=SearchSpace()).search()
    rows = []
    for result in results[:5]:
        wp, ww, rw, rp, rmse_ms, requests = result.row()
        rows.append([f"{wp:.0f}", f"{ww:.3f}", f"{rw:.0f}",
                     f"{rmse_ms:.2f}", requests])
    print(render_table(
        ["warmup (min)", "warmup wait (min)", "regular wait (min)",
         "RMSE (ms)", "requests"],
        rows,
    ))
    print("\nShape check (Table 2): RMSE falls as the request count grows.")


if __name__ == "__main__":
    main()

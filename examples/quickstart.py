#!/usr/bin/env python3
"""Quickstart: SNTP vs MNTP on a hostile wireless channel.

Runs the paper's head-to-head comparison (§5.1) on the simulated
testbed: an unmodified SNTP client and MNTP side by side on the same
drifting laptop clock behind a degraded 802.11 hop, polling every 5
seconds for one simulated hour (a couple of wall-clock seconds).

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro.reporting import render_series
from repro.testbed import run_scenario


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("Running one simulated hour of SNTP vs MNTP (wireless, ntpd on)...")
    result = run_scenario("mntp_wireless_corrected", seed=seed)

    sntp = result.sntp_error_stats()
    mntp = result.mntp_error_stats()
    print()
    print(f"SNTP : {sntp.count:4d} samples  "
          f"mean |err| {sntp.mean_abs * 1000:6.1f} ms  "
          f"max {sntp.max_abs * 1000:7.1f} ms")
    print(f"MNTP : {mntp.count:4d} accepted "
          f"mean |err| {mntp.mean_abs * 1000:6.1f} ms  "
          f"max {mntp.max_abs * 1000:7.1f} ms")
    print(f"MNTP rejected {len(result.mntp_rejected())} outlier offsets "
          f"and is {result.improvement_factor():.1f}x more accurate.")
    print()
    print(render_series([p.error for p in result.sntp], label="SNTP |error|"))
    print(render_series(
        [p.error for p in result.mntp_accepted()], label="MNTP |error|"
    ))
    print()
    print("The paper reports a 12-fold improvement in this setting (Fig. 6).")


if __name__ == "__main__":
    main()

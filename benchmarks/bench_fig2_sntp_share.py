"""Figure 2 — % of clients using SNTP vs NTP.

Left panel: per-server shares across all 19 servers.  Right panel:
per-provider shares at SU1 for the top 25 providers.  Headline: >95 %
of mobile-provider clients use SNTP; the ISP-internal servers (CI1-4,
EN1-2) are the NTP-dominated exceptions.
"""

from repro.logs import LogStudy
from repro.logs.generator import GeneratorOptions
from repro.reporting import render_table

SEED = 13
OPTIONS = GeneratorOptions(scale=2.5e-4, min_clients=120, max_clients=500,
                           max_requests_per_client=25)


def bench_fig2_sntp_share(once, report):
    def run():
        study = LogStudy(seed=SEED, options=OPTIONS)
        study.run()
        return study

    study = once(run)

    per_server = study.figure2_per_server()
    server_rows = []
    for server_id, (sntp, ntp) in per_server.items():
        total = sntp + ntp
        server_rows.append(
            [server_id, total, f"{sntp / total * 100:.1f}",
             f"{ntp / total * 100:.1f}"]
        )
    left = render_table(["server", "clients", "% SNTP", "% NTP"], server_rows)

    per_provider = study.figure2_per_provider("SU1")
    provider_rows = []
    for name, (sntp, ntp) in sorted(per_provider.items()):
        total = sntp + ntp
        provider_rows.append(
            [name, total, f"{sntp / total * 100:.1f}", f"{ntp / total * 100:.1f}"]
        )
    right = render_table(["provider (SU1)", "clients", "% SNTP", "% NTP"],
                         provider_rows)
    mobile_share = study.mobile_sntp_share("SU1")
    # The per-server sample is small at this subsampling scale; pool the
    # mobile share over the largest public servers for a tight estimate
    # of the >95% headline.
    pooled_sntp = pooled_total = 0
    for server_id in ("AG1", "MW2", "MW3", "MW4", "MI1", "SU1"):
        for name, (sntp, ntp) in study.figure2_per_provider(server_id).items():
            if "mobile" in name.lower() or "wireless" in name.lower()                     or "cell" in name.lower():
                pooled_sntp += sntp
                pooled_total += sntp + ntp
    pooled_share = pooled_sntp / pooled_total
    report(
        "FIGURE 2 — SNTP vs NTP protocol shares\n\n"
        "-- left: per server --\n" + left + "\n\n"
        "-- right: per provider at SU1 --\n" + right + "\n\n"
        f"mobile-provider SNTP share at SU1: {mobile_share * 100:.1f}%; "
        f"pooled over six large servers: {pooled_share * 100:.1f}% "
        "(paper: >95%)"
    )

    # Shape assertions.
    isp_specific = {"CI1", "CI2", "CI3", "CI4", "EN1", "EN2"}
    for server_id, (sntp, ntp) in per_server.items():
        share = sntp / (sntp + ntp)
        if server_id in isp_specific:
            assert share < 0.5, f"{server_id} should be NTP-dominated"
        else:
            assert share > 0.5, f"{server_id} should be SNTP-dominated"
    assert mobile_share > 0.88  # single-server sample is small
    assert pooled_share > 0.95  # the paper's headline, on the pooled sample

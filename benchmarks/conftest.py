"""Benchmark-suite fixtures and the bench-trajectory hook.

``report`` prints through pytest's capture so the regenerated
tables/series reach the terminal (and any ``tee``) even without ``-s``.

When ``REPRO_BENCH_OBS`` names a file, every collected ``bench_*`` item
is wall-clock timed (per bench module, repeats accumulate) and the
totals are written there as JSON at session end — the payload
``scripts/bench.py`` turns into ``BENCH_obs.json`` and regression
verdicts.

Benches that know how much simulated work they performed declare it
through the ``throughput`` fixture (protocol exchanges + simulated
virtual seconds); the session document then carries a ``throughput``
section keyed like ``benches``, which ``scripts/bench.py`` converts
into exchanges/sec and simulated-hours/sec rates and gates against the
trajectory.

When ``REPRO_BENCH_TELEMETRY`` additionally names a directory, benches
may hand their runs' telemetry snapshots to the same fixture
(``throughput(..., telemetry=...)``); the session then writes one
canonically merged ``<bench>.json`` snapshot per bench module there,
which ``scripts/bench.py`` archives per run and diffs on a tripped
throughput gate (``repro.obs.diff``).
"""

import json
import os

import pytest

#: Format tag of the per-module timing document.
BENCH_FORMAT = "mntp-bench-v1"

_timer = None

#: bench module name -> {"exchanges": ..., "simulated_s": ...},
#: accumulated across items of the same module (repeats sum).
_throughput = {}

#: bench module name -> list of telemetry snapshots handed to the
#: ``throughput`` fixture; only populated when REPRO_BENCH_TELEMETRY
#: names an output directory.
_telemetry = {}


def pytest_configure(config):
    """Arm the bench timer when REPRO_BENCH_OBS names an output file."""
    global _timer
    if os.environ.get("REPRO_BENCH_OBS"):
        from repro.obs import RunTimer

        _timer = RunTimer()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    """Time each bench item under its module's name."""
    if _timer is None:
        yield
        return
    name = item.module.__name__.rsplit(".", 1)[-1]
    with _timer.measure(name):
        yield


def _write_telemetry_snapshots():
    """One canonically merged snapshot per bench into the capture dir."""
    directory = os.environ.get("REPRO_BENCH_TELEMETRY")
    if not directory or not _telemetry:
        return
    from repro.obs import make_shard, merge_documents

    os.makedirs(directory, exist_ok=True)
    for bench, snapshots in sorted(_telemetry.items()):
        # Index-keyed envelopes keep identical snapshots distinct and
        # the merge order deterministic.
        merged = merge_documents([
            make_shard(snapshot, f"{bench}-{index:04d}")
            for index, snapshot in enumerate(snapshots)
        ])
        with open(os.path.join(directory, f"{bench}.json"), "w") as f:
            json.dump(merged, f, sort_keys=True, separators=(",", ":"))
            f.write("\n")


def pytest_sessionfinish(session, exitstatus):
    """Write the accumulated per-module timings as JSON."""
    _write_telemetry_snapshots()
    if _timer is None:
        return
    path = os.environ["REPRO_BENCH_OBS"]
    document = {
        "format": BENCH_FORMAT,
        "benches": {k: round(v, 6) for k, v in _timer.results().items()},
        "total_seconds": round(_timer.total(), 6),
        "exit_status": int(exitstatus),
    }
    if _throughput:
        document["throughput"] = {
            k: {
                "exchanges": round(v["exchanges"], 3),
                "simulated_s": round(v["simulated_s"], 3),
            }
            for k, v in sorted(_throughput.items())
        }
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")


@pytest.fixture
def report(request):
    """Print a block of text bypassing output capture."""
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _report(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(f"\n{text}")
        else:  # pragma: no cover - capture plugin always present
            print(f"\n{text}")

    return _report


@pytest.fixture
def throughput(request):
    """Record how much simulated work this bench's seconds bought.

    ``throughput(exchanges=..., simulated_s=...)`` — total protocol
    exchanges (requests that entered the wire, answered or not) and
    total simulated virtual seconds across every run the bench timed.
    Recorded under the bench's module name, matching the timing key, so
    ``scripts/bench.py`` can denominate the wall clock in work done.
    Repeated calls (parametrised items of one module) accumulate.

    ``telemetry`` optionally carries the measured runs' telemetry
    snapshot(s) — a single ``mntp-telemetry-v1`` dict or a sequence of
    them.  They are only retained when ``REPRO_BENCH_TELEMETRY`` names
    a capture directory (the bench-triage path); otherwise the
    argument is ignored, so benches can pass it unconditionally.
    """
    name = request.module.__name__.rsplit(".", 1)[-1]

    def _throughput_record(exchanges, simulated_s, telemetry=None):
        entry = _throughput.setdefault(
            name, {"exchanges": 0.0, "simulated_s": 0.0}
        )
        entry["exchanges"] += float(exchanges)
        entry["simulated_s"] += float(simulated_s)
        if telemetry and os.environ.get("REPRO_BENCH_TELEMETRY"):
            snapshots = (
                telemetry if isinstance(telemetry, (list, tuple))
                else [telemetry]
            )
            _telemetry.setdefault(name, []).extend(
                s for s in snapshots if s
            )

    return _throughput_record


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations, so repeated rounds
    only repeat identical work; one round keeps the suite fast while
    still recording wall-clock cost per figure/table.
    """

    def _once(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _once

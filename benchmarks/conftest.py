"""Benchmark-suite fixtures and the bench-trajectory hook.

``report`` prints through pytest's capture so the regenerated
tables/series reach the terminal (and any ``tee``) even without ``-s``.

When ``REPRO_BENCH_OBS`` names a file, every collected ``bench_*`` item
is wall-clock timed (per bench module, repeats accumulate) and the
totals are written there as JSON at session end — the payload
``scripts/bench.py`` turns into ``BENCH_obs.json`` and regression
verdicts.
"""

import json
import os

import pytest

#: Format tag of the per-module timing document.
BENCH_FORMAT = "mntp-bench-v1"

_timer = None


def pytest_configure(config):
    """Arm the bench timer when REPRO_BENCH_OBS names an output file."""
    global _timer
    if os.environ.get("REPRO_BENCH_OBS"):
        from repro.obs import RunTimer

        _timer = RunTimer()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    """Time each bench item under its module's name."""
    if _timer is None:
        yield
        return
    name = item.module.__name__.rsplit(".", 1)[-1]
    with _timer.measure(name):
        yield


def pytest_sessionfinish(session, exitstatus):
    """Write the accumulated per-module timings as JSON."""
    if _timer is None:
        return
    path = os.environ["REPRO_BENCH_OBS"]
    document = {
        "format": BENCH_FORMAT,
        "benches": {k: round(v, 6) for k, v in _timer.results().items()},
        "total_seconds": round(_timer.total(), 6),
        "exit_status": int(exitstatus),
    }
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")


@pytest.fixture
def report(request):
    """Print a block of text bypassing output capture."""
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _report(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(f"\n{text}")
        else:  # pragma: no cover - capture plugin always present
            print(f"\n{text}")

    return _report


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations, so repeated rounds
    only repeat identical work; one round keeps the suite fast while
    still recording wall-clock cost per figure/table.
    """

    def _once(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _once

"""Benchmark-suite fixtures.

``report`` prints through pytest's capture so the regenerated
tables/series reach the terminal (and any ``tee``) even without ``-s``.
"""

import pytest


@pytest.fixture
def report(request):
    """Print a block of text bypassing output capture."""
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _report(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(f"\n{text}")
        else:  # pragma: no cover - capture plugin always present
            print(f"\n{text}")

    return _report


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations, so repeated rounds
    only repeat identical work; one round keeps the suite fast while
    still recording wall-clock cost per figure/table.
    """

    def _once(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _once

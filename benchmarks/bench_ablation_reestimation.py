"""Ablation A2 — drift re-estimation on every sample (the §5.3 fix).

The paper reports that with the drift estimated only once (from the
warm-up), some warmupWaitTime values underestimate it and the filter
"was too conservative in accepting the offsets, resulting in all the
offsets being rejected in the regular phase"; the fix re-estimates on
every accepted sample.  This ablation replays a trace with a sparse
warm-up through both filter variants.
"""

import numpy as np

from repro.core.config import MntpConfig
from repro.reporting import render_table
from repro.tuner.emulator import MntpEmulator
from repro.tuner.traces import OffsetTrace, TraceEntry

SOURCES = ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")


def _drifting_trace(duration=4 * 3600.0, cadence=5.0, seed=0):
    """A trace whose drift *accelerates* (a device warming after boot):
    the skew ramps from 4 ppm to 12 ppm across the run, so a slope
    fitted on the early warm-up window underestimates the later drift —
    the paper's "number of samples were too low causing MNTP to
    underestimate the clock drift value"."""
    rng = np.random.default_rng(seed)
    base_rate = 4e-6
    accel = 8e-6 / duration  # skew gains 8 ppm over the run
    trace = OffsetTrace(cadence=cadence)
    t = 0.0
    while t < duration:
        offset_true = base_rate * t + 0.5 * accel * t * t
        trace.append(TraceEntry(
            time=t, rssi_dbm=-45.0, noise_dbm=-92.0,
            offsets={
                s: offset_true + float(rng.normal(0, 0.003)) for s in SOURCES
            },
        ))
        t += cadence
    return trace


def bench_ablation_reestimation(once, report):
    def run():
        trace = _drifting_trace()
        # Sparse warm-up (few samples over a short window) followed by a
        # long regular phase: the §5.3 trouble spot.
        base = MntpConfig(
            warmup_period=600.0,
            warmup_wait_time=60.0,
            regular_wait_time=120.0,
            reset_period=4 * 3600.0,
            # No rebootstrap escape: the §5.3 filter had no such rescue,
            # so the starvation mode is fully visible.
            max_consecutive_rejections=10**9,
        )
        fixed = MntpEmulator(
            trace, base.with_overrides(reestimate_every_sample=True)
        ).run()
        frozen = MntpEmulator(
            trace, base.with_overrides(reestimate_every_sample=False)
        ).run()
        return fixed, frozen

    fixed, frozen = once(run)

    def regular_accepts(result):
        # Reported entries past the warm-up window.
        return sum(1 for t, _ in result.raw_accepted if t > 600.0)

    rows = [
        ["re-estimate every sample (fix)", regular_accepts(fixed),
         len(fixed.rejected), f"{fixed.rmse_ms():.2f}"],
        ["warm-up-only estimate (pre-fix)", regular_accepts(frozen),
         len(frozen.rejected), f"{frozen.rmse_ms():.2f}"],
    ]
    report(
        "ABLATION A2 — drift re-estimation policy (§5.3 insight)\n\n"
        + render_table(
            ["filter variant", "regular-phase accepts", "rejections",
             "RMSE (ms)"],
            rows,
        )
        + "\n\npaper: the frozen estimate starves the regular phase; "
        "re-estimation fixes it"
    )

    # The fix accepts substantially more regular-phase samples.
    assert regular_accepts(fixed) > regular_accepts(frozen)
    # And the frozen variant rejects more.
    assert len(frozen.rejected) > len(fixed.rejected)

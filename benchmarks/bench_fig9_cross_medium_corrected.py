"""Figure 9 — SNTP on *wired* vs MNTP on *wireless*, correction on.

The cross-medium comparison: even with SNTP enjoying a clean wired
path, MNTP on the hostile wireless hop remains competitive.  Paper:
wired SNTP excursions up to ~50 ms; wireless MNTP offsets ~20 ms.
"""

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario

SEED = 1


def bench_fig9_cross_medium_corrected(once, report):
    def run():
        wired = run_scenario("wired_corrected", seed=SEED)
        mntp = run_scenario("mntp_wireless_corrected", seed=SEED)
        return wired, mntp

    wired, mntp_run = once(run)
    sntp = wired.sntp_error_stats()
    mntp = mntp_run.mntp_error_stats()

    report(
        "FIGURE 9 — wired SNTP vs wireless MNTP (NTP correction on)\n\n"
        + render_table(
            ["series", "n", "mean |err| (ms)", "p99-ish max (ms)"],
            [
                ["SNTP on wired", sntp.count, f"{sntp.mean_abs * 1000:.1f}",
                 f"{sntp.max_abs * 1000:.1f}"],
                ["MNTP on wireless", mntp.count, f"{mntp.mean_abs * 1000:.1f}",
                 f"{mntp.max_abs * 1000:.1f}"],
            ],
        )
        + "\n\n"
        + render_series([p.error for p in wired.sntp], label="wired SNTP")
        + "\n"
        + render_series([p.error for p in mntp_run.mntp_accepted()],
                        label="wireless MNTP")
        + "\n\npaper: wired SNTP reaches ~50 ms; wireless MNTP ~20 ms"
    )

    # MNTP on a hostile wireless channel is at least in the same class
    # as SNTP on a clean wire (the paper shows it strictly better on the
    # excursions; mean-wise the two are close).
    assert mntp.mean_abs < 4 * max(sntp.mean_abs, 0.002)
    assert mntp.mean_abs < 0.012

"""Figure 4 — SNTP clock offsets: wired vs wireless × correction on/off.

Four one-hour runs at 5 s cadence.  Paper headline numbers: wired
corrected 4±7 ms; wireless corrected 31±47 ms with spikes to ~600 ms;
wireless uncorrected 118±133 ms with spikes to 1.58 s (the uncorrected
magnitudes depend on that laptop's drift rate; the shape targets are
the orderings and the spike scale).
"""

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario

SEED = 1
CONDITIONS = (
    ("wired_corrected", "wired, NTP correction on"),
    ("wired_uncorrected", "wired, free-running"),
    ("wireless_corrected", "wireless, NTP correction on"),
    ("wireless_uncorrected", "wireless, free-running"),
)


def bench_fig4_sntp_wired_wireless(once, report, throughput):
    def run():
        return {name: run_scenario(name, seed=SEED) for name, _ in CONDITIONS}

    results = once(run)
    throughput(
        exchanges=sum(
            len(r.sntp) + r.sntp_failures for r in results.values()
        ),
        simulated_s=len(CONDITIONS) * 3600.0,
        telemetry=[r.telemetry for r in results.values()],
    )

    rows = []
    series_lines = []
    for name, label in CONDITIONS:
        r = results[name]
        s = r.sntp_stats()
        rows.append([
            label, s.count, r.sntp_failures,
            f"{s.mean_abs * 1000:.1f}", f"{s.std_abs * 1000:.1f}",
            f"{s.max_abs * 1000:.1f}",
        ])
        series_lines.append(
            render_series([p.offset for p in r.sntp], label=f"{label:32s}")
        )
    report(
        "FIGURE 4 — SNTP offsets, wired vs wireless, with/without correction\n\n"
        + render_table(
            ["condition", "samples", "failures", "mean |off| (ms)",
             "std (ms)", "max (ms)"], rows,
        )
        + "\n\n" + "\n".join(series_lines)
        + "\n\npaper: wired corrected 4±7 ms; wireless corrected 31±47 ms "
        "(spikes ~600 ms); wireless uncorrected 118±133 ms (spikes ~1.58 s)"
    )

    wired_c = results["wired_corrected"].sntp_stats()
    wired_u = results["wired_uncorrected"].sntp_stats()
    wifi_c = results["wireless_corrected"].sntp_stats()
    wifi_u = results["wireless_uncorrected"].sntp_stats()
    # Wired corrected is tight (single-digit ms).
    assert wired_c.mean_abs < 0.012
    # Wireless is several times worse than wired under correction.
    assert wifi_c.mean_abs > 4 * wired_c.mean_abs
    assert wifi_c.std_abs > 4 * wired_c.std_abs
    # Wireless spikes reach hundreds of ms.
    assert wifi_c.max_abs > 0.3
    assert wifi_u.max_abs > 0.3
    # Removing correction makes things worse on both media.
    assert wired_u.mean_abs > wired_c.mean_abs
    assert wifi_u.mean_abs > wifi_c.mean_abs
    # Paper: wired uncorrected drift reaches ~50 ms in the hour.
    assert 0.01 < wired_u.max_abs < 0.3

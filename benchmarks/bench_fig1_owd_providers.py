"""Figure 1 — minimum OWDs per service provider (box + CDF panels).

Regenerates the per-provider min-OWD distributions for the three
servers the paper plots (AG1, JW2, SU1): medians and IQRs per SP rank
(left panels) and CDF quantiles per category (right panels).
"""

from repro.logs import LogStudy
from repro.logs.generator import GeneratorOptions
from repro.logs.servers import server_by_id
from repro.reporting import render_cdf, render_table

SEED = 11
OPTIONS = GeneratorOptions(scale=4e-4, min_clients=250, max_clients=600,
                           max_requests_per_client=25)
SHOWN_SERVERS = ("AG1", "JW2", "SU1")
#: Paper's Figure-1 category medians (seconds).
PAPER_MEDIANS = {"cloud": 0.040, "isp": 0.050, "broadband": 0.250, "mobile": 0.550}


def bench_fig1_owd_providers(once, report):
    def run():
        study = LogStudy(
            seed=SEED, options=OPTIONS,
            servers=[server_by_id(s) for s in SHOWN_SERVERS],
        )
        study.run()
        return study

    study = once(run)
    blocks = []
    for server in SHOWN_SERVERS:
        latencies = study.figure1(server)
        rows = [
            [f"SP {pl.provider.sp_id}", pl.category, pl.client_count,
             f"{pl.median * 1000:.0f}", f"{pl.interquartile_range * 1000:.0f}"]
            for pl in latencies
        ]
        blocks.append(
            f"-- {server} (left panel): min-OWD per provider --\n"
            + render_table(["provider", "category", "clients",
                            "median (ms)", "IQR (ms)"], rows)
        )
        pooled = {}
        for pl in latencies:
            pooled.setdefault(pl.category, []).extend(pl.min_owds)
        cdfs = [
            render_cdf(values, label=f"{server}/{category}")
            for category, values in sorted(pooled.items())
        ]
        blocks.append(f"-- {server} (right panel): min-OWD CDFs --\n"
                      + "\n".join(cdfs))
    report("FIGURE 1 — minimum OWDs of clients per service provider\n\n"
           + "\n\n".join(blocks))

    # Shape assertions: category ordering and rough medians at each server.
    for server in SHOWN_SERVERS:
        medians = study.category_medians(server)
        assert (
            medians["cloud"] < medians["isp"]
            < medians["broadband"] < medians["mobile"]
        )
        for category, paper_value in PAPER_MEDIANS.items():
            assert 0.4 * paper_value < medians[category] < 2.5 * paper_value
        # Paper: 50% of mobile clients above 400 ms.
        latencies = {pl.provider.sp_id: pl for pl in study.figure1(server)}
        import numpy as np

        mobile = [
            owd for pl in latencies.values() if pl.category == "mobile"
            for owd in pl.min_owds
        ]
        assert float(np.median(mobile)) > 0.4

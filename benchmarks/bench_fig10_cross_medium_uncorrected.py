"""Figure 10 — SNTP on *wired* vs MNTP on *wireless*, free-running.

The uncorrected cross-medium comparison: both clocks drift; wired SNTP
reports the drift plus queueing noise (paper: up to ~50 ms over the
hour), MNTP on wireless tracks its own drift trend with small
residuals.
"""

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario

SEED = 1


def bench_fig10_cross_medium_uncorrected(once, report):
    def run():
        wired = run_scenario("wired_uncorrected", seed=SEED)
        mntp = run_scenario("mntp_wireless_uncorrected", seed=SEED)
        return wired, mntp

    wired, mntp_run = once(run)
    sntp_err = wired.sntp_error_stats()
    mntp_err = mntp_run.mntp_error_stats()
    residuals = [abs(p.offset) for p in mntp_run.mntp_corrected_drift()]

    report(
        "FIGURE 10 — wired SNTP vs wireless MNTP (no clock correction)\n\n"
        + render_table(
            ["series", "n", "mean |err| (ms)", "max (ms)"],
            [
                ["SNTP on wired (error vs truth)", sntp_err.count,
                 f"{sntp_err.mean_abs * 1000:.1f}",
                 f"{sntp_err.max_abs * 1000:.1f}"],
                ["MNTP on wireless (error vs truth)", mntp_err.count,
                 f"{mntp_err.mean_abs * 1000:.1f}",
                 f"{mntp_err.max_abs * 1000:.1f}"],
            ],
        )
        + "\n\n"
        + render_series([p.offset for p in wired.sntp],
                        label="wired SNTP offsets (drift visible)")
        + "\n"
        + render_series([p.offset for p in mntp_run.mntp_accepted()],
                        label="wireless MNTP offsets (drift tracked)")
    )

    # Wired uncorrected SNTP shows the drift ramp (tens of ms, paper ~50).
    assert 0.01 < wired.sntp_stats().max_abs < 0.3
    # MNTP's accepted samples measure the drifting clock accurately.
    assert mntp_err.mean_abs < 0.015
    assert residuals and sum(residuals) / len(residuals) < 0.010

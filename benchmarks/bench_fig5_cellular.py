"""Figure 5 — SNTP clock offsets reported by a mobile host on 4G.

Three simulated hours of SNTP on a phone whose clock is GPS-corrected;
the reported offsets are pure cellular-path measurement error.  Paper:
mean 192 ms, standard deviation 55 ms, max 840 ms.
"""

from repro.cellular import CellularExperiment, CellularOptions
from repro.reporting import render_cdf, render_series

SEED = 1


def bench_fig5_cellular(once, report):
    def run():
        return CellularExperiment(seed=SEED, options=CellularOptions()).run()

    result = once(run)
    stats = result.stats()
    report(
        "FIGURE 5 — SNTP offsets on a 4G phone (GPS-corrected clock)\n\n"
        f"samples={stats.count} failures={result.failures} "
        f"promotions={result.promotions} gps_fixes={result.gps_fixes}\n"
        f"mean |off| = {stats.mean_abs * 1000:6.1f} ms   (paper: 192 ms)\n"
        f"std  |off| = {stats.std_abs * 1000:6.1f} ms   (paper:  55 ms)\n"
        f"max  |off| = {stats.max_abs * 1000:6.1f} ms   (paper: 840 ms)\n\n"
        + render_series([p.offset for p in result.offsets], label="offsets")
        + "\n" + render_cdf([p.offset for p in result.offsets], label="CDF")
    )

    assert 0.120 < stats.mean_abs < 0.280
    assert 0.030 < stats.std_abs < 0.110
    assert 0.3 < stats.max_abs < 1.5
    # The GPS baseline held, so the offsets are measurement error.
    truths = [abs(p.truth) for p in result.offsets]
    assert max(truths) < 0.05
    # Positive bias from uplink promotion.
    mean_signed = sum(p.offset for p in result.offsets) / len(result.offsets)
    assert mean_signed > 0.05

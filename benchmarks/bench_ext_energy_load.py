"""Extension E4 — network load and battery cost per strategy.

The paper's §7 future work: "perform an exhaustive benchmarking of MNTP
against SNTP and NTP in terms of metrics like processor and battery
performance".  This bench runs the Figure-6 environment and prices each
strategy's actual transmission schedule through the radio power-state
model (tail energy per Balasubramanian et al., which the paper cites),
alongside its accuracy — the full accuracy/energy trade-off:

* SNTP @ 5 s — the paper's measurement cadence;
* MNTP — gated/paced schedule from the same run (3-server warm-up
  rounds share one radio wake-up);
* full NTP (ntpd) — adaptive-poll daemon schedule;
* Android stock policy — one attempt per day.
"""

from repro.core.config import MntpConfig
from repro.energy import EnergyAccountant
from repro.reporting import render_table
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

SEED = 1
DURATION = 4 * 3600.0


def bench_ext_energy_load(once, report):
    def run():
        runner = ExperimentRunner(
            seed=SEED,
            options=TestbedOptions(wireless=True, ntp_correction=True),
            duration=DURATION,
            mntp_config=MntpConfig.baseline_headtohead().with_overrides(
                # Use realistic paced parameters rather than the 5 s
                # head-to-head cadence, since energy is the question.
                warmup_period=1800.0, warmup_wait_time=15.0,
                regular_wait_time=300.0, reset_period=DURATION * 2,
            ),
        )
        result = runner.run()
        return runner, result

    runner, result = once(run)
    trace = runner.sim.trace
    accountant = EnergyAccountant()

    # SNTP: one exchange per 5 s slot for the full run.
    sntp_times = [p.time for p in result.sntp]
    sntp = accountant.price_schedule("SNTP @5s", sntp_times, DURATION)

    # MNTP: its actual (gated, paced) schedule with per-round fan-out.
    mntp_events = [
        (r.time, len(r.data["sources"]))
        for r in trace.select(component="mntp", kind="query_sent")
    ]
    mntp = accountant.price_events("MNTP", mntp_events, DURATION)

    # ntpd: each poll round queries all four upstreams at one instant.
    ntpd_rounds = {}
    for r in trace.select(component="ntpd", kind="update"):
        ntpd_rounds[round(r.time)] = 4
    ntpd_times = sorted(ntpd_rounds)
    ntpd = accountant.price_events(
        "NTP (ntpd)", [(t, 4) for t in ntpd_times], DURATION
    )

    # Android stock policy: one poll per day -> at most one in 4 h.
    android = accountant.price_schedule("Android stock", [0.0], DURATION)

    mntp_err = result.mntp_error_stats()
    sntp_err = result.sntp_error_stats()
    rows = []
    for rep, err_ms in (
        (sntp, sntp_err.mean_abs * 1000),
        (mntp, mntp_err.mean_abs * 1000),
        (ntpd, None),
        (android, None),
    ):
        rows.append([
            rep.name, rep.requests, rep.bytes_on_wire,
            f"{rep.wakeups_per_hour:.1f}",
            f"{rep.joules_per_hour:.1f}",
            f"{err_ms:.2f}" if err_ms is not None else "-",
        ])
    report(
        "EXTENSION E4 — accuracy vs network load vs battery cost (4 h)\n\n"
        + render_table(
            ["strategy", "requests", "bytes", "wakeups/h", "J/h",
             "mean |err| (ms)"],
            rows,
        )
        + "\n\nntpd's accuracy is the disciplined clock itself "
        "(see Fig. 4); Android's daily poll leaves the clock to drift "
        "freely between polls."
    )

    # MNTP uses far less energy than blind 5 s SNTP polling...
    assert mntp.joules_per_hour < sntp.joules_per_hour / 2
    # ...while being far more accurate.
    assert mntp_err.mean_abs < sntp_err.mean_abs / 3
    # And it stays cheaper than the ntpd daemon's multi-server polling
    # or comparable (both are paced); Android is trivially cheapest.
    assert android.joules_per_hour < mntp.joules_per_hour
    assert mntp.breakdown.promotions < len(sntp_times)

"""Figure 12 — 4-hour SNTP vs MNTP on wireless, free-running clock.

The §5.2 longer experiment: 5 s cadence for 4 hours with the clock
allowed to drift and MNTP's drift estimation active.  Paper: SNTP as
high as 392 ms; MNTP's clock-corrected drift values always < 20 ms.
"""

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario

SEED = 1


def bench_fig12_long_run(once, report):
    def run():
        return run_scenario("mntp_longrun", seed=SEED)

    result = once(run)
    sntp = result.sntp_stats()
    sntp_err = result.sntp_error_stats()
    mntp_err = result.mntp_error_stats()
    residuals = [abs(p.offset) for p in result.mntp_corrected_drift()]
    mean_resid = sum(residuals) / max(1, len(residuals))
    max_resid = max(residuals, default=0.0)

    report(
        "FIGURE 12 — 4-hour SNTP vs MNTP, wireless, free-running clock\n\n"
        + render_table(
            ["series", "n", "mean (ms)", "max (ms)"],
            [
                ["SNTP raw offsets", sntp.count,
                 f"{sntp.mean_abs * 1000:.1f}", f"{sntp.max_abs * 1000:.1f}"],
                ["SNTP error vs truth", sntp_err.count,
                 f"{sntp_err.mean_abs * 1000:.1f}",
                 f"{sntp_err.max_abs * 1000:.1f}"],
                ["MNTP error vs truth", mntp_err.count,
                 f"{mntp_err.mean_abs * 1000:.1f}",
                 f"{mntp_err.max_abs * 1000:.1f}"],
                ["MNTP corrected drift values", len(residuals),
                 f"{mean_resid * 1000:.1f}", f"{max_resid * 1000:.1f}"],
            ],
        )
        + "\n\n"
        + render_series([p.offset for p in result.sntp],
                        label="SNTP offsets (4 h)")
        + "\n"
        + render_series([p.offset for p in result.mntp_accepted()],
                        label="MNTP offsets (4 h)")
        + "\n"
        + render_series([p.offset for p in result.mntp_corrected_drift()],
                        label="MNTP corrected drift")
        + "\n\npaper: SNTP up to 392 ms; MNTP corrected drift < 20 ms"
    )

    # SNTP sees large spikes over 4 h of hostile channel.
    assert sntp.max_abs > 0.3
    # MNTP's corrected drift values stay tight.
    assert mean_resid < 0.010
    assert result.mntp_rejected()  # big offsets were filtered out
    assert result.improvement_factor() > 5.0

"""Extension E6 — 24-hour in-situ MNTP deployment.

The paper's §7: "longer-term in situ experiments in order to evaluate
... MNTP's effectiveness in day-to-day operation."  A free-running
laptop clock is steered by MNTP alone (clock + drift correction on,
Table-2-config-1-class pacing: 30 min warm-up, 15 min regular rounds,
4 h resets) for a full simulated day with diurnal temperature and
round-the-clock channel hostility.
"""

import numpy as np

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario

SEED = 1


def bench_ext_insitu_day(once, report):
    def run():
        return run_scenario("mntp_insitu_24h", seed=SEED)

    result = once(run)
    truth = np.array([p.offset for p in result.true_offsets])
    abs_truth = np.abs(truth)
    mntp_err = result.mntp_error_stats()
    corrections = sum(1 for r in result.mntp_reports if r.corrected)

    report(
        "EXTENSION E6 — 24 h in-situ MNTP deployment "
        "(free-running clock, MNTP-only steering)\n\n"
        + render_table(
            ["quantity", "value"],
            [
                ["clock |offset| mean", f"{abs_truth.mean() * 1000:.1f} ms"],
                ["clock |offset| p95", f"{np.percentile(abs_truth, 95) * 1000:.1f} ms"],
                ["clock |offset| max", f"{abs_truth.max() * 1000:.1f} ms"],
                ["MNTP measurement error (mean)", f"{mntp_err.mean_abs * 1000:.1f} ms"],
                ["accepted / rejected offsets",
                 f"{mntp_err.count} / {len(result.mntp_rejected())}"],
                ["clock corrections applied", corrections],
                ["algorithm resets", "6 (4 h reset period)"],
            ],
        )
        + "\n\n"
        + render_series(list(truth), label="clock offset over 24 h")
        + "\n\nfor scale: the same clock free-running drifts past 1.4 s "
        "in 24 h at its ~17 ppm skew"
    )

    # The steered clock stays bounded all day...
    assert abs_truth.mean() < 0.060
    assert abs_truth.max() < 0.400
    # ...whereas unsteered it would drift to seconds (17 ppm * 86400 s).
    assert abs_truth.max() < 0.3 * 17e-6 * 86_400
    # Corrections happened throughout the day, not just at the start.
    times = [r.time for r in result.mntp_reports if r.corrected]
    assert times and max(times) > 20 * 3600.0
    # The filter kept rejecting channel junk all day.
    assert len(result.mntp_rejected()) > 20

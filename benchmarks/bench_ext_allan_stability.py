"""Extension E7 — stability vs accuracy (Allan deviation) per regime.

Characterises the TN clock with the standard oscillator-stability
statistic: overlapping Allan deviation of the true offset series,
free-running vs ntpd-disciplined vs MNTP-steered.

The textbook trade-off appears exactly as theory predicts: the
free-running crystal is extremely *stable* (ADEV ~1e-8; a constant
frequency error is invisible to the second difference) while drifting
hundreds of ms wrong; the steered clocks accept correction-step noise
(ADEV ~1e-5..1e-4) in exchange for staying *accurate* to a global
timescale.  Synchronization buys accuracy at the price of stability —
which is the right trade for the paper's applications.
"""

import numpy as np

from repro.core.config import MntpConfig
from repro.metrics.allan import allan_deviation_curve
from repro.reporting import render_table
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

SEED = 1
DURATION = 4 * 3600.0
CADENCE = 10.0  # truth sampling period (tau0)


def _truth_series(ntp_correction: bool, mntp: bool):
    runner = ExperimentRunner(
        seed=SEED,
        options=TestbedOptions(wireless=True, ntp_correction=ntp_correction),
        duration=DURATION,
        sntp_cadence=CADENCE,
        run_sntp=False,
        mntp_config=(
            MntpConfig(
                warmup_period=1800.0, warmup_wait_time=15.0,
                regular_wait_time=300.0, reset_period=DURATION * 2,
            )
            if mntp else None
        ),
    )
    result = runner.run()
    return [p.offset for p in result.true_offsets]


def bench_ext_allan_stability(once, report):
    def run():
        return {
            "free-running": _truth_series(ntp_correction=False, mntp=False),
            "ntpd": _truth_series(ntp_correction=True, mntp=False),
            "MNTP": _truth_series(ntp_correction=False, mntp=True),
        }

    series = once(run)

    curves = {
        name: dict(allan_deviation_curve(phase, CADENCE, max_points=9))
        for name, phase in series.items()
    }
    taus = sorted(set().union(*[c.keys() for c in curves.values()]))
    rows = []
    for tau in taus:
        rows.append([f"{tau:.0f}"] + [
            f"{curves[name][tau]:.2e}" if tau in curves[name] else "-"
            for name in ("free-running", "ntpd", "MNTP")
        ])
    accuracy_rows = [
        [name, f"{np.abs(phase).mean() * 1000:.1f}",
         f"{np.abs(phase).max() * 1000:.1f}"]
        for name, phase in series.items()
    ]
    report(
        "EXTENSION E7 — stability (ADEV) vs accuracy per regime\n\n"
        + render_table(["tau (s)", "free-running", "ntpd", "MNTP"], rows)
        + "\n\n"
        + render_table(["regime", "mean |offset| (ms)", "max (ms)"],
                       accuracy_rows)
        + "\n\nthe free-running crystal is stable but wrong; steering "
        "trades ADEV for time accuracy"
    )

    free_phase = np.abs(series["free-running"])
    ntpd_phase = np.abs(series["ntpd"])
    mntp_phase = np.abs(series["MNTP"])
    # Stability: the free-running clock has by far the lowest ADEV at
    # every tau (constant skew is invisible to the second difference).
    for tau in taus:
        assert curves["free-running"][tau] < curves["ntpd"][tau]
        assert curves["free-running"][tau] < curves["MNTP"][tau]
    # Accuracy: both steered regimes hold the clock 5x+ closer to true
    # time than free-running drift.
    assert ntpd_phase.max() < free_phase.max() / 5
    assert mntp_phase.max() < free_phase.max() / 2
    assert mntp_phase.mean() < free_phase.mean() / 3

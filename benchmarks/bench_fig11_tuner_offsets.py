"""Figure 11 — achievable clock offsets for the six sample configurations.

Replays Table 2's configurations and renders each configuration's
corrected-offset series (the quantity Figure 11 plots over the 4-hour
trace window).
"""

from repro.core.config import TABLE2_CONFIGS
from repro.reporting import render_cdf, render_series
from repro.tuner import LoggerOptions, MntpEmulator, TraceLogger

SEED = 5


def bench_fig11_tuner_offsets(once, report):
    def run():
        trace = TraceLogger(seed=SEED, options=LoggerOptions()).run()
        return {
            num: MntpEmulator(trace, config).run()
            for num, config in TABLE2_CONFIGS.items()
        }

    emulations = once(run)

    lines = []
    for num, emulation in emulations.items():
        offsets = [offset for _, offset in emulation.reported]
        lines.append(render_series(offsets, label=f"config {num} offsets"))
        lines.append(render_cdf(offsets, label=f"config {num} CDF     "))
    report("FIGURE 11 — achievable offsets per tuner configuration\n\n"
           + "\n".join(lines))

    for num, emulation in emulations.items():
        offsets = [abs(o) for _, o in emulation.reported]
        assert offsets, f"config {num} reported nothing"
        mean_abs = sum(offsets) / len(offsets)
        # Corrected offsets stay in the low-ms regime for every config.
        assert mean_abs < 0.020
    # Denser configurations report many more corrected offsets.
    assert len(emulations[6].reported) > 3 * len(emulations[1].reported)

"""Ablation A1 — hint gating vs trend filtering.

The paper credits MNTP's gains to two mechanisms: channel-aware pacing
(the hint gate) and trend-line offset filtering.  This ablation runs
the Figure-8 scenario with each mechanism toggled independently to
separate their contributions.
"""

from repro.core.config import MntpConfig
from repro.reporting import render_table
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

SEED = 2

VARIANTS = (
    ("neither (plain SNTP cadence)", dict(enable_hint_gate=False, enable_filter=False)),
    ("gate only", dict(enable_hint_gate=True, enable_filter=False)),
    ("filter only", dict(enable_hint_gate=False, enable_filter=True)),
    ("gate + filter (full MNTP)", dict(enable_hint_gate=True, enable_filter=True)),
)


def _run_variant(overrides):
    config = MntpConfig.baseline_headtohead().with_overrides(**overrides)
    runner = ExperimentRunner(
        seed=SEED,
        options=TestbedOptions(wireless=True, ntp_correction=False),
        duration=3600.0,
        run_sntp=False,
        mntp_config=config,
    )
    return runner.run()


def bench_ablation_features(once, report):
    def run():
        return {name: _run_variant(flags) for name, flags in VARIANTS}

    results = once(run)

    rows = []
    means = {}
    for name, _ in VARIANTS:
        r = results[name]
        err = r.mntp_error_stats()
        means[name] = err.mean_abs
        rows.append([
            name, err.count, f"{err.mean_abs * 1000:.2f}",
            f"{err.max_abs * 1000:.1f}", len(r.mntp_rejected()),
        ])
    report(
        "ABLATION A1 — contribution of gating vs filtering (Fig-8 setting)\n\n"
        + render_table(
            ["variant", "accepted", "mean |err| (ms)", "max (ms)", "rejected"],
            rows,
        )
    )

    neither = means["neither (plain SNTP cadence)"]
    gate = means["gate only"]
    filt = means["filter only"]
    both = means["gate + filter (full MNTP)"]
    # Each mechanism alone improves on neither; together they are best
    # (or at least as good as the better single mechanism).
    assert gate < neither
    assert filt < neither
    assert both <= 1.2 * min(gate, filt)
    assert both < neither / 3

"""Figure 6 — SNTP vs MNTP offsets, wireless, NTP correction on.

The §5.1 head-to-head: both protocols poll every 5 s for one hour on
the same ntpd-disciplined clock behind the degraded wireless hop; MNTP
runs with drift/clock correction off (measurement-only).  Paper: SNTP
up to 292 ms; MNTP max 23 ms — a 12-fold improvement; all outliers are
rejected by the filter.
"""

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario

SEED = 1


def bench_fig6_mntp_vs_sntp_corrected(once, report):
    def run():
        return run_scenario("mntp_wireless_corrected", seed=SEED)

    result = once(run)
    sntp = result.sntp_error_stats()
    mntp = result.mntp_error_stats()
    rejected = result.mntp_rejected()

    report(
        "FIGURE 6 — SNTP vs MNTP on wireless with NTP clock correction\n\n"
        + render_table(
            ["series", "n", "mean |err| (ms)", "std (ms)", "max (ms)"],
            [
                ["SNTP", sntp.count, f"{sntp.mean_abs * 1000:.1f}",
                 f"{sntp.std_abs * 1000:.1f}", f"{sntp.max_abs * 1000:.1f}"],
                ["MNTP (accepted)", mntp.count, f"{mntp.mean_abs * 1000:.1f}",
                 f"{mntp.std_abs * 1000:.1f}", f"{mntp.max_abs * 1000:.1f}"],
                ["MNTP (rejected)", len(rejected), "-", "-",
                 f"{max((abs(p.offset) for p in rejected), default=0) * 1000:.1f}"],
            ],
        )
        + f"\n\nimprovement factor: {result.improvement_factor():.1f}x "
        "(paper: 12x)\n\n"
        + render_series([p.error for p in result.sntp], label="SNTP error")
        + "\n"
        + render_series([p.error for p in result.mntp_accepted()],
                        label="MNTP error")
    )

    assert result.improvement_factor() > 5.0
    assert mntp.mean_abs < 0.010
    assert sntp.max_abs > 0.2
    assert rejected  # the filter discarded outliers
    # Rejected offsets are the large ones (mean rejected >> mean accepted).
    mean_rejected = sum(abs(p.offset) for p in rejected) / len(rejected)
    assert mean_rejected > 3 * result.mntp_stats().mean_abs

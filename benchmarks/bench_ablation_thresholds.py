"""Ablation A3 — sensitivity to the hint-gate thresholds.

The paper's -75/-70/20 dB thresholds "emerged through an iterative
process"; this ablation sweeps the SNR-margin gate from permissive to
strict in the Figure-6 setting and reports the accuracy/requests
trade-off (stricter gate -> fewer but cleaner samples).
"""

from repro.core.config import HintThresholds, MntpConfig
from repro.reporting import render_table
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

SEED = 1

#: (label, min_rssi, max_noise, min_snr_margin)
SWEEP = (
    ("no gate", -1000.0, 1000.0, -1000.0),
    ("permissive (10 dB)", -85.0, -60.0, 10.0),
    ("paper (-75/-70/20 dB)", -75.0, -70.0, 20.0),
    ("strict (28 dB)", -70.0, -75.0, 28.0),
)


def _run(thresholds):
    config = MntpConfig.baseline_headtohead().with_overrides(
        thresholds=thresholds
    )
    runner = ExperimentRunner(
        seed=SEED,
        options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=3600.0,
        run_sntp=False,
        mntp_config=config,
    )
    result = runner.run()
    deferrals = runner.mntp.deferral_count
    return result, deferrals


def bench_ablation_thresholds(once, report):
    def run():
        return {
            label: _run(HintThresholds(
                min_rssi_dbm=rssi, max_noise_dbm=noise, min_snr_margin_db=snr,
            ))
            for label, rssi, noise, snr in SWEEP
        }

    results = once(run)

    rows = []
    stats = {}
    for label, _, _, _ in SWEEP:
        result, deferrals = results[label]
        err = result.mntp_error_stats()
        stats[label] = (err, deferrals)
        rows.append([
            label, err.count, deferrals,
            f"{err.mean_abs * 1000:.2f}", f"{err.max_abs * 1000:.1f}",
        ])
    report(
        "ABLATION A3 — hint threshold sensitivity (Fig-6 setting)\n\n"
        + render_table(
            ["gate", "accepted", "deferrals", "mean |err| (ms)", "max (ms)"],
            rows,
        )
    )

    no_gate_err, no_gate_defer = stats["no gate"]
    paper_err, paper_defer = stats["paper (-75/-70/20 dB)"]
    strict_err, strict_defer = stats["strict (28 dB)"]
    # The gate actually fires, increasingly with strictness.
    assert no_gate_defer == 0
    assert 0 < paper_defer < strict_defer
    # Stricter gates yield fewer samples.
    assert strict_err.count < no_gate_err.count
    # The paper's gate does not hurt accuracy relative to no gate.
    assert paper_err.mean_abs <= no_gate_err.mean_abs * 1.5

"""Figure 8 — SNTP vs MNTP offsets, wireless, clock free-running.

As Figure 6 but with ntpd off, so the laptop clock drifts throughout.
MNTP's accepted offsets legitimately track the drift trend line; the
paper reports SNTP up to 450 ms while MNTP stays "on average within
4.5 ms of the reference clock" (17x more accurate).
"""

from repro.reporting import render_series, render_table
from repro.testbed import run_scenario

SEED = 2


def bench_fig8_mntp_vs_sntp_uncorrected(once, report):
    def run():
        return run_scenario("mntp_wireless_uncorrected", seed=SEED)

    result = once(run)
    sntp = result.sntp_error_stats()
    mntp = result.mntp_error_stats()
    residuals = result.mntp_corrected_drift()
    resid_abs = [abs(p.offset) for p in residuals]

    report(
        "FIGURE 8 — SNTP vs MNTP on wireless without NTP clock correction\n\n"
        + render_table(
            ["series", "n", "mean |err| (ms)", "max (ms)"],
            [
                ["SNTP error vs truth", sntp.count,
                 f"{sntp.mean_abs * 1000:.1f}", f"{sntp.max_abs * 1000:.1f}"],
                ["MNTP error vs truth", mntp.count,
                 f"{mntp.mean_abs * 1000:.1f}", f"{mntp.max_abs * 1000:.1f}"],
                ["MNTP residual vs trend line", len(residuals),
                 f"{sum(resid_abs) / max(1, len(resid_abs)) * 1000:.1f}",
                 f"{max(resid_abs, default=0) * 1000:.1f}"],
            ],
        )
        + f"\n\nimprovement factor: {result.improvement_factor():.1f}x "
        "(paper: 17x; paper's 'within 4.5 ms of the reference' is the "
        "trend-line residual row)\n\n"
        + render_series([p.error for p in result.sntp], label="SNTP error")
        + "\n"
        + render_series([p.offset for p in result.mntp_accepted()],
                        label="MNTP offsets (track drift)")
    )

    assert result.improvement_factor() > 5.0
    assert sntp.max_abs > 0.2
    # Accepted offsets hug the drift trend (small residuals).
    mean_resid = sum(resid_abs) / len(resid_abs)
    assert mean_resid < 0.010
    assert mntp.mean_abs < 0.015

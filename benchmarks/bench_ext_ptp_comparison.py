"""Extension E5 — PTP vs SNTP across wired and wireless hops.

§2 names PTP as the third protocol variant.  PTP's LAN-grade accuracy
comes from hardware timestamping, which removes endpoint jitter but not
*path asymmetry* — so over the paper's bursty wireless hop PTP degrades
into the same error class as SNTP, reinforcing the case that mobile
time sync needs channel awareness (MNTP) rather than a heavier wire
protocol.
"""

import numpy as np

from repro.net.link import Link
from repro.net.message import Datagram
from repro.net.path import PathModel
from repro.ntp.server import NtpServer, ServerConfig
from repro.ntp.sntp_client import SntpClient
from repro.ptp import PtpMaster, PtpSlave
from repro.reporting import render_table
from repro.simcore import Simulator
from repro.wireless.channel import ChannelParams, WirelessChannel
from repro.wireless.crosstraffic import CrossTrafficGenerator
from repro.wireless.effects import ChannelEffects
from tests.ntp.helpers import perfect_clock

SEED = 3
DURATION = 1800.0
CADENCE = 5.0


def _run_condition(wireless: bool):
    """Run PTP and SNTP side by side over one hop condition."""
    sim = Simulator(seed=SEED)
    if wireless:
        channel = WirelessChannel(ChannelParams(), sim.rng.stream("ch"),
                                  now_fn=lambda: sim.now)
        xt = CrossTrafficGenerator(sim)
        xt.start()
        effects = ChannelEffects(channel, sim.rng.stream("fx"), cross_traffic=xt)
        hook = effects.as_hook()
    else:
        hook = None

    master_clock = perfect_clock(sim, stream="master")
    slave_clock = perfect_clock(sim, offset=0.0, stream="slave")

    # PTP pair.
    slave = PtpSlave(sim, slave_clock, send=lambda d: None)
    master = PtpMaster(sim, master_clock, send=lambda d: None,
                       sync_interval=CADENCE)
    down = Link(sim, PathModel(sim.rng.stream("pd"), base_delay=0.004,
                               queue_mean=0.001), receive=slave.on_datagram,
                effect_hook=hook)
    up = Link(sim, PathModel(sim.rng.stream("pu"), base_delay=0.004,
                             queue_mean=0.001), receive=master.on_datagram,
              effect_hook=hook)
    master._send = down.send
    slave._send = up.send

    # SNTP pair over an identical hop.
    server = NtpServer(sim, master_clock, ServerConfig(name="srv",
                                                       processing_delay=1e-6))
    sntp_offsets = []
    client = SntpClient(sim, slave_clock, send=lambda d: None, name="cli")
    s_down = Link(sim, PathModel(sim.rng.stream("sd"), base_delay=0.004,
                                 queue_mean=0.001), receive=client.on_datagram,
                  effect_hook=hook)
    s_up = Link(sim, PathModel(sim.rng.stream("su"), base_delay=0.004,
                               queue_mean=0.001), receive=server.on_datagram,
                effect_hook=hook)
    server.send_reply = s_down.send
    client._send = s_up.send

    def poll():
        if sim.now >= DURATION:
            return
        client.query("srv", lambda r: (
            sntp_offsets.append(r.sample.offset) if r.ok else None
        ))
        sim.call_after(CADENCE, poll)

    master.start()
    sim.call_after(0.0, poll)
    sim.run_until(DURATION)

    ptp_err = np.abs([s.offset for s in slave.samples])
    sntp_err = np.abs(sntp_offsets)
    return ptp_err, sntp_err


def bench_ext_ptp_comparison(once, report):
    def run():
        return {
            "wired": _run_condition(wireless=False),
            "wireless": _run_condition(wireless=True),
        }

    results = once(run)

    rows = []
    for condition, (ptp, sntp) in results.items():
        rows.append([f"PTP / {condition}", len(ptp),
                     f"{ptp.mean() * 1000:.2f}", f"{ptp.max() * 1000:.1f}"])
        rows.append([f"SNTP / {condition}", len(sntp),
                     f"{sntp.mean() * 1000:.2f}", f"{sntp.max() * 1000:.1f}"])
    report(
        "EXTENSION E5 — PTP vs SNTP, wired vs degraded wireless hop\n\n"
        + render_table(
            ["protocol / hop", "samples", "mean |err| (ms)", "max (ms)"],
            rows,
        )
        + "\n\nhardware timestamps cannot remove path asymmetry: over the "
        "wireless hop PTP lands in SNTP's error class"
    )

    ptp_wired, sntp_wired = results["wired"]
    ptp_wifi, sntp_wifi = results["wireless"]
    # Clean hop: both are sub-ms-to-ms class; PTP at least as good.
    assert ptp_wired.mean() <= sntp_wired.mean() * 1.5
    assert ptp_wired.mean() < 0.002
    # Degraded hop: both blow up by an order of magnitude or more.
    assert ptp_wifi.mean() > 5 * ptp_wired.mean()
    assert sntp_wifi.mean() > 5 * sntp_wired.mean()
    # And PTP is no cure: same error class as SNTP on wireless.
    assert ptp_wifi.mean() > sntp_wifi.mean() / 5

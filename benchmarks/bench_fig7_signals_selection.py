"""Figure 7 — signals and selection plot.

For the Figure-6 run, reproduces the wireless hints (RSSI, noise, SNR
margin) alongside MNTP's decisions: deferrals (gate), acceptances, and
rejections, with the failing threshold attributed to each deferral.
"""

from collections import Counter

from repro.core.config import MntpConfig
from repro.reporting import render_series, render_table
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

SEED = 1


def bench_fig7_signals_selection(once, report, throughput):
    def run():
        runner = ExperimentRunner(
            seed=SEED,
            options=TestbedOptions(wireless=True, ntp_correction=True),
            duration=3600.0,
            mntp_config=MntpConfig.baseline_headtohead(),
        )
        result = runner.run()
        return runner, result

    runner, result = once(run)
    trace = runner.sim.trace
    # Exchange count from the protocol's own counters: every decision
    # instant is one exchange attempt (deferrals included — the gate
    # check is the per-cadence unit of work).
    metrics = runner.sim.telemetry.metrics
    throughput(
        exchanges=sum(
            metrics.value(name, 0.0)
            for name in ("mntp_deferred_total", "mntp_query_sent_total")
        ),
        simulated_s=3600.0,
        telemetry=result.telemetry,
    )

    # Filtered iteration over the shared log (one pass per kind, lazy).
    deferred = list(trace.by_kind("deferred", component="mntp"))
    accepted = list(trace.by_kind("offset_accepted", component="mntp"))
    rejected = list(trace.by_kind("offset_rejected", component="mntp"))
    failing = Counter()
    for record in deferred:
        for reason in record.data["failing"]:
            failing[reason] += 1

    rssi = [r.data["rssi"] for r in deferred]
    snr = [r.data["snr_margin"] for r in deferred]

    # Sample the channel's hint trajectory at the deferral instants plus
    # accepted instants for the signal panels.
    report(
        "FIGURE 7 — signals and selection\n\n"
        + render_table(
            ["decision", "count"],
            [
                ["requests deferred (gate)", len(deferred)],
                ["offsets accepted", len(accepted)],
                ["offsets rejected (filter)", len(rejected)],
            ],
        )
        + "\n\nthreshold attribution of deferrals: "
        + ", ".join(f"{k}={v}" for k, v in failing.most_common())
        + "\n\n"
        + render_series(rssi, label="RSSI at deferrals (|dBm|)", unit_scale=1.0,
                        unit="dB")
        + "\n"
        + render_series(snr, label="SNR margin at deferrals", unit_scale=1.0,
                        unit="dB")
    )

    assert deferred, "the gate must fire under the degraded channel"
    assert accepted and rejected
    # Window slicing partitions the run without re-scanning everything.
    first_half = sum(1 for r in trace.window(0.0, 1800.0)
                     if r.component == "mntp" and r.kind == "deferred")
    second_half = sum(1 for r in trace.window(1800.0, 3600.0 + 1.0)
                      if r.component == "mntp" and r.kind == "deferred")
    assert first_half + second_half == len(deferred)
    # Every deferral names at least one violated threshold.
    assert all(r.data["failing"] for r in deferred)
    # Deferral instants really had unfavorable hints.
    from repro.core.config import HintThresholds
    from repro.core.thresholds import favorable_snr_condition
    from repro.wireless.hints import WirelessHints

    thresholds = HintThresholds()
    for record in deferred[:200]:
        hints = WirelessHints(rssi_dbm=record.data["rssi"],
                              noise_dbm=record.data["noise"])
        assert not favorable_snr_condition(hints, thresholds)

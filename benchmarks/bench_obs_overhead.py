"""Telemetry overhead — instrumented vs bare, same scenario and seed.

Runs the profile smoke scenario (wireless + MNTP: event loop, channel
sampler, and both protocol stacks all hot) twice: once with the default
ring-buffered telemetry and once with instrumentation disabled
(``instrument=False`` — null metrics/spans/ring facades).  Reports the
wall-clock pair, the derived overhead ratio, and the ring's
self-metering counters (``obs_overhead_*``), so the cost of observing
the system is itself observed.

The strict overhead gate (instrumented ≤ 15% over bare, min-of-3)
lives in ``scripts/obs_overhead.py`` / ``scripts/check.sh``; the bench
only asserts a loose sanity bound so suite runs stay robust to
scheduler noise.
"""

import time

from repro.core.config import MntpConfig
from repro.reporting import render_table
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

SEED = 1
DURATION_S = 900.0

#: Loose sanity bound for the single-shot bench (the CI gate is 1.15
#: on a min-of-3; one cold pair can be noisier).
MAX_RATIO = 2.0


def _run(instrument):
    runner = ExperimentRunner(
        seed=SEED,
        options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=DURATION_S,
        mntp_config=MntpConfig.baseline_headtohead(),
        instrument=instrument,
    )
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def _work(result):
    """(samples, failures) — virtual work done, telemetry-independent."""
    return len(result.sntp), result.sntp_failures, len(result.mntp_reports)


def bench_obs_overhead(once, report, throughput):
    def run():
        bare = _run(instrument=False)
        inst = _run(instrument=True)
        return bare, inst

    (bare_runner, bare_result, bare_s), (inst_runner, inst_result, inst_s) \
        = once(run)
    exchanges = sum(
        len(r.sntp) + r.sntp_failures + len(r.mntp_reports)
        for r in (bare_result, inst_result)
    )
    throughput(exchanges=exchanges, simulated_s=2 * DURATION_S)

    metrics = inst_runner.sim.telemetry.metrics
    meter = {
        name: metrics.value(name, 0.0)
        for name in (
            "obs_overhead_records_total",
            "obs_overhead_flushes_total",
            "obs_overhead_sampled_out_total",
            "obs_overhead_metric_deltas_total",
        )
    }
    ratio = inst_s / bare_s if bare_s > 0 else float("inf")
    report(
        "TELEMETRY OVERHEAD — instrumented vs bare "
        f"({DURATION_S:g} virtual s, wireless + MNTP)\n\n"
        + render_table(
            ["variant", "wall (s)", "sntp", "failures", "mntp"],
            [
                ["bare (instrument=False)", f"{bare_s:.3f}",
                 *_work(bare_result)],
                ["instrumented (ring)", f"{inst_s:.3f}",
                 *_work(inst_result)],
            ],
        )
        + f"\n\noverhead ratio: {ratio:.2f}x\n"
        + "\n".join(f"{k} = {v:.0f}" for k, v in sorted(meter.items()))
    )

    # Same virtual work on both sides — instrumentation must never
    # change the simulation itself.
    assert _work(bare_result) == _work(inst_result)
    # The ring actually carried the run's telemetry...
    assert meter["obs_overhead_records_total"] > 0
    assert meter["obs_overhead_flushes_total"] > 0
    assert meter["obs_overhead_metric_deltas_total"] > 0
    # ...and its cost stays within the loose single-shot bound.
    assert ratio < MAX_RATIO, (
        f"instrumented run {ratio:.2f}x slower than bare "
        f"(bound {MAX_RATIO}x)"
    )

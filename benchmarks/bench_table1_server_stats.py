"""Table 1 — summary of client statistics seen in the NTP logs.

Regenerates the per-server client statistics from synthetic pcap traces
(subsampled populations; published counts shown beside generated).
"""

from repro.logs import LogStudy
from repro.logs.generator import GeneratorOptions
from repro.reporting import render_table

SEED = 11
#: Subsampling keeps the full 19-server study to a few seconds.
OPTIONS = GeneratorOptions(scale=1e-4, min_clients=40, max_clients=300,
                           max_requests_per_client=30)


def bench_table1_server_stats(once, report):
    def run():
        study = LogStudy(seed=SEED, options=OPTIONS)
        study.run()
        return study

    study = once(run)
    rows = study.table1()

    table = render_table(
        ["Server", "Stratum", "IP", "Published clients", "Published meas",
         "Gen clients", "Gen meas", "Synced", "SNTP clients", "NTP clients"],
        [
            [r.server_id, r.stratum, r.ip_versions,
             f"{r.published_clients:,}", f"{r.published_measurements:,}",
             r.generated_clients, r.generated_measurements,
             r.synchronized_clients, r.sntp_clients, r.ntp_clients]
            for r in rows
        ],
    )
    report("TABLE 1 — per-server client statistics (generated vs published)\n"
           + table)

    assert len(rows) == 19
    total_published = sum(r.published_measurements for r in rows)
    assert total_published == 209_447_922
    for r in rows:
        assert r.generated_clients > 0
        assert r.generated_measurements >= r.generated_clients
        assert 0 < r.synchronized_clients <= r.generated_clients
    # ISP-specific servers are NTP-dominated; public ones SNTP-dominated.
    by_id = {r.server_id: r for r in rows}
    assert by_id["CI1"].sntp_share < 0.3
    assert by_id["AG1"].sntp_share > 0.5

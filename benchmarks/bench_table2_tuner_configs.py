"""Table 2 — MNTP tuner: parameters, RMSE, and request counts.

Logs a 4-hour trace on the testbed and replays the paper's six sample
configurations through the emulator.  Paper shape: RMSE decreases as
the request count grows (13.08 ms @ 239 requests down to 8.9 ms @ 2913
requests) and "MNTP performs well with only modest tuning".
"""

import os

import numpy as np

from repro.core.config import TABLE2_CONFIGS
from repro.obs import Telemetry
from repro.reporting import render_table
from repro.tuner import LoggerOptions, ParameterSearcher, TraceLogger

SEED = 5

#: Published Table 2 rows: config -> (RMSE ms, requests).
PAPER_TABLE2 = {
    1: (13.08, 239),
    2: (11.66, 316),
    3: (11.09, 387),
    4: (10.86, 534),
    5: (9.27, 1210),
    6: (8.90, 2913),
}


def bench_table2_tuner_configs(once, report, throughput):
    # The emulator replay is not a simulator run; a standalone bundle
    # gives the triage path a snapshot only when capture is armed.
    telemetry = (
        Telemetry.standalone()
        if os.environ.get("REPRO_BENCH_TELEMETRY") else None
    )

    def run():
        trace = TraceLogger(seed=SEED, options=LoggerOptions()).run()
        searcher = ParameterSearcher(trace, telemetry=telemetry)
        return {
            num: searcher.evaluate(config)
            for num, config in TABLE2_CONFIGS.items()
        }

    results = once(run)
    # Each config replays the 4-hour logged trace through the emulator;
    # its request count is the exchanges that replay performed.
    throughput(
        exchanges=sum(r.requests for r in results.values()),
        simulated_s=len(results) * 4 * 3600.0,
        telemetry=telemetry.snapshot() if telemetry is not None else None,
    )

    rows = []
    for num, result in results.items():
        wp, ww, rw, rp, rmse_ms, requests = result.row()
        paper_rmse, paper_requests = PAPER_TABLE2[num]
        rows.append([
            num, f"{wp:.0f}", f"{ww:.3f}", f"{rw:.0f}", f"{rp:.0f}",
            f"{rmse_ms:.2f}", requests, f"{paper_rmse:.2f}", paper_requests,
        ])
    report(
        "TABLE 2 — tuner configurations (measured vs paper)\n\n"
        + render_table(
            ["config", "warmup (min)", "warmup wait (min)",
             "regular wait (min)", "reset (min)", "RMSE (ms)", "requests",
             "paper RMSE", "paper reqs"],
            rows,
        )
    )

    rmses = {num: r.rmse_ms for num, r in results.items()}
    requests = {num: r.requests for num, r in results.items()}
    # Request counts grow monotonically with sampling density, matching
    # the published ordering.
    assert requests[1] < requests[2] < requests[3] < requests[4]
    assert requests[4] < requests[5] < requests[6]
    # Everything stays in the low-millisecond regime — the paper's
    # "MNTP performs well with only modest tuning".
    assert all(r < 15.0 for r in rmses.values())
    # Deviation note (recorded in EXPERIMENTS.md): the paper's strict
    # densest-is-best RMSE ordering does not reproduce here because our
    # residual error is dominated by channel measurement noise rather
    # than drift-estimation error (their laptop clock's skew was
    # non-linear; our simulated oscillator is nearly linear over 4 h).
    # All configurations remain within the same low-ms regime.
    assert max(rmses.values()) < 4 * min(rmses.values())

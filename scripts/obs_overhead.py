#!/usr/bin/env python3
"""Telemetry overhead gate: instrumented ≤ 15% over bare.

Runs the profile smoke scenario (wireless + MNTP, 900 virtual seconds)
with telemetry fully enabled (ring-buffered emission, metrics, spans,
and the streaming run-health monitor evaluating the default SLO spec)
and with ``instrument=False`` (null facades), five interleaved pairs,
and gates the **median of the per-pair ratios**.  Each bare run is
immediately followed by its instrumented partner, so both sides of a
pair see the same thermal/scheduler conditions; the median across
pairs then discards the pairs where a noise burst hit one side only —
markedly more stable than comparing min-of-N wall times on shared or
frequency-scaled machines (the min estimator fails whenever one
variant happens to draw all its runs from a disturbed interval)::

    python scripts/obs_overhead.py                 # gate at 1.15
    python scripts/obs_overhead.py --ratio 1.25 --repeats 7

Both variants must do identical virtual work (same SNTP sample count,
failures, and MNTP reports); a mismatch means instrumentation perturbed
the simulation and is an immediate failure regardless of timing.

Exit codes: 0 within budget, 1 over budget or work mismatch, 2 usage.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SEED = 1
DURATION_S = 900.0
DEFAULT_RATIO = 1.15
DEFAULT_REPEATS = 5


def _run_once(instrument: bool) -> Tuple[Tuple[int, int, int], float]:
    """((work triple), wall seconds) for one scenario run.

    The instrumented leg also attaches the streaming health monitor
    (default :class:`~repro.obs.health.SloSpec`), so the budget covers
    the full observability stack, SLO evaluation included.
    """
    from repro.core.config import MntpConfig
    from repro.obs.health import SloSpec
    from repro.testbed.experiment import ExperimentRunner
    from repro.testbed.nodes import TestbedOptions

    runner = ExperimentRunner(
        seed=SEED,
        options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=DURATION_S,
        mntp_config=MntpConfig.baseline_headtohead(),
        instrument=instrument,
        health_spec=SloSpec() if instrument else None,
    )
    start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - start
    work = (len(result.sntp), result.sntp_failures, len(result.mntp_reports))
    return work, wall


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ratio", type=float, default=DEFAULT_RATIO,
                        help="maximum instrumented/bare wall-time ratio "
                        f"(default {DEFAULT_RATIO})")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="interleaved bare/instrumented pairs; the "
                        "median per-pair ratio is gated "
                        f"(default {DEFAULT_REPEATS})")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parse_args(argv)
    if args.repeats < 1 or args.ratio <= 0:
        print("--repeats must be >= 1 and --ratio > 0", file=sys.stderr)
        return 2

    bare_times: List[float] = []
    inst_times: List[float] = []
    bare_work = inst_work = None
    for _ in range(args.repeats):
        # Interleaved pairs so thermal / frequency drift hits both
        # variants; each pair's ratio is one sample for the median.
        bare_work, wall = _run_once(instrument=False)
        bare_times.append(wall)
        inst_work, wall = _run_once(instrument=True)
        inst_times.append(wall)

    if bare_work != inst_work:
        print(f"FAIL work mismatch: bare {bare_work} vs instrumented "
              f"{inst_work} — telemetry perturbed the simulation",
              file=sys.stderr)
        return 1

    ratios = [
        inst / bare if bare > 0 else float("inf")
        for bare, inst in zip(bare_times, inst_times)
    ]
    ratio = statistics.median(ratios)
    print(f"bare          min {min(bare_times):.4f}s  "
          f"(runs: {', '.join(f'{t:.4f}' for t in bare_times)})")
    print(f"instrumented  min {min(inst_times):.4f}s  "
          f"(runs: {', '.join(f'{t:.4f}' for t in inst_times)})")
    print(f"pair ratios   {', '.join(f'{r:.3f}' for r in ratios)}")
    print(f"overhead ratio {ratio:.3f} median of {len(ratios)} pairs "
          f"(budget {args.ratio})")
    if ratio > args.ratio:
        print(f"FAIL telemetry overhead {ratio:.3f} exceeds budget "
              f"{args.ratio}", file=sys.stderr)
        return 1
    print("telemetry overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())

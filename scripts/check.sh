#!/usr/bin/env bash
# One-shot verification gate: domain static analysis, ruff, mypy, and
# the tier-1 test suite.  Intended for CI and as a pre-push check.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # skip the test suite
#
# ruff/mypy are optional extras (pip install -e ".[lint]"); when they
# are not installed the corresponding step is skipped with a notice so
# the gate still works in minimal environments.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro-mntp lint (domain static analysis, src)"
# Warm runs hit the content-hash cache (.repro-lint-cache.json) and
# skip re-parsing unchanged files entirely.
python -m repro.analysis src

echo "== repro-mntp lint (determinism rules, tests)"
python -m repro.analysis tests --select DET001,DET002,DET003,DET004 --no-baseline

echo "== repro-mntp lint (hot-path perf + parallel readiness, src)"
# The tentpole gate: no unbaselined per-iteration cost in the sim hot
# closure, no shared mutable state that would break a shard split, and
# no telemetry emission bypassing the ring-buffer sink in hot code.
python -m repro.analysis src \
    --select PERF001,PERF002,PERF003,PERF004,CONC001,CONC002,CONC003,OBS003 \
    --no-baseline

echo "== repro-mntp lint (CFG dataflow: resource typestate + precision, src + tests)"
# Phase 1.5 gate: no span/telemetry/file handle leaked on any path,
# no _ns/_us precision lost to float windows, 16.16 truncation,
# era-unsafe NTP compares, or collapsing division chains.  Runs with
# --jobs/--stats so per-phase timing lands in CI logs.
python -m repro.analysis src tests \
    --select RES001,RES002,RES003,PREC001,PREC002,PREC003,PREC004 \
    --no-baseline --jobs 4 --stats

if python -m ruff --version >/dev/null 2>&1; then
    echo "== ruff"
    python -m ruff check src tests
else
    echo "== ruff: skipped (not installed; pip install -e '.[lint]')"
fi

if python -m mypy --version >/dev/null 2>&1; then
    echo "== mypy"
    python -m mypy
else
    echo "== mypy: skipped (not installed; pip install -e '.[lint]')"
fi

if [[ "${1:-}" != "--fast" ]]; then
    echo "== pytest (tier-1)"
    python -m pytest -x -q

    echo "== bench harness (smoke)"
    # Appends a run to the BENCH_obs.json trajectory; fails if the
    # timing document cannot be produced, any smoke bench regresses
    # >25% against benchmarks/bench-baseline.json, or a bench's
    # exchanges/sec falls below the same-mode trajectory median.  On a
    # tripped throughput gate the harness auto-diffs the run's archived
    # telemetry against the trajectory's median baseline run and prints
    # ranked triage suspects before the REGRESSION lines.
    python scripts/bench.py --smoke

    echo "== run-health SLO gate (smoke)"
    # Runs the chaos smoke scenario under the streaming HealthMonitor
    # (smoke SloSpec) and fails unless the seeded fault episode lands
    # on a degraded/violated -> recovered cycle with every violation
    # inside a fault window; see docs/OBSERVABILITY.md "Health & SLOs".
    python -m repro.cli health --smoke > /dev/null

    echo "== telemetry overhead gate (instrumented <= 15% over bare)"
    # Median per-pair ratio over five interleaved instrumented/bare
    # runs of the smoke scenario (health monitor attached); fails if
    # the full telemetry stack costs more than 15%.
    python scripts/obs_overhead.py

    echo "== scenario matrix gate (smoke tier)"
    # Runs the smoke-tagged specs under scenarios/ through the
    # fault-tolerant matrix runner (chaos smoke matrix + wired
    # baseline), judges each against its embedded SloSpec guarantees,
    # and appends a "mode": "matrix" timing run (wall time, specs/min)
    # to the BENCH_obs.json trajectory.  Exit 1 on any hard-failed
    # spec; see docs/SCENARIOS.md.
    python scripts/bench.py --matrix scenarios

    echo "== profile harness (smoke)"
    # Writes benchmarks/profile-smoke.json (git-ignored) and appends a
    # profile run to the BENCH_obs.json trajectory.
    python -m repro.cli profile --smoke

    echo "== lint --profile (hot-path report ranked by measured cost)"
    python -m repro.analysis src --profile benchmarks/profile-smoke.json \
        --hot-report
fi

echo "== all checks passed"

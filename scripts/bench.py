#!/usr/bin/env python3
"""Bench-trajectory harness.

Runs the ``benchmarks/`` suite with the ``REPRO_BENCH_OBS`` timing hook
armed (see ``benchmarks/conftest.py``), appends the per-module
wall-clock totals as a new run to the cumulative ``BENCH_obs.json``
trajectory at the repo root, and compares the fresh run against the
recorded baseline (``benchmarks/bench-baseline.json``)::

    python scripts/bench.py                  # full suite
    python scripts/bench.py --smoke          # fast subset (CI gate)
    python scripts/bench.py --matrix scenarios   # smoke matrix timing
    python scripts/bench.py --update-baseline

``--matrix DIR`` times the scenario-matrix smoke tier instead of the
pytest benches: the smoke-tagged specs under ``DIR`` run through
``repro.testbed.run_matrix`` and the wall time plus throughput
(``specs_per_min``) land in the trajectory as a ``"mode": "matrix"``
run, so matrix cost is tracked across commits alongside the bench
suite.  The exit code follows the matrix verdict — any hard-failed
spec is exit 1.

``BENCH_obs.json`` keeps the trailing history (run number, mode,
per-bench seconds, per-run ``wall_seconds``) so performance can be
tracked across commits instead of only gated against the latest
baseline; every append prunes the trajectory to the last
``TRAJECTORY_KEEP_PER_MODE`` runs of each mode (run numbers stay
monotonic), which also migrates unbounded pre-existing files.  A
pre-trajectory single-run document is migrated in place as run 1, and
runs recorded under the old schema (``total_seconds`` on every run,
including profile-mode runs whose wall time is not a suite total) are
migrated to the ``wall_seconds`` schema on append.

Benches that call the ``throughput`` fixture additionally record how
much simulated work the measured seconds bought — protocol exchanges
and simulated virtual time — and the trajectory stores the derived
rates (``exchanges_per_s``, ``sim_hours_per_s``).  Those rates are
gated against the trajectory itself: the median of the last runs *of
the same mode* (smoke compares against smoke only — full-suite and
profile runs never contaminate the baseline).  The comparison happens
in the seconds domain (``exchanges / median_rate`` is the time this
run's work should have taken) so the same tolerance + floor semantics
as the baseline gate apply.

Exit codes: 0 all benches within tolerance, 1 a bench regressed or the
timing document could not be produced, 2 usage errors.

A bench "regresses" when its wall time exceeds
``baseline * (1 + tolerance) + floor``; the absolute floor absorbs
scheduler noise on very fast benches so sub-second jitter does not turn
into false alarms across machines.

Benches that hand their telemetry snapshots to the ``throughput``
fixture get automatic triage: each run's merged per-bench snapshot is
archived under ``benchmarks/telemetry/`` (last few runs per mode), and
when a throughput gate trips, the failing run is diffed against the
trajectory's median baseline run (``repro.obs.diff``) and the ranked
suspect components are printed next to the REGRESSION verdict.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.profile import migrate_trajectory_runs  # noqa: E402
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_OUT = REPO_ROOT / "BENCH_obs.json"
DEFAULT_BASELINE = BENCH_DIR / "bench-baseline.json"
TELEMETRY_DIR = BENCH_DIR / "telemetry"
BENCH_FORMAT = "mntp-bench-v1"
TRAJECTORY_FORMAT = "mntp-bench-trajectory-v1"

#: Trajectory runs retained per mode; appending prunes older ones.
TRAJECTORY_KEEP_PER_MODE = 25

#: The fast subset exercised by ``--smoke`` (seconds each, not minutes).
SMOKE_BENCHES = (
    "bench_fig4_sntp_wired_wireless.py",
    "bench_fig7_signals_selection.py",
    "bench_table2_tuner_configs.py",
)


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run only the fast smoke subset")
    parser.add_argument("--matrix", type=Path, default=None, metavar="DIR",
                        help="time the smoke-tagged scenario matrix under "
                        "DIR instead of the bench suite")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="cumulative trajectory to append to "
                        "(BENCH_obs.json)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="recorded baseline to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25)")
    parser.add_argument("--floor", type=float, default=0.25,
                        help="absolute slack in seconds (default 0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record the measured times as the new baseline")
    return parser.parse_args(argv)


def _run_pytest(
    targets: List[str], out: Path, telemetry_dir: Optional[Path] = None
) -> int:
    """Run the bench suite with the timing hook armed."""
    env = dict(os.environ)
    env["REPRO_BENCH_OBS"] = str(out)
    if telemetry_dir is not None:
        env["REPRO_BENCH_TELEMETRY"] = str(telemetry_dir)
    env["PYTHONPATH"] = (
        f"{REPO_ROOT / 'src'}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(REPO_ROOT / "src")
    )
    cmd = [sys.executable, "-m", "pytest", "-q", *targets]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    return proc.returncode


def _load_document(
    path: Path,
) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
    """(bench seconds, bench throughput inputs) from a run document."""
    with open(path) as f:
        document = json.load(f)
    if document.get("format") != BENCH_FORMAT:
        raise ValueError(f"{path} is not a {BENCH_FORMAT} document")
    benches = {str(k): float(v) for k, v in document["benches"].items()}
    throughput = {
        str(k): {
            "exchanges": float(v["exchanges"]),
            "simulated_s": float(v["simulated_s"]),
        }
        for k, v in document.get("throughput", {}).items()
    }
    return benches, throughput


def _throughput_entry(
    seconds: float, exchanges: float, simulated_s: float
) -> Dict[str, float]:
    """Denominate one bench's measured seconds in simulated work."""
    rate = exchanges / seconds if seconds > 0 else 0.0
    sim_hours = simulated_s / 3600.0
    return {
        "exchanges": exchanges,
        "simulated_s": simulated_s,
        "exchanges_per_s": round(rate, 3),
        "sim_hours_per_s": round(
            sim_hours / seconds if seconds > 0 else 0.0, 3
        ),
    }


def _prune_runs(
    runs: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Keep the newest TRAJECTORY_KEEP_PER_MODE runs of each mode."""
    keep: set = set()
    counts: Dict[str, int] = {}
    for index in range(len(runs) - 1, -1, -1):
        mode = str(runs[index].get("mode", "unknown"))
        if counts.get(mode, 0) < TRAJECTORY_KEEP_PER_MODE:
            counts[mode] = counts.get(mode, 0) + 1
            keep.add(index)
    return [run for index, run in enumerate(runs) if index in keep]


def _append_trajectory(
    path: Path,
    measured: Dict[str, float],
    throughput: Dict[str, Dict[str, float]],
    mode: str,
    extra: Optional[Dict[str, object]] = None,
) -> Tuple[int, List[Dict[str, object]]]:
    """Append one run to the cumulative trajectory.

    Returns ``(run number, prior runs)`` — the priors feed the
    throughput gate.  An existing pre-trajectory (single-run
    ``mntp-bench-v1``) document at ``path`` is migrated in place as
    run 1, and old-schema runs gain ``wall_seconds`` (profile runs
    drop their misleading ``total_seconds``) via
    :func:`repro.analysis.profile.migrate_trajectory_runs`.  The
    stored trajectory is pruned to the last
    :data:`TRAJECTORY_KEEP_PER_MODE` runs per mode (run numbers keep
    counting up), which caps unbounded pre-existing files too.
    ``extra`` keys merge into the run entry verbatim — the matrix mode
    uses it to record spec counts and throughput next to the timing.
    """
    runs: List[Dict[str, object]] = []
    if path.exists():
        try:
            with open(path) as f:
                existing = json.load(f)
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            if existing.get("format") == TRAJECTORY_FORMAT:
                runs = list(existing.get("runs", []))
            elif existing.get("format") == BENCH_FORMAT:
                benches = {
                    str(k): float(v)
                    for k, v in existing.get("benches", {}).items()
                }
                runs = [{
                    "run": 1,
                    "mode": "unknown",
                    "benches": benches,
                    "total_seconds": round(sum(benches.values()), 3),
                }]
    runs = _prune_runs(migrate_trajectory_runs(runs))
    priors = list(runs)
    number = max(
        (int(run.get("run", 0)) for run in runs), default=0
    ) + 1
    total = round(sum(measured.values()), 3)
    entry: Dict[str, object] = {
        "run": number,
        "mode": mode,
        "benches": {k: round(v, 3) for k, v in sorted(measured.items())},
        "wall_seconds": total,
        "total_seconds": total,
    }
    if throughput:
        entry["throughput"] = {
            name: _throughput_entry(
                measured.get(name, 0.0),
                inputs["exchanges"], inputs["simulated_s"],
            )
            for name, inputs in sorted(throughput.items())
            if name in measured
        }
    if extra:
        entry.update(extra)
    runs.append(entry)
    runs = _prune_runs(runs)
    with open(path, "w") as f:
        json.dump(
            {"format": TRAJECTORY_FORMAT, "runs": runs},
            f, indent=2, sort_keys=True,
        )
        f.write("\n")
    return number, priors


#: Same-mode prior runs feeding each throughput baseline (median).
THROUGHPUT_WINDOW = 5

#: Archived per-bench telemetry snapshots kept per (mode, bench) —
#: enough to cover the whole throughput window plus the fresh run.
TELEMETRY_KEEP = THROUGHPUT_WINDOW + 1


def _telemetry_path(mode: str, number: int, bench: str) -> Path:
    """Archive location of one run's merged per-bench snapshot."""
    return TELEMETRY_DIR / f"{mode}-run-{number}-{bench}.json"


def _archived_run_number(path: Path, mode: str, bench: str) -> Optional[int]:
    """Run number encoded in an archived snapshot name, else None."""
    prefix, suffix = f"{mode}-run-", f"-{bench}.json"
    name = path.name
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    middle = name[len(prefix):len(name) - len(suffix)]
    try:
        return int(middle)
    except ValueError:
        return None


def _archive_telemetry(scratch: Path, number: int, mode: str) -> None:
    """Move this run's captured snapshots into benchmarks/telemetry/.

    The bench conftest writes one merged ``<bench>.json`` per module
    into the scratch directory; each is renamed to carry the run's
    mode and trajectory number, and older archives of the same
    (mode, bench) are pruned down to :data:`TELEMETRY_KEEP`.
    """
    if not scratch.is_dir():
        return
    for source in sorted(scratch.glob("*.json")):
        bench = source.stem
        TELEMETRY_DIR.mkdir(parents=True, exist_ok=True)
        source.replace(_telemetry_path(mode, number, bench))
        archived = sorted(
            (run, path)
            for path in TELEMETRY_DIR.glob(f"{mode}-run-*-{bench}.json")
            for run in [_archived_run_number(path, mode, bench)]
            if run is not None
        )
        for _run, path in archived[:-TELEMETRY_KEEP]:
            path.unlink(missing_ok=True)
    shutil.rmtree(scratch, ignore_errors=True)


def _median_baseline_run(
    priors: List[Dict[str, object]], name: str, mode: str
) -> Optional[int]:
    """Trajectory run number whose rate sits at the gate's median.

    Mirrors :func:`_compare_throughput`'s baseline selection — the
    same-mode runs in the trailing window that recorded a positive
    rate for ``name`` — and returns the run whose ``exchanges_per_s``
    is closest to their median (ties go to the most recent run), so
    the triage diff compares against a representative healthy run.
    """
    candidates = [
        (int(run.get("run", 0)),
         float(run["throughput"][name]["exchanges_per_s"]))
        for run in priors
        if run.get("mode") == mode
        and name in run.get("throughput", {})
        and float(run["throughput"][name].get("exchanges_per_s", 0)) > 0
    ][-THROUGHPUT_WINDOW:]
    if not candidates:
        return None
    median = statistics.median(rate for _number, rate in candidates)
    return min(
        candidates, key=lambda pair: (abs(pair[1] - median), -pair[0])
    )[0]


def _triage_failures(
    failures: List[str],
    priors: List[Dict[str, object]],
    number: int,
    mode: str,
    top: int = 5,
) -> None:
    """Diff each failing bench's run against its median baseline run.

    Failure strings lead with the bench name (``name: ...``); the
    corresponding archived snapshots — this run's and the median
    baseline run's — feed ``repro.obs.diff`` and the ranked suspect
    components print under a ``triage`` heading.  Benches without
    archived telemetry degrade to a one-line notice.
    """
    from repro.obs.diff import (
        coerce_snapshot, diff_snapshots, render_diff_text,
    )

    for failure in failures:
        name = failure.split(":", 1)[0]
        current = _telemetry_path(mode, number, name)
        baseline_number = _median_baseline_run(priors, name, mode)
        if baseline_number is None:
            print(f"triage {name}: no same-mode baseline run to diff")
            continue
        baseline = _telemetry_path(mode, baseline_number, name)
        missing = [p for p in (baseline, current) if not p.exists()]
        if missing:
            print(f"triage {name}: no archived telemetry to diff "
                  f"(missing {', '.join(p.name for p in missing)})")
            continue
        try:
            with open(baseline) as f:
                snap_a, samples_a = coerce_snapshot(json.load(f))
            with open(current) as f:
                snap_b, samples_b = coerce_snapshot(json.load(f))
            diff = diff_snapshots(
                snap_a, snap_b, samples_a=samples_a, samples_b=samples_b
            )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"triage {name}: cannot diff archived telemetry: {exc}")
            continue
        print(f"triage {name}: run {number} vs median baseline "
              f"run {baseline_number} ({baseline.name})")
        for line in render_diff_text(diff, top=top).splitlines():
            print(f"  {line}")


def _compare_throughput(
    priors: List[Dict[str, object]],
    measured: Dict[str, float],
    throughput: Dict[str, Dict[str, float]],
    mode: str,
    tolerance: float,
    floor: float,
) -> List[str]:
    """Throughput regression verdicts against same-mode trajectory runs.

    For each bench with recorded throughput, the baseline rate is the
    median ``exchanges_per_s`` over the last ``THROUGHPUT_WINDOW``
    prior runs of the *same mode* (smoke-vs-smoke only; full and
    profile runs never enter a smoke baseline).  The verdict happens
    in the seconds domain: this run's exchange count divided by the
    baseline rate is the time the work should have taken, and the
    usual ``* (1 + tolerance) + floor`` slack applies.
    """
    failures: List[str] = []
    for name, inputs in sorted(throughput.items()):
        seconds = measured.get(name)
        if seconds is None or seconds <= 0:
            continue
        rates = [
            float(run["throughput"][name]["exchanges_per_s"])
            for run in priors
            if run.get("mode") == mode
            and name in run.get("throughput", {})
            and float(run["throughput"][name].get("exchanges_per_s", 0)) > 0
        ][-THROUGHPUT_WINDOW:]
        rate = inputs["exchanges"] / seconds
        if not rates:
            print(f"  {name}: {rate:,.0f} exch/s "
                  "(no same-mode trajectory baseline — recorded new)")
            continue
        baseline_rate = statistics.median(rates)
        baseline_sec = inputs["exchanges"] / baseline_rate
        limit = baseline_sec * (1.0 + tolerance) + floor
        verdict = "ok" if seconds <= limit else "REGRESSED"
        print(f"  {name}: {rate:,.0f} exch/s vs median "
              f"{baseline_rate:,.0f} exch/s over {len(rates)} {mode} "
              f"run(s) (limit {limit:.2f}s for {inputs['exchanges']:,.0f} "
              f"exchanges) {verdict}")
        if seconds > limit:
            failures.append(
                f"{name}: {seconds:.2f}s for {inputs['exchanges']:,.0f} "
                f"exchanges exceeds {limit:.2f}s "
                f"({baseline_rate:,.0f} exch/s median of last "
                f"{len(rates)} {mode} runs, +{tolerance:.0%} +{floor}s)"
            )
    return failures


def _compare(
    measured: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float,
    floor: float,
) -> List[str]:
    """Human-readable regression verdicts; empty means all clear."""
    failures: List[str] = []
    for name, seconds in sorted(measured.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  {name}: {seconds:.2f}s (no baseline — recorded new)")
            continue
        limit = base * (1.0 + tolerance) + floor
        verdict = "ok" if seconds <= limit else "REGRESSED"
        print(f"  {name}: {seconds:.2f}s vs baseline {base:.2f}s "
              f"(limit {limit:.2f}s) {verdict}")
        if seconds > limit:
            failures.append(
                f"{name}: {seconds:.2f}s exceeds {limit:.2f}s "
                f"({base:.2f}s baseline, +{tolerance:.0%} +{floor}s)"
            )
    return failures


def _run_matrix_mode(args: argparse.Namespace) -> int:
    """Time the smoke-tier scenario matrix and append a trajectory run.

    Runs the smoke-tagged specs under ``--matrix DIR`` through the
    fault-tolerant matrix runner, records the wall time (and derived
    ``specs_per_min``) as a ``"mode": "matrix"`` trajectory run, and
    mirrors the matrix verdict in the exit code so the CI gate can
    lean on this one invocation for both timing and correctness.
    """
    import time

    from repro.testbed import MatrixOptions, run_matrix

    directory = args.matrix
    if not directory.is_dir():
        print(f"--matrix: {directory} is not a directory", file=sys.stderr)
        return 2
    options = MatrixOptions(tags=("smoke",))
    started = time.monotonic()
    try:
        report = run_matrix(str(directory), options)
    except ValueError as exc:
        print(f"--matrix: {exc}", file=sys.stderr)
        return 2
    wall = time.monotonic() - started
    spec_count = len(report["specs"])
    if spec_count == 0:
        print(f"--matrix: no smoke-tagged specs under {directory}",
              file=sys.stderr)
        return 2
    specs_per_min = round(spec_count / wall * 60.0, 3) if wall > 0 else 0.0
    measured = {"matrix_smoke": wall}
    extra: Dict[str, object] = {
        "matrix": {
            "specs": spec_count,
            "specs_per_min": specs_per_min,
            "counts": report["counts"],
        },
    }
    number, _priors = _append_trajectory(
        args.out, measured, {}, "matrix", extra=extra
    )
    print(f"run {number} appended to trajectory {args.out}")
    print(f"  matrix_smoke: {wall:.2f}s for {spec_count} spec(s) "
          f"({specs_per_min} specs/min)")
    if not report["verdict"]["ok"]:
        for name in report["verdict"]["hard_failed"]:
            print(f"MATRIX FAIL {name}", file=sys.stderr)
        return 1
    print("matrix verdict ok")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parse_args(argv)
    if args.matrix is not None:
        return _run_matrix_mode(args)
    if args.smoke:
        targets = [str(BENCH_DIR / name) for name in SMOKE_BENCHES]
        missing = [t for t in targets if not Path(t).exists()]
        if missing:
            print(f"smoke benches missing: {missing}", file=sys.stderr)
            return 2
    else:
        targets = [str(BENCH_DIR)]

    # The pytest hook writes a single-run document to a scratch path;
    # the run is then folded into the cumulative trajectory at --out.
    # Telemetry snapshots land in a sibling scratch directory and are
    # archived (with the run number) once the trajectory assigns one.
    run_doc = args.out.with_name(args.out.stem + "-run.json")
    if run_doc.exists():
        run_doc.unlink()
    telemetry_scratch = args.out.with_name(args.out.stem + "-telemetry")
    shutil.rmtree(telemetry_scratch, ignore_errors=True)
    rc = _run_pytest(targets, run_doc, telemetry_scratch)
    if not run_doc.exists():
        print(f"bench run produced no {run_doc} (pytest exit {rc})",
              file=sys.stderr)
        return 1
    try:
        measured, throughput = _load_document(run_doc)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"cannot read {run_doc}: {exc}", file=sys.stderr)
        return 1
    finally:
        run_doc.unlink(missing_ok=True)
    if rc != 0:
        print(f"bench suite failed (pytest exit {rc})", file=sys.stderr)
        return 1
    if not measured:
        print("bench run recorded no timings", file=sys.stderr)
        return 1
    mode = "smoke" if args.smoke else "full"
    number, priors = _append_trajectory(args.out, measured, throughput, mode)
    print(f"run {number} appended to trajectory {args.out}")
    _archive_telemetry(telemetry_scratch, number, mode)

    if args.update_baseline:
        baseline = (
            _load_document(args.baseline)[0] if args.baseline.exists() else {}
        )
        baseline.update(measured)
        with open(args.baseline, "w") as f:
            json.dump(
                {"format": BENCH_FORMAT, "benches": baseline},
                f, indent=2, sort_keys=True,
            )
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    failures: List[str] = []
    if throughput:
        print("throughput (trajectory, same-mode median):")
        failures.extend(_compare_throughput(
            priors, measured, throughput, mode, args.tolerance, args.floor,
        ))
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline "
              "to record one")
    else:
        try:
            baseline = _load_document(args.baseline)[0]
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 1
        failures.extend(
            _compare(measured, baseline, args.tolerance, args.floor)
        )
    if failures:
        _triage_failures(failures, priors, number, mode)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1
    print("all benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Bench-trajectory harness.

Runs the ``benchmarks/`` suite with the ``REPRO_BENCH_OBS`` timing hook
armed (see ``benchmarks/conftest.py``), appends the per-module
wall-clock totals as a new run to the cumulative ``BENCH_obs.json``
trajectory at the repo root, and compares the fresh run against the
recorded baseline (``benchmarks/bench-baseline.json``)::

    python scripts/bench.py                  # full suite
    python scripts/bench.py --smoke          # fast subset (CI gate)
    python scripts/bench.py --update-baseline

``BENCH_obs.json`` keeps every run (run number, mode, per-bench
seconds, total), so performance can be tracked across commits instead
of only gated against the latest baseline.  A pre-trajectory
single-run document is migrated in place as run 1.

Exit codes: 0 all benches within tolerance, 1 a bench regressed or the
timing document could not be produced, 2 usage errors.

A bench "regresses" when its wall time exceeds
``baseline * (1 + tolerance) + floor``; the absolute floor absorbs
scheduler noise on very fast benches so sub-second jitter does not turn
into false alarms across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_OUT = REPO_ROOT / "BENCH_obs.json"
DEFAULT_BASELINE = BENCH_DIR / "bench-baseline.json"
BENCH_FORMAT = "mntp-bench-v1"
TRAJECTORY_FORMAT = "mntp-bench-trajectory-v1"

#: The fast subset exercised by ``--smoke`` (seconds each, not minutes).
SMOKE_BENCHES = (
    "bench_fig4_sntp_wired_wireless.py",
    "bench_fig7_signals_selection.py",
    "bench_table2_tuner_configs.py",
)


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run only the fast smoke subset")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="cumulative trajectory to append to "
                        "(BENCH_obs.json)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="recorded baseline to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25)")
    parser.add_argument("--floor", type=float, default=0.25,
                        help="absolute slack in seconds (default 0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record the measured times as the new baseline")
    return parser.parse_args(argv)


def _run_pytest(targets: List[str], out: Path) -> int:
    """Run the bench suite with the timing hook armed."""
    env = dict(os.environ)
    env["REPRO_BENCH_OBS"] = str(out)
    env["PYTHONPATH"] = (
        f"{REPO_ROOT / 'src'}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(REPO_ROOT / "src")
    )
    cmd = [sys.executable, "-m", "pytest", "-q", *targets]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    return proc.returncode


def _load_document(path: Path) -> Dict[str, float]:
    with open(path) as f:
        document = json.load(f)
    if document.get("format") != BENCH_FORMAT:
        raise ValueError(f"{path} is not a {BENCH_FORMAT} document")
    return {str(k): float(v) for k, v in document["benches"].items()}


def _append_trajectory(
    path: Path, measured: Dict[str, float], mode: str
) -> int:
    """Append one run to the cumulative trajectory; returns its number.

    An existing pre-trajectory (single-run ``mntp-bench-v1``) document
    at ``path`` is migrated in place as run 1.
    """
    runs: List[Dict[str, object]] = []
    if path.exists():
        try:
            with open(path) as f:
                existing = json.load(f)
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            if existing.get("format") == TRAJECTORY_FORMAT:
                runs = list(existing.get("runs", []))
            elif existing.get("format") == BENCH_FORMAT:
                benches = {
                    str(k): float(v)
                    for k, v in existing.get("benches", {}).items()
                }
                runs = [{
                    "run": 1,
                    "mode": "unknown",
                    "benches": benches,
                    "total_seconds": round(sum(benches.values()), 3),
                }]
    number = len(runs) + 1
    runs.append({
        "run": number,
        "mode": mode,
        "benches": {k: round(v, 3) for k, v in sorted(measured.items())},
        "total_seconds": round(sum(measured.values()), 3),
    })
    with open(path, "w") as f:
        json.dump(
            {"format": TRAJECTORY_FORMAT, "runs": runs},
            f, indent=2, sort_keys=True,
        )
        f.write("\n")
    return number


def _compare(
    measured: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float,
    floor: float,
) -> List[str]:
    """Human-readable regression verdicts; empty means all clear."""
    failures: List[str] = []
    for name, seconds in sorted(measured.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  {name}: {seconds:.2f}s (no baseline — recorded new)")
            continue
        limit = base * (1.0 + tolerance) + floor
        verdict = "ok" if seconds <= limit else "REGRESSED"
        print(f"  {name}: {seconds:.2f}s vs baseline {base:.2f}s "
              f"(limit {limit:.2f}s) {verdict}")
        if seconds > limit:
            failures.append(
                f"{name}: {seconds:.2f}s exceeds {limit:.2f}s "
                f"({base:.2f}s baseline, +{tolerance:.0%} +{floor}s)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parse_args(argv)
    if args.smoke:
        targets = [str(BENCH_DIR / name) for name in SMOKE_BENCHES]
        missing = [t for t in targets if not Path(t).exists()]
        if missing:
            print(f"smoke benches missing: {missing}", file=sys.stderr)
            return 2
    else:
        targets = [str(BENCH_DIR)]

    # The pytest hook writes a single-run document to a scratch path;
    # the run is then folded into the cumulative trajectory at --out.
    run_doc = args.out.with_name(args.out.stem + "-run.json")
    if run_doc.exists():
        run_doc.unlink()
    rc = _run_pytest(targets, run_doc)
    if not run_doc.exists():
        print(f"bench run produced no {run_doc} (pytest exit {rc})",
              file=sys.stderr)
        return 1
    try:
        measured = _load_document(run_doc)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read {run_doc}: {exc}", file=sys.stderr)
        return 1
    finally:
        run_doc.unlink(missing_ok=True)
    if rc != 0:
        print(f"bench suite failed (pytest exit {rc})", file=sys.stderr)
        return 1
    if not measured:
        print("bench run recorded no timings", file=sys.stderr)
        return 1
    number = _append_trajectory(
        args.out, measured, "smoke" if args.smoke else "full"
    )
    print(f"run {number} appended to trajectory {args.out}")

    if args.update_baseline:
        baseline = _load_document(args.baseline) if args.baseline.exists() else {}
        baseline.update(measured)
        with open(args.baseline, "w") as f:
            json.dump(
                {"format": BENCH_FORMAT, "benches": baseline},
                f, indent=2, sort_keys=True,
            )
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline "
              "to record one")
        return 0
    try:
        baseline = _load_document(args.baseline)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 1
    failures = _compare(measured, baseline, args.tolerance, args.floor)
    if failures:
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1
    print("all benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

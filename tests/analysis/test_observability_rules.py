"""OBS001: bare print() in library packages."""

from repro.analysis import check_source


def rules_for(src, module):
    return sorted({f.rule for f in check_source(src, module=module)})


PRINTING = "def f():\n    print('hello')\n"


def test_print_flagged_in_library_package():
    assert rules_for(PRINTING, "repro.core.protocol") == ["OBS001"]
    assert rules_for(PRINTING, "repro.testbed.experiment") == ["OBS001"]
    assert rules_for(PRINTING, "repro.obs.metrics") == ["OBS001"]


def test_print_allowed_in_cli_analysis_reporting():
    assert rules_for(PRINTING, "repro.cli") == []
    assert rules_for(PRINTING, "repro.analysis.cli") == []
    assert rules_for(PRINTING, "repro.reporting.tables") == []


def test_print_allowed_outside_repro():
    assert rules_for(PRINTING, "scratch") == []
    assert rules_for(PRINTING, "scripts.bench") == []


def test_noqa_suppresses_obs001():
    src = "def f():\n    print('x')  # repro: noqa[OBS001] boot banner\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_method_named_print_not_flagged():
    src = "def f(doc):\n    doc.print()\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_message_names_the_module():
    findings = check_source(PRINTING, module="repro.wireless.channel")
    assert any("repro.wireless.channel" in f.message for f in findings)

"""OBS001 (bare print) and OBS002 (telemetry taxonomy) rules."""

from repro.analysis import check_source


def rules_for(src, module):
    return sorted({f.rule for f in check_source(src, module=module)})


PRINTING = "def f():\n    print('hello')\n"


def test_print_flagged_in_library_package():
    assert rules_for(PRINTING, "repro.core.protocol") == ["OBS001"]
    assert rules_for(PRINTING, "repro.testbed.experiment") == ["OBS001"]
    assert rules_for(PRINTING, "repro.obs.metrics") == ["OBS001"]


def test_print_allowed_in_cli_analysis_reporting():
    assert rules_for(PRINTING, "repro.cli") == []
    assert rules_for(PRINTING, "repro.analysis.cli") == []
    assert rules_for(PRINTING, "repro.reporting.tables") == []


def test_print_allowed_outside_repro():
    assert rules_for(PRINTING, "scratch") == []
    assert rules_for(PRINTING, "scripts.bench") == []


def test_noqa_suppresses_obs001():
    src = "def f():\n    print('x')  # repro: noqa[OBS001] boot banner\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_method_named_print_not_flagged():
    src = "def f(doc):\n    doc.print()\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_message_names_the_module():
    findings = check_source(PRINTING, module="repro.wireless.channel")
    assert any("repro.wireless.channel" in f.message for f in findings)


# -- OBS002: span-kind taxonomy + metric naming ---------------------------


def test_unregistered_span_kind_flagged():
    src = 'def f(sim):\n    sim.telemetry.spans.begin("mntp.mystery")\n'
    assert rules_for(src, "repro.core.protocol") == ["OBS002"]


def test_registered_span_kinds_pass():
    src = (
        "def f(sim):\n"
        '    sim.telemetry.spans.begin("sntp.exchange", trace_id="c/1")\n'
        '    with sim.telemetry.spans.span("tuner.tune"):\n'
        "        pass\n"
    )
    assert rules_for(src, "repro.tuner.autotune") == []


def test_dynamic_span_kind_skipped():
    src = "def f(sim, name):\n    sim.telemetry.spans.begin(name)\n"
    assert rules_for(src, "repro.core.protocol") == []
    src = 'def f(sim, k):\n    sim.telemetry.spans.begin(f"mntp.{k}")\n'
    assert rules_for(src, "repro.core.protocol") == []


def test_counter_without_total_suffix_flagged():
    src = 'def f(m):\n    m.metrics.counter("sntp_queries")\n'
    assert rules_for(src, "repro.ntp.server") == ["OBS002"]


def test_counter_fstring_tail_checked():
    ok = 'def f(m, k):\n    m.metrics.counter(f"mntp_{k}_total")\n'
    assert rules_for(ok, "repro.core.protocol") == []
    bad = 'def f(m, k):\n    m.metrics.counter(f"mntp_{k}_count")\n'
    assert rules_for(bad, "repro.core.protocol") == ["OBS002"]


def test_gauge_requires_unit_suffix():
    assert rules_for(
        'def f(m):\n    m.metrics.gauge("drift")\n', "repro.core.protocol"
    ) == ["OBS002"]
    assert rules_for(
        'def f(m):\n    m.metrics.gauge("drift_ppm")\n', "repro.core.protocol"
    ) == []


def test_gauge_must_not_end_in_total():
    src = 'def f(m):\n    m.metrics.gauge("events_total")\n'
    findings = check_source(src, module="repro.core.protocol")
    assert [f.rule for f in findings] == ["OBS002"]
    assert "reserved for counters" in findings[0].message


def test_histogram_unit_suffix():
    assert rules_for(
        'def f(m):\n    m.metrics.histogram("residual_ms")\n',
        "repro.core.protocol",
    ) == []
    assert rules_for(
        'def f(m):\n    m.metrics.histogram("residual")\n',
        "repro.core.protocol",
    ) == ["OBS002"]


def test_obs002_scoped_to_repro_modules():
    src = 'def f(m):\n    m.metrics.counter("oops")\n'
    assert rules_for(src, "scratch") == []
    assert rules_for(src, "tests.obs.test_metrics") == []


def test_obs002_ignores_unrelated_receivers():
    src = (
        "def f(db, spans):\n"
        '    db.begin("transaction")\n'
        '    spans.begin("not.registered")\n'
    )
    # Only the receiver actually named 'spans' is checked.
    findings = check_source(src, module="repro.core.protocol")
    assert len(findings) == 1
    assert "not.registered" in findings[0].message


def test_noqa_suppresses_obs002():
    src = (
        "def f(sim):\n"
        '    sim.telemetry.spans.begin("x.y")  '
        "# repro: noqa[OBS002] migration shim\n"
    )
    assert rules_for(src, "repro.core.protocol") == []

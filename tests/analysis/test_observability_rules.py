"""OBS001 (bare print) and OBS002 (telemetry taxonomy) rules."""

from repro.analysis import check_source


def rules_for(src, module):
    # The fire-and-forget `spans.begin(...)` fixtures below also trip
    # the RES001 typestate rule by design; this file is about OBS.
    return sorted({
        f.rule for f in check_source(src, module=module)
        if f.rule.startswith("OBS")
    })


PRINTING = "def f():\n    print('hello')\n"


def test_print_flagged_in_library_package():
    assert rules_for(PRINTING, "repro.core.protocol") == ["OBS001"]
    assert rules_for(PRINTING, "repro.testbed.experiment") == ["OBS001"]
    assert rules_for(PRINTING, "repro.obs.metrics") == ["OBS001"]


def test_print_allowed_in_cli_analysis_reporting():
    assert rules_for(PRINTING, "repro.cli") == []
    assert rules_for(PRINTING, "repro.analysis.cli") == []
    assert rules_for(PRINTING, "repro.reporting.tables") == []


def test_print_allowed_outside_repro():
    assert rules_for(PRINTING, "scratch") == []
    assert rules_for(PRINTING, "scripts.bench") == []


def test_noqa_suppresses_obs001():
    src = "def f():\n    print('x')  # repro: noqa[OBS001] boot banner\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_method_named_print_not_flagged():
    src = "def f(doc):\n    doc.print()\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_message_names_the_module():
    findings = check_source(PRINTING, module="repro.wireless.channel")
    assert any("repro.wireless.channel" in f.message for f in findings)


# -- OBS002: span-kind taxonomy + metric naming ---------------------------


def test_unregistered_span_kind_flagged():
    src = 'def f(sim):\n    sim.telemetry.spans.begin("mntp.mystery")\n'
    assert rules_for(src, "repro.core.protocol") == ["OBS002"]


def test_registered_span_kinds_pass():
    src = (
        "def f(sim):\n"
        '    sim.telemetry.spans.begin("sntp.exchange", trace_id="c/1")\n'
        '    with sim.telemetry.spans.span("tuner.tune"):\n'
        "        pass\n"
    )
    assert rules_for(src, "repro.tuner.autotune") == []


def test_dynamic_span_kind_skipped():
    src = "def f(sim, name):\n    sim.telemetry.spans.begin(name)\n"
    assert rules_for(src, "repro.core.protocol") == []
    src = 'def f(sim, k):\n    sim.telemetry.spans.begin(f"mntp.{k}")\n'
    assert rules_for(src, "repro.core.protocol") == []


def test_counter_without_total_suffix_flagged():
    src = 'def f(m):\n    m.metrics.counter("sntp_queries")\n'
    assert rules_for(src, "repro.ntp.server") == ["OBS002"]


def test_counter_fstring_tail_checked():
    ok = 'def f(m, k):\n    m.metrics.counter(f"mntp_{k}_total")\n'
    assert rules_for(ok, "repro.core.protocol") == []
    bad = 'def f(m, k):\n    m.metrics.counter(f"mntp_{k}_count")\n'
    assert rules_for(bad, "repro.core.protocol") == ["OBS002"]


def test_gauge_requires_unit_suffix():
    assert rules_for(
        'def f(m):\n    m.metrics.gauge("drift")\n', "repro.core.protocol"
    ) == ["OBS002"]
    assert rules_for(
        'def f(m):\n    m.metrics.gauge("drift_ppm")\n', "repro.core.protocol"
    ) == []


def test_gauge_must_not_end_in_total():
    src = 'def f(m):\n    m.metrics.gauge("events_total")\n'
    findings = check_source(src, module="repro.core.protocol")
    assert [f.rule for f in findings] == ["OBS002"]
    assert "reserved for counters" in findings[0].message


def test_histogram_unit_suffix():
    assert rules_for(
        'def f(m):\n    m.metrics.histogram("residual_ms")\n',
        "repro.core.protocol",
    ) == []
    assert rules_for(
        'def f(m):\n    m.metrics.histogram("residual")\n',
        "repro.core.protocol",
    ) == ["OBS002"]


def test_obs002_scoped_to_repro_modules():
    src = 'def f(m):\n    m.metrics.counter("oops")\n'
    assert rules_for(src, "scratch") == []
    assert rules_for(src, "tests.obs.test_metrics") == []


def test_obs002_ignores_unrelated_receivers():
    src = (
        "def f(db, spans):\n"
        '    db.begin("transaction")\n'
        '    spans.begin("not.registered")\n'
    )
    # Only the receiver actually named 'spans' is checked.
    findings = [
        f for f in check_source(src, module="repro.core.protocol")
        if f.rule.startswith("OBS")
    ]
    assert len(findings) == 1
    assert "not.registered" in findings[0].message


def test_noqa_suppresses_obs002():
    src = (
        "def f(sim):\n"
        '    sim.telemetry.spans.begin("x.y")  '
        "# repro: noqa[OBS002] migration shim\n"
    )
    assert rules_for(src, "repro.core.protocol") == []


# -- OBS004: SLO thresholds must be SloSpec fields ------------------------


HEALTH_IMPORT = "from repro.obs.health import HealthMonitor\n"


def obs004_for(src, module):
    # The import line itself may trip unrelated rules (e.g. COR004
    # unused-import in these minimal fixtures); isolate OBS004.
    return [f for f in check_source(src, module=module) if f.rule == "OBS004"]


def test_slo_literal_flagged_in_health_module():
    src = "def judge(p99_abs_error_ms):\n    return p99_abs_error_ms > 200.0\n"
    assert rules_for(src, "repro.obs.health") == ["OBS004"]


def test_slo_literal_flagged_in_health_importer():
    src = HEALTH_IMPORT + "def f(drop_rate_ratio):\n    return drop_rate_ratio >= 0.5\n"
    assert [f.rule for f in obs004_for(src, "repro.testbed.experiment")] == ["OBS004"]


def test_slo_literal_flagged_via_obs_facade_import():
    src = (
        "from repro.obs import SloSpec\n"
        "def f(starvation_s):\n    return 600.0 < starvation_s\n"
    )
    assert [f.rule for f in obs004_for(src, "repro.cli")] == ["OBS004"]


def test_obs004_out_of_scope_without_health_import():
    src = "def f(timeout_s):\n    return timeout_s > 30.0\n"
    assert obs004_for(src, "repro.net.link") == []
    assert obs004_for(HEALTH_IMPORT + src, "scripts.bench") == []


def test_obs004_exempts_structural_constants():
    src = HEALTH_IMPORT + (
        "def f(window_s, rate_per_s):\n"
        "    return window_s > 0 and rate_per_s >= 1 and window_s != -1\n"
    )
    assert obs004_for(src, "repro.obs.diff") == []


def test_obs004_spec_field_comparison_passes():
    src = HEALTH_IMPORT + (
        "def f(spec, p99_abs_error_ms):\n"
        "    return p99_abs_error_ms >= spec.p99_abs_error_violate_ms\n"
    )
    assert obs004_for(src, "repro.testbed.experiment") == []


def test_obs004_ignores_unsuffixed_names():
    src = HEALTH_IMPORT + "def f(count):\n    return count > 5\n"
    assert obs004_for(src, "repro.obs.health") == []


def test_obs004_negative_and_chained_literals():
    src = HEALTH_IMPORT + "def f(skew_ms):\n    return -50.0 < skew_ms < 50.0\n"
    findings = obs004_for(src, "repro.core.protocol")
    assert [f.rule for f in findings] == ["OBS004", "OBS004"]
    assert "'skew_ms'" in findings[0].message


def test_noqa_suppresses_obs004():
    src = HEALTH_IMPORT + (
        "def f(age_s):\n"
        "    return age_s > 3.5  # repro: noqa[OBS004] parser sentinel\n"
    )
    assert obs004_for(src, "repro.obs.health") == []

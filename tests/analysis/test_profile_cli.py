"""The ``repro-mntp profile`` harness, ``lint --profile`` ranking, and
the ``--jobs``/``--stats`` lint options.

Profile wall-clock fields are machine-dependent, so assertions stick to
call counts (deterministic under a fixed seed) and top-N membership —
never to time values or exact rank order.
"""

import json
from pathlib import Path

from repro.analysis.profile import (
    PROFILE_FORMAT,
    ProfileData,
    append_trajectory,
    load_profile,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Short virtual duration: enough exchanges for every hot root to run.
_DURATION = "120"


def _make_artifact(tmp_path, name="prof.json", seed="1"):
    out = tmp_path / name
    code = main([
        "--seed", seed, "profile", "--scenario", "mntp_wireless_corrected",
        "--duration", _DURATION, "--out", str(out), "--no-trajectory",
    ])
    assert code == 0
    return out


def test_profile_writes_valid_artifact(tmp_path, capsys):
    out = _make_artifact(tmp_path)
    doc = json.loads(out.read_text())
    assert doc["format"] == PROFILE_FORMAT
    assert doc["scenario"] == "mntp_wireless_corrected"
    assert doc["seed"] == 1
    assert doc["duration_s"] == 120.0
    names = {(f["path"], f["name"]) for f in doc["functions"]}
    assert ("repro/simcore/simulator.py", "run_until") in names
    for row in doc["functions"]:
        assert row["path"].startswith("repro/")
        assert row["ncalls"] >= 1
    stdout = capsys.readouterr().out
    assert "top" in stdout
    assert "run_until" in stdout


def test_profile_call_counts_are_deterministic(tmp_path):
    first = json.loads(_make_artifact(tmp_path, "a.json").read_text())
    second = json.loads(_make_artifact(tmp_path, "b.json").read_text())

    def counts(doc):
        return {(f["path"], f["line"], f["name"]): f["ncalls"]
                for f in doc["functions"]}

    assert counts(first) == counts(second)


def test_profile_rejects_unknown_scenario(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):  # argparse enforces choices
        main(["profile", "--scenario", "nope",
              "--out", str(tmp_path / "x.json")])


def test_load_profile_rejects_foreign_documents(tmp_path):
    import pytest

    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        load_profile(bad)


def test_profile_lookup_normalizes_paths():
    data = ProfileData({
        "format": PROFILE_FORMAT, "scenario": "s", "seed": 1,
        "duration_s": 1.0,
        "functions": [
            {"path": "repro/net/link.py", "line": 10, "name": "send",
             "ncalls": 7, "tottime_s": 0.1, "cumtime_s": 0.2},
        ],
    })
    # Lint displays are cwd-relative with a src/ prefix; artifact paths
    # are repo-relative.  Both must hit the same entry.
    assert data.lookup("src/repro/net/link.py", "send")["ncalls"] == 7
    assert data.lookup("/abs/tree/src/repro/net/link.py", "send") is not None
    assert data.lookup("src/repro/net/link.py", "recv") is None


def test_trajectory_append_creates_and_extends(tmp_path):
    doc = {
        "format": PROFILE_FORMAT, "scenario": "s", "seed": 1,
        "duration_s": 1.0,
        "functions": [
            {"path": "repro/a.py", "line": 1, "name": "f",
             "ncalls": 3, "tottime_s": 0.1, "cumtime_s": 0.2},
        ],
    }
    trajectory = tmp_path / "BENCH_obs.json"
    assert append_trajectory(trajectory, doc, wall_s=0.5) == 1
    assert append_trajectory(trajectory, doc, wall_s=0.6) == 2
    payload = json.loads(trajectory.read_text())
    assert payload["format"] == "mntp-bench-trajectory-v1"
    assert [r["run"] for r in payload["runs"]] == [1, 2]
    assert all(r["mode"] == "profile" for r in payload["runs"])
    top = payload["runs"][0]["profile"]["top_cumtime"]
    assert top[0]["function"] == "repro/a.py::f"


def test_trajectory_append_never_clobbers_foreign_files(tmp_path):
    doc = {"format": PROFILE_FORMAT, "scenario": "s", "seed": 1,
           "duration_s": 1.0, "functions": []}
    foreign = tmp_path / "BENCH_obs.json"
    foreign.write_text('{"something": "precious"}')
    assert append_trajectory(foreign, doc, wall_s=0.5) is None
    assert json.loads(foreign.read_text()) == {"something": "precious"}


# ---------------------------------------------------------------------------
# lint --profile / --hot-report


def test_lint_profile_ranks_and_reports(tmp_path, monkeypatch, capsys):
    out = _make_artifact(tmp_path)
    capsys.readouterr()  # drop the profile command's own output
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src", "--profile", str(out), "--no-cache"]) == 0
    stdout = capsys.readouterr().out
    assert "hot closure:" in stdout
    assert "ranked by cumtime from scenario 'mntp_wireless_corrected'" \
        in stdout
    # The acceptance bar: the event loop tops the measured closure.
    report_lines = [
        line for line in stdout.splitlines() if "x  repro." in line
    ]
    assert any("Simulator.run_until" in line for line in report_lines[:5])


def test_lint_hot_report_without_profile_is_static(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src", "--hot-report", "--no-cache"]) == 0
    stdout = capsys.readouterr().out
    assert "hot closure:" in stdout
    assert "depth" in stdout
    assert "ranked by" not in stdout


def test_lint_profile_rejects_bad_artifact(tmp_path, monkeypatch, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "not-a-profile"}')
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src", "--profile", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# --jobs / --stats


def _seed_tree(tmp_path):
    pkg = tmp_path / "repro" / "simcore"
    pkg.mkdir(parents=True)
    (pkg / "one.py").write_text(
        '"""Fixture."""\n\nimport time\n\n\ndef f():\n'
        "    return time.time()\n"
    )
    (pkg / "two.py").write_text(
        '"""Fixture."""\n\n\ndef g():  # repro: hot\n'
        "    out = []\n"
        "    for i in range(3):\n"
        "        out.append(i)\n"
        "    return out\n"
    )


def test_jobs_output_matches_serial(tmp_path, capsys):
    _seed_tree(tmp_path)
    base = ["lint", str(tmp_path), "--no-baseline", "--no-cache"]
    assert main(base) == 1
    serial = capsys.readouterr().out
    assert main(base + ["--jobs", "2"]) == 1
    parallel = capsys.readouterr().out
    assert serial == parallel
    assert "DET001" in serial
    assert "PERF004" in serial


def test_jobs_must_be_positive(tmp_path, capsys):
    assert main(["lint", str(tmp_path), "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_stats_reports_cache_and_phases(tmp_path, capsys):
    _seed_tree(tmp_path)
    cache = tmp_path / "cache.json"
    base = ["lint", str(tmp_path), "--no-baseline", "--stats",
            "--cache-path", str(cache)]
    main(base)
    cold = capsys.readouterr().out
    assert "stats: 2 files, cache 0/2 hits (0%)" in cold
    assert "phase1" in cold and "phase2" in cold
    main(base)
    warm = capsys.readouterr().out
    assert "cache 2/2 hits (100%)" in warm

"""Incremental cache: warm runs re-parse nothing, stale entries die."""

import ast
import json

from repro.analysis import Engine
from repro.analysis.cache import LintCache, config_key


def _tree(tmp_path):
    pkg = tmp_path / "repro" / "simcore"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n"
    )
    (pkg / "b.py").write_text("def poll_ms():\n    return 64.0\n")
    return tmp_path


def _cache(tmp_path, engine):
    return LintCache(tmp_path / "cache.json", config_key(engine.rule_ids))


def test_warm_run_parses_nothing(tmp_path, monkeypatch):
    tree = _tree(tmp_path)
    engine = Engine()
    cache = _cache(tmp_path, engine)
    cold = engine.check_paths([tree], cache=cache, reference_roots=[])
    cache.save()

    parsed = []
    real_parse = ast.parse
    monkeypatch.setattr(
        ast, "parse",
        lambda *a, **k: parsed.append(a) or real_parse(*a, **k),
    )
    warm_cache = _cache(tmp_path, engine)
    warm = engine.check_paths([tree], cache=warm_cache, reference_roots=[])
    assert parsed == []
    assert [f.render() for f in warm.findings] == [
        f.render() for f in cold.findings
    ]
    assert warm.files_checked == cold.files_checked


def test_content_change_invalidates_only_that_file(tmp_path, monkeypatch):
    tree = _tree(tmp_path)
    engine = Engine()
    cache = _cache(tmp_path, engine)
    engine.check_paths([tree], cache=cache, reference_roots=[])
    cache.save()

    (tree / "repro" / "simcore" / "b.py").write_text(
        "def poll_ms():\n    return 128.0\n"
    )
    parsed = []
    real_parse = ast.parse
    monkeypatch.setattr(
        ast, "parse",
        lambda *a, **k: parsed.append(a and a[-1]) or real_parse(*a, **k),
    )
    warm_cache = _cache(tmp_path, engine)
    engine.check_paths([tree], cache=warm_cache, reference_roots=[])
    # Exactly one re-parse: the edited file (ast.parse is called once
    # per freshly analysed module).
    assert len(parsed) == 1


def test_rule_selection_gets_its_own_section(tmp_path):
    tree = _tree(tmp_path)
    full = Engine()
    det = Engine(select=["DET001"])
    assert config_key(full.rule_ids) != config_key(det.rule_ids)

    full_cache = _cache(tmp_path, full)
    full.check_paths([tree], cache=full_cache, reference_roots=[])
    full_cache.save()

    # The DET-only engine must not see the full engine's records.
    det_cache = _cache(tmp_path, det)
    display = next(iter(full_cache._entries))
    digest = full_cache._entries[display]["digest"]
    assert det_cache.lookup(display, digest) is None

    det.check_paths([tree], cache=det_cache, reference_roots=[])
    det_cache.save()
    data = json.loads((tmp_path / "cache.json").read_text())
    assert len(data["configs"]) == 2


def test_corrupt_cache_degrades_to_empty(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{not json")
    cache = LintCache(path, "k")
    assert cache.lookup("x.py", "digest") is None
    cache.store("x.py", "digest", {"findings": []})
    cache.save()
    data = json.loads(path.read_text())
    assert data["configs"]["k"]["x.py"]["digest"] == "digest"


def test_save_prunes_entries_for_deleted_files(tmp_path):
    tree = _tree(tmp_path)
    engine = Engine()
    cache = _cache(tmp_path, engine)
    engine.check_paths([tree], cache=cache, reference_roots=[])
    cache.save()

    target = tree / "repro" / "simcore" / "b.py"
    display = next(p for p in cache._entries if p.endswith("b.py"))
    target.unlink()

    fresh = _cache(tmp_path, engine)
    engine.check_paths([tree], cache=fresh, reference_roots=[])
    fresh.save()
    data = json.loads((tmp_path / "cache.json").read_text())
    assert display not in data["configs"][config_key(engine.rule_ids)]


def test_tool_version_bump_reanalyzes_everything(tmp_path, monkeypatch):
    """A TOOL_VERSION change must invalidate every cached record.

    Guards the PR contract that semantic changes to rules (like the
    CFG dataflow layer) ship with a version bump: a stale cache from
    the previous version must never satisfy a warm run.
    """
    import repro.analysis.cache as cache_mod

    tree = _tree(tmp_path)
    engine = Engine()
    cold_cache = _cache(tmp_path, engine)
    cold = engine.check_paths([tree], cache=cold_cache, reference_roots=[])
    cold_cache.save()

    monkeypatch.setattr(cache_mod, "TOOL_VERSION", "bumped-for-test")
    parsed = []
    real_parse = ast.parse
    monkeypatch.setattr(
        ast, "parse",
        lambda *a, **k: parsed.append(a) or real_parse(*a, **k),
    )
    bumped_cache = _cache(tmp_path, engine)
    bumped = engine.check_paths([tree], cache=bumped_cache, reference_roots=[])
    # Both files were re-parsed from scratch, and findings agree.
    assert len(parsed) == 2
    assert [f.render() for f in bumped.findings] == [
        f.render() for f in cold.findings
    ]

"""DET001/DET002/DET003: wall clock, stdlib random, numpy global RNG."""

from repro.analysis import check_source


def rules_for(src, module):
    return sorted({f.rule for f in check_source(src, module=module)})


# -- DET001: wall-clock reads in simulation packages ---------------------

def test_time_time_flagged_in_simcore():
    src = "import time\n\n\ndef f():\n    return time.time()\n"
    assert rules_for(src, "repro.simcore.simulator") == ["DET001"]


def test_time_sleep_flagged_via_from_import():
    src = "from time import sleep\n\n\ndef f():\n    sleep(0.1)\n"
    assert rules_for(src, "repro.ntp.sntp_client") == ["DET001"]


def test_aliased_monotonic_flagged():
    src = "import time as t\n\n\ndef f():\n    return t.monotonic()\n"
    assert rules_for(src, "repro.clock.oscillator") == ["DET001"]


def test_datetime_now_flagged():
    src = (
        "from datetime import datetime\n\n\ndef f():\n"
        "    return datetime.now()\n"
    )
    assert rules_for(src, "repro.wireless.channel") == ["DET001"]


def test_wall_clock_allowed_outside_simulation_packages():
    src = "import time\n\n\ndef f():\n    return time.time()\n"
    assert rules_for(src, "repro.testbed.wallclock") == []
    assert rules_for(src, "scratch") == []


def test_virtual_time_is_clean():
    src = "def f(sim):\n    return sim.now + 5.0\n"
    assert rules_for(src, "repro.simcore.simulator") == []


# -- DET002: stdlib random ----------------------------------------------

def test_stdlib_random_call_flagged_everywhere():
    src = "import random\n\n\ndef f():\n    return random.gauss(0.0, 1.0)\n"
    assert rules_for(src, "repro.tuner.search") == ["DET002"]
    assert rules_for(src, "repro.simcore.simulator") == ["DET002"]


def test_stdlib_random_from_import_flagged():
    src = "from random import choice\n\n\ndef f(xs):\n    return choice(xs)\n"
    assert rules_for(src, "repro.logs.generator") == ["DET002"]


def test_rng_registry_module_exempt_from_random_rules():
    src = "import random\n\n\ndef f():\n    return random.random()\n"
    assert rules_for(src, "repro.simcore.random") == []


def test_generator_method_named_random_is_clean():
    src = "def f(rng):\n    return rng.random()\n"
    assert rules_for(src, "repro.wireless.channel") == []


# -- DET003: numpy global RNG -------------------------------------------

def test_unseeded_default_rng_flagged():
    src = (
        "import numpy as np\n\n\ndef f():\n"
        "    return np.random.default_rng()\n"
    )
    assert rules_for(src, "repro.metrics.stats") == ["DET003"]


def test_seeded_default_rng_allowed():
    src = (
        "import numpy as np\n\n\ndef f(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert rules_for(src, "repro.metrics.stats") == []


def test_numpy_global_state_calls_flagged():
    src = "import numpy as np\n\n\ndef f():\n    np.random.seed(0)\n"
    assert rules_for(src, "repro.tuner.search") == ["DET003"]
    src = "import numpy\n\n\ndef f():\n    return numpy.random.normal()\n"
    assert rules_for(src, "repro.tuner.search") == ["DET003"]


def test_generator_instance_normal_is_clean():
    src = "def f(rng):\n    return rng.normal(0.0, 1.0)\n"
    assert rules_for(src, "repro.wireless.channel") == []

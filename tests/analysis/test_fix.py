"""The auto-fix engine: dry-run is inert, --fix converges to clean."""

from repro.analysis.cli import main
from repro.analysis.engine import Engine
from repro.analysis.fix import FIXABLE_RULES, apply_fixes, plan_fixes

FIXTURE = """\
import os
import json


def delay_ms() -> float:
    return 5.0


def use() -> float:
    wait_s = delay_ms()
    return wait_s + json.loads("1")
"""


def _tree(tmp_path, text=FIXTURE):
    target = tmp_path / "repro" / "util" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(text)
    return target


def test_dry_run_prints_diff_and_changes_nothing(tmp_path, capsys):
    target = _tree(tmp_path)
    before = target.read_text()
    code = main([
        str(tmp_path), "--no-baseline", "--no-cache", "--fix", "--dry-run",
    ])
    out = capsys.readouterr().out
    assert target.read_text() == before
    assert "-import os" in out
    assert "-    wait_s = delay_ms()" in out
    assert "+    wait_ms = delay_ms()" in out
    assert "(dry run)" in out
    # Findings are still reported (and still fail the run): nothing was fixed.
    assert code == 1


def test_fix_applies_and_relints_clean(tmp_path, capsys):
    target = _tree(tmp_path)
    code = main([str(tmp_path), "--no-baseline", "--no-cache", "--fix"])
    out = capsys.readouterr().out
    assert "fixed 2 finding(s) in 1 file(s)" in out
    assert code == 0
    text = target.read_text()
    assert "import os" not in text
    assert "wait_ms = delay_ms()" in text
    assert "wait_s" not in text
    # A second run over the fixed tree finds nothing.
    assert main([str(tmp_path), "--no-baseline", "--no-cache"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_dry_run_without_fix_is_a_usage_error(tmp_path, capsys):
    code = main([str(tmp_path), "--dry-run"])
    assert code == 2
    assert "--dry-run requires --fix" in capsys.readouterr().err


def test_unsafe_rename_is_skipped(tmp_path, capsys):
    # wait_s is bound twice: no single consistent fix, so --fix must
    # leave it alone and say so.
    target = _tree(tmp_path, """\
def delay_ms() -> float:
    return 5.0


def use(flag) -> float:
    wait_s = delay_ms()
    if flag:
        wait_s = 0.0
    return wait_s
""")
    before = target.read_text()
    code = main([str(tmp_path), "--no-baseline", "--no-cache", "--fix"])
    out = capsys.readouterr().out
    assert target.read_text() == before
    assert "not auto-fixable" in out
    assert code == 1


def test_rename_blocked_when_target_name_exists(tmp_path):
    target = _tree(tmp_path, """\
def delay_ms() -> float:
    return 5.0


def use() -> float:
    wait_ms = 1.0
    wait_s = delay_ms()
    return wait_s + wait_ms
""")
    result = Engine().check_paths([tmp_path], reference_roots=[])
    fixes = plan_fixes(result.findings)
    assert all(not f.changed for f in fixes)
    assert any(f.skipped for f in fixes)


def test_plan_fixes_only_touches_fixable_rules(tmp_path):
    # Findings here (COR005 dead function) have no mechanical repair.
    _tree(tmp_path, "import time\n\n\ndef now():\n    return time.time()\n")
    result = Engine().check_paths([tmp_path], reference_roots=[])
    assert all(f.rule not in FIXABLE_RULES for f in result.findings)
    assert plan_fixes(result.findings) == []


def test_apply_fixes_reports_written_count(tmp_path):
    _tree(tmp_path)
    result = Engine().check_paths([tmp_path], reference_roots=[])
    fixes = plan_fixes(result.findings)
    assert apply_fixes(fixes) == 1

"""PREC001-004: interval/value-range precision analysis."""

import textwrap

from repro.analysis import check_source

MODULE = "repro.core.discipline"


def _rules(src, module=MODULE):
    return sorted(
        f.rule for f in check_source(textwrap.dedent(src), module=module)
        if f.rule.startswith("PREC")
    )


# -- PREC001: the 2^53 float-exact window -----------------------------------

def test_ns_integer_times_float_fires():
    src = """
        def scale(offset_ns):
            return offset_ns * 0.5
    """
    assert _rules(src) == ["PREC001"]


def test_float_call_on_wide_ns_fires():
    src = """
        def convert(t_ns):
            return float(t_ns) / 1e9
    """
    assert "PREC001" in _rules(src)


def test_us_integer_division_within_window_is_fine():
    """A century of µs (~4e15) still fits inside 2^53: no finding."""
    src = """
        def convert(delay_us):
            return delay_us / 1e6
    """
    assert _rules(src) == []


def test_us_integer_scaled_beyond_window_fires():
    """Scaling µs to ns range in int, then to float, exceeds 2^53."""
    src = """
        def convert(delay_us):
            return (delay_us * 1000) / 1e9
    """
    assert _rules(src) == ["PREC001"]


def test_ms_quantity_is_within_window():
    """A century of ms (~4e12) sits inside 2^53: floats stay exact."""
    src = """
        def scale(rtt_ms):
            return rtt_ms * 0.5
    """
    assert _rules(src) == []


def test_value_range_bounds_silence_the_rule():
    """x_ns % 1000 is provably below 2^53 — value-range sensitivity."""
    src = """
        def frac(offset_ns):
            small_ns = offset_ns % 1000
            return small_ns * 0.5
    """
    assert _rules(src) == []


def test_right_shift_shrinks_the_range():
    src = """
        def scale(correction_ns):
            coarse = correction_ns >> 16
            return coarse * 0.5
    """
    assert _rules(src) == []


def test_pure_integer_arithmetic_is_clean():
    src = """
        def split(t_ns):
            secs = t_ns // 1000000000
            frac_ns = t_ns % 1000000000
            return secs, frac_ns
    """
    assert _rules(src) == []


# -- PREC002: 16.16 short-format truncation ---------------------------------

def test_encode_short_of_us_tier_fires():
    src = """
        from repro.ntp.timestamps import encode_short

        def pack(delay_us):
            return encode_short(delay_us)
    """
    assert _rules(src) == ["PREC002"]


def test_encode_short_of_ms_tier_is_fine():
    src = """
        from repro.ntp.timestamps import encode_short

        def pack(dispersion_ms):
            return encode_short(dispersion_ms)
    """
    assert _rules(src) == []


def test_codec_home_module_is_exempt():
    src = """
        def encode_short(value_us):
            return encode_short(value_us)
    """
    assert _rules(src, module="repro.ntp.timestamps") == []


# -- PREC003: era-unsafe NTP comparisons ------------------------------------

def test_magnitude_compare_of_raw_ntp_fires():
    src = """
        from repro.ntp.timestamps import unix_to_ntp

        def later(a_s, b_s):
            a_ntp = unix_to_ntp(a_s)
            b_ntp = unix_to_ntp(b_s)
            return a_ntp < b_ntp
    """
    assert _rules(src) == ["PREC003"]


def test_suffix_tainted_ntp_names_fire():
    src = """
        def later(recv_ntp, xmit_ntp):
            return recv_ntp >= xmit_ntp
    """
    assert _rules(src) == ["PREC003"]


def test_unix_seconds_compare_is_fine():
    src = """
        def later(a_s, b_s):
            return a_s < b_s
    """
    assert _rules(src) == []


def test_equality_on_ntp_timestamps_is_not_flagged():
    """Equality does not depend on era ordering."""
    src = """
        def same(recv_ntp, xmit_ntp):
            return recv_ntp == xmit_ntp
    """
    assert _rules(src) == []


# -- PREC004: division chains that collapse precision ------------------------

def test_floor_divide_then_scale_back_fires():
    src = """
        def roundtrip(t_ns):
            t_us = t_ns // 1000
            back_ns = t_us * 1000
            return back_ns
    """
    assert "PREC004" in _rules(src)


def test_truncated_value_stored_under_finer_suffix_fires():
    src = """
        def coarse(t_ns):
            rounded_ns = t_ns // 1000
            return rounded_ns
    """
    assert _rules(src) == ["PREC004"]


def test_downscale_tracked_through_intermediate_variable():
    src = """
        def chain(t_ns):
            a = t_ns // 1000
            b = a
            out_ns = b * 1000
            return out_ns
    """
    assert "PREC004" in _rules(src)


def test_plain_unit_conversion_is_clean():
    src = """
        def convert(t_ns):
            t_us = t_ns // 1000
            return t_us
    """
    assert _rules(src) == []


def test_halving_does_not_coarsen_tier():
    """Dividing by two (averaging) keeps the tier: no truncation."""
    src = """
        def midpoint(a_ns, b_ns):
            mid_ns = (a_ns + b_ns) // 2
            return mid_ns
    """
    assert _rules(src) == []


def test_generator_is_skipped_gracefully():
    src = """
        def stream(t_ns):
            yield t_ns * 0.5
    """
    assert _rules(src) == []


def test_noqa_suppresses_precision_finding():
    src = """
        def scale(offset_ns):
            return offset_ns * 0.5  # repro: noqa[PREC001] offsets bounded by slew clamp
    """
    assert _rules(src) == []

"""``lint --changed`` and ``lint --explain`` end to end."""

import subprocess

from repro.analysis import all_project_rules, all_rules
from repro.cli import main

_GIT_ENV = {
    "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@example.invalid",
    "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@example.invalid",
    "HOME": "/tmp", "GIT_CONFIG_GLOBAL": "/dev/null",
    "GIT_CONFIG_SYSTEM": "/dev/null", "PATH": "/usr/bin:/bin:/usr/local/bin",
}


def _git(cwd, *args):
    subprocess.run(
        ["git", *args], cwd=cwd, env=_GIT_ENV, check=True,
        capture_output=True, text=True,
    )


def _repo_with_origin_main(tmp_path):
    """A checkout whose origin/main ref points at the initial commit."""
    pkg = tmp_path / "repro" / "simcore"
    pkg.mkdir(parents=True)
    (pkg / "good.py").write_text("def poll_ms():\n    return 64.0\n")
    _git(tmp_path, "init", "-q", "-b", "main")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    _git(tmp_path, "update-ref", "refs/remotes/origin/main", "HEAD")
    return tmp_path


def test_changed_restricts_to_modified_files(tmp_path, monkeypatch, capsys):
    repo = _repo_with_origin_main(tmp_path)
    bad = repo / "repro" / "simcore" / "bad.py"
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    monkeypatch.chdir(repo)
    assert main(["lint", ".", "--changed", "--no-baseline",
                 "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "bad.py" in out
    assert "in 1 file" in out  # good.py was not analysed


def test_changed_with_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    repo = _repo_with_origin_main(tmp_path)
    monkeypatch.chdir(repo)
    assert main(["lint", ".", "--changed", "--no-baseline",
                 "--no-cache"]) == 0
    assert "no changed files" in capsys.readouterr().out


def test_changed_outside_git_falls_back_to_full_run(
    tmp_path, monkeypatch, capsys
):
    pkg = tmp_path / "repro" / "simcore"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n\n\ndef f():\n    return time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    assert main(["lint", ".", "--changed", "--no-baseline",
                 "--no-cache"]) == 1
    captured = capsys.readouterr()
    assert "analysing the full tree" in captured.err
    assert "bad.py" in captured.out


def test_changed_refuses_baseline_writes(tmp_path, monkeypatch, capsys):
    repo = _repo_with_origin_main(tmp_path)
    monkeypatch.chdir(repo)
    assert main(["lint", ".", "--changed", "--write-baseline"]) == 2
    assert "refusing" in capsys.readouterr().err


def test_explain_prints_full_catalogue_entry(capsys):
    assert main(["lint", "--explain", "RES001"]) == 0
    out = capsys.readouterr().out
    assert "RES001" in out
    assert "rationale:" in out
    assert "example:" in out
    assert "fix:" in out


def test_explain_is_case_insensitive(capsys):
    assert main(["lint", "--explain", "prec003"]) == 0
    assert "2036" in capsys.readouterr().out


def test_explain_unknown_rule_suggests_close_match(capsys):
    assert main(["lint", "--explain", "RES01"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id" in err
    assert "did you mean RES001" in err


def test_explain_gibberish_has_no_suggestion(capsys):
    assert main(["lint", "--explain", "ZZZZZZZZ"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id" in err
    assert "did you mean" not in err


def test_every_registered_rule_has_a_complete_entry(capsys):
    """The --explain contract: no registered rule may lack a section."""
    for rule_id in sorted({**all_rules(), **all_project_rules()}):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        for section in ("rationale:", "example:", "fix:"):
            assert section in out, f"{rule_id} is missing {section}"


# ---------------------------------------------------------------------------
# RES/PREC through the full pipeline: --jobs, baseline, SARIF


def _seed_res_prec_tree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "leaky.py").write_text(
        '"""Fixture."""\n\n\ndef work(tracer, cond):\n'
        '    span = tracer.begin("work")\n'
        "    if cond:\n"
        "        return 1\n"
        "    span.end()\n"
        "    return 0\n"
    )
    (pkg / "lossy.py").write_text(
        '"""Fixture."""\n\n\ndef scale(offset_ns):\n'
        "    return offset_ns * 0.5\n"
    )
    return tmp_path


def test_new_rules_are_jobs_deterministic(tmp_path, capsys):
    tree = _seed_res_prec_tree(tmp_path)
    base = ["lint", str(tree), "--no-baseline", "--no-cache",
            "--select", "RES001,PREC001"]
    assert main(base + ["--jobs", "1"]) == 1
    serial = capsys.readouterr().out
    assert main(base + ["--jobs", "2"]) == 1
    parallel = capsys.readouterr().out
    assert serial == parallel
    assert "RES001" in serial and "PREC001" in serial


def test_new_rules_round_trip_through_baseline(tmp_path, capsys):
    tree = _seed_res_prec_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--baseline", str(baseline),
                 "--no-cache", "--write-baseline"]) == 0
    capsys.readouterr()
    # Baselined findings no longer fail the run...
    assert main(["lint", str(tree), "--baseline", str(baseline),
                 "--no-cache"]) == 0
    capsys.readouterr()
    # ...until a new violation appears.
    extra = tree / "repro" / "core" / "extra.py"
    extra.write_text(
        '"""Fixture."""\n\n\ndef drop(tracer):\n'
        '    tracer.begin("never.closed")\n'
    )
    assert main(["lint", str(tree), "--baseline", str(baseline),
                 "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "extra.py" in out


def test_new_rules_render_in_sarif(tmp_path, capsys):
    import json

    tree = _seed_res_prec_tree(tmp_path)
    assert main(["lint", str(tree), "--no-baseline", "--no-cache",
                 "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    rules = {
        r["id"]
        for r in sarif["runs"][0]["tool"]["driver"]["rules"]
    }
    assert {"RES001", "PREC001"} <= rules

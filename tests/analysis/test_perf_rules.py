"""Hot-path perf rules (PERF001-004), parallel-readiness rules
(CONC001-003), and the hot-closure machinery they share.

Single-module cases go through ``check_source(project=True)`` with a
``# repro: hot`` annotation standing in for reachability from the
simulator inner loop; the meta-tests at the bottom run the real tree so
:data:`HOT_ROOTS` can never silently drift away from the source.
"""

from pathlib import Path

from repro.analysis import Engine, check_source
from repro.analysis.baseline import match_baseline, write_baseline
from repro.analysis.engine import fingerprint_findings
from repro.analysis.flow.hot import HOT_ROOTS, chain_label, hot_closure

REPO_ROOT = Path(__file__).resolve().parents[2]

PERF_RULES = ["PERF001", "PERF002", "PERF003", "PERF004"]
CONC_RULES = ["CONC001", "CONC002", "CONC003"]


def _check(src, select, module="repro.simcore.node"):
    return check_source(src, module=module, project=True, select=select)


def _rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# PERF001 — allocation churn


def test_perf001_container_in_hot_loop():
    src = """\
def step():  # repro: hot
    total = 0
    for i in range(10):
        d = {"i": i}
        total += len(d)
    return total
"""
    findings = _check(src, ["PERF001"])
    assert _rules_of(findings) == ["PERF001"]
    assert "dict display" in findings[0].message
    assert "hot root" in findings[0].message


def test_perf001_silent_outside_hot_closure():
    src = """\
def step():
    total = 0
    for i in range(10):
        d = {"i": i}
        total += len(d)
    return total
"""
    assert _check(src, ["PERF001"]) == []


def test_perf001_silent_outside_loops():
    src = """\
def step():  # repro: hot
    d = {"i": 1}
    return len(d)
"""
    assert _check(src, ["PERF001"]) == []


def test_perf001_generator_expression_is_exempt():
    src = """\
def step():  # repro: hot
    total = 0
    for i in range(10):
        total += sum(j for j in range(i))
    return total
"""
    assert _check(src, ["PERF001"]) == []


# ---------------------------------------------------------------------------
# PERF002 — string churn


def test_perf002_fstring_in_hot_loop():
    src = """\
def step():  # repro: hot
    n = 0
    for i in range(10):
        label = f"sample {i}"
        n += len(label)
    return n
"""
    findings = _check(src, ["PERF002"])
    assert _rules_of(findings) == ["PERF002"]
    assert "f-string" in findings[0].message


# ---------------------------------------------------------------------------
# PERF003 — repeated deep lookups


def test_perf003_repeated_chain_in_one_loop():
    src = """\
def step(node):  # repro: hot
    acc = 0.0
    for _ in range(10):
        acc += node.clock.skew
        acc -= node.clock.skew
        acc *= node.clock.skew
    return acc
"""
    findings = _check(src, ["PERF003"])
    assert _rules_of(findings) == ["PERF003"]
    assert "'node.clock.skew' (3x in one loop)" in findings[0].message


def test_perf003_loop_bound_root_is_silent():
    src = """\
def step(nodes):  # repro: hot
    acc = 0.0
    for node in nodes:
        acc += node.clock.skew
        acc -= node.clock.skew
        acc *= node.clock.skew
    return acc
"""
    assert _check(src, ["PERF003"]) == []


# ---------------------------------------------------------------------------
# PERF004 — append-only loops


def test_perf004_append_only_loop():
    src = """\
def step():  # repro: hot
    out = []
    for i in range(10):
        out.append(i * 2)
    return out
"""
    findings = _check(src, ["PERF004"])
    assert _rules_of(findings) == ["PERF004"]
    assert "'out'" in findings[0].message


def test_perf004_loop_with_other_work_is_silent():
    src = """\
def step():  # repro: hot
    out = []
    n = 0
    for i in range(10):
        n += i
        out.append(i)
    return out, n
"""
    assert _check(src, ["PERF004"]) == []


# ---------------------------------------------------------------------------
# witness chains


def test_perf_finding_carries_witness_chain_and_endpoint():
    src = """\
def step():  # repro: hot
    return helper()


def helper():
    out = []
    for i in range(3):
        out.append(i)
    return out
"""
    findings = _check(src, ["PERF004"])
    assert _rules_of(findings) == ["PERF004"]
    assert "hot via" in findings[0].message
    assert "step" in findings[0].message
    assert findings[0].endpoint.endswith("::step")


def test_perf_finding_in_root_itself_has_no_endpoint():
    src = """\
def step():  # repro: hot
    out = []
    for i in range(3):
        out.append(i)
    return out
"""
    findings = _check(src, ["PERF004"])
    assert findings[0].endpoint == ""


def test_noqa_on_witness_chain_site_suppresses():
    src = """\
def step():  # repro: hot
    return helper()


def helper():
    out = []
    for i in range(3):  # repro: noqa[PERF004]
        out.append(i)
    return out
"""
    assert _check(src, ["PERF004"]) == []


def test_chain_label_caps_long_chains():
    chain = [f"m.f{i}" for i in range(8)]
    label = chain_label(chain)
    assert "..." in label
    assert chain[-1] in label
    assert chain[4] not in label


# ---------------------------------------------------------------------------
# CONC001 — module-level mutable state


def test_conc001_global_mutated_by_hot_code():
    src = """\
_registry = {}


def on_event(key):  # repro: hot
    _registry[key] = 1
"""
    findings = _check(src, ["CONC001"])
    assert _rules_of(findings) == ["CONC001"]
    assert findings[0].line == 1  # anchored at the global, not the write
    assert "'_registry'" in findings[0].message
    assert findings[0].endpoint.endswith("::on_event")


def test_conc001_read_only_global_is_silent():
    src = """\
_table = {"a": 1}


def on_event(key):  # repro: hot
    return _table.get(key)
"""
    assert _check(src, ["CONC001"]) == []


def test_conc001_local_shadow_is_silent():
    src = """\
_registry = {}


def on_event(key):  # repro: hot
    _registry = {}
    _registry[key] = 1
    return _registry
"""
    assert _check(src, ["CONC001"]) == []


# ---------------------------------------------------------------------------
# CONC002 — cross-instance class-attribute state


def test_conc002_class_level_mutable_mutated_through_self():
    src = """\
class Node:
    peers = []

    def on_event(self, peer):  # repro: hot
        self.peers.append(peer)
"""
    findings = _check(src, ["CONC002"])
    assert _rules_of(findings) == ["CONC002"]
    assert "'Node.peers'" in findings[0].message
    assert findings[0].endpoint.endswith("::Node.peers")


def test_conc002_instance_attribute_is_silent():
    src = """\
class Node:
    def __init__(self):
        self.peers = []

    def on_event(self, peer):  # repro: hot
        self.peers.append(peer)
"""
    assert _check(src, ["CONC002"]) == []


def test_conc002_runtime_class_write_in_shard_package():
    # No hot annotation: shard-package membership alone polices writes
    # *to the class object*, which are cross-instance by construction.
    src = """\
class Node:
    count = 0

    def bump(self):
        Node.count = Node.count + 1
"""
    findings = _check(src, ["CONC002"], module="repro.net.demo")
    assert _rules_of(findings) == ["CONC002"]
    assert "class attribute" in findings[0].message


def test_conc002_silent_outside_shard_packages():
    src = """\
class Report:
    count = 0

    def bump(self):
        Report.count = Report.count + 1
"""
    assert _check(src, ["CONC002"], module="repro.logs.demo") == []


# ---------------------------------------------------------------------------
# CONC003 — process-global caches and counters


def test_conc003_cached_hot_function():
    src = """\
import functools


@functools.lru_cache(maxsize=None)
def poll_interval(stratum):  # repro: hot
    return 2 ** stratum
"""
    findings = _check(src, ["CONC003"])
    assert _rules_of(findings) == ["CONC003"]
    assert "functools cache" in findings[0].message


def test_conc003_module_counter_in_shard_package():
    src = """\
import itertools

_ids = itertools.count(1)
"""
    findings = _check(src, ["CONC003"], module="repro.net.demo")
    assert _rules_of(findings) == ["CONC003"]
    assert "'_ids'" in findings[0].message


def test_conc003_counter_outside_shard_packages_is_silent():
    src = """\
import itertools

_ids = itertools.count(1)
"""
    assert _check(src, ["CONC003"], module="repro.logs.demo") == []


# ---------------------------------------------------------------------------
# baseline-v2 interaction


def test_perf_fingerprints_survive_line_shifts():
    src = """\
def step():  # repro: hot
    out = []
    for i in range(3):
        out.append(i)
    return out
"""
    shifted = "X = 1\n\n\n" + src
    prints = fingerprint_findings(_check(src, ["PERF004"]))
    shifted_prints = fingerprint_findings(_check(shifted, ["PERF004"]))
    assert prints == shifted_prints
    assert len(prints) == 1


def test_perf_findings_round_trip_through_baseline(tmp_path):
    src = """\
_registry = {}


def on_event(key):  # repro: hot
    _registry[key] = 1
"""
    findings = _check(src, CONC_RULES)
    assert findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    from repro.analysis.baseline import load_baseline

    match = match_baseline(_check(src, CONC_RULES),
                           load_baseline(baseline_path))
    assert match.new == []
    assert len(match.baselined) == len(findings)
    assert match.stale == []


# ---------------------------------------------------------------------------
# hot closure over the real tree


def test_hot_roots_resolve_in_shipped_source():
    """Every HOT_ROOTS entry must name a real function, or the list has
    drifted from the source and the PERF scope silently shrank."""
    engine = Engine(select=["PERF001"])
    result = engine.check_paths([REPO_ROOT / "src"])
    assert result.project is not None
    missing = [r for r in HOT_ROOTS if r not in result.project.functions]
    assert missing == []

    closure = hot_closure(result.project)
    # The acceptance bar: the event loop and the wireless sampler are in
    # the hot closure, and the closure reaches beyond the roots.
    assert "repro.simcore.simulator.Simulator.run_until" in closure
    assert "repro.wireless.channel.WirelessChannel._step_once" in closure
    assert len(closure) > len(HOT_ROOTS)
    # Chains are witness paths: every chain starts at a root.
    roots = {full for full, chain in closure.items() if len(chain) == 1}
    for full, chain in closure.items():
        assert chain[0] in roots
        assert chain[-1] == full

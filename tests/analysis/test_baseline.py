"""Baseline round-trip, matching, and the shipped-baseline meta-test."""

from pathlib import Path

import pytest

from repro.analysis import (
    Engine,
    Finding,
    fingerprint_findings,
    load_baseline,
    match_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

FINDINGS = [
    Finding("DET001", "src/repro/simcore/x.py", 10, 5, "wall-clock call"),
    Finding("COR004", "src/repro/ntp/y.py", 3, 1, "import 'os' is never used"),
]


def test_write_then_load_round_trips(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, FINDINGS)
    assert load_baseline(path) == set(fingerprint_findings(FINDINGS))


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


def test_match_splits_new_baselined_and_stale(tmp_path):
    path = tmp_path / "baseline.json"
    stale_finding = Finding("UNIT001", "src/gone.py", 1, 1, "mixed units")
    write_baseline(path, [FINDINGS[0], stale_finding])
    baseline = load_baseline(path)

    match = match_baseline(FINDINGS, baseline)
    assert [f.rule for f in match.new] == ["COR004"]
    assert [f.rule for f in match.baselined] == ["DET001"]
    assert [entry[0] for entry in match.stale] == ["UNIT001"]


def test_baselined_findings_survive_line_shifts():
    baseline = set(fingerprint_findings(FINDINGS))
    shifted = [
        Finding(f.rule, f.path, f.line + 40, f.col, f.message)
        for f in FINDINGS
    ]
    match = match_baseline(shifted, baseline)
    assert match.new == []
    assert len(match.baselined) == 2
    assert match.stale == []


def test_shipped_baseline_matches_fresh_run(monkeypatch):
    """Meta-test: ``analysis-baseline.json`` must equal a fresh lint run.

    Guards against two rots: someone fixing a baselined finding without
    removing its entry (stale), and someone introducing a finding and
    not noticing because local runs used a dirty baseline (new).
    """
    monkeypatch.chdir(REPO_ROOT)
    result = Engine().check_paths([Path("src")])
    assert result.errors == []
    fresh = set(fingerprint_findings(result.findings))
    shipped = load_baseline(REPO_ROOT / "analysis-baseline.json")
    assert fresh == shipped, (
        "analysis-baseline.json is out of date; run "
        "'repro-mntp lint src --write-baseline' and review the diff"
    )

"""CFG construction: edge cases the ISSUE calls out explicitly."""

import ast
import textwrap

import pytest

from repro.analysis.flow.cfg import (
    CfgUnsupported,
    build_cfg,
    function_cfgs,
)


def _cfg(src):
    tree = ast.parse(textwrap.dedent(src))
    func = next(
        node for node in tree.body if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


def _item_sources(cfg):
    """Unparsed text of every real-statement item, for reachability asserts."""
    texts = []
    for block in cfg.blocks:
        for item in block.items:
            if isinstance(item, ast.stmt):
                texts.append(ast.unparse(item))
    return texts


def test_straight_line_single_exit():
    cfg = _cfg(
        """
        def f(x):
            y = x + 1
            return y
        """
    )
    exits = cfg.exit_edges()
    assert len(exits) == 1
    assert exits[0].kind == "return"


def test_if_else_joins_and_guards():
    cfg = _cfg(
        """
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """
    )
    guards = [e.guard for e in cfg.edges if e.guard is not None]
    assert {g.truthy for g in guards} == {True, False}
    assert all(g.name == "x" for g in guards)


def test_is_none_test_produces_inverted_guards():
    cfg = _cfg(
        """
        def f(span):
            if span is None:
                return 0
            return 1
        """
    )
    guards = {(e.guard.name, e.guard.truthy, e.kind)
              for e in cfg.edges if e.guard is not None}
    # 'span is None' true => span is falsy on the true edge.
    assert ("span", False, "true") in guards
    assert ("span", True, "false") in guards


def test_while_else_runs_only_without_break():
    cfg = _cfg(
        """
        def f(n):
            while n:
                if n == 3:
                    break
                n -= 1
            else:
                done = True
            return n
        """
    )
    # The else body must be reachable only via the loop-condition-false
    # edge; a break edge goes straight past it.  Structural check: the
    # block holding `done = True` has exactly one predecessor and that
    # edge is the false branch of the loop test.
    done_block = next(
        b for b in cfg.blocks
        for item in b.items
        if isinstance(item, ast.stmt) and "done = True" in ast.unparse(item)
    )
    preds = cfg.predecessors(done_block.id)
    assert len(preds) == 1
    (pred_edge,) = [e for e in cfg.edges if e.dst == done_block.id]
    assert pred_edge.kind == "false"


def test_for_else_and_loop_back_edge():
    cfg = _cfg(
        """
        def f(xs):
            for x in xs:
                use(x)
            else:
                finish()
            return 0
        """
    )
    assert any(e.kind == "loop" for e in cfg.edges)
    assert "finish()" in _item_sources(cfg)


def test_try_finally_with_return_in_finally_overrides():
    cfg = _cfg(
        """
        def f():
            try:
                return 1
            finally:
                return 2
        """
    )
    # Every return edge must come from a block whose last real item is
    # the finally's return — the body return is hijacked.
    exits = [e for e in cfg.exit_edges() if e.kind == "return"]
    assert exits
    for edge in exits:
        block = cfg.blocks[edge.src]
        stmts = [i for i in block.items if isinstance(i, ast.stmt)]
        assert stmts and ast.unparse(stmts[-1]) == "return 2"


def test_return_through_finally_inlines_cleanup():
    cfg = _cfg(
        """
        def f(res, cond):
            try:
                if cond:
                    return 1
                work()
            finally:
                res.close()
            return 0
        """
    )
    # The early return must pass through a block containing the
    # cleanup; count res.close() occurrences — one inline per escaping
    # continuation (early return, fall-through, exceptional).
    closes = [t for t in _item_sources(cfg) if t == "res.close()"]
    assert len(closes) >= 2


def test_except_handler_and_exceptional_edge_kinds():
    cfg = _cfg(
        """
        def f():
            try:
                risky()
            except ValueError:
                handled = True
            return 0
        """
    )
    kinds = {e.kind for e in cfg.edges}
    assert "except" in kinds
    assert "handled = True" in _item_sources(cfg)


def test_raise_reaches_exit_when_uncaught():
    cfg = _cfg(
        """
        def f(x):
            if x:
                raise ValueError(x)
            return 0
        """
    )
    kinds = {e.kind for e in cfg.exit_edges()}
    assert kinds == {"raise", "return"}


def test_nested_with_emits_enter_exit_pairs():
    cfg = _cfg(
        """
        def f(a, b):
            with a() as x:
                with b() as y:
                    use(x, y)
            return 0
        """
    )
    from repro.analysis.flow.cfg import WithEnter, WithExit

    enters = sum(
        isinstance(i, WithEnter) for b in cfg.blocks for i in b.items
    )
    exits = sum(
        isinstance(i, WithExit) for b in cfg.blocks for i in b.items
    )
    assert enters == 2 and exits == 2


def test_match_statement_cases_and_fallthrough():
    cfg = _cfg(
        """
        def f(cmd):
            match cmd:
                case "run":
                    a = 1
                case "stop":
                    a = 2
                case _:
                    a = 3
            return a
        """
    )
    sources = _item_sources(cfg)
    assert {"a = 1", "a = 2", "a = 3"} <= set(sources)
    # The wildcard arm is irrefutable: no case edge may skip past it.
    assert any(e.kind == "case" for e in cfg.edges)


def test_continue_jumps_to_loop_header():
    cfg = _cfg(
        """
        def f(xs):
            total = 0
            for x in xs:
                if not x:
                    continue
                total += x
            return total
        """
    )
    assert any(e.kind == "loop" for e in cfg.edges)


def test_generator_raises_unsupported():
    tree = ast.parse("def g():\n    yield 1\n")
    with pytest.raises(CfgUnsupported):
        build_cfg(tree.body[0])


def test_async_def_raises_unsupported():
    tree = ast.parse("async def g():\n    return 1\n")
    with pytest.raises(CfgUnsupported):
        build_cfg(tree.body[0])


def test_function_cfgs_skips_unsupported_and_qualifies_names():
    tree = ast.parse(textwrap.dedent(
        """
        class C:
            def method(self):
                return 1

        def outer():
            def inner():
                return 2
            return inner

        def gen():
            yield 3

        async def aio():
            return 4
        """
    ))
    by_name = {qual: cfg for _, qual, cfg in function_cfgs(tree)}
    assert by_name["C.method"] is not None
    assert by_name["outer"] is not None
    assert by_name["outer.<locals>.inner"] is not None
    assert by_name["gen"] is None
    assert by_name["aio"] is None


def test_every_edge_references_real_blocks():
    cfg = _cfg(
        """
        def f(x):
            try:
                for i in range(x):
                    if i == 2:
                        break
                    with x:
                        use(i)
            except ValueError:
                pass
            finally:
                cleanup()
            return x
        """
    )
    ids = {b.id for b in cfg.blocks}
    for edge in cfg.edges:
        assert edge.src in ids and edge.dst in ids
    assert cfg.entry in ids and cfg.exit_id in ids

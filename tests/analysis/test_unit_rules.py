"""UNIT001/UNIT002/UNIT003: suffix units and NTP fixed-point mixing."""

from repro.analysis import check_source

MODULE = "repro.core.filter"


def rules_for(src):
    return sorted({f.rule for f in check_source(src, module=MODULE)})


# -- UNIT001: mixed-unit arithmetic -------------------------------------

def test_adding_seconds_to_milliseconds_flagged():
    assert rules_for("total = delay_s + jitter_ms\n") == ["UNIT001"]


def test_subtracting_microseconds_from_nanoseconds_flagged():
    assert rules_for("gap = t1_ns - t0_us\n") == ["UNIT001"]


def test_same_unit_arithmetic_clean():
    assert rules_for("total_s = delay_s + jitter_s\n") == []


def test_multiplication_and_division_exempt_as_conversions():
    assert rules_for("delay_ms = delay_s * 1000.0\nrate = x_ms / span_s\n") == []


def test_augmented_assignment_mixing_units_flagged():
    assert rules_for("acc_s += step_ms\n") == ["UNIT001"]


def test_attribute_suffixes_participate():
    assert rules_for("d = cfg.warmup_s - sample.age_ms\n") == ["UNIT001"]


def test_unsuffixed_names_do_not_participate():
    assert rules_for("total = duration + jitter_ms\n") == []


# -- UNIT002: mixed-unit comparisons ------------------------------------

def test_comparing_seconds_to_milliseconds_flagged():
    assert rules_for("ok = timeout_s > limit_ms\n") == ["UNIT002"]


def test_chained_comparison_checked_pairwise():
    assert rules_for("ok = lo_s < x_s < hi_ms\n") == ["UNIT002"]


def test_same_unit_comparison_clean():
    assert rules_for("ok = timeout_ms > limit_ms\n") == []


# -- UNIT003: NTP fixed-point vs float ----------------------------------

def test_wire_bytes_compared_to_float_flagged():
    src = "bad = encode_timestamp(t) == deadline_s\n"
    assert "UNIT003" in rules_for(src)


def test_wire_bytes_plus_numeric_literal_flagged():
    assert rules_for("bad = encode_short(d) == 5\n") == ["UNIT003"]


def test_decode_seconds_compared_to_milliseconds_flagged():
    src = "bad = decode_timestamp(data) > wait_ms\n"
    assert "UNIT003" in rules_for(src)


def test_decode_seconds_compared_to_seconds_clean():
    assert rules_for("ok = decode_timestamp(data) > wait_s\n") == []


def test_wire_bytes_compared_to_wire_bytes_clean():
    assert rules_for("ok = encode_timestamp(a) == encode_timestamp(b)\n") == []


def test_wire_bytes_compared_to_plain_name_clean():
    # A bare name with no unit suffix may legitimately hold bytes.
    assert rules_for("ok = encode_timestamp(a) == reference\n") == []

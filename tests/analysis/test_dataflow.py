"""Fixpoint solver: forward/backward solves, guards, widening."""

import ast
import textwrap

from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.dataflow import (
    Analysis,
    each_item_state,
    exit_edge_states,
    solve_backward,
    solve_forward,
)


def _cfg(src):
    tree = ast.parse(textwrap.dedent(src))
    func = next(
        node for node in tree.body if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


class _Assigned(Analysis):
    """Forward may-analysis: set of names assigned so far."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, item, state):
        if isinstance(item, ast.Assign):
            names = {
                t.id for t in item.targets if isinstance(t, ast.Name)
            }
            return state | frozenset(names)
        return state


class _UsedLater(Analysis):
    """Backward may-analysis: names read by some later statement."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, item, state):
        node = getattr(item, "node", item)
        if not isinstance(node, ast.AST):
            return state
        reads = {
            n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        return state | frozenset(reads)


class _Counter(Analysis):
    """Interval on one variable; join grows forever without widening."""

    def initial(self):
        return (0, 0)

    def join(self, a, b):
        return (min(a[0], b[0]), max(a[1], b[1]))

    def widen(self, old, new):
        joined = self.join(old, new)
        lo = old[0] if joined[0] >= old[0] else float("-inf")
        hi = old[1] if joined[1] <= old[1] else float("inf")
        return (lo, hi)

    def transfer(self, item, state):
        if isinstance(item, ast.AugAssign):
            return (state[0] + 1, state[1] + 1)
        return state


class _TruthyGuard(Analysis):
    """Forward: tracks whether 'x' is known truthy via edge guards."""

    def initial(self):
        return "unknown"

    def join(self, a, b):
        return a if a == b else "unknown"

    def transfer(self, item, state):
        return state

    def transfer_edge(self, edge, state):
        if edge.guard is not None and edge.guard.name == "x":
            return "truthy" if edge.guard.truthy else "falsy"
        return state


def test_forward_solve_reaches_all_branches():
    cfg = _cfg(
        """
        def f(c):
            a = 1
            if c:
                b = 2
            return a
        """
    )
    state_in = solve_forward(cfg, _Assigned())
    exit_states = [s for _, s in exit_edge_states(cfg, _Assigned(), state_in)]
    assert exit_states
    for state in exit_states:
        assert "a" in state
    # 'b' is assigned on only one branch: a may-analysis keeps it.
    assert any("b" in state for state in exit_states)


def test_backward_solve_computes_liveness_style_facts():
    cfg = _cfg(
        """
        def f(x):
            y = x + 1
            z = y + 1
            return z
        """
    )
    analysis = _UsedLater()
    state = solve_backward(cfg, analysis)
    # The map holds exit-facing states at each block's end; replaying
    # the entry block's items in reverse accumulates every read.
    entry_block = next(b for b in cfg.blocks if b.id == cfg.entry)
    facts = state[cfg.entry]
    for item in reversed(entry_block.items):
        facts = analysis.transfer(item, facts)
    assert {"x", "y", "z"} <= set(facts)


def test_widening_terminates_unbounded_loop():
    cfg = _cfg(
        """
        def f(n):
            i = 0
            while n:
                i += 1
            return i
        """
    )
    state_in = solve_forward(cfg, _Counter())
    # Termination is the assertion; the widened bound must be infinite.
    loop_states = [s for s in state_in.values() if s[1] == float("inf")]
    assert loop_states


def test_edge_guards_refine_state():
    cfg = _cfg(
        """
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """
    )
    analysis = _TruthyGuard()
    state_in = solve_forward(cfg, analysis)
    seen = set(state_in.values())
    assert "truthy" in seen and "falsy" in seen
    # After the join the fact is gone again.
    exit_states = [s for _, s in exit_edge_states(cfg, analysis, state_in)]
    assert exit_states == ["unknown"]


def test_each_item_state_replays_in_deterministic_order():
    cfg = _cfg(
        """
        def f(c):
            a = 1
            if c:
                b = 2
            c2 = 3
            return c2
        """
    )
    analysis = _Assigned()
    state_in = solve_forward(cfg, analysis)
    replay_a = [
        (ast.unparse(item) if isinstance(item, ast.stmt) else "", set(state))
        for _, item, state in each_item_state(cfg, analysis, state_in)
    ]
    replay_b = [
        (ast.unparse(item) if isinstance(item, ast.stmt) else "", set(state))
        for _, item, state in each_item_state(cfg, analysis, state_in)
    ]
    assert replay_a == replay_b
    # The state before 'c2 = 3' already carries 'a'.
    before_c2 = next(s for text, s in replay_a if text == "c2 = 3")
    assert "a" in before_c2


def test_unreachable_code_is_absent_from_solution():
    cfg = _cfg(
        """
        def f():
            return 1
            dead = 2
        """
    )
    state_in = solve_forward(cfg, _Assigned())
    dead_blocks = [
        b.id for b in cfg.blocks
        for item in b.items
        if isinstance(item, ast.stmt) and "dead" in ast.unparse(item)
    ]
    for block_id in dead_blocks:
        assert block_id not in state_in

"""RES001-003: span/telemetry/file typestate over the CFG."""

import textwrap

from repro.analysis import check_source

MODULE = "repro.core.worker"


def _rules(src, module=MODULE):
    return sorted(
        f.rule for f in check_source(textwrap.dedent(src), module=module)
        if f.rule.startswith("RES")
    )


def _findings(src, module=MODULE):
    return [
        f for f in check_source(textwrap.dedent(src), module=module)
        if f.rule.startswith("RES")
    ]


# -- RES001: span handles ---------------------------------------------------

def test_span_leaked_on_early_return():
    src = """
        def work(tracer, cond):
            span = tracer.begin("work")
            if cond:
                return 1
            span.end()
            return 0
    """
    assert _rules(src) == ["RES001"]
    [finding] = _findings(src)
    assert finding.line == 3  # anchored at the acquisition
    assert "return" in finding.message


def test_span_leaked_on_uncaught_raise():
    src = """
        def work(tracer, bad):
            span = tracer.begin("work")
            if bad:
                raise ValueError(bad)
            span.end()
    """
    assert _rules(src) == ["RES001"]


def test_span_closed_in_finally_is_clean():
    src = """
        def work(tracer, cond):
            span = tracer.begin("work")
            try:
                do(cond)
            finally:
                span.end()
    """
    assert _rules(src) == []


def test_span_closed_in_catch_all_handler_is_clean():
    src = """
        def work(tracer, cond):
            span = tracer.begin("work")
            try:
                do(cond)
            except BaseException:
                span.end(error=True)
                raise
            span.end()
    """
    assert _rules(src) == []


def test_guarded_conditional_span_is_clean():
    """The None-guard idiom used across src/ is path-sensitively clean."""
    src = """
        def work(tracer, enabled):
            span = None
            if enabled:
                span = tracer.begin("work")
            do()
            if span is not None:
                span.end()
    """
    assert _rules(src) == []


def test_conditional_span_without_guard_leaks():
    src = """
        def work(tracer, enabled):
            span = None
            if enabled:
                span = tracer.begin("work")
            do()
            return 0
    """
    assert _rules(src) == ["RES001"]


def test_with_managed_span_is_clean():
    src = """
        def work(tracer):
            with tracer.span("work"):
                do()
    """
    assert _rules(src) == []


def test_escaped_span_transfers_ownership():
    src = """
        def work(tracer, sink):
            a = tracer.begin("a")
            sink.append(a)
            b = tracer.begin("b")
            return b
            """
    assert _rules(src) == []


def test_span_stored_on_self_is_not_a_leak():
    src = """
        def work(self, tracer):
            span = tracer.begin("phase")
            self._phase_span = span
    """
    assert _rules(src) == []


def test_fire_and_forget_begin_is_reported():
    src = """
        def work(tracer):
            tracer.begin("never.closed")
    """
    assert _rules(src) == ["RES001"]


def test_generator_is_skipped_gracefully():
    src = """
        def work(tracer):
            span = tracer.begin("work")
            yield 1
    """
    assert _rules(src) == []


def test_noqa_suppresses_resource_finding():
    src = """
        def work(tracer):
            span = tracer.begin("x")  # repro: noqa[RES001] closed by end_all in teardown
            return span.id
    """
    assert _rules(src) == []


# -- RES002: ring-buffered telemetry ---------------------------------------

def test_local_telemetry_without_flush_leaks():
    src = """
        from repro.obs.telemetry import Telemetry

        def run(cond):
            tel = Telemetry()
            tel.emit("tick", {})
            if cond:
                return
            tel.flush()
    """
    assert _rules(src) == ["RES002"]


def test_flushed_telemetry_is_clean():
    src = """
        from repro.obs.telemetry import Telemetry

        def run(cond):
            tel = Telemetry()
            try:
                tel.emit("tick", {})
            finally:
                tel.flush()
    """
    assert _rules(src) == []


def test_ring_sink_close_counts_as_release():
    src = """
        from repro.obs.ringbuf import RingBufferSink

        def run(trace):
            sink = RingBufferSink(trace)
            use(sink)
            sink.close()
    """
    assert _rules(src) == []


def test_telemetry_handed_off_is_clean():
    src = """
        from repro.obs.telemetry import Telemetry

        def build(owner):
            tel = Telemetry()
            owner.attach(tel)
    """
    assert _rules(src) == []


# -- RES003: file handles ---------------------------------------------------

def test_bare_open_with_early_return_leaks_in_library_code():
    src = """
        def load(path, cond):
            f = open(path)
            if cond:
                return None
            data = f.read()
            f.close()
            return data
    """
    assert _rules(src) == ["RES003"]


def test_with_open_is_clean():
    src = """
        def load(path):
            with open(path) as f:
                return f.read()
    """
    assert _rules(src) == []


def test_open_outside_library_code_is_not_checked():
    src = """
        def load(path, cond):
            f = open(path)
            if cond:
                return None
            return f.read()
    """
    assert _rules(src, module="tests.helpers") == []


def test_always_closed_open_is_clean():
    src = """
        def load(path):
            f = open(path)
            try:
                return f.read()
            finally:
                f.close()
    """
    assert _rules(src) == []

"""ROB001 (bare except / degenerate waits) and ROB002 (hard-coded
guarantee thresholds in scenario code)."""

from repro.analysis import check_source


def rules_for(src, module):
    return sorted({f.rule for f in check_source(src, module=module)})


BARE = "def f():\n    try:\n        g()\n    except:\n        pass\n"


def test_bare_except_flagged_in_library_code():
    assert "ROB001" in rules_for(BARE, "repro.core.protocol")
    assert "ROB001" in rules_for(BARE, "repro.ntp.sntp_client")
    # Unlike OBS001, the CLI and analysis layers are NOT exempt.
    assert "ROB001" in rules_for(BARE, "repro.cli")
    assert "ROB001" in rules_for(BARE, "repro.analysis.engine")


def test_bare_except_allowed_outside_repro():
    assert rules_for(BARE, "scripts.bench") == []
    assert rules_for(BARE, "scratch") == []


def test_named_except_passes():
    src = "def f():\n    try:\n        g()\n    except ValueError:\n        pass\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_nonpositive_wait_literals_flagged():
    src = "def f(c):\n    c.query('s', cb, timeout=0)\n"
    assert rules_for(src, "repro.ntp.sntp_client") == ["ROB001"]
    src = "def f(c):\n    c.wait(poll_interval=-1.5)\n"
    assert rules_for(src, "repro.testbed.experiment") == ["ROB001"]


def test_positive_and_dynamic_waits_pass():
    src = (
        "def f(c, t):\n"
        "    c.query('s', cb, timeout=2.0)\n"
        "    c.query('s', cb, timeout=t)\n"
        "    c.wait(poll_interval=0.5)\n"
    )
    assert rules_for(src, "repro.ntp.sntp_client") == []


def test_boolean_literal_is_not_a_wait_value():
    # timeout=False is weird but not the numeric-zero pattern ROB001
    # targets; leave it to type checkers.
    src = "def f(c):\n    c.query('s', cb, timeout=False)\n"
    assert rules_for(src, "repro.ntp.sntp_client") == []


def test_noqa_suppresses_rob001():
    src = (
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except:  # repro: noqa[ROB001] last-ditch report guard\n"
        "        pass\n"
    )
    assert rules_for(src, "repro.core.protocol") == []


def test_message_points_at_the_wait_keyword():
    findings = check_source(
        "def f(c):\n    c.query('s', cb, timeout=0)\n",
        module="repro.ntp.sntp_client",
    )
    assert any("timeout=0" in f.message for f in findings)


# -- ROB002: guarantee thresholds must live in the spec --------------------


THRESHOLD = "def judge(p99_abs_error_ms):\n    return p99_abs_error_ms > 25.0\n"

SPEC_IMPORT = "from repro.testbed.specs import ScenarioSpec\n"


def rob002_for(src, module):
    # The import line may trip unrelated rules (e.g. COR004 unused
    # import in these minimal fixtures); isolate ROB002.
    return [f for f in check_source(src, module=module) if f.rule == "ROB002"]


def test_rob002_flags_thresholds_in_scenario_modules():
    assert "ROB002" in rules_for(THRESHOLD, "repro.testbed.scenarios")
    assert "ROB002" in rules_for(THRESHOLD, "repro.testbed.specs")
    assert "ROB002" in rules_for(THRESHOLD, "repro.testbed.matrix")


def test_rob002_flags_thresholds_in_spec_importers():
    src = SPEC_IMPORT + "def f(duration_s):\n    return duration_s >= 600.0\n"
    assert [f.rule for f in rob002_for(src, "repro.core.protocol")] == ["ROB002"]


def test_rob002_scope_via_testbed_facade_import():
    src = (
        "from repro.testbed import run_matrix\n"
        "def f(starvation_s):\n    return 600.0 < starvation_s\n"
    )
    assert [f.rule for f in rob002_for(src, "repro.cli")] == ["ROB002"]


def test_rob002_out_of_scope_without_scenario_import():
    assert rob002_for(THRESHOLD, "repro.core.protocol") == []
    assert rob002_for(SPEC_IMPORT + THRESHOLD, "scripts.bench") == []
    assert rob002_for(SPEC_IMPORT + THRESHOLD, "tests.testbed.test_specs") == []


def test_rob002_exempts_structural_constants():
    src = (
        "def f(duration_s, cadence_s):\n"
        "    return duration_s > 0 and cadence_s >= 1 and duration_s != -1\n"
    )
    assert rob002_for(src, "repro.testbed.specs") == []


def test_rob002_ignores_unsuffixed_names():
    src = "def f(retries):\n    return retries > 5\n"
    assert rob002_for(src, "repro.testbed.matrix") == []


def test_rob002_spec_field_comparison_passes():
    src = (
        "def f(spec, p99_abs_error_ms):\n"
        "    return p99_abs_error_ms >= spec.p99_abs_error_violate_ms\n"
    )
    assert rob002_for(src, "repro.testbed.specs") == []


def test_rob002_message_names_the_spec_home():
    findings = rob002_for(THRESHOLD, "repro.testbed.scenarios")
    assert len(findings) == 1
    assert "SloSpec guarantees block" in findings[0].message
    assert "'p99_abs_error_ms'" in findings[0].message


def test_noqa_suppresses_rob002():
    src = (
        "def f(age_s):\n"
        "    return age_s > 3.5  # repro: noqa[ROB002] parser sentinel\n"
    )
    assert rob002_for(src, "repro.testbed.specs") == []

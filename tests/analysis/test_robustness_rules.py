"""ROB001: bare except handlers and degenerate wait literals."""

from repro.analysis import check_source


def rules_for(src, module):
    return sorted({f.rule for f in check_source(src, module=module)})


BARE = "def f():\n    try:\n        g()\n    except:\n        pass\n"


def test_bare_except_flagged_in_library_code():
    assert "ROB001" in rules_for(BARE, "repro.core.protocol")
    assert "ROB001" in rules_for(BARE, "repro.ntp.sntp_client")
    # Unlike OBS001, the CLI and analysis layers are NOT exempt.
    assert "ROB001" in rules_for(BARE, "repro.cli")
    assert "ROB001" in rules_for(BARE, "repro.analysis.engine")


def test_bare_except_allowed_outside_repro():
    assert rules_for(BARE, "scripts.bench") == []
    assert rules_for(BARE, "scratch") == []


def test_named_except_passes():
    src = "def f():\n    try:\n        g()\n    except ValueError:\n        pass\n"
    assert rules_for(src, "repro.core.protocol") == []


def test_nonpositive_wait_literals_flagged():
    src = "def f(c):\n    c.query('s', cb, timeout=0)\n"
    assert rules_for(src, "repro.ntp.sntp_client") == ["ROB001"]
    src = "def f(c):\n    c.wait(poll_interval=-1.5)\n"
    assert rules_for(src, "repro.testbed.experiment") == ["ROB001"]


def test_positive_and_dynamic_waits_pass():
    src = (
        "def f(c, t):\n"
        "    c.query('s', cb, timeout=2.0)\n"
        "    c.query('s', cb, timeout=t)\n"
        "    c.wait(poll_interval=0.5)\n"
    )
    assert rules_for(src, "repro.ntp.sntp_client") == []


def test_boolean_literal_is_not_a_wait_value():
    # timeout=False is weird but not the numeric-zero pattern ROB001
    # targets; leave it to type checkers.
    src = "def f(c):\n    c.query('s', cb, timeout=False)\n"
    assert rules_for(src, "repro.ntp.sntp_client") == []


def test_noqa_suppresses_rob001():
    src = (
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except:  # repro: noqa[ROB001] last-ditch report guard\n"
        "        pass\n"
    )
    assert rules_for(src, "repro.core.protocol") == []


def test_message_points_at_the_wait_keyword():
    findings = check_source(
        "def f(c):\n    c.query('s', cb, timeout=0)\n",
        module="repro.ntp.sntp_client",
    )
    assert any("timeout=0" in f.message for f in findings)

"""End-to-end tests for ``repro-mntp lint`` / ``python -m repro.analysis``."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import all_rules
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _seed_violation(tmp_path):
    """A fake simulation module containing a wall-clock read."""
    target = tmp_path / "repro" / "simcore" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        '"""Fixture."""\n\nimport time\n\n\ndef f():\n'
        "    return time.time()\n"
    )
    return target


def test_lint_src_is_clean_end_to_end(monkeypatch, capsys):
    """The tier-1 smoke test: the shipped tree lints clean."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_seeded_violation_fails_the_run(tmp_path, capsys):
    _seed_violation(tmp_path)
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "bad.py" in out


def test_json_format_is_machine_readable(tmp_path, capsys):
    _seed_violation(tmp_path)
    assert main(["lint", str(tmp_path), "--no-baseline",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "DET001"
    assert finding["line"] == 7
    assert payload["errors"] == []


def test_write_baseline_then_lint_passes(tmp_path, capsys):
    target = _seed_violation(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tmp_path), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # Fixing the violation leaves a stale entry (reported, not fatal).
    target.write_text('"""Fixture."""\n\n\ndef f():\n    return 0.0\n')
    assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_update_baseline_rewrites_the_file(tmp_path, capsys):
    _seed_violation(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tmp_path), "--baseline", str(baseline),
                 "--update-baseline", "--no-cache"]) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 2
    assert any(e["rule"] == "DET001" for e in payload["entries"])
    assert main(["lint", str(tmp_path), "--baseline", str(baseline),
                 "--no-cache"]) == 0


def test_update_baseline_refuses_partial_rule_runs(tmp_path, capsys):
    _seed_violation(tmp_path)
    for extra in (["--select", "DET001"], ["--ignore", "COR004"]):
        assert main(["lint", str(tmp_path), "--update-baseline",
                     *extra]) == 2
        assert "refusing" in capsys.readouterr().err


def test_select_restricts_rules(tmp_path, capsys):
    target = _seed_violation(tmp_path)
    target.write_text(target.read_text() + "\n\nimport os\n")
    assert main(["lint", str(tmp_path), "--no-baseline",
                 "--select", "COR004"]) == 1
    out = capsys.readouterr().out
    assert "COR004" in out
    assert "DET001" not in out


def test_unknown_rule_id_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path), "--select", "NOPE1"]) == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "absent")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_every_shipped_rule(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rules():
        assert rule_id in out


def test_python_dash_m_entry_point(tmp_path):
    _seed_violation(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(tmp_path),
         "--no-baseline"],
        capture_output=True, text=True, env=env, cwd=str(tmp_path),
    )
    assert proc.returncode == 1
    assert "DET001" in proc.stdout

"""OBS003 — telemetry emission in hot code must go through the ring sink."""

from pathlib import Path

from repro.analysis import Engine, check_source

REPO_ROOT = Path(__file__).resolve().parents[2]


def _check(src):
    return check_source(
        src, module="repro.simcore.node", project=True, select=["OBS003"]
    )


def test_direct_trace_emit_in_hot_function():
    src = """\
class Node:
    def on_event(self, t):  # repro: hot
        self.trace.emit(t, "node", "tick")
"""
    findings = _check(src)
    assert [f.rule for f in findings] == ["OBS003"]
    assert "direct TraceLog write" in findings[0].message
    assert "telemetry.emit" in findings[0].message


def test_direct_trace_append_in_hot_function():
    src = """\
class Node:
    def on_event(self, record):  # repro: hot
        self._trace.append(record)
"""
    findings = _check(src)
    assert [f.rule for f in findings] == ["OBS003"]


def test_per_event_registry_resolution_in_hot_function():
    src = """\
class Node:
    def on_event(self):  # repro: hot
        self.metrics.counter("node_ticks_total").inc()
"""
    findings = _check(src)
    assert [f.rule for f in findings] == ["OBS003"]
    assert "registry resolution" in findings[0].message
    assert "telemetry.count" in findings[0].message


def test_sanctioned_telemetry_paths_are_silent():
    src = """\
class Node:
    def on_event(self, t):  # repro: hot
        self.telemetry.emit(t, "node", "tick")
        self.telemetry.count("node_ticks_total")
        self._hist.observe(1.0)
        self._ticks.inc()
"""
    assert _check(src) == []


def test_cold_function_is_silent():
    src = """\
class Node:
    def report(self, t):
        self.trace.emit(t, "node", "summary")
"""
    assert _check(src) == []


def test_finding_carries_witness_chain_and_endpoint():
    src = """\
def step(node, t):  # repro: hot
    emit_tick(node, t)


def emit_tick(node, t):
    node.trace.emit(t, "node", "tick")
"""
    findings = _check(src)
    assert [f.rule for f in findings] == ["OBS003"]
    assert "hot via" in findings[0].message
    assert findings[0].endpoint.endswith("::step")


def test_noqa_suppresses():
    src = """\
class Node:
    def on_event(self, t):  # repro: hot
        self.trace.emit(t, "node", "tick")  # repro: noqa[OBS003]
"""
    assert _check(src) == []


def test_real_tree_is_clean():
    # The actual hot closure routes every emission through the ring
    # sink; any regression shows up here before it shows up in the
    # overhead gate.
    result = Engine(select=["OBS003"]).check_paths([REPO_ROOT / "src"])
    assert [f.message for f in result.findings] == []

"""COR001-COR004: float equality, mutable defaults, __all__, imports."""

from repro.analysis import check_source

MODULE = "repro.core.protocol"


def rules_for(src, module=MODULE):
    return sorted({f.rule for f in check_source(src, module=module)})


# -- COR001: float equality on time quantities --------------------------

def test_offset_equality_flagged():
    assert rules_for("same = offset == prev_offset\n") == ["COR001"]


def test_suffixed_quantity_equality_flagged():
    assert rules_for("hit = elapsed_ms != budget_ms\n") == ["COR001"]


def test_tolerance_comparison_clean():
    assert rules_for("close = abs(offset - prev) < 1e-9\n") == []


def test_ordering_comparisons_clean():
    assert rules_for("late = offset > threshold\n") == []


def test_allcaps_bytes_sentinel_exempt():
    assert rules_for("unset = data == ZERO_TIMESTAMP\n") == []


def test_string_and_none_comparisons_exempt():
    assert rules_for("named = offset_label == 'raw'\n") == []
    assert rules_for("missing = last_offset == None\n") == []


# -- COR002: mutable default arguments ----------------------------------

def test_list_default_flagged():
    assert rules_for("def f(samples=[]):\n    return samples\n") == ["COR002"]


def test_dict_constructor_default_flagged():
    src = "def f(*, table=dict()):\n    return table\n"
    assert rules_for(src) == ["COR002"]


def test_none_default_clean():
    src = "def f(samples=None):\n    return samples or []\n"
    assert rules_for(src) == []


def test_nested_function_defaults_checked():
    src = (
        "def outer():\n"
        "    def inner(acc={}):\n"
        "        return acc\n"
        "    return inner\n"
    )
    assert rules_for(src) == ["COR002"]


# -- COR003: __all__ in package __init__ --------------------------------

INIT_WITHOUT_ALL = "from repro.core.protocol import Mntp\n"
INIT_WITH_ALL = INIT_WITHOUT_ALL + "\n__all__ = ['Mntp']\n"


def test_init_without_all_flagged():
    findings = check_source(
        INIT_WITHOUT_ALL, module="repro.core",
        path="src/repro/core/__init__.py", select=["COR003"],
    )
    assert [f.rule for f in findings] == ["COR003"]


def test_init_with_all_clean():
    findings = check_source(
        INIT_WITH_ALL, module="repro.core",
        path="src/repro/core/__init__.py", select=["COR003"],
    )
    assert findings == []


def test_non_init_module_not_required_to_declare_all():
    findings = check_source(
        INIT_WITHOUT_ALL, module="repro.core.protocol",
        path="src/repro/core/protocol.py", select=["COR003"],
    )
    assert findings == []


# -- COR004: unused imports ---------------------------------------------

def test_unused_import_flagged():
    assert rules_for("import os\n\nx = 1\n") == ["COR004"]


def test_used_import_clean():
    assert rules_for("import os\n\nx = os.getpid\n") == []


def test_quoted_annotation_counts_as_use():
    src = (
        "from typing import Dict\n\n"
        "registry: \"Dict[str, int]\" = {}\n"
    )
    assert rules_for(src) == []


def test_dunder_all_reexport_counts_as_use():
    src = (
        "from repro.core.protocol import Mntp\n\n"
        "__all__ = ['Mntp']\n"
    )
    findings = check_source(
        src, module="repro.core", path="src/repro/core/__init__.py",
        select=["COR004"],
    )
    assert findings == []


def test_optional_dependency_guard_exempt():
    src = (
        "try:\n"
        "    import fancy_dep\n"
        "except ImportError:\n"
        "    fancy_dep = None\n"
    )
    assert rules_for(src) == []


def test_future_import_exempt():
    assert rules_for("from __future__ import annotations\n\nx = 1\n") == []

"""Engine mechanics: suppressions, fingerprints, rule selection."""

from pathlib import Path

import pytest

from repro.analysis import Engine, Finding, check_source, fingerprint_findings
from repro.analysis.engine import module_parts_for

WALL_CLOCK_SRC = """\
import time

def now():
    return time.time()
"""


def test_finding_renders_with_anchor():
    f = Finding("DET001", "src/x.py", 4, 12, "no wall clock")
    assert f.anchor() == "src/x.py:4:12"
    assert f.render() == "src/x.py:4:12: DET001 no wall clock"


def test_inline_noqa_with_rule_suppresses():
    src = WALL_CLOCK_SRC.replace(
        "return time.time()",
        "return time.time()  # repro: noqa[DET001] host calibration",
    )
    assert check_source(src, module="repro.simcore.clocksource") == []


def test_inline_noqa_bare_suppresses_everything():
    src = WALL_CLOCK_SRC.replace(
        "return time.time()", "return time.time()  # repro: noqa"
    )
    assert check_source(src, module="repro.simcore.clocksource") == []


def test_noqa_for_other_rule_does_not_suppress():
    src = WALL_CLOCK_SRC.replace(
        "return time.time()", "return time.time()  # repro: noqa[COR001]"
    )
    findings = check_source(src, module="repro.simcore.clocksource")
    assert [f.rule for f in findings] == ["DET001"]


def test_noqa_multi_rule_list_suppresses_each_listed_rule():
    src = (
        "import os, time\n"  # COR002 (multi-import) + COR004 (os unused)
        "\n\n"
        "def now():\n"
        "    return time.time()\n"
    ).replace(
        "import os, time",
        "import os, time  # repro: noqa[COR002, COR004]",
    )
    findings = check_source(src, module="repro.simcore.clocksource")
    assert [f.rule for f in findings] == ["DET001"]


def test_noqa_multi_rule_list_leaves_unlisted_rule_on_same_line():
    # The line produces COR002 and COR004; only COR002 is listed, so
    # COR004 must survive.
    src = (
        "import os, time  # repro: noqa[COR002]\n"
        "\n\n"
        "def _now():\n"
        "    return time.time()  # repro: noqa[DET001]\n"
    )
    findings = check_source(src, module="repro.simcore.clocksource")
    assert [f.rule for f in findings] == ["COR004"]


@pytest.mark.parametrize("comment", [
    "# repro: noqa[DET001",      # unclosed bracket
    "# repro: noqa[]",           # empty rule list
    "# repro: noqa[,]",          # separators only
    "# repro: noqa[DET001,,COR001]",  # doubled separator
])
def test_malformed_noqa_warns_and_suppresses_nothing(tmp_path, comment):
    target = tmp_path / "repro" / "simcore" / "clk.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        WALL_CLOCK_SRC.replace(
            "return time.time()", f"return time.time()  {comment}"
        )
    )
    result = Engine(select=["DET001"]).check_paths([target])
    assert [f.rule for f in result.findings] == ["DET001"]
    assert len(result.warnings) == 1
    assert "malformed noqa" in result.warnings[0]
    assert "clk.py:4" in result.warnings[0]


def test_malformed_noqa_warning_reaches_human_and_json_output(tmp_path):
    from repro.analysis.baseline import match_baseline
    from repro.analysis.reporting import render_human, render_json

    target = tmp_path / "repro" / "simcore" / "clk.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        WALL_CLOCK_SRC.replace(
            "return time.time()", "return time.time()  # repro: noqa[]"
        )
    )
    result = Engine(select=["DET001"]).check_paths([target])
    match = match_baseline(result.findings, set())
    assert "warning:" in render_human(result, match)
    import json

    assert json.loads(render_json(result, match))["warnings"]


def test_noqa_on_different_line_does_not_suppress():
    src = "# repro: noqa[DET001]\n" + WALL_CLOCK_SRC
    findings = check_source(src, module="repro.simcore.clocksource")
    assert [f.rule for f in findings] == ["DET001"]


def test_select_runs_only_chosen_rules():
    src = "import os\n" + WALL_CLOCK_SRC  # os unused -> COR004
    only_det = check_source(
        src, module="repro.simcore.clocksource", select=["DET001"]
    )
    assert [f.rule for f in only_det] == ["DET001"]


def test_ignore_drops_rules():
    src = "import os\n" + WALL_CLOCK_SRC
    findings = check_source(
        src, module="repro.simcore.clocksource", ignore=["COR004"]
    )
    assert [f.rule for f in findings] == ["DET001"]


def test_unknown_rule_ids_rejected():
    with pytest.raises(ValueError, match="NOPE999"):
        Engine(select=["NOPE999"])
    with pytest.raises(ValueError, match="NOPE999"):
        Engine(ignore=["NOPE999"])


def test_fingerprints_are_line_independent_with_occurrence_index():
    first = [
        Finding("COR004", "a.py", 3, 1, "import 'os' is never used"),
        Finding("COR004", "a.py", 9, 1, "import 'os' is never used"),
    ]
    shifted = [
        Finding("COR004", "a.py", 13, 1, "import 'os' is never used"),
        Finding("COR004", "a.py", 29, 1, "import 'os' is never used"),
    ]
    assert fingerprint_findings(first) == fingerprint_findings(shifted)
    assert fingerprint_findings(first) == [
        ("COR004", "a.py", "import 'os' is never used", "", 0),
        ("COR004", "a.py", "import 'os' is never used", "", 1),
    ]


def test_fingerprint_includes_endpoint_for_cross_file_findings():
    plain = Finding("UNIT005", "a.py", 3, 1, "unit mismatch")
    with_endpoint = Finding(
        "UNIT005", "a.py", 3, 1, "unit mismatch", endpoint="b.py::helper"
    )
    assert fingerprint_findings([plain]) != fingerprint_findings(
        [with_endpoint]
    )
    assert fingerprint_findings([with_endpoint]) == [
        ("UNIT005", "a.py", "unit mismatch", "b.py::helper", 0),
    ]


def test_module_parts_inferred_from_repro_directory():
    assert module_parts_for(Path("src/repro/ntp/wire.py")) == (
        "repro", "ntp", "wire",
    )
    assert module_parts_for(Path("src/repro/simcore/__init__.py")) == (
        "repro", "simcore",
    )
    assert module_parts_for(Path("scratch/tool.py")) == ("tool",)


def test_check_paths_records_unparsable_files(tmp_path):
    good = tmp_path / "repro" / "simcore" / "ok.py"
    good.parent.mkdir(parents=True)
    good.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    bad = tmp_path / "repro" / "simcore" / "broken.py"
    bad.write_text("def :(\n")
    result = Engine().check_paths([tmp_path])
    assert result.files_checked == 1
    assert [f.rule for f in result.findings] == ["DET001"]
    assert len(result.errors) == 1
    assert "broken.py" in result.errors[0]


def test_check_paths_accepts_single_file(tmp_path):
    target = tmp_path / "repro" / "clock" / "osc.py"
    target.parent.mkdir(parents=True)
    target.write_text(WALL_CLOCK_SRC)
    result = Engine().check_paths([target])
    assert [f.rule for f in result.findings] == ["DET001"]

"""Interprocedural rules (UNIT004/UNIT005/DET004/COR005) over fixtures.

Single-module cases go through ``check_source(project=True)``; the
cross-module cases build a real tree under ``tmp_path`` and run
``Engine.check_paths`` so resolution exercises the same import-map
machinery production runs use.
"""

from pathlib import Path

from repro.analysis import Engine, check_source
from repro.analysis.engine import load_source
from repro.analysis.flow import Project, summarize


def _project_findings(src, module="repro.simcore.node"):
    return check_source(src, module=module, project=True,
                        select=["UNIT004"])


def _write_tree(tmp_path, files):
    for relpath, text in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return tmp_path


def _rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# UNIT004 — call-site argument unit mismatch


def test_unit004_positional_mismatch():
    src = """\
def wait(timeout_s):
    return timeout_s


def run(delay_ms):
    return wait(delay_ms)
"""
    findings = _project_findings(src)
    assert _rules_of(findings) == ["UNIT004"]
    assert "'delay_ms'" in findings[0].message
    assert "'timeout_s'" in findings[0].message
    assert findings[0].endpoint.endswith("::wait")


def test_unit004_keyword_mismatch():
    src = """\
def wait(*, timeout_s=1.0):
    return timeout_s


def run(delay_ns):
    return wait(timeout_s=delay_ns)
"""
    findings = _project_findings(src)
    assert _rules_of(findings) == ["UNIT004"]


def test_unit004_matching_units_are_silent():
    src = """\
def wait(timeout_s):
    return timeout_s


def run(delay_s):
    return wait(delay_s)
"""
    assert _project_findings(src) == []


def test_unit004_cross_module(tmp_path):
    _write_tree(tmp_path, {
        "repro/util/timing.py": (
            "def sleep_for(duration_s):\n    return duration_s\n"
        ),
        "repro/simcore/node.py": (
            "from repro.util.timing import sleep_for\n\n\n"
            "def step(dt_ms):\n    return sleep_for(dt_ms)\n"
        ),
    })
    result = Engine(select=["UNIT004"]).check_paths(
        [tmp_path], reference_roots=[]
    )
    assert _rules_of(result.findings) == ["UNIT004"]
    assert result.findings[0].endpoint.endswith("timing.py::sleep_for")


# ---------------------------------------------------------------------------
# UNIT005 — return-unit mismatch on assignment


def test_unit005_direct_return_suffix():
    src = """\
def poll_interval_ms():
    return 64.0


def run():
    interval_s = poll_interval_ms()
    return interval_s
"""
    findings = check_source(src, module="repro.ntp.poll", project=True,
                            select=["UNIT005"])
    assert _rules_of(findings) == ["UNIT005"]
    assert "'interval_s'" in findings[0].message


def test_unit005_inferred_through_call_chain():
    src = """\
def inner_ms():
    return 5.0


def outer():
    return inner_ms()


def run():
    x_s = outer()
    return x_s
"""
    findings = check_source(src, module="repro.ntp.poll", project=True,
                            select=["UNIT005"])
    assert _rules_of(findings) == ["UNIT005"]
    assert "returns 'ms'" in findings[0].message


def test_unit005_conflicting_returns_stay_silent():
    src = """\
def pick(flag, a_s, b_ms):
    if flag:
        return a_s
    return b_ms


def run():
    x_s = pick(True, 1.0, 2.0)
    return x_s
"""
    findings = check_source(src, module="repro.ntp.poll", project=True,
                            select=["UNIT005"])
    assert findings == []


# ---------------------------------------------------------------------------
# DET004 — transitive effects reaching simulation code


def test_det004_via_out_of_scope_helper(tmp_path):
    _write_tree(tmp_path, {
        "repro/reporting/stamp.py": (
            "import time\n\n\n"
            "def stamp():\n    return time.time()\n"
        ),
        "repro/simcore/node.py": (
            "from repro.reporting.stamp import stamp\n\n\n"
            "def step():\n    return stamp()\n"
        ),
    })
    result = Engine(select=["DET004"]).check_paths(
        [tmp_path], reference_roots=[]
    )
    assert _rules_of(result.findings) == ["DET004"]
    finding = result.findings[0]
    assert "wall-clock call time.time()" in finding.message
    assert finding.endpoint.endswith("stamp.py::stamp")
    assert finding.path.endswith("node.py")


def test_det004_reports_at_boundary_only(tmp_path):
    # step -> helper (in scope, effect-free itself) -> stamp (outside).
    # The finding must anchor at helper's call to stamp, not at step.
    _write_tree(tmp_path, {
        "repro/reporting/stamp.py": (
            "import time\n\n\n"
            "def stamp():\n    return time.time()\n"
        ),
        "repro/simcore/node.py": (
            "from repro.reporting.stamp import stamp\n\n\n"
            "def helper():\n    return stamp()\n\n\n"
            "def step():\n    return helper()\n"
        ),
    })
    result = Engine(select=["DET004"]).check_paths(
        [tmp_path], reference_roots=[]
    )
    assert len(result.findings) == 1
    assert ".helper' transitively" in result.findings[0].message


def test_det004_noqa_on_direct_call_suppresses_the_chain(tmp_path):
    _write_tree(tmp_path, {
        "repro/reporting/stamp.py": (
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  # repro: noqa[DET004] report header\n"
        ),
        "repro/simcore/node.py": (
            "from repro.reporting.stamp import stamp\n\n\n"
            "def step():\n    return stamp()\n"
        ),
    })
    result = Engine(select=["DET004"]).check_paths(
        [tmp_path], reference_roots=[]
    )
    assert result.findings == []


def test_det004_outside_simulation_packages_not_policed(tmp_path):
    _write_tree(tmp_path, {
        "repro/reporting/stamp.py": (
            "import time\n\n\n"
            "def stamp():\n    return time.time()\n"
        ),
        "repro/reporting/render.py": (
            "from repro.reporting.stamp import stamp\n\n\n"
            "def header():\n    return stamp()\n"
        ),
    })
    result = Engine(select=["DET004"]).check_paths(
        [tmp_path], reference_roots=[]
    )
    assert result.findings == []


# ---------------------------------------------------------------------------
# COR005 — dead public functions


def test_cor005_flags_uncalled_public_function(tmp_path):
    _write_tree(tmp_path, {
        "repro/util/spare.py": "def orphan():\n    return 1\n",
    })
    result = Engine(select=["COR005"]).check_paths(
        [tmp_path], reference_roots=[]
    )
    assert _rules_of(result.findings) == ["COR005"]
    assert "repro.util.spare.orphan" in result.findings[0].message


def test_cor005_reference_root_token_keeps_function_alive(tmp_path):
    _write_tree(tmp_path, {
        "repro/util/spare.py": "def orphan():\n    return 1\n",
        "refs/test_spare.py": "VALUE = 'orphan'\n",
    })
    result = Engine(select=["COR005"]).check_paths(
        [tmp_path / "repro"], reference_roots=[tmp_path / "refs"]
    )
    assert result.findings == []


def test_cor005_skips_private_decorated_and_main(tmp_path):
    _write_tree(tmp_path, {
        "repro/util/spare.py": (
            "import functools\n\n\n"
            "def _hidden():\n    return 1\n\n\n"
            "@functools.lru_cache\n"
            "def cached():\n    return 2\n\n\n"
            "def main():\n    return 3\n"
        ),
    })
    result = Engine(select=["COR005"]).check_paths(
        [tmp_path], reference_roots=[]
    )
    assert result.findings == []


# ---------------------------------------------------------------------------
# flow plumbing exercised directly


def test_load_source_feeds_the_flow_summary(tmp_path):
    target = tmp_path / "repro" / "clock" / "osc.py"
    target.parent.mkdir(parents=True)
    target.write_text("def drift_ppm(rate_ppm):\n    return rate_ppm\n")
    module = load_source(target)
    summary = summarize(module)
    assert summary.dotted() == "repro.clock.osc"
    project = Project([summary])
    entry = project.functions["repro.clock.osc.drift_ppm"]
    assert entry.info.name == "drift_ppm"

"""SARIF 2.1.0 output: structure, locations, and notifications."""

import json

from repro.analysis.baseline import match_baseline
from repro.analysis.cli import main
from repro.analysis.engine import TOOL_VERSION, AnalysisResult, Finding
from repro.analysis.reporting import render_sarif


def _doc(result, match):
    return json.loads(render_sarif(result, match))


def test_sarif_document_structure():
    findings = [
        Finding("DET001", "src/repro/simcore/x.py", 4, 12,
                "no wall clock in simulation code"),
        Finding("UNIT004", "src/repro/ntp/y.py", 9, 5,
                "argument unit mismatch", endpoint="src/repro/ntp/z.py::f"),
    ]
    result = AnalysisResult(findings=findings, files_checked=2)
    doc = _doc(result, match_baseline(findings, set()))

    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-mntp-lint"
    assert driver["version"] == TOOL_VERSION

    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert set(rule_ids) == {"DET001", "UNIT004"}
    assert all(r["shortDescription"]["text"] for r in driver["rules"])

    assert len(run["results"]) == 2
    for res in run["results"]:
        assert res["level"] == "error"
        assert res["message"]["text"]
        # ruleIndex must agree with the rules array.
        assert driver["rules"][res["ruleIndex"]]["id"] == res["ruleId"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].startswith("src/")
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1


def test_sarif_columns_are_one_based():
    findings = [Finding("COR004", "a.py", 1, 0, "import 'os' is never used")]
    result = AnalysisResult(findings=findings, files_checked=1)
    doc = _doc(result, match_baseline(findings, set()))
    region = doc["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]["region"]
    assert region["startColumn"] == 1


def test_sarif_warnings_become_notifications():
    result = AnalysisResult(
        files_checked=1,
        warnings=["x.py:3: malformed noqa rule list"],
        errors=["y.py: invalid syntax"],
    )
    doc = _doc(result, match_baseline([], set()))
    (invocation,) = doc["runs"][0]["invocations"]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert {n["level"] for n in notes} == {"warning", "error"}


def test_sarif_baselined_findings_are_excluded():
    findings = [Finding("COR004", "a.py", 1, 0, "import 'os' is never used")]
    result = AnalysisResult(findings=findings, files_checked=1)
    baseline = {("COR004", "a.py", "import 'os' is never used", "", 0)}
    doc = _doc(result, match_baseline(findings, baseline))
    assert doc["runs"][0]["results"] == []


def test_cli_emits_valid_sarif(tmp_path, capsys):
    target = tmp_path / "repro" / "simcore" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\n\n\ndef _now():\n    return time.time()\n")
    code = main([
        str(tmp_path), "--no-baseline", "--no-cache", "--format", "sarif",
    ])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["DET001"]
    assert results[0]["locations"][0]["physicalLocation"][
        "artifactLocation"]["uri"].endswith("repro/simcore/mod.py")


def test_sarif_results_carry_partial_fingerprints():
    findings = [
        Finding("DET001", "src/repro/simcore/x.py", 4, 12,
                "no wall clock in simulation code"),
        Finding("DET001", "src/repro/simcore/x.py", 9, 12,
                "no wall clock in simulation code"),
    ]
    result = AnalysisResult(findings=findings, files_checked=1)
    doc = _doc(result, match_baseline(findings, set()))
    prints = [
        r["partialFingerprints"]["reproLintFingerprint/v2"]
        for r in doc["runs"][0]["results"]
    ]
    assert all(len(p) == 16 and int(p, 16) >= 0 for p in prints)
    # Identical findings are distinguished by their occurrence index.
    assert prints[0] != prints[1]


def test_sarif_fingerprints_are_stable_across_line_shifts():
    def digest_at(line):
        findings = [Finding("COR004", "a.py", line, 0,
                            "import 'os' is never used")]
        result = AnalysisResult(findings=findings, files_checked=1)
        doc = _doc(result, match_baseline(findings, set()))
        return doc["runs"][0]["results"][0][
            "partialFingerprints"]["reproLintFingerprint/v2"]

    assert digest_at(1) == digest_at(40)


def test_sarif_fingerprints_count_occurrences_with_baselined(tmp_path):
    # A baselined sibling must still advance the occurrence index, so
    # the hash matches what a no-baseline run would produce.
    findings = [
        Finding("COR004", "a.py", 1, 0, "import 'os' is never used"),
        Finding("COR004", "a.py", 9, 0, "import 'os' is never used"),
    ]
    result = AnalysisResult(findings=findings, files_checked=1)
    baseline = {("COR004", "a.py", "import 'os' is never used", "", 0)}
    with_baseline = _doc(result, match_baseline(findings, baseline))
    without = _doc(result, match_baseline(findings, set()))
    (survivor,) = with_baseline["runs"][0]["results"]
    assert survivor["partialFingerprints"] == without["runs"][0][
        "results"][1]["partialFingerprints"]

"""Self-tuning (AutoTuner)."""

import numpy as np
import pytest

from repro.core.config import MntpConfig
from repro.tuner.autotune import AutoTuneOptions, AutoTuner, TuneOutcome
from repro.tuner.searcher import SearchSpace
from repro.tuner.traces import OffsetTrace, TraceEntry

SOURCES = ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")


def _trace(duration=7200.0, cadence=5.0, noise=0.004, seed=0):
    rng = np.random.default_rng(seed)
    trace = OffsetTrace(cadence=cadence)
    t = 0.0
    while t < duration:
        trace.append(TraceEntry(
            time=t, rssi_dbm=-45.0, noise_dbm=-92.0,
            offsets={s: 1e-6 * t + float(rng.normal(0, noise)) for s in SOURCES},
        ))
        t += cadence
    return trace


SPACE = SearchSpace(
    warmup_periods=(300.0, 900.0),
    warmup_wait_times=(5.0, 30.0),
    regular_wait_times=(60.0, 300.0),
    reset_periods=(7200.0,),
)


def test_recommends_cheapest_meeting_target():
    tuner = AutoTuner(space=SPACE, options=AutoTuneOptions(target_rmse_ms=20.0))
    outcome = tuner.tune(_trace())
    assert outcome.recommended is not None
    assert outcome.met_target
    # The recommended config is the cheapest among those meeting target.
    chosen = [r for r in outcome.evaluated if r.config == outcome.recommended]
    assert chosen
    meeting = [r for r in outcome.evaluated if r.rmse_ms <= 20.0]
    assert chosen[0].requests == min(r.requests for r in meeting)


def test_budget_constraint_respected():
    tuner = AutoTuner(
        space=SPACE,
        options=AutoTuneOptions(target_rmse_ms=0.001,  # unreachable
                                max_requests_per_hour=200.0),
    )
    trace = _trace()
    outcome = tuner.tune(trace)
    assert outcome.recommended is not None
    assert not outcome.met_target
    chosen = [r for r in outcome.evaluated if r.config == outcome.recommended][0]
    assert chosen.requests / (trace.duration / 3600.0) <= 200.0


def test_no_viable_config():
    tuner = AutoTuner(
        space=SPACE,
        options=AutoTuneOptions(max_requests_per_hour=0.001),
    )
    outcome = tuner.tune(_trace())
    assert outcome.recommended is None
    assert outcome.evaluated  # still scored everything


def test_pareto_front_is_monotone():
    tuner = AutoTuner(space=SPACE)
    outcome = tuner.tune(_trace())
    front = outcome.pareto
    assert front
    requests = [r.requests for r in front]
    rmses = [r.rmse_ms for r in front]
    assert requests == sorted(requests)
    assert rmses == sorted(rmses, reverse=True)
    # No evaluated config dominates a front member.
    for member in front:
        for other in outcome.evaluated:
            assert not (
                other.requests < member.requests and other.rmse_ms < member.rmse_ms
            )


def test_rolling_window():
    tuner = AutoTuner(space=SPACE)
    trace = _trace(duration=4 * 3600.0)
    outcome = tuner.tune_window(trace, window=3600.0)
    assert isinstance(outcome, TuneOutcome)
    with pytest.raises(ValueError):
        tuner.tune_window(trace, window=0.0)


def test_empty_trace():
    tuner = AutoTuner(space=SPACE)
    outcome = tuner.tune(OffsetTrace())
    assert outcome.recommended is None

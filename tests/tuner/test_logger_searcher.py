"""Trace logger and parameter searcher."""

import pytest

from repro.core.config import MntpConfig
from repro.testbed.nodes import TestbedOptions
from repro.tuner.logger import LoggerOptions, TraceLogger
from repro.tuner.searcher import ParameterSearcher, SearchSpace


@pytest.fixture(scope="module")
def short_trace():
    options = LoggerOptions(
        duration=1800.0,
        cadence=5.0,
        testbed=TestbedOptions(wireless=True, ntp_correction=False),
    )
    return TraceLogger(seed=4, options=options).run()


def test_logger_records_cadence(short_trace):
    assert len(short_trace) == pytest.approx(360, abs=5)
    times = [e.time for e in short_trace]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(5.0, abs=0.01) for g in gaps)


def test_logger_records_three_sources(short_trace):
    for entry in short_trace.entries[:20]:
        assert set(entry.offsets) == {
            "0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org",
        }


def test_logger_records_hints_and_truth(short_trace):
    entry = short_trace.entries[0]
    assert -120 < entry.rssi_dbm < 0
    assert -120 < entry.noise_dbm < 0
    assert entry.true_offset is not None


def test_logger_some_queries_fail_on_wireless(short_trace):
    failures = sum(
        1 for e in short_trace for v in e.offsets.values() if v is None
    )
    assert failures > 0  # lossy channel must lose some


def test_search_space_combinations():
    space = SearchSpace(
        warmup_periods=(600.0, 1200.0),
        warmup_wait_times=(5.0,),
        regular_wait_times=(60.0,),
        reset_periods=(900.0,),
    )
    combos = space.combinations()
    # warmup 1200 > reset 900 is skipped.
    assert combos == [(600.0, 5.0, 60.0, 900.0)]


def test_searcher_sorts_by_rmse(short_trace):
    space = SearchSpace(
        warmup_periods=(300.0, 900.0),
        warmup_wait_times=(5.0, 15.0),
        regular_wait_times=(60.0,),
        reset_periods=(1800.0,),
    )
    results = ParameterSearcher(short_trace, space=space).search()
    assert len(results) == 4
    rmses = [r.rmse_ms for r in results]
    assert rmses == sorted(rmses)
    assert all(r.requests > 0 for r in results)


def test_evaluate_single_config(short_trace):
    config = MntpConfig(
        warmup_period=300.0, warmup_wait_time=5.0,
        regular_wait_time=60.0, reset_period=1800.0,
    )
    result = ParameterSearcher(short_trace).evaluate(config)
    assert result.rmse_ms >= 0.0
    row = result.row()
    assert row[0] == pytest.approx(5.0)  # warmup period in minutes
    assert row[4] == result.rmse_ms

"""Tuner trace format and serialisation."""

import io

import pytest

from repro.tuner.traces import OffsetTrace, TraceEntry


def _entry(t, rssi=-50.0, noise=-92.0, offsets=None, truth=None):
    return TraceEntry(
        time=t, rssi_dbm=rssi, noise_dbm=noise,
        offsets=offsets or {"0.pool.ntp.org": 0.001}, true_offset=truth,
    )


def test_append_and_len():
    trace = OffsetTrace()
    trace.append(_entry(0.0))
    trace.append(_entry(5.0))
    assert len(trace) == 2
    assert trace.duration == 5.0


def test_time_order_enforced():
    trace = OffsetTrace()
    trace.append(_entry(10.0))
    with pytest.raises(ValueError):
        trace.append(_entry(5.0))


def test_entry_hints():
    e = _entry(0.0, rssi=-60.0, noise=-90.0)
    assert e.hints.snr_margin_db == 30.0


def test_sources_enumeration():
    trace = OffsetTrace()
    trace.append(_entry(0.0, offsets={"a": 0.1, "b": None}))
    trace.append(_entry(5.0, offsets={"c": 0.2}))
    assert trace.sources() == ["a", "b", "c"]


def test_json_roundtrip_entry():
    e = _entry(3.5, offsets={"a": 0.01, "b": None}, truth=0.002)
    back = TraceEntry.from_json(e.to_json())
    assert back.time == e.time
    assert back.offsets == e.offsets
    assert back.true_offset == e.true_offset


def test_save_load_roundtrip():
    trace = OffsetTrace(cadence=5.0)
    for i in range(10):
        trace.append(_entry(i * 5.0, offsets={"x": 0.001 * i, "y": None}))
    buf = io.StringIO()
    trace.save(buf)
    buf.seek(0)
    loaded = OffsetTrace.load(buf)
    assert len(loaded) == 10
    assert loaded.cadence == 5.0
    assert loaded.entries[3].offsets == trace.entries[3].offsets


def test_load_rejects_foreign_file():
    buf = io.StringIO('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        OffsetTrace.load(buf)


def test_load_empty_file():
    assert len(OffsetTrace.load(io.StringIO(""))) == 0


def test_duration_empty():
    assert OffsetTrace().duration == 0.0

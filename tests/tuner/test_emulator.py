"""Trace-driven MNTP emulation."""

import numpy as np
import pytest

from repro.core.config import MntpConfig
from repro.tuner.emulator import MntpEmulator
from repro.tuner.traces import OffsetTrace, TraceEntry

GOOD = dict(rssi_dbm=-45.0, noise_dbm=-92.0)
BAD = dict(rssi_dbm=-85.0, noise_dbm=-60.0)
SOURCES = ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")


def _trace(duration=3600.0, cadence=5.0, drift=2e-6, noise=0.002,
           spike_every=None, bad_hints_window=None, seed=0):
    """Synthetic trace: linear drift + noise, optional spikes/bad hints."""
    rng = np.random.default_rng(seed)
    trace = OffsetTrace(cadence=cadence)
    t = 0.0
    i = 0
    while t < duration:
        hints = dict(GOOD)
        if bad_hints_window and bad_hints_window[0] <= t < bad_hints_window[1]:
            hints = dict(BAD)
        offsets = {}
        for s in SOURCES:
            value = drift * t + float(rng.normal(0, noise))
            if spike_every and i % spike_every == spike_every - 1:
                value += 0.5
            offsets[s] = value
        trace.append(TraceEntry(time=t, offsets=offsets, **hints))
        t += cadence
        i += 1
    return trace


def _config(**overrides):
    base = dict(
        warmup_period=300.0,
        warmup_wait_time=5.0,
        regular_wait_time=30.0,
        reset_period=7200.0,
        min_warmup_samples=10,
    )
    base.update(overrides)
    return MntpConfig(**base)


def test_empty_trace():
    result = MntpEmulator(OffsetTrace(), _config()).run()
    assert result.reported == []
    assert result.rmse() == 0.0


def test_clean_trace_low_rmse():
    result = MntpEmulator(_trace(), _config()).run()
    assert result.reported
    assert result.rmse_ms() < 10.0


def test_spikes_rejected():
    result = MntpEmulator(_trace(spike_every=20), _config()).run()
    assert result.rejected
    # Spikes are 500 ms; reported (corrected) offsets stay small.
    assert result.rmse_ms() < 20.0


def test_bad_hints_defer():
    trace = _trace(bad_hints_window=(600.0, 1200.0))
    result = MntpEmulator(trace, _config()).run()
    assert result.deferred > 0


def test_hint_gate_disabled():
    trace = _trace(bad_hints_window=(600.0, 1200.0))
    config = _config(enable_hint_gate=False)
    result = MntpEmulator(trace, config).run()
    assert result.deferred == 0


def test_warmup_completion_and_reset():
    config = _config(warmup_period=300.0, reset_period=1800.0)
    result = MntpEmulator(_trace(duration=3700.0), config).run()
    assert result.warmup_completions >= 2
    assert result.resets >= 1


def test_more_frequent_sampling_more_requests():
    sparse = MntpEmulator(_trace(), _config(warmup_wait_time=60.0)).run()
    dense = MntpEmulator(_trace(), _config(warmup_wait_time=5.0)).run()
    assert dense.requests > sparse.requests


def test_longer_warmup_lower_rmse_shape():
    """Table 2's headline shape: more warm-up sampling, lower RMSE."""
    trace = _trace(duration=4 * 3600.0, noise=0.004, seed=3)
    short = MntpEmulator(
        trace, _config(warmup_period=600.0, warmup_wait_time=30.0,
                       regular_wait_time=900.0, reset_period=4 * 3600.0)
    ).run()
    long = MntpEmulator(
        trace, _config(warmup_period=2 * 3600.0, warmup_wait_time=5.0,
                       regular_wait_time=900.0, reset_period=4 * 3600.0)
    ).run()
    assert long.requests > short.requests
    assert long.rmse_ms() <= short.rmse_ms() * 1.5


def test_filter_disabled_reports_everything():
    result = MntpEmulator(
        _trace(spike_every=20), _config(enable_filter=False)
    ).run()
    assert result.rejected == []
    # Spikes leak through: RMSE inflated.
    assert result.rmse_ms() > 20.0


def test_regular_phase_falls_back_to_any_source():
    trace = OffsetTrace()
    t = 0.0
    while t < 900.0:
        # Regular source missing; another answers.
        trace.append(TraceEntry(
            time=t, offsets={"1.pool.ntp.org": 1e-6 * t}, **GOOD,
        ))
        t += 5.0
    config = _config(warmup_period=100.0, regular_wait_time=30.0)
    result = MntpEmulator(trace, config).run()
    assert result.raw_accepted

"""Ring-buffer sink: staging, auto-flush, drain-on-read, self-metering."""

import pytest

from repro.obs import (
    DEFAULT_RING_CAPACITY,
    MetricsRegistry,
    RingBufferSink,
    Telemetry,
    TraceSampler,
)
from repro.simcore.trace import TraceLog


def make_sink(capacity=8, sampler=None):
    trace = TraceLog()
    metrics = MetricsRegistry()
    sink = RingBufferSink(trace, metrics, capacity=capacity, sampler=sampler)
    return trace, metrics, sink


def test_emit_stages_without_touching_the_log():
    trace, _metrics, sink = make_sink()
    sink.emit(1.0, "mntp", "query_sent", {"server": "a"})
    assert sink.pending
    # The raw list is untouched until a flush/drain.
    assert len(trace._records) == 0


def test_flush_materialises_in_emission_order():
    trace, _metrics, sink = make_sink()
    for i in range(5):
        sink.emit(float(i), "mntp", "query_sent", {"i": i})
    assert sink.flush() == 5
    assert [r.data["i"] for r in trace] == [0, 1, 2, 3, 4]
    assert not sink.pending


def test_ring_full_triggers_auto_flush():
    trace, _metrics, sink = make_sink(capacity=3)
    for i in range(3):
        sink.emit(float(i), "c", "k", {"i": i})
    # Capacity reached: the third emit flushed synchronously.
    assert not sink.pending
    assert len(trace) == 3


def test_reading_the_log_drains_the_sink():
    trace, _metrics, sink = make_sink()
    sink.emit(0.0, "c", "k", {"i": 0})
    # len/iter/filter on TraceLog drain the attached sink first, so
    # consumers always see every staged record.
    assert len(trace) == 1
    assert [r.data["i"] for r in trace] == [0]
    assert not sink.pending


def test_direct_append_interleaves_with_staged_records():
    trace, _metrics, sink = make_sink()
    sink.emit(0.0, "c", "staged", {})
    trace.emit(1.0, "c", "direct")  # drains the sink before appending
    sink.emit(2.0, "c", "staged", {})
    assert [r.kind for r in trace] == ["staged", "direct", "staged"]


def test_counter_deltas_batch_until_flush():
    trace, metrics, sink = make_sink()
    for _ in range(10):
        sink.count("mntp_query_sent_total")
    sink.count("mntp_deferred_total", 2.0)
    assert metrics.value("mntp_query_sent_total") == 0.0  # still staged
    sink.flush()
    assert metrics.value("mntp_query_sent_total") == 10.0
    assert metrics.value("mntp_deferred_total") == 2.0
    assert not sink.pending
    del trace


def test_sampler_filters_at_flush_time():
    sampler = TraceSampler(rate=1_000_000)
    trace, metrics, sink = make_sink(sampler=sampler)
    sink.emit(0.0, "c", "query", {"trace_id": "tn-x/1"})
    sink.emit(1.0, "c", "drop", {"trace_id": "tn-x/2"})  # error: kept
    sink.emit(2.0, "c", "phase", {})  # no trace id: kept
    sink.flush()
    assert [r.kind for r in trace] == ["drop", "phase"]
    assert metrics.value("obs_overhead_sampled_out_total") == 1.0


def test_self_metering_counters():
    trace, metrics, sink = make_sink()
    for i in range(4):
        sink.emit(float(i), "c", "k", {})
    sink.count("x_total")
    sink.count("y_total")
    sink.flush()
    sink.flush()  # empty: not counted
    assert metrics.value("obs_overhead_records_total") == 4.0
    assert metrics.value("obs_overhead_flushes_total") == 1.0
    assert metrics.value("obs_overhead_metric_deltas_total") == 2.0
    assert metrics.value("obs_overhead_sampled_out_total") == 0.0
    del trace


def test_capacity_validation():
    with pytest.raises(ValueError):
        make_sink(capacity=0)
    assert DEFAULT_RING_CAPACITY >= 1


def test_telemetry_emit_routes_through_ring():
    telemetry = Telemetry(now_fn=lambda: 0.0, ring_capacity=16)
    telemetry.emit(0.0, "mntp", "query_sent", server="a")
    telemetry.count("mntp_query_sent_total")
    assert telemetry.ring.pending
    snap = telemetry.snapshot()  # snapshot flushes
    assert [r["kind"] for r in snap["records"]] == ["query_sent"]
    names = {m["name"] for m in snap["metrics"]}
    assert "mntp_query_sent_total" in names
    assert "obs_overhead_records_total" in names


def test_telemetry_without_ring_is_direct():
    telemetry = Telemetry(now_fn=lambda: 0.0)
    assert telemetry.ring is None
    telemetry.emit(0.0, "mntp", "query_sent", server="a")
    telemetry.count("mntp_query_sent_total")
    assert len(telemetry.trace) == 1
    assert telemetry.metrics.value("mntp_query_sent_total") == 1.0


def test_ring_keeps_runs_byte_deterministic():
    def run():
        telemetry = Telemetry(now_fn=lambda: 0.0, ring_capacity=4)
        for i in range(11):
            telemetry.emit(float(i), "c", "k", i=i)
            telemetry.count("k_total")
        return telemetry.snapshot()

    assert run() == run()

"""Run-health SLO monitor: spec, state machine, faults, replay."""

import json

import pytest

from repro.obs import (
    HEALTH_FORMAT,
    HealthMonitor,
    SloSpec,
    recovered_transitions,
    render_health_text,
    replay_health,
    smoke_spec,
)
from repro.testbed.scenarios import run_scenario


# -- SloSpec --------------------------------------------------------------


def test_spec_json_round_trip():
    spec = SloSpec(window_s=120.0, drop_rate_warn_ratio=0.2)
    again = SloSpec.from_json(spec.to_json())
    assert again == spec
    assert json.loads(spec.to_json())["window_s"] == 120.0


def test_spec_unknown_fields_rejected():
    with pytest.raises(ValueError, match="unknown SloSpec fields"):
        SloSpec.from_dict({"window_s": 60.0, "p99_err_ms": 5.0})
    with pytest.raises(ValueError, match="unknown SloSpec fields"):
        SloSpec.from_json('{"drop_warn": 0.1}')


def test_spec_json_must_be_object():
    with pytest.raises(ValueError, match="must be an object"):
        SloSpec.from_json("[1, 2]")


def test_spec_validation():
    with pytest.raises(ValueError, match="window_s"):
        SloSpec(window_s=0.0)
    with pytest.raises(ValueError, match="eval_interval_s"):
        SloSpec(eval_interval_s=-1.0)
    with pytest.raises(ValueError, match="min_samples"):
        SloSpec(min_samples=0)
    with pytest.raises(ValueError, match="must not exceed"):
        SloSpec(p99_abs_error_warn_ms=300.0, p99_abs_error_violate_ms=200.0)
    with pytest.raises(ValueError, match="lower rates are worse"):
        SloSpec(
            exchange_rate_warn_per_s=0.1, exchange_rate_violate_per_s=0.5
        )


# -- state machine over synthetic feeds -----------------------------------


def drive(monitor, t0, n, ok=True, error_s=0.001, client="c0", dt=1.0):
    for i in range(n):
        monitor.observe_exchange(
            t0 + i * dt, client, ok, offset_s=error_s, error_s=error_s
        )


def test_ok_run_stays_ok():
    monitor = HealthMonitor(SloSpec(window_s=60.0, eval_interval_s=10.0))
    drive(monitor, 0.0, 30)
    monitor.evaluate(30.0)
    assert monitor.state == "ok"
    report = monitor.report()
    assert report["format"] == HEALTH_FORMAT
    assert report["verdict"] == "pass"
    assert report["transitions"] == []
    assert "stayed ok" in render_health_text(report)


def test_drop_rate_degrades_then_recovers():
    spec = SloSpec(window_s=30.0, eval_interval_s=10.0, min_samples=5)
    monitor = HealthMonitor(spec)
    drive(monitor, 0.0, 10)
    monitor.evaluate(10.0)
    assert monitor.state == "ok"
    # 50% failures in the window: past warn (0.10), below violate (0.50).
    drive(monitor, 10.0, 5, ok=True)
    drive(monitor, 15.0, 5, ok=False)
    monitor.evaluate(20.0)
    assert monitor.state == "degraded"
    # Window slides clean again: degraded -> recovered -> ok.
    drive(monitor, 20.0, 40)
    monitor.evaluate(60.0)
    assert monitor.state == "recovered"
    monitor.evaluate(70.0)
    assert monitor.state == "ok"
    report = monitor.report()
    assert report["verdict"] == "degraded"  # outside any fault window
    assert report["transition_counts"] == {
        "degraded->recovered": 1, "ok->degraded": 1, "recovered->ok": 1,
    }
    assert recovered_transitions(report) == 1


def test_p99_error_violates():
    spec = SloSpec(window_s=60.0, eval_interval_s=10.0, min_samples=5)
    monitor = HealthMonitor(spec)
    drive(monitor, 0.0, 10, error_s=0.5)  # 500 ms >> violate (200 ms)
    monitor.evaluate(10.0)
    assert monitor.state == "violated"
    report = monitor.report()
    assert report["verdict"] == "violated"
    assert report["violations_outside_fault"] == 1
    assert report["transitions"][0]["signal"] == "p99_abs_error_ms"
    assert report["worst"]["p99_abs_error_ms"] == pytest.approx(500.0)


def test_starvation_signal():
    spec = SloSpec(window_s=1000.0, eval_interval_s=100.0, min_samples=1)
    monitor = HealthMonitor(spec)
    monitor.observe_exchange(0.0, "c0", True, offset_s=0.001)
    monitor.observe_exchange(0.0, "c1", True, offset_s=0.001)
    # c1 keeps syncing; c0 starves past warn (120 s).
    for t in range(100, 500, 100):
        monitor.observe_exchange(float(t), "c1", True, offset_s=0.001)
        monitor.evaluate(float(t))
    assert monitor.state == "degraded"
    assert monitor.report()["worst"]["starvation_s"] == pytest.approx(400.0)


def test_exchange_rate_signal_opt_in():
    quiet = SloSpec(window_s=100.0, eval_interval_s=50.0, min_samples=2)
    monitor = HealthMonitor(quiet)
    drive(monitor, 0.0, 4, dt=25.0)  # 0.04/s, but the signal is off
    monitor.evaluate(100.0)
    assert monitor.state == "ok"
    rated = SloSpec(
        window_s=100.0, eval_interval_s=50.0, min_samples=2,
        exchange_rate_warn_per_s=1.0, exchange_rate_violate_per_s=0.5,
    )
    monitor = HealthMonitor(rated)
    drive(monitor, 0.0, 4, dt=25.0)
    monitor.evaluate(100.0)
    assert monitor.state == "violated"
    assert monitor.report()["transitions"][0]["signal"] == (
        "exchange_rate_per_s"
    )


def test_fault_window_annotates_and_excuses():
    spec = SloSpec(
        window_s=60.0, eval_interval_s=10.0, min_samples=5,
        fault_grace_s=20.0,
    )
    monitor = HealthMonitor(spec)
    monitor.fault_begin(0.0)
    drive(monitor, 0.0, 10, error_s=0.5)
    monitor.evaluate(10.0)
    monitor.fault_end(12.0)
    assert monitor.state == "violated"
    # Still inside the grace period at t=30 (12 + 20 >= 30? no: 32 >= 30).
    assert monitor.in_fault_window(30.0)
    assert not monitor.in_fault_window(33.0)
    report = monitor.report()
    assert report["verdict"] == "pass"  # violation fell inside the episode
    assert report["violations_in_fault"] == 1
    assert report["violations_outside_fault"] == 0
    assert report["transitions"][0]["in_fault_window"] is True


def test_report_round_trips_as_json():
    monitor = HealthMonitor(SloSpec(window_s=30.0, eval_interval_s=10.0))
    drive(monitor, 0.0, 10)
    monitor.evaluate(10.0)
    report = monitor.report()
    assert json.loads(json.dumps(report, sort_keys=True)) == report
    assert report["spec"] == monitor.spec.to_dict()


# -- live scenario + replay determinism -----------------------------------


@pytest.fixture(scope="module")
def chaos_result():
    return run_scenario("chaos_smoke", seed=7, health_spec=smoke_spec())


def test_chaos_smoke_cycles_back_to_healthy(chaos_result):
    report = chaos_result.health
    assert report is not None
    assert report["format"] == HEALTH_FORMAT
    assert report["verdict"] != "violated"
    assert recovered_transitions(report) >= 1
    assert report["violations_outside_fault"] == 0
    # The seeded fault matrix must actually stress the run.
    assert any(tr["in_fault_window"] for tr in report["transitions"])


def test_replay_agrees_with_live_verdict(chaos_result):
    # The live feed judges poll outcomes + MNTP reports; the replay
    # judges every archived sntp.exchange span (MNTP's per-server
    # queries included), so the two see different exchange counts —
    # but both must reach the same verdict on the same run, with the
    # fault episodes excusing the same in-window violations.
    monitor = replay_health(
        chaos_result.telemetry,
        samples=chaos_result.offset_samples(),
        spec=smoke_spec(),
    )
    replayed = monitor.report()
    assert replayed["format"] == HEALTH_FORMAT
    assert replayed["verdict"] == chaos_result.health["verdict"]
    assert replayed["violations_outside_fault"] == 0
    assert recovered_transitions(replayed) >= 1


def test_replay_is_deterministic(chaos_result):
    a = replay_health(
        chaos_result.telemetry, samples=chaos_result.offset_samples(),
        spec=smoke_spec(),
    ).report()
    b = replay_health(
        chaos_result.telemetry, samples=chaos_result.offset_samples(),
        spec=smoke_spec(),
    ).report()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_health_transitions_land_in_telemetry(chaos_result):
    spans = [
        r for r in chaos_result.telemetry["records"]
        if r["component"] == "span" and r["kind"] == "health.transition"
    ]
    assert len(spans) == len(chaos_result.health["transitions"])
    for span, tr in zip(spans, chaos_result.health["transitions"]):
        assert span["data"]["to_state"] == tr["to"]
        assert span["data"]["from_state"] == tr["from"]


def test_same_seed_reports_identical(chaos_result):
    again = run_scenario("chaos_smoke", seed=7, health_spec=smoke_spec())
    assert again.health == chaos_result.health
    # ... and the replayed reports of the two archives are identical
    # too (the "same seed, same report, byte for byte" claim).
    replay_a = replay_health(
        chaos_result.telemetry, samples=chaos_result.offset_samples(),
        spec=smoke_spec(),
    ).report()
    replay_b = replay_health(
        again.telemetry, samples=again.offset_samples(), spec=smoke_spec()
    ).report()
    assert json.dumps(replay_a, sort_keys=True) == json.dumps(
        replay_b, sort_keys=True
    )


def test_unmonitored_run_has_no_health():
    result = run_scenario("wired_corrected", seed=1)
    assert result.health is None

"""Metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates_and_rejects_decrease():
    c = Counter("requests_total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_add_and_update_count():
    g = Gauge("drift_ppm")
    g.set(12.5)
    g.add(-2.5)
    assert g.value == 10.0
    assert g.updates == 2


def test_invalid_metric_name_rejected():
    with pytest.raises(ValueError):
        Counter("bad name")
    with pytest.raises(ValueError):
        Counter("0starts_with_digit")


def test_histogram_buckets_and_cumulative_counts():
    h = Histogram("residual_ms", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 0.9, 5.0, 50.0, 5000.0):
        h.observe(value)
    assert h.count == 5
    assert h.sum == pytest.approx(5056.4)
    # Per-bucket: <=1 twice, <=10 once, <=100 once, +Inf once.
    assert h.bucket_counts == [2, 1, 1, 1]
    assert h.cumulative_counts() == [2, 3, 4, 5]


def test_histogram_requires_a_bucket():
    with pytest.raises(ValueError):
        Histogram("empty", buckets=())


def test_registry_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    a = reg.counter("x_total")
    b = reg.counter("x_total")
    assert a is b
    assert len(reg) == 1
    assert "x_total" in reg


def test_registry_type_clash_is_an_error():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ValueError):
        reg.gauge("x_total")


def test_registry_value_and_names():
    reg = MetricsRegistry()
    reg.counter("b_total").inc(3)
    reg.gauge("a_gauge").set(7)
    assert reg.value("b_total") == 3.0
    assert reg.value("missing", default=-1.0) == -1.0
    assert reg.names() == ["a_gauge", "b_total"]


def test_snapshot_is_sorted_and_serialisable():
    import json

    reg = MetricsRegistry()
    reg.counter("z_total", help="last").inc()
    reg.histogram("a_ms", buckets=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert [m["name"] for m in snap] == ["a_ms", "z_total"]
    json.dumps(snap)  # must not raise

"""RunTimer: the sanctioned wall-clock boundary for bench/CLI layers."""

import pytest

from repro.obs import RunTimer


def test_measure_records_elapsed_time():
    timer = RunTimer()
    with timer.measure("work"):
        sum(range(1000))
    results = timer.results()
    assert set(results) == {"work"}
    assert results["work"] >= 0.0


def test_repeat_measurements_accumulate():
    timer = RunTimer()
    timer.record("a", 1.0)
    timer.record("b", 2.0)
    timer.record("a", 0.5)
    assert timer.results() == {"a": 1.5, "b": 2.0}
    assert list(timer.results()) == ["a", "b"]  # first-measured order
    assert timer.total() == pytest.approx(3.5)


def test_negative_duration_rejected():
    timer = RunTimer()
    with pytest.raises(ValueError):
        timer.record("a", -0.1)

"""Shard merge: canonical order-independence and identity properties."""

import io
import itertools
import json

import pytest

from repro.obs import (
    SHARD_FORMAT,
    TELEMETRY_FORMAT,
    Telemetry,
    content_id,
    iter_merged_records,
    make_shard,
    merge_documents,
    run_demo_shards,
    stream_jsonl,
    write_merged_jsonl,
)


def build_snapshot(seed, spans=2, events=3):
    """A small deterministic snapshot distinct per seed."""
    telemetry = Telemetry.standalone(start=float(seed))
    telemetry.metrics.counter("q_total", help="queries").inc(seed + 1)
    telemetry.metrics.gauge("drift_ppm").set(float(seed))
    hist = telemetry.metrics.histogram("lat_ms", buckets=(1.0, 10.0))
    for i in range(events):
        hist.observe(float(seed * 10 + i))
        telemetry.trace.emit(
            float(seed + i), "mntp", "offset_accepted",
            offset=seed * 0.001, trace_id=f"tn-{seed}/{i}",
        )
    for _ in range(spans):
        span = telemetry.spans.begin("mntp.query")
        telemetry.advance()
        span.end(outcome="ok")
    return telemetry.snapshot()


def shard_envelopes(n=3):
    return [
        make_shard(build_snapshot(seed), f"shard-{seed:04d}")
        for seed in range(n)
    ]


def merged_bytes(documents):
    buf = io.StringIO()
    write_merged_jsonl(documents, buf)
    return buf.getvalue()


def test_any_permutation_is_byte_identical():
    shards = shard_envelopes(3)
    reference = merged_bytes(shards)
    for permutation in itertools.permutations(shards):
        assert merged_bytes(list(permutation)) == reference
        assert merge_documents(list(permutation)) == merge_documents(shards)


def test_merge_single_shard_is_identity():
    snapshot = build_snapshot(1)
    merged = merge_documents([make_shard(snapshot, "only")])
    assert merged["metrics"] == snapshot["metrics"]
    assert merged["records"] == snapshot["records"]
    # Bare snapshots are accepted too, with the same identity.
    assert merge_documents([snapshot])["records"] == snapshot["records"]


def test_merged_jsonl_equals_merge_then_export():
    # The streaming path and the materialising path must agree byte
    # for byte.
    from repro.obs import write_jsonl

    shards = shard_envelopes(2)
    streamed = merged_bytes(shards)
    buf = io.StringIO()
    write_jsonl(merge_documents(shards), buf)
    assert streamed == buf.getvalue()


def test_counters_sum_and_histograms_bucket_merge():
    shards = shard_envelopes(2)
    merged = {m["name"]: m for m in merge_documents(shards)["metrics"]}
    assert merged["q_total"]["value"] == 1 + 2  # inc(seed + 1) per shard
    hist = merged["lat_ms"]
    assert hist["count"] == 6
    assert sum(hist["bucket_counts"]) == 6


def test_gauge_last_writer_wins_deterministically():
    a = build_snapshot(0)
    b = build_snapshot(5)
    merged = {
        m["name"]: m
        for m in merge_documents(
            [make_shard(a, "a"), make_shard(b, "b")]
        )["metrics"]
    }
    gauge = merged["drift_ppm"]
    # Equal update counts: the larger value breaks the tie.
    assert gauge["value"] == 5.0
    assert gauge["updates"] == 2


def test_within_shard_order_is_preserved():
    snapshot = build_snapshot(0)
    # Span records are stamped at begin time but appended at end time,
    # so a plain time sort would reorder them; the monotonised merge
    # must not.
    shards = [("only", snapshot)]
    assert list(iter_merged_records(shards)) == snapshot["records"]


def test_conflicting_shard_ids_rejected():
    a = make_shard(build_snapshot(0), "same")
    b = make_shard(build_snapshot(1), "same")
    with pytest.raises(ValueError, match="conflicting"):
        merge_documents([a, b])
    # The exact same shard twice deduplicates instead.
    merged = merge_documents([a, a])
    assert merged["records"] == build_snapshot(0)["records"]


def test_invalid_documents_rejected():
    with pytest.raises(ValueError):
        merge_documents([])
    with pytest.raises(ValueError, match="expected"):
        merge_documents([{"format": "something-else"}])
    with pytest.raises(ValueError):
        make_shard({"format": "not-telemetry"}, "x")


def test_histogram_bound_mismatch_rejected():
    a = Telemetry.standalone()
    a.metrics.histogram("h_ms", buckets=(1.0,)).observe(0.5)
    b = Telemetry.standalone()
    b.metrics.histogram("h_ms", buckets=(2.0,)).observe(0.5)
    with pytest.raises(ValueError, match="bounds"):
        merge_documents(
            [make_shard(a.snapshot(), "a"), make_shard(b.snapshot(), "b")]
        )


def test_content_id_stable_for_bare_snapshots():
    snapshot = build_snapshot(2)
    assert content_id(snapshot) == content_id(json.loads(json.dumps(snapshot)))
    assert content_id(snapshot) != content_id(build_snapshot(3))


def test_sampling_and_exemplars_merge():
    def sampled(seed):
        telemetry = Telemetry(
            now_fn=lambda: 0.0, ring_capacity=8, sample_rate=4
        )
        for i in range(40):
            telemetry.emit(
                float(i), "mntp", "exchange", trace_id=f"tn-{seed}/{i}"
            )
            telemetry.observe_exemplar("lat_ms", float(i), ref=f"tn-{seed}/{i}")
        return telemetry.snapshot()

    shards = [make_shard(sampled(s), f"s{s}") for s in range(2)]
    merged = merge_documents(shards)
    sampling = merged["sampling"]
    assert sampling["rate"] == 4
    assert sampling["kept"] + sampling["dropped"] == 80
    reservoir = merged["exemplars"]["lat_ms"]
    assert reservoir["seen"] == 80
    assert len(reservoir["entries"]) <= reservoir["capacity"]


def test_stream_jsonl_matches_snapshot_export():
    from repro.obs import write_jsonl

    telemetry = Telemetry(now_fn=lambda: 0.0, ring_capacity=8, sample_rate=2)
    for i in range(10):
        telemetry.emit(float(i), "mntp", "exchange", trace_id=f"tn-x/{i}")
        telemetry.count("x_total")
    streamed = io.StringIO()
    lines = stream_jsonl(telemetry, streamed)
    materialised = io.StringIO()
    assert lines == write_jsonl(telemetry.snapshot(), materialised)
    assert streamed.getvalue() == materialised.getvalue()


def test_run_demo_shards_end_to_end_serial():
    envelopes = run_demo_shards(
        shards=2, exchanges_per_shard=30, seed=7, sample_rate=3, serial=True
    )
    assert [e["format"] for e in envelopes] == [SHARD_FORMAT] * 2
    assert [e["shard"] for e in envelopes] == ["shard-0000", "shard-0001"]
    merged = merge_documents(envelopes)
    assert merged["format"] == TELEMETRY_FORMAT
    assert merged["records"]
    exchanges = sum(e["meta"]["exchanges"] for e in envelopes)
    assert exchanges >= 2 * 30 * 0.9  # cadence 1s over 30s per shard
    # Reversed input: same bytes.
    assert merged_bytes(envelopes) == merged_bytes(envelopes[::-1])

"""Telemetry bundle: clocks, snapshots, simulator integration."""

import pytest

from repro.obs import (
    TELEMETRY_FORMAT,
    ManualClock,
    Telemetry,
    record_from_dict,
    record_to_dict,
    snapshot_metric_names,
    snapshot_span_kinds,
)
from repro.simcore.simulator import Simulator
from repro.simcore.trace import TraceRecord


def test_manual_clock_ticks():
    clock = ManualClock(start=2.0, step=0.5)
    assert clock.now() == 2.0
    assert clock.tick() == 2.5
    assert clock.now() == 2.5
    with pytest.raises(ValueError):
        ManualClock(step=0.0)


def test_standalone_bundle_is_manual():
    telemetry = Telemetry.standalone()
    assert telemetry.manual
    assert telemetry.now == 0.0
    assert telemetry.advance(3) == 3.0
    with pytest.raises(ValueError):
        telemetry.advance(0)


def test_simulator_bundle_is_not_manual():
    sim = Simulator(seed=0)
    assert not sim.telemetry.manual
    with pytest.raises(RuntimeError):
        sim.telemetry.advance()


def test_simulator_bundle_shares_trace_and_clock():
    sim = Simulator(seed=0)
    assert sim.telemetry.trace is sim.trace
    sim.call_after(5.0, lambda: None)
    sim.run_until(10.0)
    assert sim.telemetry.now == 10.0
    # The event loop recorded its span and its counter.
    assert sim.telemetry.metrics.value("sim_events_total") == 1.0
    assert len(sim.trace.select(kind="sim.run")) == 1


def test_record_dict_roundtrip():
    record = TraceRecord(time=1.5, component="mntp", kind="x", data={"a": 1})
    again = record_from_dict(record_to_dict(record))
    assert again == record


def test_snapshot_shape_and_helpers():
    telemetry = Telemetry.standalone()
    telemetry.metrics.counter("a_total").inc()
    telemetry.metrics.gauge("b_gauge").set(2)
    with telemetry.spans.span("phase.one"):
        telemetry.advance()
    snap = telemetry.snapshot()
    assert snap["format"] == TELEMETRY_FORMAT
    assert snapshot_metric_names(snap) == ["a_total", "b_gauge"]
    assert snapshot_span_kinds(snap) == ["phase.one"]
    assert len(snap["records"]) == 1

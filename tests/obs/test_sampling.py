"""Deterministic trace sampling and reservoir exemplars."""

import pytest

from repro.obs import (
    DEFAULT_EXEMPLARS,
    ERROR_KINDS,
    Reservoir,
    TraceSampler,
    stable_hash,
)


def test_stable_hash_is_process_independent():
    # CRC-32 reference values: any salted-hash regression changes these.
    assert stable_hash("") == 0
    assert stable_hash("tn-ntpd/1") == stable_hash("tn-ntpd/1")
    assert 0 <= stable_hash("anything") <= 0xFFFFFFFF


def test_rate_one_keeps_everything():
    sampler = TraceSampler(rate=1)
    for i in range(20):
        assert sampler.keep_record("query", {"trace_id": f"tn-x/{i}"})
    assert sampler.kept == 20
    assert sampler.dropped == 0


def test_rate_n_keeps_about_one_in_n_whole_exchanges():
    sampler = TraceSampler(rate=4)
    ids = [f"tn-ntpd/{i}" for i in range(400)]
    kept = [t for t in ids if sampler.keep_record("query", {"trace_id": t})]
    assert 0 < len(kept) < len(ids)
    assert len(kept) == pytest.approx(100, rel=0.5)
    # Every record of a kept exchange survives: the decision is a pure
    # function of the trace id.
    again = TraceSampler(rate=4)
    for t in ids:
        assert again.keep_record("reply", {"trace_id": t}) == (t in kept)


def test_records_without_trace_id_always_kept():
    sampler = TraceSampler(rate=1_000_000)
    assert sampler.keep_record("phase", {})
    assert sampler.keep_record("interference", {"dur": 1.0})
    assert sampler.dropped == 0


def test_error_evidence_always_kept():
    sampler = TraceSampler(rate=1_000_000)
    for kind in sorted(ERROR_KINDS):
        assert sampler.keep_record(kind, {"trace_id": "tn-x/1"})
    assert sampler.keep_record(
        "exchange", {"trace_id": "tn-x/1", "outcome": "timeout"}
    )
    # An "ok" outcome gets no special treatment.
    sampler_kept = sampler.kept
    sampler.keep_record("exchange", {"trace_id": "tn-x/1", "outcome": "ok"})
    assert sampler.kept + sampler.dropped == sampler_kept + 1


def test_fault_window_keeps_everything():
    sampler = TraceSampler(rate=1_000_000)
    sampler.fault_begin()
    sampler.fault_begin()  # nested episodes stack
    assert sampler.keep_record("query", {"trace_id": "tn-x/1"})
    sampler.fault_end()
    assert sampler.fault_depth == 1
    assert sampler.keep_record("query", {"trace_id": "tn-x/2"})
    sampler.fault_end()
    sampler.fault_end()  # underflow is clamped
    assert sampler.fault_depth == 0


def test_rate_validation():
    with pytest.raises(ValueError):
        TraceSampler(rate=0)


def test_reservoir_bounded_and_deterministic():
    def fill():
        reservoir = Reservoir(capacity=5)
        for i in range(100):
            reservoir.observe(float(i), ref=f"tn-x/{i}")
        return reservoir.snapshot()

    snap = fill()
    assert snap == fill()
    assert snap["seen"] == 100
    assert snap["capacity"] == 5
    assert len(snap["entries"]) == 5
    keys = [e["key"] for e in snap["entries"]]
    assert keys == sorted(keys)  # canonical key order


def test_reservoir_under_capacity_keeps_all():
    reservoir = Reservoir(capacity=DEFAULT_EXEMPLARS)
    reservoir.observe(1.5, ref="a")
    reservoir.observe(2.5, ref="b")
    snap = reservoir.snapshot()
    assert snap["seen"] == 2
    assert sorted(e["value"] for e in snap["entries"]) == [1.5, 2.5]


def test_reservoir_capacity_validation():
    with pytest.raises(ValueError):
        Reservoir(capacity=0)


def test_sampler_exemplars_snapshot_name_sorted():
    sampler = TraceSampler(rate=2, exemplar_capacity=3)
    sampler.observe_exemplar("z_ms", 1.0, ref="a")
    sampler.observe_exemplar("a_ms", 2.0, ref="b")
    snap = sampler.exemplars_snapshot()
    assert list(snap) == ["a_ms", "z_ms"]
    assert snap["a_ms"]["seen"] == 1

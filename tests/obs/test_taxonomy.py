"""The registered span taxonomy and metric naming convention."""

from repro.obs import (
    SPAN_KINDS,
    SPAN_SUBSYSTEMS,
    metric_name_conforms,
    span_kind_registered,
    span_subsystem,
)


def test_every_kind_belongs_to_a_known_subsystem():
    for kind in SPAN_KINDS:
        assert "." in kind
        assert span_subsystem(kind) in SPAN_SUBSYSTEMS


def test_kind_registration():
    assert span_kind_registered("sntp.exchange")
    assert span_kind_registered("link.transit")
    assert span_kind_registered("server.turnaround")
    assert not span_kind_registered("sntp.mystery")


def test_counter_names_need_total():
    assert metric_name_conforms("sntp_queries_total", "counter")
    assert not metric_name_conforms("sntp_queries", "counter")


def test_gauge_and_histogram_need_unit_but_not_total():
    assert metric_name_conforms("mntp_drift_estimate_ppm", "gauge")
    assert metric_name_conforms("mntp_abs_residual_ms", "histogram")
    assert not metric_name_conforms("mntp_drift", "gauge")
    assert not metric_name_conforms("events_total", "gauge")


def test_emitted_kinds_in_seeded_run_are_all_registered():
    from repro.obs import snapshot_span_kinds
    from repro.testbed import run_scenario

    result = run_scenario("mntp_wireless_corrected", seed=1)
    assert set(snapshot_span_kinds(result.telemetry)) <= SPAN_KINDS

"""Telemetry diff: same-seed identity, shifts, suspects, coercion."""

import json

import pytest

from repro.obs import (
    DIFF_FORMAT,
    Telemetry,
    coerce_snapshot,
    diff_snapshots,
    make_shard,
    merge_documents,
    rank_suspects,
    render_diff_text,
)
from repro.testbed.scenarios import run_scenario


def build_snapshot(errors=(1.0, 2.0, 3.0), queries=5, spans=2,
                   drift=1.5, kinds=("offset_accepted",)):
    telemetry = Telemetry.standalone()
    telemetry.metrics.counter("q_total").inc(queries)
    telemetry.metrics.gauge("drift_ppm").set(drift)
    hist = telemetry.metrics.histogram("err_ms", buckets=(1.0, 10.0, 100.0))
    for value in errors:
        hist.observe(value)
    for i, kind in enumerate(kinds):
        telemetry.trace.emit(float(i), "mntp", kind, trace_id=f"tn/{i}")
    for _ in range(spans):
        span = telemetry.spans.begin("mntp.query")
        telemetry.advance()
        span.end(outcome="ok")
    return telemetry.snapshot()


# -- identity -------------------------------------------------------------


def test_identical_snapshots_diff_empty():
    a, b = build_snapshot(), build_snapshot()
    diff = diff_snapshots(a, b)
    assert diff["format"] == DIFF_FORMAT
    assert diff["identical"] is True
    assert render_diff_text(diff) == (
        "snapshots are identical (no telemetry differences)"
    )


def test_same_seed_scenario_runs_diff_empty():
    a = run_scenario("wired_corrected", seed=5)
    b = run_scenario("wired_corrected", seed=5)
    diff = diff_snapshots(a.telemetry, b.telemetry)
    assert diff["identical"] is True


def test_different_seed_runs_diff_nonempty():
    a = run_scenario("wired_corrected", seed=5)
    b = run_scenario("wired_corrected", seed=6)
    diff = diff_snapshots(a.telemetry, b.telemetry)
    assert diff["identical"] is False


def test_shard_merge_order_diffs_empty():
    shards = [
        make_shard(build_snapshot(queries=i + 1), f"s{i}") for i in range(3)
    ]
    forward = merge_documents(shards)
    backward = merge_documents(list(reversed(shards)))
    assert diff_snapshots(forward, backward)["identical"] is True
    assert json.dumps(forward, sort_keys=True) == json.dumps(
        backward, sort_keys=True
    )


# -- sections -------------------------------------------------------------


def test_counter_and_gauge_deltas():
    diff = diff_snapshots(
        build_snapshot(queries=5, drift=1.5),
        build_snapshot(queries=8, drift=0.5),
    )
    assert diff["counters"] == [
        {"name": "q_total", "a": 5.0, "b": 8.0, "delta": 3.0}
    ]
    assert diff["gauges"] == [
        {"name": "drift_ppm", "a": 1.5, "b": 0.5, "delta": -1.0}
    ]
    text = render_diff_text(diff)
    assert "q_total+3" in text and "drift_ppm-1" in text


def test_histogram_quantile_shift():
    diff = diff_snapshots(
        build_snapshot(errors=(1.0, 2.0, 3.0)),
        build_snapshot(errors=(1.0, 2.0, 50.0)),
    )
    (row,) = diff["histograms"]
    assert row["name"] == "err_ms"
    assert row["count_delta"] == 0
    assert row["sum_delta"] == pytest.approx(47.0)
    assert "p99" in row["quantile_shifts"]


def test_new_and_removed_series():
    base = build_snapshot()
    extra = build_snapshot(kinds=("offset_accepted", "false_ticker"))
    telemetry = Telemetry.standalone()
    telemetry.metrics.counter("novel_total").inc()
    novel = telemetry.snapshot()
    diff = diff_snapshots(base, extra)
    assert "mntp/false_ticker" in diff["new_record_kinds"]
    diff = diff_snapshots(base, novel)
    assert "novel_total" in diff["new_metrics"]
    assert "q_total" in diff["removed_metrics"]
    assert "mntp.query" in diff["removed_span_kinds"]


def test_span_regression_reported():
    slow = Telemetry.standalone()
    span = slow.spans.begin("mntp.query")
    for _ in range(10):
        slow.advance()
    span.end(outcome="ok")
    fast = Telemetry.standalone()
    span = fast.spans.begin("mntp.query")
    fast.advance()
    span.end(outcome="ok")
    diff = diff_snapshots(fast.snapshot(), slow.snapshot())
    (row,) = diff["spans"]
    assert row["kind"] == "mntp.query"
    assert row["total_dur_delta_s"] == pytest.approx(9.0)


# -- suspects -------------------------------------------------------------


def test_suspects_ranked_and_deterministic():
    a = run_scenario("wired_corrected", seed=5)
    b = run_scenario("mntp_wireless_corrected", seed=5)
    suspects = rank_suspects(
        a.telemetry, b.telemetry,
        samples_a=a.offset_samples(), samples_b=b.offset_samples(),
    )
    assert suspects
    scores = [s["score"] for s in suspects]
    assert scores == sorted(scores, reverse=True)
    again = rank_suspects(
        a.telemetry, b.telemetry,
        samples_a=a.offset_samples(), samples_b=b.offset_samples(),
    )
    assert suspects == again
    assert {s["kind"] for s in suspects} <= {
        "cause", "outcome", "span", "counter"
    }


def test_diff_document_round_trips_as_json():
    diff = diff_snapshots(build_snapshot(queries=1), build_snapshot(queries=9))
    assert json.loads(json.dumps(diff, sort_keys=True)) == diff


def test_render_respects_top():
    def snap(q, d):
        telemetry = Telemetry.standalone()
        telemetry.metrics.counter("q_total").inc(q)
        telemetry.metrics.counter("drops_total").inc(d)
        return telemetry.snapshot()

    diff = diff_snapshots(snap(1, 10), snap(9, 12))
    assert len(diff["suspects"]) > 1
    text = render_diff_text(diff, top=1)
    assert "top 1 suspects" in text
    assert "  2. " not in text


# -- coercion -------------------------------------------------------------


def test_coerce_accepts_all_diffable_formats(tmp_path):
    snapshot = build_snapshot()
    bare, samples = coerce_snapshot(snapshot)
    assert bare is snapshot and samples is None
    shard = make_shard(snapshot, "s0")
    unwrapped, _ = coerce_snapshot(shard)
    assert unwrapped["records"] == snapshot["records"]
    merged = merge_documents([make_shard(snapshot, "s0")])
    coerced, _ = coerce_snapshot(merged)
    assert coerced["records"] == snapshot["records"]


def test_coerce_experiment_archive_yields_truth_samples(tmp_path):
    import io

    from repro.testbed.persistence import save_result

    result = run_scenario("wired_corrected", seed=3)
    buf = io.StringIO()
    save_result(result, buf)
    archive = json.loads(buf.getvalue())
    snapshot, samples = coerce_snapshot(archive)
    assert snapshot["format"] == "mntp-telemetry-v1"
    assert samples  # truth rides along for the error decomposition


def test_coerce_rejects_unknown_documents():
    with pytest.raises(ValueError):
        coerce_snapshot({"format": "mystery-v9"})
    with pytest.raises(ValueError):
        coerce_snapshot({})

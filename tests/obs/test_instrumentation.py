"""End-to-end instrumentation: simulator, Mntp, channel, tuner."""

import pytest

from repro.core.config import MntpConfig
from repro.obs import (
    SPAN_COMPONENT,
    Telemetry,
    jsonl_lines,
    snapshot_metric_names,
    snapshot_span_kinds,
)
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions


@pytest.fixture(scope="module")
def wireless_result():
    return ExperimentRunner(
        seed=7,
        options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=1800.0,
        mntp_config=MntpConfig.baseline_headtohead(),
    ).run()


def test_result_carries_snapshot(wireless_result):
    snap = wireless_result.telemetry
    assert snap is not None
    assert len(snapshot_metric_names(snap)) >= 5
    assert len(snapshot_span_kinds(snap)) >= 4


def test_expected_metrics_present(wireless_result):
    names = set(snapshot_metric_names(wireless_result.telemetry))
    assert {
        "sim_events_total",
        "sntp_queries_total",
        "mntp_query_sent_total",
        "mntp_abs_residual_ms",
        "channel_interference_episodes_total",
    } <= names


def test_expected_span_kinds_present(wireless_result):
    kinds = set(snapshot_span_kinds(wireless_result.telemetry))
    assert {"sim.run", "mntp.warmup", "mntp.query"} <= kinds


def test_sim_events_counter_matches_span(wireless_result):
    snap = wireless_result.telemetry
    runs = [r for r in snap["records"]
            if r["component"] == SPAN_COMPONENT and r["kind"] == "sim.run"]
    assert len(runs) == 1
    events = next(m for m in snap["metrics"] if m["name"] == "sim_events_total")
    assert runs[0]["data"]["events"] == events["value"] > 0


def test_interference_counter_covers_spans(wireless_result):
    """Every closed episode span has a counted start (open ones too)."""
    snap = wireless_result.telemetry
    spans = [r for r in snap["records"]
             if r["component"] == SPAN_COMPONENT
             and r["kind"] == "channel.interference"]
    episodes = next(
        m for m in snap["metrics"]
        if m["name"] == "channel_interference_episodes_total"
    )
    assert episodes["value"] >= len(spans)
    for record in spans:
        assert record["data"]["dur"] > 0.0
        assert record["data"]["rssi_dip_db"] != 0.0


def test_telemetry_is_seed_deterministic():
    def snapshot():
        result = ExperimentRunner(
            seed=11,
            options=TestbedOptions(wireless=True, ntp_correction=True),
            duration=600.0,
            mntp_config=MntpConfig.baseline_headtohead(),
        ).run()
        return "\n".join(jsonl_lines(result.telemetry))

    assert snapshot() == snapshot()


def test_tuner_search_spans_and_counter():
    from repro.tuner import LoggerOptions, ParameterSearcher, TraceLogger
    from repro.tuner.searcher import SearchSpace

    trace = TraceLogger(seed=2, options=LoggerOptions(duration=1800.0)).run()
    telemetry = Telemetry.standalone()
    searcher = ParameterSearcher(
        trace,
        space=SearchSpace(
            warmup_periods=(30 * 60,),
            warmup_wait_times=(15.0,),
            regular_wait_times=(15 * 60, 30 * 60),
            reset_periods=(240 * 60,),
        ),
        telemetry=telemetry,
    )
    results = searcher.search()
    snap = telemetry.snapshot()
    evals = [r for r in snap["records"] if r["kind"] == "tuner.eval"]
    assert len(evals) == len(results) == 2
    counter = next(
        m for m in snap["metrics"] if m["name"] == "tuner_evaluations_total"
    )
    assert counter["value"] == 2.0
    for record in evals:
        assert "rmse_ms" in record["data"]
        assert "requests" in record["data"]

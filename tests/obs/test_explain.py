"""The explain engine: decomposition algebra, reports, determinism."""

import json

from repro.obs import (
    CAUSES,
    assemble_exchanges,
    decompose,
    explain_run,
    render_tree,
)
from tests.obs.test_causal import exchange_records, snapshot_of, span_record


def make_exchange(**overrides):
    records = exchange_records(**overrides)
    return assemble_exchanges(snapshot_of(records))[0]


def test_decomposition_components():
    ex = make_exchange()
    # Request hop: prop .01 queue .02 intf .01; response: .01/.01/.02.
    d = decompose(ex)
    assert d is not None
    assert abs(d.asymmetry - 0.0) < 1e-12
    assert abs(d.queueing - 0.005) < 1e-12
    assert abs(d.interference - (-0.005)) < 1e-12
    assert d.error is None and d.server_turnaround is None
    assert d.turnaround_s is not None


def test_decomposition_with_truth_recovers_server_term():
    ex = make_exchange()
    truth = 0.001  # local clock runs 1 ms fast
    d = decompose(ex, truth=truth)
    assert abs(d.error - (ex.offset + truth)) < 1e-12
    # error = asym + queue + intf + server_term, exactly.
    assert abs(
        d.error - (d.asymmetry + d.queueing + d.interference
                   + d.server_turnaround)
    ) < 1e-12


def test_decompose_skips_non_ok_and_hopless():
    assert decompose(make_exchange(outcome="timeout")) is None
    assert decompose(make_exchange(with_request=False)) is None


def test_dominant_cause_fixed_tiebreak():
    d = decompose(make_exchange())
    # queueing (+5ms) and interference (-5ms) tie in magnitude;
    # interference comes first in CAUSES, so it wins the tie.
    assert CAUSES.index("interference") < CAUSES.index("queueing")
    assert d.dominant_cause == "interference"


def test_explain_run_report_shape():
    records = exchange_records(trace_id="c/1") + exchange_records(
        trace_id="c/2", outcome="timeout",
        with_turnaround=False, with_response=False,
    )
    report = explain_run(snapshot_of(records), samples=[(10.5, 0.004, 0.001)])
    assert report.exchanges_total == 2
    assert report.outcomes == {"ok": 1, "timeout": 1}
    assert report.exchanges_complete == 1
    assert report.coverage == 0.5
    assert len(report.decompositions) == 1
    d = report.decompositions[0]
    assert d.error is not None  # the tuple sample joined by (time, offset)
    assert report.p90_abs_error is not None
    assert report.windows and report.windows[0].count == 1


def test_truth_join_requires_exact_key():
    records = exchange_records()
    report = explain_run(
        snapshot_of(records), samples=[(10.5, 0.0040001, 0.001)]
    )
    assert report.decompositions[0].error is None  # offset mismatch: no join


def test_worst_ranks_by_magnitude():
    records = []
    for i, offset in enumerate((0.001, 0.05, 0.01)):
        base = exchange_records(trace_id=f"c/{i}")
        base[0]["data"]["offset"] = offset
        records.extend(base)
    report = explain_run(snapshot_of(records))
    assert [d.offset for d in report.worst(2)] == [0.05, 0.01]


def test_above_p90_all_attributed():
    records = []
    samples = []
    for i in range(20):
        base = exchange_records(trace_id=f"c/{i}")
        for r in base:
            for key in ("t0", "t1"):
                r["data"][key] += i * 100.0
            r["t"] += i * 100.0
        offset = 0.001 * (i + 1)
        base[0]["data"]["offset"] = offset
        records.extend(base)
        samples.append((base[0]["data"]["t1"], offset, 0.002))
    report = explain_run(snapshot_of(records), samples=samples)
    above = report.above_p90()
    assert above  # spread of errors -> someone exceeds p90
    assert all(d.dominant_cause in CAUSES for d in above)


def test_windowed_aggregation_buckets_by_time():
    records = []
    for i, t_shift in enumerate((0.0, 100.0, 400.0)):
        base = exchange_records(trace_id=f"c/{i}")
        for r in base:
            for key in ("t0", "t1"):
                r["data"][key] += t_shift
            r["t"] += t_shift
        records.extend(base)
    report = explain_run(snapshot_of(records), window_s=300.0)
    assert [w.count for w in report.windows] == [2, 1]
    assert report.windows[0].t0 == 0.0
    assert report.windows[1].t0 == 300.0


def test_report_to_dict_and_text_render():
    report = explain_run(
        snapshot_of(exchange_records()), samples=[(10.5, 0.004, 0.001)]
    )
    doc = report.to_dict()
    assert doc["format"] == "mntp-explain-v1"
    assert doc["coverage"] == 1.0
    assert doc["worst"][0]["dominant_cause"] in CAUSES
    text = report.render_text()
    assert "100.0% coverage" in text
    assert "cause=" in text


def test_render_tree_shows_all_children():
    records = exchange_records()
    records.append(span_record(
        "channel.interference", 10.1, 10.3,
        rssi_dip_db=9.0, noise_lift_db=3.0,
    ))
    ex = assemble_exchanges(snapshot_of(records))[0]
    text = render_tree(ex, decompose(ex, truth=0.001))
    assert "sntp.exchange c/1" in text
    assert "link.transit request" in text
    assert "link.transit response" in text
    assert "server.turnaround" in text
    assert "channel.interference" in text
    assert "decomposition" in text


def test_seeded_run_attributes_every_sample_above_p90():
    from repro.testbed import run_scenario

    result = run_scenario("wireless_uncorrected", seed=5)
    report = explain_run(result.telemetry, samples=result.offset_samples())
    assert report.coverage >= 0.95
    above = report.above_p90()
    assert above, "expected offset errors above the p90"
    assert all(d.dominant_cause in CAUSES for d in above)
    # Ground truth joined for every SNTP sample, so the residual
    # (server term) closes the decomposition exactly.
    for d in above:
        assert abs(
            d.error - (d.asymmetry + d.queueing + d.interference
                       + d.server_turnaround)
        ) < 1e-12


def test_same_seed_runs_byte_identical_without_resets():
    # Two runs in ONE process, no manual ident/telemetry resets: the
    # telemetry JSONL and the explain JSON must match byte for byte.
    from repro.obs import jsonl_lines
    from repro.testbed import run_scenario

    a = run_scenario("wireless_uncorrected", seed=7)
    b = run_scenario("wireless_uncorrected", seed=7)
    jsonl_a = "\n".join(jsonl_lines(a.telemetry))
    jsonl_b = "\n".join(jsonl_lines(b.telemetry))
    assert jsonl_a == jsonl_b
    explain_a = json.dumps(
        explain_run(a.telemetry, samples=a.offset_samples()).to_dict(),
        sort_keys=True,
    )
    explain_b = json.dumps(
        explain_run(b.telemetry, samples=b.offset_samples()).to_dict(),
        sort_keys=True,
    )
    assert explain_a == explain_b

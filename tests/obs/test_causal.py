"""Causal exchange assembly: joining spans back into trees."""

from repro.obs import (
    Exchange,
    Hop,
    assemble_exchanges,
    completeness,
)


def span_record(kind, t0, t1, **attrs):
    return {
        "t": t0,
        "component": "span",
        "kind": kind,
        "data": {"t0": t0, "t1": t1, "dur": t1 - t0, **attrs},
    }


def exchange_records(
    trace_id="c/1",
    outcome="ok",
    with_request=True,
    with_turnaround=True,
    with_response=True,
):
    records = [
        span_record(
            "sntp.exchange", 10.0, 10.5,
            trace_id=trace_id, client="c", server="srv#0",
            outcome=outcome, offset=0.004, delay=0.08,
        )
    ]
    if with_request:
        records.append(span_record(
            "link.transit", 10.0, 10.04,
            link="up:srv", ident=1, trace_id=trace_id,
            prop_s=0.01, queue_s=0.02, intf_s=0.01,
        ))
    if with_turnaround:
        records.append(span_record(
            "server.turnaround", 10.04, 10.05,
            server="srv#0", trace_id=trace_id, outcome=outcome,
        ))
    if with_response:
        records.append(span_record(
            "link.transit", 10.05, 10.09,
            link="down:srv", ident=2, trace_id=trace_id,
            prop_s=0.01, queue_s=0.01, intf_s=0.02,
        ))
    return records


def snapshot_of(records):
    return {"format": "mntp-telemetry-v1", "metrics": [], "records": records}


def test_assembles_complete_ok_exchange():
    snap = snapshot_of(exchange_records())
    exchanges = assemble_exchanges(snap)
    assert len(exchanges) == 1
    ex = exchanges[0]
    assert ex.trace_id == "c/1"
    assert ex.outcome == "ok"
    assert ex.offset == 0.004
    assert ex.request_hop.link == "up:srv"
    assert ex.response_hop.link == "down:srv"
    assert ex.turnaround.server == "srv#0"
    assert ex.complete
    assert completeness(exchanges) == 1.0


def test_hop_classification_by_direction_prefix():
    # Response hop emitted first: the name prefix, not arrival order,
    # must classify the hops.
    records = exchange_records()
    records[1], records[3] = records[3], records[1]
    ex = assemble_exchanges(snapshot_of(records))[0]
    assert ex.request_hop.link == "up:srv"
    assert ex.response_hop.link == "down:srv"


def test_hop_classification_positional_fallback():
    records = exchange_records()
    for r in records:
        if r["kind"] == "link.transit":
            r["data"]["link"] = "wire"
    ex = assemble_exchanges(snapshot_of(records))[0]
    # Earlier span becomes the request hop.
    assert ex.request_hop.t0 == 10.0
    assert ex.response_hop.t0 == 10.05


def test_interference_episode_attached_by_overlap():
    records = exchange_records()
    records.append(span_record(
        "channel.interference", 10.2, 10.4,
        rssi_dip_db=12.0, noise_lift_db=6.0,
    ))
    records.append(span_record(  # entirely outside [t0, t1)
        "channel.interference", 99.0, 99.5,
        rssi_dip_db=1.0, noise_lift_db=1.0,
    ))
    ex = assemble_exchanges(snapshot_of(records))[0]
    assert len(ex.interference) == 1
    assert ex.interference[0].rssi_dip_db == 12.0


def test_timeout_complete_via_drop_record():
    records = [
        span_record(
            "sntp.exchange", 5.0, 8.0,
            trace_id="c/2", client="c", server=None, outcome="timeout",
        ),
        {
            "t": 5.1, "component": "link:up:srv", "kind": "drop",
            "data": {"trace_id": "c/2", "ident": 7},
        },
    ]
    ex = assemble_exchanges(snapshot_of(records))[0]
    assert ex.outcome == "timeout"
    assert ex.drops and ex.drops[0]["ident"] == 7
    assert ex.complete


def test_timeout_complete_via_late_round_trip():
    records = exchange_records(trace_id="c/3", outcome="timeout")
    ex = assemble_exchanges(snapshot_of(records))[0]
    assert ex.complete  # reply exists, it just arrived after the timer


def test_timeout_without_evidence_is_incomplete():
    records = exchange_records(
        trace_id="c/4", outcome="timeout",
        with_turnaround=False, with_response=False,
    )
    ex = assemble_exchanges(snapshot_of(records))[0]
    assert not ex.complete
    assert completeness([ex]) == 0.0


def test_answered_failure_complete_with_server_side():
    records = exchange_records(
        trace_id="c/5", outcome="kod", with_response=False,
    )
    ex = assemble_exchanges(snapshot_of(records))[0]
    assert ex.complete  # the turnaround proves the server answered


def test_unresolved_exchange_never_complete():
    records = exchange_records(trace_id="c/6", outcome="unresolved")
    ex = assemble_exchanges(snapshot_of(records))[0]
    assert not ex.complete


def test_empty_snapshot():
    assert assemble_exchanges(snapshot_of([])) == []
    assert completeness([]) == 1.0


def test_hop_components_sum_to_duration():
    hop = Hop(
        link="up:x", ident=1, trace_id="c/1",
        t0=0.0, t1=0.04, prop_s=0.01, queue_s=0.02, intf_s=0.01,
    )
    assert abs(hop.dur - (hop.prop_s + hop.queue_s + hop.intf_s)) < 1e-12


def test_exchange_order_follows_root_emission_order():
    records = exchange_records(trace_id="c/2") + exchange_records(trace_id="c/1")
    ids = [e.trace_id for e in assemble_exchanges(snapshot_of(records))]
    assert ids == ["c/2", "c/1"]


def test_seeded_run_reconstructs_nearly_all_exchanges():
    from repro.testbed import run_scenario

    result = run_scenario("wireless_uncorrected", seed=5)
    exchanges = assemble_exchanges(result.telemetry)
    assert exchanges, "run emitted no exchange spans"
    # Acceptance bar: >= 95% of exchanges come back as complete trees.
    assert completeness(exchanges) >= 0.95
    # Every reported SNTP sample corresponds to exactly one ok exchange.
    oks = [e for e in exchanges if e.outcome == "ok"]
    assert len(oks) >= len(result.sntp)
    by_key = {(e.t1, e.offset) for e in oks}
    matched = sum(1 for p in result.sntp if (p.time, p.offset) in by_key)
    assert matched == len(result.sntp)


def test_cellular_run_assembles_without_link_spans():
    # The RAN path bypasses Link entirely: exchanges still assemble
    # (turnaround only), they are just not 'ok'-complete.
    from repro.cellular import CellularExperiment, CellularOptions

    result = CellularExperiment(
        seed=2, options=CellularOptions(duration=600.0)
    ).run()
    exchanges = assemble_exchanges(result.telemetry)
    assert exchanges
    oks = [e for e in exchanges if e.outcome == "ok"]
    assert oks and all(e.turnaround is not None for e in oks)
    assert all(e.request_hop is None for e in oks)

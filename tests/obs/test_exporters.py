"""Exporters: JSONL round-trip, Chrome trace validity, Prometheus text."""

import io
import json

import pytest

from repro.obs import (
    Telemetry,
    chrome_trace_events,
    jsonl_lines,
    load_jsonl,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
)


def sample_snapshot():
    telemetry = Telemetry.standalone()
    telemetry.metrics.counter("q_total", help="queries").inc(3)
    telemetry.metrics.gauge("drift_ppm").set(11.5)
    hist = telemetry.metrics.histogram("lat_ms", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    telemetry.trace.emit(0.0, "mntp", "offset_accepted", offset=0.002)
    span = telemetry.spans.begin("mntp.query", phase="warmup")
    telemetry.advance()
    span.end(ok=1)
    return telemetry.snapshot()


def test_jsonl_roundtrip():
    snap = sample_snapshot()
    buf = io.StringIO()
    lines = write_jsonl(snap, buf)
    assert lines == 1 + len(snap["metrics"]) + len(snap["records"])
    buf.seek(0)
    again = load_jsonl(buf)
    assert again["metrics"] == snap["metrics"]
    assert again["records"] == snap["records"]


def test_jsonl_is_byte_deterministic():
    a = "\n".join(jsonl_lines(sample_snapshot()))
    b = "\n".join(jsonl_lines(sample_snapshot()))
    assert a == b


def test_load_jsonl_rejects_garbage():
    with pytest.raises(ValueError):
        load_jsonl(io.StringIO("not json\n"))
    with pytest.raises(ValueError):
        load_jsonl(io.StringIO('{"type":"meta","format":"other"}\n'))
    with pytest.raises(ValueError):
        load_jsonl(io.StringIO('{"type":"mystery"}\n'))


def test_chrome_trace_is_valid_json_with_span_events():
    snap = sample_snapshot()
    buf = io.StringIO()
    count = write_chrome_trace(snap, buf)
    document = json.loads(buf.getvalue())
    assert isinstance(document["traceEvents"], list)
    assert len(document["traceEvents"]) == count
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert complete and complete[0]["name"] == "mntp.query"
    assert complete[0]["dur"] == pytest.approx(1e6)  # 1 manual tick in us
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert instants and instants[0]["name"] == "mntp.offset_accepted"
    metas = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} >= {"mntp"}


def test_prometheus_rendering():
    text = render_prometheus(sample_snapshot())
    assert "# TYPE q_total counter" in text
    assert "q_total 3" in text
    assert "# HELP q_total queries" in text
    assert "drift_ppm 11.5" in text
    assert 'lat_ms_bucket{le="1"} 1' in text
    assert 'lat_ms_bucket{le="10"} 2' in text
    assert 'lat_ms_bucket{le="+Inf"} 3' in text
    assert "lat_ms_sum 55.5" in text
    assert "lat_ms_count 3" in text


def test_prometheus_empty_snapshot():
    assert render_prometheus({"metrics": [], "records": []}) == ""


def test_prometheus_escapes_help_text():
    telemetry = Telemetry.standalone()
    telemetry.metrics.counter(
        "esc_total", help='multi\nline with \\ backslash and "quotes"'
    ).inc()
    text = render_prometheus(telemetry.snapshot())
    # HELP escapes backslash and newline; quotes pass through unescaped.
    assert (
        '# HELP esc_total multi\\nline with \\\\ backslash and "quotes"'
        in text
    )
    assert "\nline" not in text.replace("\\n", "")


def test_prometheus_histogram_inf_bucket_is_monotone():
    telemetry = Telemetry.standalone()
    hist = telemetry.metrics.histogram("m_ms", buckets=(1.0, 10.0))
    for value in (0.5, 0.7, 5.0, 50.0, 60.0, 70.0):
        hist.observe(value)
    text = render_prometheus(telemetry.snapshot())
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("m_ms_bucket")
    ]
    assert counts == sorted(counts)  # cumulative series never decreases
    assert counts[-1] == 6  # +Inf equals the total observation count
    assert "m_ms_count 6" in text


def test_prometheus_inf_bucket_tolerates_missing_overflow_entry():
    # A hand-built snapshot whose bucket_counts matches bounds in length
    # (no explicit overflow slot) must still render a monotone series.
    snapshot = {
        "metrics": [{
            "name": "odd_ms", "type": "histogram", "help": "",
            "bounds": [1.0, 10.0], "bucket_counts": [2, 3],
            "sum": 20.0, "count": 5,
        }],
        "records": [],
    }
    text = render_prometheus(snapshot)
    assert 'odd_ms_bucket{le="1"} 2' in text
    assert 'odd_ms_bucket{le="10"} 5' in text
    assert 'odd_ms_bucket{le="+Inf"} 5' in text  # not double-counted


def test_prometheus_label_value_escaping():
    from repro.obs.exporters import _escape_label_value

    assert _escape_label_value('a"b') == 'a\\"b'
    assert _escape_label_value("a\\b") == "a\\\\b"
    assert _escape_label_value("a\nb") == "a\\nb"
    assert _escape_label_value("plain") == "plain"


def test_chrome_trace_zero_duration_span():
    telemetry = Telemetry.standalone()
    span = telemetry.spans.begin("mntp.query")
    span.end()  # same manual tick: zero duration
    events = chrome_trace_events(telemetry.snapshot())
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 1
    assert complete[0]["dur"] == 0.0  # present, zero, and non-negative


def test_chrome_trace_clamps_negative_duration():
    # Durations cannot go negative in practice (SpanTracer clamps), but
    # the exporter guards hand-built snapshots too.
    snapshot = {
        "metrics": [],
        "records": [{
            "t": 1.0, "component": "span", "kind": "mntp.query",
            "data": {"t0": 1.0, "t1": 1.0, "dur": -1e-9},
        }],
    }
    events = chrome_trace_events(snapshot)
    complete = [e for e in events if e["ph"] == "X"]
    assert complete[0]["dur"] == 0.0

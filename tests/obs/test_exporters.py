"""Exporters: JSONL round-trip, Chrome trace validity, Prometheus text."""

import io
import json

import pytest

from repro.obs import (
    Telemetry,
    chrome_trace_events,
    jsonl_lines,
    load_jsonl,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
)


def sample_snapshot():
    telemetry = Telemetry.standalone()
    telemetry.metrics.counter("q_total", help="queries").inc(3)
    telemetry.metrics.gauge("drift_ppm").set(11.5)
    hist = telemetry.metrics.histogram("lat_ms", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    telemetry.trace.emit(0.0, "mntp", "offset_accepted", offset=0.002)
    span = telemetry.spans.begin("mntp.query", phase="warmup")
    telemetry.advance()
    span.end(ok=1)
    return telemetry.snapshot()


def test_jsonl_roundtrip():
    snap = sample_snapshot()
    buf = io.StringIO()
    lines = write_jsonl(snap, buf)
    assert lines == 1 + len(snap["metrics"]) + len(snap["records"])
    buf.seek(0)
    again = load_jsonl(buf)
    assert again["metrics"] == snap["metrics"]
    assert again["records"] == snap["records"]


def test_jsonl_is_byte_deterministic():
    a = "\n".join(jsonl_lines(sample_snapshot()))
    b = "\n".join(jsonl_lines(sample_snapshot()))
    assert a == b


def test_load_jsonl_rejects_garbage():
    with pytest.raises(ValueError):
        load_jsonl(io.StringIO("not json\n"))
    with pytest.raises(ValueError):
        load_jsonl(io.StringIO('{"type":"meta","format":"other"}\n'))
    with pytest.raises(ValueError):
        load_jsonl(io.StringIO('{"type":"mystery"}\n'))


def test_chrome_trace_is_valid_json_with_span_events():
    snap = sample_snapshot()
    buf = io.StringIO()
    count = write_chrome_trace(snap, buf)
    document = json.loads(buf.getvalue())
    assert isinstance(document["traceEvents"], list)
    assert len(document["traceEvents"]) == count
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert complete and complete[0]["name"] == "mntp.query"
    assert complete[0]["dur"] == pytest.approx(1e6)  # 1 manual tick in us
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert instants and instants[0]["name"] == "mntp.offset_accepted"
    metas = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} >= {"mntp"}


def test_prometheus_rendering():
    text = render_prometheus(sample_snapshot())
    assert "# TYPE q_total counter" in text
    assert "q_total 3" in text
    assert "# HELP q_total queries" in text
    assert "drift_ppm 11.5" in text
    assert 'lat_ms_bucket{le="1"} 1' in text
    assert 'lat_ms_bucket{le="10"} 2' in text
    assert 'lat_ms_bucket{le="+Inf"} 3' in text
    assert "lat_ms_sum 55.5" in text
    assert "lat_ms_count 3" in text


def test_prometheus_empty_snapshot():
    assert render_prometheus({"metrics": [], "records": []}) == ""

"""Span tracing over the shared TraceLog."""

from repro.obs import SPAN_COMPONENT, SpanTracer
from repro.simcore.trace import TraceLog


class FakeClock:
    """A settable time source for tracer tests."""

    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


def make_tracer():
    clock = FakeClock()
    trace = TraceLog()
    return clock, trace, SpanTracer(trace, clock.now)


def test_begin_end_emits_one_record():
    clock, trace, tracer = make_tracer()
    span = tracer.begin("mntp.warmup", reset_count=0)
    clock.t = 5.0
    record = span.end(samples=3)
    assert record is not None
    assert record.component == SPAN_COMPONENT
    assert record.kind == "mntp.warmup"
    assert record.time == 0.0
    assert record.data["t0"] == 0.0
    assert record.data["t1"] == 5.0
    assert record.data["dur"] == 5.0
    assert record.data["reset_count"] == 0
    assert record.data["samples"] == 3
    assert len(trace) == 1


def test_end_is_idempotent():
    clock, trace, tracer = make_tracer()
    span = tracer.begin("x")
    assert span.end() is not None
    assert span.end() is None
    assert len(trace) == 1


def test_unfinished_span_emits_nothing():
    clock, trace, tracer = make_tracer()
    tracer.begin("never.closed")  # repro: noqa[RES001] the leak is the behavior under test
    assert len(trace) == 0
    assert tracer.open_count == 1


def test_context_manager_closes_span():
    clock, trace, tracer = make_tracer()
    with tracer.span("tuner.tune"):
        clock.t = 2.0
    assert len(trace) == 1
    assert trace.select(kind="tuner.tune")[0].data["dur"] == 2.0


def test_explicit_times_and_negative_duration_clamped():
    clock, trace, tracer = make_tracer()
    span = tracer.begin("x", t=10.0)
    record = span.end(t=4.0)  # end before start: clamp to zero length
    assert record.data["t1"] == 10.0
    assert record.data["dur"] == 0.0


def test_end_all_closes_stragglers():
    clock, trace, tracer = make_tracer()
    tracer.begin("a")  # repro: noqa[RES001] left open on purpose; end_all() is under test
    tracer.begin("b")  # repro: noqa[RES001] left open on purpose; end_all() is under test
    clock.t = 1.0
    assert tracer.end_all() == 2
    assert tracer.open_count == 0
    assert len(trace) == 2


def test_span_records_invisible_to_component_queries():
    clock, trace, tracer = make_tracer()
    trace.emit(0.0, "mntp", "offset_accepted", offset=0.001)
    tracer.begin("sim.run").end()
    assert len(trace.select(component="mntp")) == 1
    assert len(trace.select(component=SPAN_COMPONENT)) == 1

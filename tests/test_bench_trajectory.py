"""The bench harness's cumulative BENCH_obs.json trajectory."""

import importlib.util
import json
from pathlib import Path


def load_bench_module():
    path = Path(__file__).resolve().parent.parent / "scripts" / "bench.py"
    spec = importlib.util.spec_from_file_location("bench_script", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_trajectory_appends_runs(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    number, priors = bench._append_trajectory(
        out, {"a": 1.0, "b": 2.0}, {}, "smoke"
    )
    assert (number, priors) == (1, [])
    number, priors = bench._append_trajectory(
        out, {"a": 1.1, "b": 2.2}, {}, "full"
    )
    assert number == 2
    assert [r["run"] for r in priors] == [1]
    doc = json.loads(out.read_text())
    assert doc["format"] == bench.TRAJECTORY_FORMAT
    assert [r["run"] for r in doc["runs"]] == [1, 2]
    assert [r["mode"] for r in doc["runs"]] == ["smoke", "full"]
    assert doc["runs"][0]["total_seconds"] == 3.0
    assert doc["runs"][0]["wall_seconds"] == 3.0
    assert doc["runs"][1]["benches"] == {"a": 1.1, "b": 2.2}


def test_trajectory_records_throughput(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    throughput = {"a": {"exchanges": 500.0, "simulated_s": 7200.0}}
    bench._append_trajectory(out, {"a": 2.0, "b": 1.0}, throughput, "smoke")
    doc = json.loads(out.read_text())
    entry = doc["runs"][0]["throughput"]
    assert list(entry) == ["a"]  # bench "b" recorded no throughput
    assert entry["a"]["exchanges_per_s"] == 250.0
    assert entry["a"]["sim_hours_per_s"] == 1.0


def test_trajectory_migrates_single_run_document(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text(json.dumps(
        {"format": bench.BENCH_FORMAT, "benches": {"old": 4.0}}
    ))
    number, priors = bench._append_trajectory(out, {"new": 1.0}, {}, "smoke")
    assert number == 2
    doc = json.loads(out.read_text())
    assert doc["runs"][0] == {
        "run": 1, "mode": "unknown", "benches": {"old": 4.0},
        "total_seconds": 4.0, "wall_seconds": 4.0,
    }
    assert doc["runs"][1]["benches"] == {"new": 1.0}


def test_trajectory_migrates_old_schema_runs(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text(json.dumps({
        "format": bench.TRAJECTORY_FORMAT,
        "runs": [
            # Old smoke run: total_seconds only.
            {"run": 1, "mode": "smoke", "benches": {"a": 2.0},
             "total_seconds": 2.0},
            # Old profile run: its total_seconds was never a suite
            # total — the wall time moves to wall_seconds and the
            # misleading field goes away.
            {"run": 2, "mode": "profile", "benches": {},
             "total_seconds": 0.4},
        ],
    }))
    bench._append_trajectory(out, {"a": 2.1}, {}, "smoke")
    doc = json.loads(out.read_text())
    smoke_old, profile_old, fresh = doc["runs"]
    assert smoke_old["wall_seconds"] == 2.0
    assert smoke_old["total_seconds"] == 2.0
    assert profile_old["wall_seconds"] == 0.4
    assert "total_seconds" not in profile_old
    assert fresh["wall_seconds"] == 2.1


def test_trajectory_recovers_from_corrupt_file(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text("{ not json")
    number, priors = bench._append_trajectory(out, {"a": 1.0}, {}, "smoke")
    assert (number, priors) == (1, [])
    doc = json.loads(out.read_text())
    assert len(doc["runs"]) == 1


def _prior(run, mode, seconds, exchanges):
    return {
        "run": run, "mode": mode, "benches": {"a": seconds},
        "wall_seconds": seconds,
        "throughput": {"a": {
            "exchanges": exchanges, "simulated_s": 3600.0,
            "exchanges_per_s": round(exchanges / seconds, 3),
            "sim_hours_per_s": round(1.0 / seconds, 3),
        }},
    }


def test_throughput_gate_same_mode_only(capsys):
    bench = load_bench_module()
    priors = [
        _prior(1, "smoke", 1.0, 1000.0),   # 1000 exch/s
        # A slow full-suite run must not drag the smoke baseline down.
        _prior(2, "full", 10.0, 1000.0),   # 100 exch/s
    ]
    throughput = {"a": {"exchanges": 1000.0, "simulated_s": 3600.0}}
    # 10x slower than the smoke baseline: fails against smoke priors...
    failures = bench._compare_throughput(
        priors, {"a": 10.0}, throughput, "smoke", 0.25, 0.25
    )
    assert len(failures) == 1
    assert "1,000 exch/s median" in failures[0]
    # ...but the same measurement gated as a full run compares against
    # the full prior only, and passes.
    assert bench._compare_throughput(
        priors, {"a": 10.0}, throughput, "full", 0.25, 0.25
    ) == []
    capsys.readouterr()


def test_throughput_gate_uses_median_of_window(capsys):
    bench = load_bench_module()
    # One outlier fast run among normal ones: the median absorbs it.
    priors = [
        _prior(i, "smoke", s, 1000.0)
        for i, s in enumerate([1.0, 1.0, 0.1, 1.0, 1.0], start=1)
    ]
    throughput = {"a": {"exchanges": 1000.0, "simulated_s": 3600.0}}
    assert bench._compare_throughput(
        priors, {"a": 1.2}, throughput, "smoke", 0.25, 0.25
    ) == []
    capsys.readouterr()


def test_throughput_gate_without_priors_records_only(capsys):
    bench = load_bench_module()
    throughput = {"a": {"exchanges": 100.0, "simulated_s": 3600.0}}
    assert bench._compare_throughput(
        [], {"a": 1.0}, throughput, "smoke", 0.25, 0.25
    ) == []
    assert "no same-mode trajectory baseline" in capsys.readouterr().out

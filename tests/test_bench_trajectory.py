"""The bench harness's cumulative BENCH_obs.json trajectory."""

import importlib.util
import json
from pathlib import Path


def load_bench_module():
    path = Path(__file__).resolve().parent.parent / "scripts" / "bench.py"
    spec = importlib.util.spec_from_file_location("bench_script", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_trajectory_appends_runs(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    number, priors = bench._append_trajectory(
        out, {"a": 1.0, "b": 2.0}, {}, "smoke"
    )
    assert (number, priors) == (1, [])
    number, priors = bench._append_trajectory(
        out, {"a": 1.1, "b": 2.2}, {}, "full"
    )
    assert number == 2
    assert [r["run"] for r in priors] == [1]
    doc = json.loads(out.read_text())
    assert doc["format"] == bench.TRAJECTORY_FORMAT
    assert [r["run"] for r in doc["runs"]] == [1, 2]
    assert [r["mode"] for r in doc["runs"]] == ["smoke", "full"]
    assert doc["runs"][0]["total_seconds"] == 3.0
    assert doc["runs"][0]["wall_seconds"] == 3.0
    assert doc["runs"][1]["benches"] == {"a": 1.1, "b": 2.2}


def test_trajectory_records_throughput(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    throughput = {"a": {"exchanges": 500.0, "simulated_s": 7200.0}}
    bench._append_trajectory(out, {"a": 2.0, "b": 1.0}, throughput, "smoke")
    doc = json.loads(out.read_text())
    entry = doc["runs"][0]["throughput"]
    assert list(entry) == ["a"]  # bench "b" recorded no throughput
    assert entry["a"]["exchanges_per_s"] == 250.0
    assert entry["a"]["sim_hours_per_s"] == 1.0


def test_trajectory_migrates_single_run_document(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text(json.dumps(
        {"format": bench.BENCH_FORMAT, "benches": {"old": 4.0}}
    ))
    number, priors = bench._append_trajectory(out, {"new": 1.0}, {}, "smoke")
    assert number == 2
    doc = json.loads(out.read_text())
    assert doc["runs"][0] == {
        "run": 1, "mode": "unknown", "benches": {"old": 4.0},
        "total_seconds": 4.0, "wall_seconds": 4.0,
    }
    assert doc["runs"][1]["benches"] == {"new": 1.0}


def test_trajectory_migrates_old_schema_runs(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text(json.dumps({
        "format": bench.TRAJECTORY_FORMAT,
        "runs": [
            # Old smoke run: total_seconds only.
            {"run": 1, "mode": "smoke", "benches": {"a": 2.0},
             "total_seconds": 2.0},
            # Old profile run: its total_seconds was never a suite
            # total — the wall time moves to wall_seconds and the
            # misleading field goes away.
            {"run": 2, "mode": "profile", "benches": {},
             "total_seconds": 0.4},
        ],
    }))
    bench._append_trajectory(out, {"a": 2.1}, {}, "smoke")
    doc = json.loads(out.read_text())
    smoke_old, profile_old, fresh = doc["runs"]
    assert smoke_old["wall_seconds"] == 2.0
    assert smoke_old["total_seconds"] == 2.0
    assert profile_old["wall_seconds"] == 0.4
    assert "total_seconds" not in profile_old
    assert fresh["wall_seconds"] == 2.1


def test_trajectory_recovers_from_corrupt_file(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text("{ not json")
    number, priors = bench._append_trajectory(out, {"a": 1.0}, {}, "smoke")
    assert (number, priors) == (1, [])
    doc = json.loads(out.read_text())
    assert len(doc["runs"]) == 1


def _prior(run, mode, seconds, exchanges):
    return {
        "run": run, "mode": mode, "benches": {"a": seconds},
        "wall_seconds": seconds,
        "throughput": {"a": {
            "exchanges": exchanges, "simulated_s": 3600.0,
            "exchanges_per_s": round(exchanges / seconds, 3),
            "sim_hours_per_s": round(1.0 / seconds, 3),
        }},
    }


def test_throughput_gate_same_mode_only(capsys):
    bench = load_bench_module()
    priors = [
        _prior(1, "smoke", 1.0, 1000.0),   # 1000 exch/s
        # A slow full-suite run must not drag the smoke baseline down.
        _prior(2, "full", 10.0, 1000.0),   # 100 exch/s
    ]
    throughput = {"a": {"exchanges": 1000.0, "simulated_s": 3600.0}}
    # 10x slower than the smoke baseline: fails against smoke priors...
    failures = bench._compare_throughput(
        priors, {"a": 10.0}, throughput, "smoke", 0.25, 0.25
    )
    assert len(failures) == 1
    assert "1,000 exch/s median" in failures[0]
    # ...but the same measurement gated as a full run compares against
    # the full prior only, and passes.
    assert bench._compare_throughput(
        priors, {"a": 10.0}, throughput, "full", 0.25, 0.25
    ) == []
    capsys.readouterr()


def test_throughput_gate_uses_median_of_window(capsys):
    bench = load_bench_module()
    # One outlier fast run among normal ones: the median absorbs it.
    priors = [
        _prior(i, "smoke", s, 1000.0)
        for i, s in enumerate([1.0, 1.0, 0.1, 1.0, 1.0], start=1)
    ]
    throughput = {"a": {"exchanges": 1000.0, "simulated_s": 3600.0}}
    assert bench._compare_throughput(
        priors, {"a": 1.2}, throughput, "smoke", 0.25, 0.25
    ) == []
    capsys.readouterr()


def test_throughput_gate_without_priors_records_only(capsys):
    bench = load_bench_module()
    throughput = {"a": {"exchanges": 100.0, "simulated_s": 3600.0}}
    assert bench._compare_throughput(
        [], {"a": 1.0}, throughput, "smoke", 0.25, 0.25
    ) == []
    assert "no same-mode trajectory baseline" in capsys.readouterr().out


def test_trajectory_pruned_to_keep_per_mode(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    for i in range(30):
        bench._append_trajectory(out, {"a": 1.0 + i * 0.001}, {}, "smoke")
    doc = json.loads(out.read_text())
    runs = doc["runs"]
    assert len(runs) == bench.TRAJECTORY_KEEP_PER_MODE
    # Oldest runs dropped, numbering still monotonic from the max.
    assert [r["run"] for r in runs] == list(range(6, 31))
    number, priors = bench._append_trajectory(out, {"a": 2.0}, {}, "smoke")
    assert number == 31
    assert len(priors) == bench.TRAJECTORY_KEEP_PER_MODE


def test_trajectory_prunes_per_mode_independently(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    for i in range(28):
        bench._append_trajectory(out, {"a": 1.0}, {}, "smoke")
    bench._append_trajectory(out, {"a": 1.0}, {}, "full")
    runs = json.loads(out.read_text())["runs"]
    modes = [r["mode"] for r in runs]
    assert modes.count("smoke") == bench.TRAJECTORY_KEEP_PER_MODE
    assert modes.count("full") == 1


def test_trajectory_migration_prunes_oversized_file(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    runs = [
        {"run": i + 1, "mode": "smoke", "benches": {"a": 1.0},
         "total_seconds": 1.0, "wall_seconds": 1.0, "throughput": {}}
        for i in range(40)
    ]
    out.write_text(json.dumps(
        {"format": bench.TRAJECTORY_FORMAT, "runs": runs}
    ))
    number, priors = bench._append_trajectory(out, {"a": 1.0}, {}, "smoke")
    assert number == 41
    assert len(priors) == bench.TRAJECTORY_KEEP_PER_MODE
    doc = json.loads(out.read_text())
    assert [r["run"] for r in doc["runs"]][:3] == [17, 18, 19]
    assert len(doc["runs"]) == bench.TRAJECTORY_KEEP_PER_MODE


def test_archived_run_number_round_trip(tmp_path, monkeypatch):
    bench = load_bench_module()
    monkeypatch.setattr(bench, "TELEMETRY_DIR", tmp_path / "telemetry")
    path = bench._telemetry_path("smoke", 12, "bench_fig7")
    assert path.name == "smoke-run-12-bench_fig7.json"
    assert bench._archived_run_number(path, "smoke", "bench_fig7") == 12
    assert bench._archived_run_number(path, "full", "bench_fig7") is None
    assert bench._archived_run_number(path, "smoke", "bench_fig4") is None
    odd = tmp_path / "smoke-run-xx-bench_fig7.json"
    assert bench._archived_run_number(odd, "smoke", "bench_fig7") is None


def test_archive_telemetry_moves_and_prunes(tmp_path, monkeypatch):
    bench = load_bench_module()
    telemetry_dir = tmp_path / "telemetry"
    monkeypatch.setattr(bench, "TELEMETRY_DIR", telemetry_dir)
    for number in range(1, 9):
        scratch = tmp_path / f"scratch-{number}"
        scratch.mkdir()
        (scratch / "bench_x.json").write_text(json.dumps({"n": number}))
        bench._archive_telemetry(scratch, number, "smoke")
        assert not scratch.exists()  # scratch is consumed
    names = sorted(p.name for p in telemetry_dir.glob("*.json"))
    assert len(names) == bench.TELEMETRY_KEEP
    assert names[0] == f"smoke-run-{9 - bench.TELEMETRY_KEEP}-bench_x.json"
    assert names[-1] == "smoke-run-8-bench_x.json"
    # Another mode's archives are untouched by smoke pruning.
    scratch = tmp_path / "scratch-full"
    scratch.mkdir()
    (scratch / "bench_x.json").write_text(json.dumps({"n": 99}))
    bench._archive_telemetry(scratch, 1, "full")
    assert (telemetry_dir / "full-run-1-bench_x.json").exists()
    assert len(list(telemetry_dir.glob("smoke-*.json"))) == (
        bench.TELEMETRY_KEEP
    )


def make_prior(number, rate, name="bench_x", mode="smoke"):
    return {
        "run": number, "mode": mode, "benches": {name: 1.0},
        "throughput": {
            name: {"exchanges": rate, "simulated_s": 3600.0,
                   "exchanges_per_s": rate},
        },
    }


def test_median_baseline_run_selection():
    bench = load_bench_module()
    priors = [make_prior(n, rate) for n, rate in
              [(1, 100.0), (2, 90.0), (3, 110.0), (4, 105.0), (5, 95.0)]]
    # Median of [100, 90, 110, 105, 95] is 100 -> run 1.
    assert bench._median_baseline_run(priors, "bench_x", "smoke") == 1
    # Other modes and other benches never qualify.
    assert bench._median_baseline_run(priors, "bench_x", "full") is None
    assert bench._median_baseline_run(priors, "bench_y", "smoke") is None
    # Ties go to the most recent run.
    tied = [make_prior(1, 100.0), make_prior(2, 100.0)]
    assert bench._median_baseline_run(tied, "bench_x", "smoke") == 2


def test_triage_without_baseline_or_telemetry(tmp_path, monkeypatch, capsys):
    bench = load_bench_module()
    monkeypatch.setattr(bench, "TELEMETRY_DIR", tmp_path / "telemetry")
    bench._triage_failures(["bench_x: too slow"], [], 3, "smoke")
    out = capsys.readouterr().out
    assert "triage bench_x: no same-mode baseline run to diff" in out
    bench._triage_failures(
        ["bench_x: too slow"], [make_prior(1, 100.0)], 3, "smoke"
    )
    out = capsys.readouterr().out
    assert "no archived telemetry to diff" in out
    assert "smoke-run-1-bench_x.json" in out


def test_triage_diffs_against_median_baseline(tmp_path, monkeypatch, capsys):
    from repro.obs import Telemetry

    bench = load_bench_module()
    telemetry_dir = tmp_path / "telemetry"
    telemetry_dir.mkdir()
    monkeypatch.setattr(bench, "TELEMETRY_DIR", telemetry_dir)

    def snapshot(queries):
        telemetry = Telemetry.standalone()
        telemetry.metrics.counter("q_total").inc(queries)
        return telemetry.snapshot()

    baseline_path = bench._telemetry_path("smoke", 1, "bench_x")
    baseline_path.write_text(json.dumps(snapshot(100)))
    current_path = bench._telemetry_path("smoke", 2, "bench_x")
    current_path.write_text(json.dumps(snapshot(60)))
    bench._triage_failures(
        ["bench_x: 2.0s exceeds allowed"], [make_prior(1, 100.0)], 2, "smoke"
    )
    out = capsys.readouterr().out
    assert "triage bench_x: run 2 vs median baseline run 1" in out
    assert "q_total" in out
    # Identical archives triage to the identity line.
    current_path.write_text(json.dumps(snapshot(100)))
    bench._triage_failures(
        ["bench_x: 2.0s exceeds allowed"], [make_prior(1, 100.0)], 2, "smoke"
    )
    assert "snapshots are identical" in capsys.readouterr().out

"""The bench harness's cumulative BENCH_obs.json trajectory."""

import importlib.util
import json
from pathlib import Path


def load_bench_module():
    path = Path(__file__).resolve().parent.parent / "scripts" / "bench.py"
    spec = importlib.util.spec_from_file_location("bench_script", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_trajectory_appends_runs(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    assert bench._append_trajectory(out, {"a": 1.0, "b": 2.0}, "smoke") == 1
    assert bench._append_trajectory(out, {"a": 1.1, "b": 2.2}, "full") == 2
    doc = json.loads(out.read_text())
    assert doc["format"] == bench.TRAJECTORY_FORMAT
    assert [r["run"] for r in doc["runs"]] == [1, 2]
    assert [r["mode"] for r in doc["runs"]] == ["smoke", "full"]
    assert doc["runs"][0]["total_seconds"] == 3.0
    assert doc["runs"][1]["benches"] == {"a": 1.1, "b": 2.2}


def test_trajectory_migrates_single_run_document(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text(json.dumps(
        {"format": bench.BENCH_FORMAT, "benches": {"old": 4.0}}
    ))
    assert bench._append_trajectory(out, {"new": 1.0}, "smoke") == 2
    doc = json.loads(out.read_text())
    assert doc["runs"][0] == {
        "run": 1, "mode": "unknown", "benches": {"old": 4.0},
        "total_seconds": 4.0,
    }
    assert doc["runs"][1]["benches"] == {"new": 1.0}


def test_trajectory_recovers_from_corrupt_file(tmp_path):
    bench = load_bench_module()
    out = tmp_path / "BENCH_obs.json"
    out.write_text("{ not json")
    assert bench._append_trajectory(out, {"a": 1.0}, "smoke") == 1
    doc = json.loads(out.read_text())
    assert len(doc["runs"]) == 1

"""Shared fixtures."""

import numpy as np
import pytest

from repro.simcore import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def rng() -> np.random.Generator:
    """A standalone seeded generator for non-simulator components."""
    return np.random.default_rng(42)

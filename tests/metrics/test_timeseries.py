"""OffsetSeries container."""

import pytest

from repro.metrics.timeseries import OffsetSeries


def test_construction_and_len():
    s = OffsetSeries([0.0, 1.0], [0.1, 0.2])
    assert len(s) == 2
    assert s.times == [0.0, 1.0]
    assert s.offsets == [0.1, 0.2]


def test_mismatched_lengths():
    with pytest.raises(ValueError):
        OffsetSeries([0.0], [1.0, 2.0])


def test_non_monotone_rejected():
    with pytest.raises(ValueError):
        OffsetSeries([1.0, 0.5], [0.0, 0.0])


def test_append():
    s = OffsetSeries()
    s.append(1.0, 0.5)
    s.append(2.0, -0.5)
    with pytest.raises(ValueError):
        s.append(1.5, 0.0)
    assert len(s) == 2


def test_from_points():
    class P:
        def __init__(self, t, o):
            self.time = t
            self.offset = o

    s = OffsetSeries.from_points([P(0.0, 1.0), P(5.0, 2.0)])
    assert s.times == [0.0, 5.0]


def test_abs_offsets():
    s = OffsetSeries([0.0, 1.0], [-0.3, 0.2])
    assert list(s.abs_offsets()) == pytest.approx([0.3, 0.2])


def test_window():
    s = OffsetSeries([0.0, 1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0])
    w = s.window(1.0, 3.0)
    assert w.times == [1.0, 2.0]
    assert w.offsets == [2.0, 3.0]


def test_resample_max_abs_preserves_spikes():
    times = [float(i) for i in range(100)]
    offsets = [0.001] * 100
    offsets[57] = -5.0  # spike
    s = OffsetSeries(times, offsets)
    bins, values = s.resample_max_abs(bin_width=10.0)
    assert max(values) == 5.0
    assert len(bins) == len(values)


def test_resample_empty():
    assert OffsetSeries().resample_max_abs(1.0) == ([], [])


def test_resample_bad_width():
    with pytest.raises(ValueError):
        OffsetSeries([0.0], [0.0]).resample_max_abs(0.0)

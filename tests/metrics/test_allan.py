"""Allan deviation correctness."""

import numpy as np
import pytest

from repro.metrics.allan import allan_deviation, allan_deviation_curve


def test_perfect_clock_zero_adev():
    phase = [0.0] * 100
    assert allan_deviation(phase, 1.0, 1) == 0.0


def test_constant_frequency_offset_zero_adev():
    # A pure frequency error is a linear phase ramp: the second
    # difference vanishes, so ADEV is 0 (frequency offsets are not
    # instability).
    phase = [1e-5 * t for t in range(200)]
    assert allan_deviation(phase, 1.0, 4) == pytest.approx(0.0, abs=1e-15)


def test_white_pm_known_value():
    """For white phase noise of variance s^2, AVAR(tau) = 3 s^2 / tau^2
    (expected value); check within sampling tolerance."""
    rng = np.random.default_rng(0)
    sigma = 1e-6
    phase = rng.normal(0.0, sigma, size=200_000)
    for m in (1, 4):
        tau = float(m)
        expected = np.sqrt(3.0 * sigma**2 / tau**2)
        measured = allan_deviation(phase, 1.0, m)
        assert measured == pytest.approx(expected, rel=0.05)


def test_white_fm_slope():
    """White frequency noise gives ADEV ~ tau^-1/2: doubling tau scales
    ADEV by 1/sqrt(2)."""
    rng = np.random.default_rng(1)
    freq = rng.normal(0.0, 1e-7, size=100_000)
    phase = np.cumsum(freq)  # tau0 = 1
    a1 = allan_deviation(phase, 1.0, 8)
    a2 = allan_deviation(phase, 1.0, 16)
    assert a2 / a1 == pytest.approx(1 / np.sqrt(2), rel=0.1)


def test_input_validation():
    with pytest.raises(ValueError):
        allan_deviation([0.0] * 10, 0.0, 1)
    with pytest.raises(ValueError):
        allan_deviation([0.0] * 10, 1.0, 0)
    with pytest.raises(ValueError):
        allan_deviation([0.0] * 4, 1.0, 2)


def test_curve_octave_spacing():
    phase = list(np.random.default_rng(2).normal(0, 1e-6, size=1000))
    curve = allan_deviation_curve(phase, 2.0)
    taus = [tau for tau, _ in curve]
    assert taus[0] == 2.0
    for a, b in zip(taus, taus[1:]):
        assert b == 2 * a
    assert len(curve) <= 20


def test_simclock_oscillator_stability_ordering():
    """A phone-grade oscillator is less stable than a server-grade one
    at long averaging times (wander dominates there)."""
    from repro.clock.oscillator import OSCILLATOR_GRADES, Oscillator
    from repro.clock.simclock import SimClock

    def phase_series(grade, seed):
        now = [0.0]
        rng = np.random.default_rng(seed)
        clock = SimClock(Oscillator(OSCILLATOR_GRADES[grade], rng),
                         now_fn=lambda: now[0])
        series = []
        for t in range(0, 20_000, 10):
            now[0] = float(t)
            series.append(clock.true_offset())
        return series

    tau0 = 10.0
    phone = allan_deviation(phase_series("phone", 3), tau0, 64)
    server = allan_deviation(phase_series("server", 3), tau0, 64)
    assert phone > server

"""Statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.distributions import cdf_at, empirical_cdf, iqr, quantile
from repro.metrics.stats import rmse, robust_mean_std, summary


def test_summary_basic():
    s = summary([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.median == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0


def test_summary_empty():
    s = summary([])
    assert s.count == 0
    assert s.mean == 0.0


def test_rmse_known():
    assert rmse([3.0, -4.0]) == pytest.approx(math.sqrt(12.5))
    assert rmse([]) == 0.0
    assert rmse([5.0, 5.0], target=5.0) == 0.0


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
def test_rmse_nonnegative_property(values):
    assert rmse(values) >= 0.0


def test_robust_mean_std_resists_outlier():
    clean = [1.0, 1.1, 0.9, 1.05, 0.95]
    med_clean, scale_clean = robust_mean_std(clean)
    med_dirty, scale_dirty = robust_mean_std(clean + [1000.0])
    assert med_dirty == pytest.approx(med_clean, abs=0.2)
    assert scale_dirty < 10.0


def test_robust_empty():
    assert robust_mean_std([]) == (0.0, 0.0)


def test_empirical_cdf():
    xs, ps = empirical_cdf([3.0, 1.0, 2.0])
    assert list(xs) == [1.0, 2.0, 3.0]
    assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_empirical_cdf_empty():
    xs, ps = empirical_cdf([])
    assert len(xs) == 0


def test_quantile_and_iqr():
    values = list(range(101))
    assert quantile(values, 0.5) == pytest.approx(50.0)
    assert iqr(values) == pytest.approx(50.0)
    assert quantile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        quantile(values, 1.5)


def test_cdf_at():
    values = [1.0, 2.0, 3.0, 4.0]
    assert cdf_at(values, [0.5, 2.0, 10.0]) == pytest.approx([0.0, 0.5, 1.0])
    assert cdf_at([], [1.0]) == [0.0]

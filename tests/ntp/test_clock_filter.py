"""Eight-stage clock filter."""

import pytest

from repro.ntp.clock_filter import STAGES, ClockFilter


def test_empty_filter_has_no_best():
    f = ClockFilter()
    assert f.best(now=0.0) is None
    assert len(f) == 0


def test_min_delay_sample_wins():
    f = ClockFilter()
    f.add(offset=0.100, delay=0.200, epoch=0.0)
    f.add(offset=0.005, delay=0.050, epoch=1.0)
    f.add(offset=0.300, delay=0.400, epoch=2.0)
    best = f.best(now=2.0)
    assert best is not None
    assert best.offset == 0.005


def test_register_bounded_to_eight():
    f = ClockFilter()
    for i in range(20):
        f.add(offset=float(i), delay=1.0 + i, epoch=float(i))
    assert len(f) == STAGES
    # Oldest samples fell off: delays 13..20 remain, min is 13 -> offset 12.
    assert f.best(now=20.0).offset == 12.0


def test_dispersion_ages_with_time():
    f = ClockFilter(min_dispersion=0.001)
    f.add(offset=0.0, delay=0.01, epoch=0.0)
    early = f.best(now=0.0).dispersion
    late = f.best(now=1000.0).dispersion
    assert late > early


def test_jitter_zero_with_single_sample():
    f = ClockFilter()
    f.add(offset=0.01, delay=0.01, epoch=0.0)
    assert f.jitter() == 0.0


def test_jitter_reflects_spread():
    tight = ClockFilter()
    loose = ClockFilter()
    for i in range(8):
        tight.add(offset=0.001 * (i % 2), delay=0.01 + 0.001 * i, epoch=float(i))
        loose.add(offset=0.1 * (i % 2), delay=0.01 + 0.001 * i, epoch=float(i))
    assert loose.jitter() > tight.jitter() * 10


def test_popcorn_spike_discarded():
    f = ClockFilter(popcorn_gate=3.0)
    # Build a stable history.
    for i in range(8):
        f.add(offset=0.001 + 0.0001 * (i % 3), delay=0.01, epoch=float(i))
    f.best(now=8.0)  # establish last_best
    before = len(f)
    f.add(offset=5.0, delay=0.01, epoch=9.0)  # monster spike
    assert f.popcorn_discards == 1
    assert len(f) == before  # spike did not enter
    assert abs(f.best(now=9.0).offset) < 0.01


def test_samples_accessor_order():
    f = ClockFilter()
    f.add(offset=1.0, delay=0.1, epoch=0.0)
    f.add(offset=2.0, delay=0.1, epoch=1.0)
    offsets = [s.offset for s in f.samples()]
    assert offsets == [1.0, 2.0]


def test_min_dispersion_floor():
    f = ClockFilter(min_dispersion=0.005)
    f.add(offset=0.0, delay=0.01, epoch=0.0, dispersion=0.0)
    assert f.best(now=0.0).dispersion >= 0.005

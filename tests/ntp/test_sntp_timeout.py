"""Timeout-path behaviour of the SNTP client."""

from repro.ntp.server import ServerConfig
from repro.ntp.sntp_client import HardeningPolicy
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet


def _exchange_spans(sim):
    sim.telemetry.spans.end_all()
    return [
        r for r in sim.telemetry.snapshot()["records"]
        if r["component"] == "span" and r["kind"] == "sntp.exchange"
    ]


def test_timeout_fires_and_is_counted():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)])
    net.servers["pool"].faults.dead = 1
    results = []
    net.client.query("pool", results.append, timeout=1.5)
    sim.run_until(10.0)
    assert len(results) == 1 and results[0].timed_out
    assert net.client.timeouts == 1
    assert not net.client._pending  # table drained
    spans = _exchange_spans(sim)
    assert len(spans) == 1
    assert spans[0]["data"]["outcome"] == "timeout"
    assert spans[0]["data"]["t1"] - spans[0]["data"]["t0"] == 1.5


def test_response_cancels_timeout_no_double_callback():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)])
    results = []
    net.client.query("pool", results.append, timeout=2.0)
    sim.run_until(30.0)  # far past the timeout deadline
    assert len(results) == 1 and results[0].ok
    assert net.client.timeouts == 0
    assert _exchange_spans(sim)[0]["data"]["outcome"] == "ok"


def test_late_response_after_timeout_is_ignored():
    sim = Simulator(seed=1)
    # One-way delay of 0.5 s against a 0.2 s timeout: the reply is in
    # flight when the timeout fires and lands on an empty pending table.
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)],
                  owd=0.5)
    results = []
    net.client.query("pool", results.append, timeout=0.2)
    sim.run_until(5.0)
    assert len(results) == 1 and results[0].timed_out
    assert net.client.timeouts == 1
    assert net.client.responses_received == 0  # straggler dropped silently
    assert net.servers["pool"].requests_seen == 1


def test_timeout_opens_backoff_under_hardening():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)],
                  hardening=HardeningPolicy(jitter_frac=0.0, backoff_base=5.0))
    net.servers["pool"].faults.dead = 1
    net.client.query("pool", lambda r: None, timeout=1.0)
    sim.run_until(2.0)
    health = net.client.health["pool"]
    assert health.consecutive_failures == 1
    assert health.backoff_until == 1.0 + 5.0  # timeout time + base window
    # After the window the server is queried again over the wire.
    net.servers["pool"].faults.dead = 0
    results = []
    sim.call_at(7.0, lambda: net.client.query("pool", results.append))
    sim.run_until(10.0)
    assert results and results[0].ok
    assert health.consecutive_failures == 0

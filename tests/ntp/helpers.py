"""Mini-topology helpers for protocol-level tests."""

from __future__ import annotations

from typing import List, Optional

from repro.clock.oscillator import OSCILLATOR_GRADES, Oscillator, OscillatorGrade
from repro.clock.simclock import SimClock
from repro.net.link import Link
from repro.net.path import PathModel
from repro.ntp.server import NtpServer, ServerConfig
from repro.ntp.sntp_client import HardeningPolicy, SntpClient
from repro.simcore import Simulator

PERFECT = OscillatorGrade(
    name="perfect", base_skew_ppm_sigma=0.0, wander_ppm_per_sqrt_s=0.0,
    temp_coeff_ppm_per_k=0.0,
)


def perfect_clock(sim: Simulator, offset: float = 0.0, stream: str = "clk") -> SimClock:
    """A drift-free clock with a fixed initial offset."""
    return SimClock(
        Oscillator(PERFECT, sim.rng.stream(stream)),
        now_fn=lambda: sim.now,
        initial_offset=offset,
    )


def drifting_clock(sim: Simulator, skew_ppm: float, offset: float = 0.0,
                   stream: str = "clk") -> SimClock:
    """A clock with an exact constant skew and no wander."""
    osc = Oscillator(PERFECT, sim.rng.stream(stream))
    osc.base_skew_ppm = skew_ppm
    return SimClock(osc, now_fn=lambda: sim.now, initial_offset=offset)


class MiniNet:
    """One client wired to N servers over symmetric loss-free paths."""

    def __init__(
        self,
        sim: Simulator,
        server_configs: List[ServerConfig],
        client_clock: Optional[SimClock] = None,
        owd: float = 0.025,
        server_offsets: Optional[List[float]] = None,
        hardening: Optional[HardeningPolicy] = None,
    ) -> None:
        self.sim = sim
        self.client_clock = client_clock or perfect_clock(sim, stream="client-clk")
        self.servers: dict[str, NtpServer] = {}
        self._uplinks: dict[str, Link] = {}
        self.client = SntpClient(
            sim, self.client_clock, send=self._send, name="client",
            hardening=hardening,
        )
        offsets = server_offsets or [0.0] * len(server_configs)
        for config, s_offset in zip(server_configs, offsets):
            clock = perfect_clock(sim, offset=s_offset, stream=f"srv:{config.name}")
            server = NtpServer(sim, clock, config)
            up = Link(
                sim,
                PathModel(sim.rng.stream(f"up:{config.name}"), base_delay=owd,
                          queue_mean=0.0, loss_rate=0.0),
                receive=server.on_datagram,
            )
            down = Link(
                sim,
                PathModel(sim.rng.stream(f"dn:{config.name}"), base_delay=owd,
                          queue_mean=0.0, loss_rate=0.0),
                receive=self.client.on_datagram,
            )
            server.send_reply = down.send
            self.servers[config.name] = server
            self._uplinks[config.name] = up

    def _send(self, datagram) -> None:
        self._uplinks[datagram.dst].send(datagram)

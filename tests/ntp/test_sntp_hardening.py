"""Hardened-client behaviour: backoff, failover, caps, validation."""

import pytest

from repro.ntp.server import ServerConfig
from repro.ntp.sntp_client import HardeningPolicy, ServerHealth
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet

POLICY = HardeningPolicy(jitter_frac=0.0)  # exact windows for assertions


def test_policy_validation():
    with pytest.raises(ValueError):
        HardeningPolicy(backoff_base=0.0)
    with pytest.raises(ValueError):
        HardeningPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        HardeningPolicy(jitter_frac=1.0)
    with pytest.raises(ValueError):
        HardeningPolicy(health_decay=1.0)


def test_backoff_window_grows_exponentially_and_resets():
    health = ServerHealth("srv")
    policy = HardeningPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=8.0, jitter_frac=0.0)
    for expected in (1.0, 2.0, 4.0, 8.0, 8.0):  # capped at backoff_max
        health.record_failure(100.0, policy, jitter=1.0)
        assert health.backoff_until == pytest.approx(100.0 + expected)
    assert health.score < 1.0
    health.record_success(policy)
    assert health.consecutive_failures == 0
    assert health.backoff_until == 0.0
    # The streak restarts from the base window after a success.
    health.record_failure(200.0, policy, jitter=1.0)
    assert health.backoff_until == pytest.approx(201.0)


def test_failed_server_enters_backoff_and_query_fails_fast():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)],
                  hardening=POLICY)
    net.servers["pool"].faults.dead = 1
    results = []
    net.client.query("pool", results.append, timeout=0.5)
    sim.run_until(1.0)
    assert results[0].timed_out
    # Within the backoff window and with no peers: fail locally.
    net.client.query("pool", results.append, timeout=0.5)
    sim.run_until(1.2)
    assert results[1].backed_off
    assert net.client.backed_off_queries == 1
    assert net.servers["pool"].requests_seen == 1  # wire touched once


def test_failover_reroutes_to_healthy_peer():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [
        ServerConfig(name="a", processing_delay=1e-6),
        ServerConfig(name="b", processing_delay=1e-6),
    ], hardening=POLICY)
    net.client.set_failover_peers(["a", "b"])
    net.servers["a"].faults.dead = 1
    results = []
    net.client.query("a", results.append, timeout=0.5)
    sim.run_until(1.0)
    assert results[0].timed_out
    net.client.query("a", results.append, timeout=0.5)
    sim.run_until(2.0)
    assert results[1].ok
    assert results[1].server_name == "b"
    assert net.client.failovers == 1
    # Success on b raised its health; a's failure lowered its score.
    assert net.client.health["b"].score > net.client.health["a"].score


def test_no_failover_when_disabled():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [
        ServerConfig(name="a", processing_delay=1e-6),
        ServerConfig(name="b", processing_delay=1e-6),
    ], hardening=HardeningPolicy(jitter_frac=0.0, failover=False))
    net.client.set_failover_peers(["a", "b"])
    net.servers["a"].faults.dead = 1
    results = []
    net.client.query("a", results.append, timeout=0.5)
    sim.run_until(1.0)
    net.client.query("a", results.append, timeout=0.5)
    sim.run_until(1.2)
    assert results[1].backed_off
    assert net.client.failovers == 0


def test_backoff_jitter_is_seed_deterministic():
    def windows(seed):
        sim = Simulator(seed=seed)
        net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)],
                      hardening=HardeningPolicy(jitter_frac=0.5))
        net.servers["pool"].faults.dead = 1
        net.client.query("pool", lambda r: None, timeout=0.5)
        sim.run_until(1.0)
        return net.client.health["pool"].backoff_until

    assert windows(5) == windows(5)
    assert windows(5) != windows(6)


def test_kod_holdoff_floor_applies_without_usable_hint():
    from repro.ntp.packet import NtpPacket

    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)])
    net.client.kod_backoff = 30.0
    net.client.min_kod_holdoff = 120.0
    # poll=0 carries no retry hint: the configured backoff applies,
    # floored by min_kod_holdoff.
    assert net.client._kod_holdoff(NtpPacket(poll=0)) == 120.0
    # An implausibly large hint is also replaced by the floored backoff.
    assert net.client._kod_holdoff(NtpPacket(poll=30)) == 120.0
    # A plausible hint above the floor is honoured (2^8 = 256 s).
    assert net.client._kod_holdoff(NtpPacket(poll=8)) == 256.0
    # A plausible but tiny hint is floored (2^2 = 4 s < 120 s).
    assert net.client._kod_holdoff(NtpPacket(poll=2)) == 120.0


def test_pending_table_is_capped_with_eviction():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)])
    net.client.max_pending = 4
    net.servers["pool"].faults.dead = 1
    results = []
    for _ in range(6):
        net.client.query("pool", results.append, timeout=60.0)
    assert len(net.client._pending) == 4
    assert net.client.pending_evictions == 2
    assert len(results) == 2 and all(r.timed_out for r in results)
    sim.run_until(120.0)
    assert len(results) == 6  # the capped four eventually timed out


def test_zeroed_transmit_timestamp_rejected_not_crashing():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)])
    net.servers["pool"].faults.zero_transmit = 1
    results = []
    net.client.query("pool", results.append)
    sim.run_until(5.0)
    assert len(results) == 1
    assert results[0].invalid and not results[0].ok
    assert net.client.invalid_received == 1
    assert net.client.timeouts == 0  # rejected on arrival, not by timer


def test_plain_client_unchanged_by_hardening_code():
    """A client without a policy keeps the baseline metric/RNG surface."""
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="pool", processing_delay=1e-6)])
    results = []
    net.client.query("pool", results.append)
    sim.run_until(5.0)
    assert results[0].ok
    assert net.client.health == {}
    names = {m["name"] for m in sim.telemetry.snapshot()["metrics"]}
    assert "sntp_failovers_total" not in names
    assert "sntp_backed_off_queries_total" not in names

"""Pool DNS rotation."""

import numpy as np
import pytest

from repro.ntp.pool import PoolDns
from repro.ntp.server import NtpServer, ServerConfig
from repro.simcore import Simulator
from tests.ntp.helpers import perfect_clock


def _servers(sim, names):
    return [
        NtpServer(sim, perfect_clock(sim, stream=f"c:{n}"), ServerConfig(name=n))
        for n in names
    ]


def test_resolve_rotates_members():
    sim = Simulator(seed=1)
    dns = PoolDns(np.random.default_rng(0))
    members = _servers(sim, ["a", "b", "c", "d"])
    dns.register("pool", members)
    seen = {dns.resolve("pool").config.name for _ in range(200)}
    assert seen == {"a", "b", "c", "d"}


def test_resolve_exact_member_name():
    sim = Simulator(seed=1)
    dns = PoolDns(np.random.default_rng(0))
    dns.register("pool", _servers(sim, ["a", "b"]))
    assert dns.resolve("b").config.name == "b"


def test_unknown_name_raises():
    dns = PoolDns(np.random.default_rng(0))
    with pytest.raises(KeyError):
        dns.resolve("nope")


def test_empty_pool_rejected():
    dns = PoolDns(np.random.default_rng(0))
    with pytest.raises(ValueError):
        dns.register("pool", [])


def test_members_and_names():
    sim = Simulator(seed=1)
    dns = PoolDns(np.random.default_rng(0))
    members = _servers(sim, ["a", "b"])
    dns.register("pool", members)
    assert dns.pool_names() == ["pool"]
    assert len(dns.members("pool")) == 2


def test_rotation_roughly_uniform():
    sim = Simulator(seed=1)
    dns = PoolDns(np.random.default_rng(7))
    dns.register("pool", _servers(sim, ["a", "b", "c"]))
    counts = {"a": 0, "b": 0, "c": 0}
    for _ in range(3000):
        counts[dns.resolve("pool").config.name] += 1
    for count in counts.values():
        assert count == pytest.approx(1000, rel=0.2)

"""NTP timestamp codec correctness and roundtrips."""

import pytest
from hypothesis import given, strategies as st

from repro.ntp.constants import NTP_UNIX_EPOCH_DELTA
from repro.ntp.timestamps import (
    ZERO_TIMESTAMP,
    decode_short,
    decode_timestamp,
    encode_short,
    encode_timestamp,
    is_zero_timestamp,
    ntp_to_unix,
    unix_to_ntp,
)


def test_epoch_delta():
    assert unix_to_ntp(0.0) == NTP_UNIX_EPOCH_DELTA
    assert ntp_to_unix(NTP_UNIX_EPOCH_DELTA) == 0.0


def test_known_encoding():
    # Unix 0 -> NTP seconds 2208988800, zero fraction.
    data = encode_timestamp(0.0)
    assert data == (2_208_988_800).to_bytes(4, "big") + b"\x00\x00\x00\x00"


def test_roundtrip_subsecond_precision():
    t = 1_460_000_000.123456
    decoded = decode_timestamp(encode_timestamp(t), pivot_unix=t)
    assert decoded == pytest.approx(t, abs=1e-6)


def test_fraction_rounding_carry():
    # A value whose fraction rounds up to a full second.
    t = 1.0 - 2**-33
    decoded = decode_timestamp(encode_timestamp(t), pivot_unix=1.0)
    assert decoded == pytest.approx(1.0, abs=1e-9)


def test_zero_sentinel():
    assert is_zero_timestamp(ZERO_TIMESTAMP)
    assert not is_zero_timestamp(encode_timestamp(0.0))


def test_decode_wrong_length():
    with pytest.raises(ValueError):
        decode_timestamp(b"\x00" * 7)


def test_era_pivot_resolves_wrap():
    # An instant past the 2036 era-0 rollover.
    t = 2_300_000_000.0
    decoded = decode_timestamp(encode_timestamp(t), pivot_unix=t)
    assert decoded == pytest.approx(t, abs=1e-5)


@given(st.floats(min_value=0.0, max_value=4_000_000_000.0))
def test_roundtrip_property(t):
    decoded = decode_timestamp(encode_timestamp(t), pivot_unix=t)
    assert abs(decoded - t) < 1e-6


def test_short_format_roundtrip():
    for v in (0.0, 0.001, 1.5, 100.25):
        assert decode_short(encode_short(v)) == pytest.approx(v, abs=1 / 65_536)


def test_short_format_saturates():
    huge = 1e9
    assert decode_short(encode_short(huge)) == pytest.approx(65_536.0, rel=0.01)


def test_short_format_negative_rejected():
    with pytest.raises(ValueError):
        encode_short(-1.0)


def test_short_format_wrong_length():
    with pytest.raises(ValueError):
        decode_short(b"\x00\x00")


@given(st.floats(min_value=0.0, max_value=60_000.0))
def test_short_roundtrip_property(v):
    assert abs(decode_short(encode_short(v)) - v) <= 1 / 65_536

"""RFC 5905 packet codec."""

import pytest
from hypothesis import given, strategies as st

from repro.ntp.constants import LeapIndicator, Mode, NTP_HEADER_LEN
from repro.ntp.packet import NtpPacket


def test_encode_length():
    assert len(NtpPacket().encode()) == NTP_HEADER_LEN


def test_sntp_request_shape():
    p = NtpPacket.sntp_request(1000.0)
    assert p.mode == Mode.CLIENT
    assert p.stratum == 0
    assert p.poll == 0
    assert p.precision == 0
    assert p.transmit_ts == 1000.0
    assert p.origin_ts is None
    assert p.looks_like_sntp_request()


def test_ntp_request_not_sntp_shaped():
    p = NtpPacket.ntp_request(1000.0)
    assert not p.looks_like_sntp_request()


def test_roundtrip_full_packet():
    p = NtpPacket(
        leap=LeapIndicator.LAST_MINUTE_61,
        version=4,
        mode=Mode.SERVER,
        stratum=2,
        poll=6,
        precision=-20,
        root_delay=0.015,
        root_dispersion=0.030,
        ref_id=b"GPS\x00",
        reference_ts=999.0,
        origin_ts=1000.0,
        receive_ts=1000.5,
        transmit_ts=1000.6,
    )
    q = NtpPacket.decode(p.encode(), pivot_unix=1000.0)
    assert q.leap == p.leap
    assert q.version == p.version
    assert q.mode == p.mode
    assert q.stratum == p.stratum
    assert q.poll == p.poll
    assert q.precision == p.precision
    assert q.root_delay == pytest.approx(p.root_delay, abs=1e-4)
    assert q.root_dispersion == pytest.approx(p.root_dispersion, abs=1e-4)
    assert q.ref_id == p.ref_id
    assert q.origin_ts == pytest.approx(1000.0, abs=1e-6)
    assert q.receive_ts == pytest.approx(1000.5, abs=1e-6)
    assert q.transmit_ts == pytest.approx(1000.6, abs=1e-6)


def test_none_timestamps_roundtrip_as_none():
    p = NtpPacket(transmit_ts=5.0)
    q = NtpPacket.decode(p.encode(), pivot_unix=5.0)
    assert q.origin_ts is None
    assert q.receive_ts is None
    assert q.reference_ts is None
    assert q.transmit_ts is not None


def test_decode_too_short():
    with pytest.raises(ValueError):
        NtpPacket.decode(b"\x00" * 47)


def test_decode_ignores_extensions():
    p = NtpPacket.sntp_request(1.0)
    padded = p.encode() + b"\xff" * 20
    q = NtpPacket.decode(padded, pivot_unix=1.0)
    assert q.looks_like_sntp_request()


def test_kiss_of_death():
    p = NtpPacket(mode=Mode.SERVER, stratum=0)
    assert p.is_kiss_of_death()
    assert not NtpPacket(mode=Mode.SERVER, stratum=2).is_kiss_of_death()


def test_invalid_fields_rejected():
    with pytest.raises(ValueError):
        NtpPacket(stratum=300)
    with pytest.raises(ValueError):
        NtpPacket(ref_id=b"too long")
    with pytest.raises(ValueError):
        NtpPacket(poll=200)
    with pytest.raises(ValueError):
        NtpPacket(version=0)


@given(
    leap=st.sampled_from(list(LeapIndicator)),
    version=st.integers(1, 7),
    mode=st.sampled_from(list(Mode)),
    stratum=st.integers(0, 255),
    poll=st.integers(-128, 127),
    precision=st.integers(-128, 127),
)
def test_first_four_bytes_roundtrip_property(leap, version, mode, stratum, poll, precision):
    p = NtpPacket(
        leap=leap, version=version, mode=mode, stratum=stratum,
        poll=poll, precision=precision,
    )
    q = NtpPacket.decode(p.encode())
    assert (q.leap, q.version, q.mode, q.stratum, q.poll, q.precision) == (
        leap, version, mode, stratum, poll, precision,
    )

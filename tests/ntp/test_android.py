"""Android SNTP daemon policy (§2 of the paper)."""

import pytest

from repro.ntp.server import ServerConfig, ServerPersona
from repro.ntp.sntp_client import AndroidSntpDaemon, AndroidSntpPolicy
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet, perfect_clock


def test_no_update_below_5000ms_threshold():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    net.client_clock.step(-2.0)  # 2 s slow: under the 5 s threshold
    daemon = AndroidSntpDaemon(sim, net.client, "s1")
    daemon.start()
    sim.run_until(60.0)
    assert daemon.updates_applied == 0
    assert net.client_clock.true_offset() == pytest.approx(-2.0, abs=1e-3)


def test_update_above_threshold_steps_clock():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    net.client_clock.step(-10.0)  # way off
    daemon = AndroidSntpDaemon(sim, net.client, "s1")
    daemon.start()
    sim.run_until(60.0)
    assert daemon.updates_applied == 1
    assert abs(net.client_clock.true_offset()) < 0.010


def test_daily_polling_cadence():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    daemon = AndroidSntpDaemon(sim, net.client, "s1")
    daemon.start()
    sim.run_until(86_400.0 * 3 + 100.0)
    assert daemon.polls == 4  # t=0 plus three daily polls


def test_three_retries_then_give_up():
    sim = Simulator(seed=1)
    net = MiniNet(
        sim,
        [ServerConfig(name="deaf", persona=ServerPersona.UNRESPONSIVE, drop_rate=1.0)],
    )
    policy = AndroidSntpPolicy(retry_backoff=1.0)
    daemon = AndroidSntpDaemon(sim, net.client, "deaf", policy)
    daemon.start()
    sim.run_until(3600.0)
    # Exactly the initial attempt + 2 retries (3 total) in the first day.
    assert daemon.polls == 3
    assert net.client.timeouts == 3


def test_stop():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    daemon = AndroidSntpDaemon(sim, net.client, "s1")
    daemon.start()
    sim.run_until(10.0)
    daemon.stop()
    sim.run_until(86_400.0 * 2)
    assert daemon.polls == 1


def test_step_traced():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    net.client_clock.step(20.0)
    daemon = AndroidSntpDaemon(sim, net.client, "s1")
    daemon.start()
    sim.run_until(60.0)
    steps = sim.trace.select(component="android", kind="step")
    assert len(steps) == 1
    assert steps[0].data["offset"] == pytest.approx(-20.0, abs=0.01)

"""Server/client exchange over the mini topology."""

import pytest

from repro.ntp.server import ServerConfig, ServerPersona
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet, drifting_clock, perfect_clock


def _results_of(net, server="s1", timeout=None, n=1):
    results = []
    for _ in range(n):
        net.client.query(server, results.append, timeout=timeout)
    return results


def test_exchange_measures_zero_offset_on_synced_clocks():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    results = _results_of(net)
    sim.run_until(1.0)
    assert len(results) == 1
    assert results[0].ok
    assert results[0].sample.offset == pytest.approx(0.0, abs=1e-4)
    assert results[0].sample.delay == pytest.approx(0.050, abs=0.005)


def test_exchange_measures_client_offset():
    sim = Simulator(seed=1)
    net = MiniNet(
        sim,
        [ServerConfig(name="s1", processing_delay=1e-6)],
        client_clock=None,
    )
    net.client_clock.step(-0.2)  # client 200 ms slow
    results = _results_of(net)
    sim.run_until(1.0)
    assert results[0].sample.offset == pytest.approx(0.2, abs=1e-3)


def test_falseticker_bias_visible():
    sim = Simulator(seed=1)
    net = MiniNet(
        sim,
        [ServerConfig(
            name="liar", persona=ServerPersona.FALSETICKER,
            falseticker_bias=0.3, processing_delay=1e-6,
        )],
    )
    results = _results_of(net, server="liar")
    sim.run_until(1.0)
    assert results[0].sample.offset == pytest.approx(0.3, abs=1e-3)


def test_unresponsive_server_times_out():
    sim = Simulator(seed=1)
    net = MiniNet(
        sim,
        [ServerConfig(name="deaf", persona=ServerPersona.UNRESPONSIVE, drop_rate=1.0)],
    )
    results = _results_of(net, server="deaf", timeout=0.5)
    sim.run_until(2.0)
    assert len(results) == 1
    assert results[0].timed_out
    assert not results[0].ok
    assert net.client.timeouts == 1


def test_noisy_server_jitters():
    sim = Simulator(seed=1)
    net = MiniNet(
        sim,
        [ServerConfig(
            name="noisy", persona=ServerPersona.NOISY, noisy_sigma=0.05,
            processing_delay=1e-6,
        )],
    )
    results = []
    for i in range(20):
        sim.call_after(i * 1.0, lambda: net.client.query("noisy", results.append))
    sim.run_until(30.0)
    offsets = [r.sample.offset for r in results if r.ok]
    import numpy as np

    assert np.std(offsets) > 0.01


def test_server_echoes_origin_timestamp():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1")])
    results = _results_of(net)
    sim.run_until(1.0)
    # Request/response matching worked, so origin echo was correct.
    assert results[0].ok


def test_server_ignores_non_client_mode():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1")])
    server = net.servers["s1"]
    from repro.net.message import Datagram
    from repro.ntp.constants import Mode
    from repro.ntp.packet import NtpPacket

    bad = NtpPacket(mode=Mode.SERVER, transmit_ts=1.0)
    server.on_datagram(Datagram(payload=bad.encode(), src="x", dst="s1"))
    sim.run_until(1.0)
    assert server.responses_sent == 0


def test_server_ignores_malformed():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1")])
    from repro.net.message import Datagram

    net.servers["s1"].on_datagram(Datagram(payload=b"junk", src="x", dst="s1"))
    sim.run_until(1.0)
    assert net.servers["s1"].responses_sent == 0


def test_concurrent_queries_all_resolve():
    """Same-instant queries share a T1 key; the FIFO matching must
    resolve every one (regression test for the discipline stall)."""
    sim = Simulator(seed=1)
    configs = [ServerConfig(name=f"s{i}", processing_delay=1e-6) for i in range(4)]
    net = MiniNet(sim, configs)
    results = []
    for i in range(4):
        net.client.query(f"s{i}", results.append)
    sim.run_until(2.0)
    assert len(results) == 4
    assert all(r.ok for r in results)


def test_counters_track_traffic():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    _results_of(net, n=3)
    sim.run_until(2.0)
    assert net.client.queries_sent == 3
    assert net.client.responses_received == 3
    assert net.servers["s1"].requests_seen == 3

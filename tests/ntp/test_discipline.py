"""Clock discipline end-to-end behaviour."""

import pytest

from repro.clock.discipline_api import ClockCorrector
from repro.ntp.discipline import ClockDiscipline, DisciplineParams
from repro.ntp.server import ServerConfig, ServerPersona
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet, drifting_clock


def _build(sim, client_clock, server_configs, params=None):
    net = MiniNet(sim, server_configs, client_clock=client_clock,
                  owd=0.020)
    corrector = ClockCorrector(client_clock)
    discipline = ClockDiscipline(
        sim,
        net.client,
        corrector,
        [c.name for c in server_configs],
        params or DisciplineParams(),
    )
    return net, discipline


def _honest(n):
    return [ServerConfig(name=f"s{i}", processing_delay=1e-6) for i in range(n)]


def test_large_initial_offset_stepped():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, offset=5.0, stream="c")
    net, discipline = _build(sim, clock, _honest(4))
    discipline.start()
    sim.run_until(120.0)
    assert discipline.steps >= 1
    assert abs(clock.true_offset()) < 0.050


def test_constant_skew_trimmed_out():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=20.0, stream="c")
    net, discipline = _build(sim, clock, _honest(4))
    discipline.start()
    sim.run_until(3600.0)
    # The frequency trim should have cancelled most of the 20 ppm.
    assert clock.frequency_adjustment_ppm == pytest.approx(-20.0, abs=6.0)
    assert abs(clock.true_offset()) < 0.010


def test_falseticker_outvoted():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, offset=0.0, stream="c")
    configs = _honest(3) + [
        ServerConfig(
            name="liar", persona=ServerPersona.FALSETICKER,
            falseticker_bias=0.4, processing_delay=1e-6,
        )
    ]
    net, discipline = _build(sim, clock, configs)
    discipline.start()
    sim.run_until(1800.0)
    # The liar's 400 ms bias must not drag the clock.
    assert abs(clock.true_offset()) < 0.020


def test_poll_interval_backs_off_when_stable():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    net, discipline = _build(sim, clock, _honest(4))
    discipline.start()
    sim.run_until(1800.0)
    assert discipline.poll_exp > DisciplineParams().min_poll_exp


def test_requires_servers():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    with pytest.raises(ValueError):
        ClockDiscipline(sim, None, None, [])


def test_stop_halts_polling():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    net, discipline = _build(sim, clock, _honest(3))
    discipline.start()
    sim.run_until(100.0)
    updates = discipline.updates
    discipline.stop()
    sim.run_until(2000.0)
    assert discipline.updates <= updates + 1  # at most the in-flight round


def test_updates_traced():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=5.0, stream="c")
    net, discipline = _build(sim, clock, _honest(4))
    discipline.start()
    sim.run_until(300.0)
    assert len(sim.trace.select(component="ntpd", kind="update")) == discipline.updates


def test_popcorn_gate_skips_burst():
    """Inject a one-off biased sample via a noisy server population and
    verify the gate counts skips without the clock jumping."""
    sim = Simulator(seed=2)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    configs = [
        ServerConfig(name=f"s{i}", persona=ServerPersona.NOISY,
                     noisy_sigma=0.150, processing_delay=1e-6)
        for i in range(4)
    ]
    net, discipline = _build(sim, clock, configs)
    discipline.start()
    sim.run_until(3600.0)
    # With 150 ms-noise servers most rounds trip the gate; the clock
    # must not have been yanked to the noise scale.
    assert discipline.popcorn_skips > 0
    assert abs(clock.true_offset()) < 0.2

"""Offset/delay arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.ntp.packet import NtpPacket
from repro.ntp.constants import Mode
from repro.ntp.wire import compute_offset_delay, sample_from_exchange


def test_symmetric_path_exact_offset():
    # Client 10 s behind the server; symmetric 50 ms OWD each way.
    t1 = 100.0          # client clock
    t2 = 110.05         # server clock (true + 10)
    t3 = 110.06
    t4 = 100.11         # client clock again
    offset, delay = compute_offset_delay(t1, t2, t3, t4)
    assert offset == pytest.approx(10.0, abs=1e-9)
    assert delay == pytest.approx(0.1, abs=1e-9)


def test_asymmetry_biases_offset_by_half():
    # Forward OWD 100 ms, reverse 0: offset error = +50 ms.
    t1, t2, t3, t4 = 0.0, 0.1, 0.1, 0.1
    offset, delay = compute_offset_delay(t1, t2, t3, t4)
    assert offset == pytest.approx(0.05)
    assert delay == pytest.approx(0.1)


def test_zero_delay_zero_offset():
    offset, delay = compute_offset_delay(1.0, 1.0, 1.0, 1.0)
    assert offset == 0.0
    assert delay == 0.0


@given(
    true_offset=st.floats(-1e3, 1e3),
    owd=st.floats(0.001, 1.0),
    server_proc=st.floats(0.0, 0.01),
)
def test_offset_recovered_exactly_on_symmetric_paths(true_offset, owd, server_proc):
    t1 = 500.0
    t2 = t1 + owd + true_offset
    t3 = t2 + server_proc
    t4 = t1 + owd + server_proc + owd
    offset, delay = compute_offset_delay(t1, t2, t3, t4)
    assert offset == pytest.approx(true_offset, abs=1e-6)
    assert delay == pytest.approx(2 * owd, abs=1e-6)


def test_sample_from_exchange():
    response = NtpPacket(
        mode=Mode.SERVER, stratum=2, receive_ts=110.05, transmit_ts=110.06,
        root_delay=0.002, root_dispersion=0.004,
    )
    sample = sample_from_exchange(100.0, response, 100.11)
    assert sample.offset == pytest.approx(10.0)
    assert sample.delay == pytest.approx(0.1)
    assert sample.server_stratum == 2
    assert sample.root_delay == pytest.approx(0.002, abs=1e-4)
    assert sample.dispersion_bound == pytest.approx(0.05)


def test_sample_from_exchange_missing_timestamps():
    response = NtpPacket(mode=Mode.SERVER, stratum=2)
    with pytest.raises(ValueError):
        sample_from_exchange(0.0, response, 1.0)

"""Kiss-of-death rate limiting and unsynchronized-server handling."""

import pytest

from repro.ntp.server import ServerConfig, ServerPersona
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet


def _poll_many(sim, net, server, n, gap=1.0, timeout=0.5):
    results = []
    for i in range(n):
        sim.call_after(
            i * gap,
            lambda: net.client.query(server, results.append, timeout=timeout),
        )
    return results


def test_rate_limited_server_sends_kod_after_budget():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(
        name="pool", persona=ServerPersona.RATE_LIMITED, rate_limit=3,
        processing_delay=1e-6,
    )])
    results = _poll_many(sim, net, "pool", 6)
    sim.run_until(30.0)
    ok = [r for r in results if r.ok]
    kod = [r for r in results if r.kiss_of_death]
    assert len(ok) == 3
    assert kod  # the 4th request drew a KoD
    assert net.servers["pool"].kod_sent >= 1


def test_client_backs_off_after_kod():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(
        name="pool", persona=ServerPersona.RATE_LIMITED, rate_limit=1,
        processing_delay=1e-6,
    )])
    results = _poll_many(sim, net, "pool", 10, gap=2.0)
    sim.run_until(60.0)
    # After the first KoD the client stops hitting the wire.
    server = net.servers["pool"]
    assert server.requests_seen <= 3  # 1 ok + 1 KoD trigger (+ slack)
    assert net.client.kod_received >= 1
    backed_off = [r for r in results if r.kiss_of_death and not r.ok]
    assert len(backed_off) >= 7  # the rest failed locally


def test_backoff_expires():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(
        name="pool", persona=ServerPersona.RATE_LIMITED, rate_limit=1,
        processing_delay=1e-6,
    )])
    net.client.kod_backoff = 10.0
    net.client.min_kod_holdoff = 10.0  # the floor would otherwise win
    results = []
    net.client.query("pool", results.append)     # ok
    sim.run_until(1.0)
    net.client.query("pool", results.append)     # KoD
    sim.run_until(2.0)
    net.client.query("pool", results.append)     # local back-off
    sim.run_until(15.0)
    net.client.query("pool", results.append)     # back-off expired: wire again
    sim.run_until(20.0)
    assert results[0].ok
    assert results[1].kiss_of_death
    assert results[2].kiss_of_death
    assert net.servers["pool"].requests_seen == 3  # 3rd never hit the wire


def test_unsynchronized_server_rejected():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(
        name="lost", persona=ServerPersona.UNSYNCHRONIZED, processing_delay=1e-6,
    )])
    results = []
    net.client.query("lost", results.append)
    sim.run_until(5.0)
    assert len(results) == 1
    assert not results[0].ok
    assert results[0].unsynchronized
    assert not results[0].kiss_of_death


def test_mntp_survives_rate_limited_pool():
    """MNTP polling a rate-limited source keeps running (failures are
    just query_failed events)."""
    from repro.clock.discipline_api import ClockCorrector
    from repro.core.config import MntpConfig
    from repro.core.protocol import Mntp
    from repro.wireless.hints import ALWAYS_FAVORABLE, StaticHintProvider

    sim = Simulator(seed=1)
    configs = [
        ServerConfig(name=name, persona=ServerPersona.RATE_LIMITED,
                     rate_limit=5, processing_delay=1e-6)
        for name in ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")
    ]
    net = MiniNet(sim, configs)
    mntp = Mntp(
        sim, net.client, StaticHintProvider(ALWAYS_FAVORABLE),
        ClockCorrector(net.client_clock),
        config=MntpConfig(
            warmup_period=120.0, warmup_wait_time=5.0,
            regular_wait_time=10.0, reset_period=3600.0,
            min_warmup_samples=3, query_timeout=1.0,
        ),
    )
    mntp.start()
    sim.run_until(600.0)
    # Early rounds succeed; later ones draw KoD and back off — but the
    # protocol never crashes and recorded some offsets.
    assert mntp.accepted_offsets()
    assert net.client.kod_received > 0

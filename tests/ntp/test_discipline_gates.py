"""Unit tests for the discipline daemon's protective gates."""

import pytest

from repro.clock.discipline_api import ClockCorrector
from repro.ntp.discipline import ClockDiscipline, DisciplineParams
from repro.ntp.server import ServerConfig, ServerPersona
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet, drifting_clock


def test_no_majority_traced():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    configs = [
        ServerConfig(name=f"liar{i}", persona=ServerPersona.FALSETICKER,
                     falseticker_bias=(i + 1) * 2.0, processing_delay=1e-6)
        for i in range(4)
    ]
    net = MiniNet(sim, configs, client_clock=clock)
    d = ClockDiscipline(sim, net.client, ClockCorrector(clock),
                        [c.name for c in configs])
    d.start()
    sim.run_until(120.0)
    assert sim.trace.select(component="ntpd", kind="no_majority")
    assert d.updates == 0


def test_delay_gate_skips_inflated_samples():
    """Manually drive _update_clock with a clean then inflated sample."""
    from repro.ntp.wire import OffsetSample

    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    net = MiniNet(sim, [ServerConfig(name="s", processing_delay=1e-6)],
                  client_clock=clock)
    d = ClockDiscipline(sim, net.client, ClockCorrector(clock), ["s"])

    def sample(offset, delay):
        return OffsetSample(offset=offset, delay=delay,
                            t1=0, t2=0, t3=0, t4=0)

    # Establish the delay floor with clean samples.
    for _ in range(3):
        d._update_clock([("s", sample(0.001, 0.040))])
    updates = d.updates
    # A sample whose delay blew up 10x carries too much asymmetry risk.
    d._update_clock([("s", sample(0.400, 0.400))])
    assert d.updates == updates
    assert d.delay_gate_skips == 1
    assert sim.trace.select(component="ntpd", kind="delay_gate_skip")


def test_delay_floor_adapts_upward_slowly():
    from repro.ntp.wire import OffsetSample

    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    net = MiniNet(sim, [ServerConfig(name="s")], client_clock=clock)
    d = ClockDiscipline(sim, net.client, ClockCorrector(clock), ["s"])

    def sample(delay):
        return OffsetSample(offset=0.0, delay=delay, t1=0, t2=0, t3=0, t4=0)

    d._update_clock([("s", sample(0.010))])
    floor_before = d._min_delay
    # Many slightly-higher samples: the floor creeps up by the 1.002
    # factor, it does not jump.
    for _ in range(20):
        d._update_clock([("s", sample(0.012))])
    assert d._min_delay > floor_before
    assert d._min_delay <= 0.012


def test_popcorn_stepout_eventually_accepts_real_step():
    """A genuine clock step (normal delay, persistent offset) is
    accepted once the step-out expires."""
    from repro.ntp.wire import OffsetSample

    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, stream="c")
    net = MiniNet(sim, [ServerConfig(name="s")], client_clock=clock)
    params = DisciplineParams(stepout=100.0)
    d = ClockDiscipline(sim, net.client, ClockCorrector(clock), ["s"], params)

    def sample(offset):
        return OffsetSample(offset=offset, delay=0.040, t1=0, t2=0, t3=0, t4=0)

    d._update_clock([("s", sample(0.001))])
    assert d.updates == 1
    # The reference stepped by 2 s; normal delays, persistent offset
    # (measured relative to the client clock, as on the real wire).
    for i in range(12):
        sim.run_for(16.0)
        d._update_clock([("s", sample(2.0 - clock.true_offset()))])
        if d.steps >= 1:
            break
    assert d.updates >= 2  # accepted after the 100 s step-out
    assert d.steps >= 1
    assert abs(clock.true_offset() - 2.0) < 0.1

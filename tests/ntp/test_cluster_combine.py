"""Cluster and combine algorithms."""

import pytest

from repro.ntp.cluster import ClusterCandidate, cluster_survivors
from repro.ntp.combine import combine_offsets


def _c(name, offset, jitter=0.001, rootdist=0.01):
    return ClusterCandidate(
        source=name, offset=offset, jitter=jitter, root_distance=rootdist
    )


def test_cluster_keeps_minimum_survivors():
    candidates = [_c("a", 0.0), _c("b", 0.001), _c("c", 0.002)]
    survivors = cluster_survivors(candidates, min_survivors=3)
    assert len(survivors) == 3


def test_cluster_prunes_outlier():
    candidates = [
        _c("a", 0.000),
        _c("b", 0.001),
        _c("c", 0.0005),
        _c("d", 0.002),
        _c("outlier", 0.5),
    ]
    survivors = cluster_survivors(candidates, min_survivors=3)
    assert "outlier" not in {s.source for s in survivors}


def test_cluster_sorted_by_root_distance():
    candidates = [
        _c("far", 0.0, rootdist=0.10),
        _c("near", 0.0, rootdist=0.01),
        _c("mid", 0.0, rootdist=0.05),
    ]
    survivors = cluster_survivors(candidates, min_survivors=3)
    assert [s.source for s in survivors] == ["near", "mid", "far"]


def test_cluster_single_candidate():
    survivors = cluster_survivors([_c("only", 0.01)])
    assert len(survivors) == 1


def test_cluster_stops_when_tight():
    # All offsets equal: selection jitter is 0 <= own jitter, no pruning.
    candidates = [_c(f"s{i}", 0.005, jitter=0.002) for i in range(6)]
    survivors = cluster_survivors(candidates, min_survivors=3)
    assert len(survivors) == 6


def test_combine_weighted_toward_low_rootdist():
    survivors = [
        _c("good", 0.000, rootdist=0.001),
        _c("bad", 0.100, rootdist=1.0),
    ]
    offset, jitter = combine_offsets(survivors)
    assert offset < 0.01  # dominated by the low-root-distance source


def test_combine_single():
    offset, jitter = combine_offsets([_c("a", 0.042, jitter=0.003)])
    assert offset == pytest.approx(0.042)
    assert jitter >= 0.0


def test_combine_empty_rejected():
    with pytest.raises(ValueError):
        combine_offsets([])


def test_combine_jitter_floor_is_best_own_jitter():
    survivors = [
        _c("a", 0.005, jitter=0.002, rootdist=0.01),
        _c("b", 0.005, jitter=0.004, rootdist=0.01),
    ]
    _, jitter = combine_offsets(survivors)
    assert jitter >= 0.002

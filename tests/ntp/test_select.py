"""Intersection (Marzullo) algorithm."""

from hypothesis import given, strategies as st

from repro.ntp.select import SelectInterval, intersection


def _iv(name, mid, radius):
    return SelectInterval(source=name, midpoint=mid, radius=radius)


def test_empty():
    survivors, (lo, hi) = intersection([])
    assert survivors == []


def test_single_candidate_survives():
    survivors, (lo, hi) = intersection([_iv("a", 0.01, 0.005)])
    assert [s.source for s in survivors] == ["a"]
    assert lo == 0.005
    assert hi == 0.015


def test_agreeing_majority_beats_falseticker():
    candidates = [
        _iv("a", 0.000, 0.010),
        _iv("b", 0.002, 0.010),
        _iv("c", -0.001, 0.010),
        _iv("liar", 0.500, 0.010),
    ]
    survivors, _ = intersection(candidates)
    names = {s.source for s in survivors}
    assert "liar" not in names
    assert {"a", "b", "c"} <= names


def test_two_disjoint_pairs_no_majority():
    candidates = [
        _iv("a", 0.0, 0.001),
        _iv("b", 0.0, 0.001),
        _iv("c", 1.0, 0.001),
        _iv("d", 1.0, 0.001),
    ]
    survivors, _ = intersection(candidates)
    # With exactly half on each side no majority exists.
    assert survivors == []


def test_all_identical():
    candidates = [_iv(f"s{i}", 0.005, 0.002) for i in range(5)]
    survivors, (lo, hi) = intersection(candidates)
    assert len(survivors) == 5
    assert lo <= 0.005 <= hi


def test_wide_interval_contains_all():
    candidates = [
        _iv("wide", 0.0, 10.0),
        _iv("a", 0.1, 0.01),
        _iv("b", 0.11, 0.01),
    ]
    survivors, _ = intersection(candidates)
    assert {"wide", "a", "b"} == {s.source for s in survivors}


def test_interval_edges():
    iv = _iv("x", 1.0, 0.25)
    assert iv.low == 0.75
    assert iv.high == 1.25


@given(
    st.lists(
        st.tuples(st.floats(-1.0, 1.0), st.floats(0.001, 0.5)),
        min_size=1,
        max_size=12,
    )
)
def test_survivors_intersect_returned_range(pairs):
    candidates = [_iv(f"s{i}", mid, rad) for i, (mid, rad) in enumerate(pairs)]
    survivors, (lo, hi) = intersection(candidates)
    if survivors:
        assert lo <= hi
        for s in survivors:
            assert s.low <= hi and s.high >= lo


@given(
    st.floats(-0.5, 0.5),
    st.integers(3, 8),
)
def test_truth_always_survives_honest_majority(truth, n):
    """If all candidates' intervals contain the true offset, all survive."""
    candidates = [
        _iv(f"s{i}", truth + (-1) ** i * 0.001 * i, 0.02 + 0.001 * i)
        for i in range(n)
    ]
    survivors, (lo, hi) = intersection(candidates)
    assert len(survivors) == n
    assert lo <= truth <= hi

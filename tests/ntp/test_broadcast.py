"""Broadcast SNTP (mode 5)."""

import numpy as np
import pytest

from repro.net.link import Link, LinkEffect
from repro.net.path import PathModel
from repro.ntp.broadcast import BroadcastClient, BroadcastServer
from repro.simcore import Simulator
from tests.ntp.helpers import perfect_clock


def _wire(sim, server_clock, client_clock, delay=0.005, calibrated=0.005,
          effect_hook=None):
    client = BroadcastClient(sim, client_clock, calibrated_delay=calibrated)
    link = Link(sim, PathModel(sim.rng.stream("b"), base_delay=delay,
                               queue_mean=0.0), receive=client.on_datagram,
                effect_hook=effect_hook)
    server = BroadcastServer(sim, server_clock, send=link.send, interval=10.0)
    return server, client


def test_calibrated_listener_recovers_offset():
    sim = Simulator(seed=1)
    server, client = _wire(
        sim, perfect_clock(sim, stream="s"),
        perfect_clock(sim, offset=-0.050, stream="c"),
    )
    server.start()
    sim.run_until(60.0)
    assert len(client.samples) >= 5
    for sample in client.samples:
        assert sample.offset == pytest.approx(0.050, abs=1e-6)


def test_miscalibration_is_a_direct_bias():
    sim = Simulator(seed=1)
    # True delay 20 ms, calibrated as 5 ms: every offset is 15 ms short.
    server, client = _wire(
        sim, perfect_clock(sim, stream="s"), perfect_clock(sim, stream="c"),
        delay=0.020, calibrated=0.005,
    )
    server.start()
    sim.run_until(60.0)
    for sample in client.samples:
        assert sample.offset == pytest.approx(-0.015, abs=1e-6)


def test_wireless_jitter_hits_full_owd():
    """Unlike unicast (error = asymmetry/2), broadcast eats the whole
    one-way excursion — the reason it is LAN-only."""
    sim = Simulator(seed=2)
    rng = np.random.default_rng(0)

    def bursty():
        return LinkEffect(extra_delay=float(rng.exponential(0.050)))

    server, client = _wire(
        sim, perfect_clock(sim, stream="s"), perfect_clock(sim, stream="c"),
        effect_hook=bursty,
    )
    server.start()
    sim.run_until(600.0)
    errors = np.abs([s.offset for s in client.samples])
    assert errors.mean() > 0.02  # full exponential(50 ms) mean


def test_non_broadcast_packets_ignored():
    sim = Simulator(seed=3)
    client = BroadcastClient(sim, perfect_clock(sim, stream="c"))
    from repro.net.message import Datagram
    from repro.ntp.packet import NtpPacket

    unicast = NtpPacket.sntp_request(1.0)
    client.on_datagram(Datagram(payload=unicast.encode(), src="x", dst="b"))
    client.on_datagram(Datagram(payload=b"junk", src="x", dst="b"))
    assert client.samples == []


def test_server_stop_and_validation():
    sim = Simulator(seed=4)
    server, client = _wire(sim, perfect_clock(sim, stream="s"),
                           perfect_clock(sim, stream="c"))
    server.start()
    sim.run_until(25.0)
    server.stop()
    count = server.broadcasts_sent
    sim.run_until(100.0)
    assert server.broadcasts_sent == count
    with pytest.raises(ValueError):
        BroadcastServer(sim, perfect_clock(sim, stream="x"),
                        send=lambda d: None, interval=0.0)
    with pytest.raises(ValueError):
        BroadcastClient(sim, perfect_clock(sim, stream="y"),
                        calibrated_delay=-1.0)


def test_on_sample_callback():
    sim = Simulator(seed=5)
    seen = []
    server, client = _wire(sim, perfect_clock(sim, stream="s"),
                           perfect_clock(sim, stream="c"))
    client.on_sample = seen.append
    server.start()
    sim.run_until(35.0)
    assert len(seen) == len(client.samples)

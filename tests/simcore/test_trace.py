"""TraceLog structured logging."""

from repro.simcore.trace import TraceLog


def test_emit_and_len():
    log = TraceLog()
    log.emit(1.0, "mntp", "deferred", rssi=-80.0)
    log.emit(2.0, "mntp", "offset_accepted", offset=0.005)
    assert len(log) == 2


def test_select_by_component():
    log = TraceLog()
    log.emit(1.0, "a", "x")
    log.emit(2.0, "b", "x")
    assert [r.component for r in log.select(component="a")] == ["a"]


def test_select_by_kind():
    log = TraceLog()
    log.emit(1.0, "a", "x")
    log.emit(2.0, "a", "y")
    assert [r.kind for r in log.select(kind="y")] == ["y"]


def test_select_both_filters():
    log = TraceLog()
    log.emit(1.0, "a", "x")
    log.emit(2.0, "a", "y")
    log.emit(3.0, "b", "y")
    records = log.select(component="a", kind="y")
    assert len(records) == 1
    assert records[0].time == 2.0


def test_data_payload_preserved():
    log = TraceLog()
    rec = log.emit(1.0, "c", "k", value=42, name="test")
    assert rec.data == {"value": 42, "name": "test"}


def test_iteration_order():
    log = TraceLog()
    for i in range(5):
        log.emit(float(i), "c", "k")
    assert [r.time for r in log] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_clear():
    log = TraceLog()
    log.emit(1.0, "c", "k")
    log.clear()
    assert len(log) == 0

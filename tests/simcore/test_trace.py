"""TraceLog structured logging."""

from repro.simcore.trace import TraceLog


def test_emit_and_len():
    log = TraceLog()
    log.emit(1.0, "mntp", "deferred", rssi=-80.0)
    log.emit(2.0, "mntp", "offset_accepted", offset=0.005)
    assert len(log) == 2


def test_select_by_component():
    log = TraceLog()
    log.emit(1.0, "a", "x")
    log.emit(2.0, "b", "x")
    assert [r.component for r in log.select(component="a")] == ["a"]


def test_select_by_kind():
    log = TraceLog()
    log.emit(1.0, "a", "x")
    log.emit(2.0, "a", "y")
    assert [r.kind for r in log.select(kind="y")] == ["y"]


def test_select_both_filters():
    log = TraceLog()
    log.emit(1.0, "a", "x")
    log.emit(2.0, "a", "y")
    log.emit(3.0, "b", "y")
    records = log.select(component="a", kind="y")
    assert len(records) == 1
    assert records[0].time == 2.0


def test_data_payload_preserved():
    log = TraceLog()
    rec = log.emit(1.0, "c", "k", value=42, name="test")
    assert rec.data == {"value": 42, "name": "test"}


def test_iteration_order():
    log = TraceLog()
    for i in range(5):
        log.emit(float(i), "c", "k")
    assert [r.time for r in log] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_clear():
    log = TraceLog()
    log.emit(1.0, "c", "k")
    log.clear()
    assert len(log) == 0


def make_log():
    log = TraceLog()
    log.emit(0.0, "mntp", "query_sent")
    log.emit(1.0, "channel", "hints")
    log.emit(2.0, "mntp", "deferred")
    log.emit(3.0, "mntp", "query_sent")
    log.emit(4.0, "span", "sim.run")
    return log


def test_by_component_is_lazy_and_filtered():
    log = make_log()
    it = log.by_component("mntp")
    assert iter(it) is it  # a generator, not a list
    assert [r.time for r in it] == [0.0, 2.0, 3.0]


def test_by_kind_with_optional_component():
    log = make_log()
    assert [r.time for r in log.by_kind("query_sent")] == [0.0, 3.0]
    assert [r.time for r in log.by_kind("sim.run", component="span")] == [4.0]
    assert list(log.by_kind("sim.run", component="mntp")) == []


def test_window_is_half_open():
    log = make_log()
    assert [r.time for r in log.window(1.0, 3.0)] == [1.0, 2.0]
    assert list(log.window(5.0, 9.0)) == []


def test_window_rejects_inverted_bounds():
    import pytest

    with pytest.raises(ValueError):
        list(make_log().window(3.0, 1.0))


def test_iter_filtered_combines_all_filters():
    log = make_log()
    records = list(log.iter_filtered(component="mntp", kind="query_sent", t0=1.0, t1=4.0))
    assert [r.time for r in records] == [3.0]


def test_components_and_kinds_sorted():
    log = make_log()
    assert log.components() == ["channel", "mntp", "span"]
    assert log.kinds() == ["deferred", "hints", "query_sent", "sim.run"]
    assert log.kinds(component="mntp") == ["deferred", "query_sent"]

"""EventQueue ordering, cancellation, and edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.simcore.events import EventQueue


def test_empty_queue_pops_none():
    q = EventQueue()
    assert q.pop() is None
    assert q.peek_time() is None
    assert len(q) == 0
    assert not q


def test_fifo_within_same_time():
    q = EventQueue()
    order = []
    q.push(1.0, lambda: order.append("a"))
    q.push(1.0, lambda: order.append("b"))
    q.push(1.0, lambda: order.append("c"))
    while (ev := q.pop()) is not None:
        ev.callback()
    assert order == ["a", "b", "c"]


def test_time_ordering():
    q = EventQueue()
    q.push(3.0, lambda: None, label="late")
    q.push(1.0, lambda: None, label="early")
    q.push(2.0, lambda: None, label="mid")
    labels = []
    while (ev := q.pop()) is not None:
        labels.append(ev.label)
    assert labels == ["early", "mid", "late"]


def test_cancelled_event_skipped():
    q = EventQueue()
    ev1 = q.push(1.0, lambda: None, label="first")
    q.push(2.0, lambda: None, label="second")
    ev1.cancel()
    popped = q.pop()
    assert popped is not None and popped.label == "second"
    assert q.pop() is None


def test_len_excludes_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    ev.cancel()
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    ev.cancel()
    assert q.peek_time() == 5.0


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(float("nan"), lambda: None)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert q.pop() is None


def test_bool_reflects_live_events():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    assert q
    ev.cancel()
    assert not q


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_pop_order_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (ev := q.pop()) is not None:
        popped.append(ev.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100),
    st.data(),
)
def test_cancellation_never_loses_other_events(times, data):
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in times]
    cancel_idx = data.draw(
        st.sets(st.integers(0, len(events) - 1), max_size=len(events))
    )
    for i in cancel_idx:
        events[i].cancel()
    survivors = 0
    while q.pop() is not None:
        survivors += 1
    assert survivors == len(times) - len(cancel_idx)

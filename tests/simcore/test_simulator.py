"""Simulator scheduling, processes, and run control."""

import pytest

from repro.simcore import Simulator
from repro.simcore.simulator import Waiter


def test_call_after_fires_at_right_time(sim):
    fired = []
    sim.call_after(5.0, lambda: fired.append(sim.now))
    sim.run_until(10.0)
    assert fired == [5.0]
    assert sim.now == 10.0


def test_call_at_absolute(sim):
    fired = []
    sim.call_at(3.0, lambda: fired.append(sim.now))
    sim.run_until(3.0)
    assert fired == [3.0]


def test_cannot_schedule_in_past(sim):
    sim.run_until(10.0)
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.call_after(-1.0, lambda: None)


def test_run_until_backwards_rejected(sim):
    sim.run_until(10.0)
    with pytest.raises(ValueError):
        sim.run_until(5.0)


def test_events_beyond_horizon_stay_queued(sim):
    fired = []
    sim.call_after(100.0, lambda: fired.append(1))
    sim.run_until(50.0)
    assert fired == []
    assert sim.pending_events == 1
    sim.run_until(150.0)
    assert fired == [1]


def test_nested_scheduling(sim):
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.call_after(2.0, lambda: fired.append(("inner", sim.now)))

    sim.call_after(1.0, outer)
    sim.run_until(10.0)
    assert fired == [("outer", 1.0), ("inner", 3.0)]


def test_run_for_advances_relative(sim):
    sim.run_for(5.0)
    sim.run_for(5.0)
    assert sim.now == 10.0


def test_stop_halts_run(sim):
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.call_after(1.0, first)
    sim.call_after(2.0, lambda: fired.append(2))
    sim.run_until(10.0)
    assert fired == [1]
    # The second event remains queued for a future run.
    sim.run_until(10.0)
    assert fired == [1, 2]


def test_process_yields_delays(sim):
    ticks = []

    def proc():
        for _ in range(3):
            ticks.append(sim.now)
            yield 2.0

    sim.spawn(proc(), name="ticker")
    sim.run_until(10.0)
    assert ticks == [0.0, 2.0, 4.0]


def test_process_negative_delay_raises(sim):
    def proc():
        yield -1.0

    sim.spawn(proc(), name="bad")
    with pytest.raises(ValueError):
        sim.run_until(1.0)


def test_process_stop(sim):
    ticks = []

    def proc():
        while True:
            ticks.append(sim.now)
            yield 1.0

    p = sim.spawn(proc(), name="stoppable")
    sim.run_until(2.5)
    p.stop()
    sim.run_until(10.0)
    assert ticks == [0.0, 1.0, 2.0]


def test_process_waiter_resumes_on_condition(sim):
    state = {"ready": False, "resumed_at": None}

    def proc():
        yield Waiter(lambda now: state["ready"], poll_interval=0.5)
        state["resumed_at"] = sim.now

    sim.spawn(proc(), name="waiter")
    sim.call_after(3.2, lambda: state.update(ready=True))
    sim.run_until(10.0)
    assert state["resumed_at"] is not None
    assert 3.2 <= state["resumed_at"] <= 4.0


def test_waiter_bad_interval():
    with pytest.raises(ValueError):
        Waiter(lambda now: True, poll_interval=0.0)


def test_run_to_completion_drains(sim):
    fired = []
    sim.call_after(1.0, lambda: fired.append(1))
    sim.call_after(2.0, lambda: fired.append(2))
    sim.run_to_completion()
    assert fired == [1, 2]


def test_deterministic_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []

        def proc():
            for _ in range(5):
                values.append(float(sim.rng.stream("x").normal()))
                yield 1.0

        sim.spawn(proc(), name="p")
        sim.run_until(10.0)
        return values

    assert run(7) == run(7)
    assert run(7) != run(8)

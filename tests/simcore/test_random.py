"""RngRegistry stream independence and reproducibility."""

import pytest

from repro.simcore.random import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(5).stream("channel").normal(size=10)
    b = RngRegistry(5).stream("channel").normal(size=10)
    assert (a == b).all()


def test_different_names_differ():
    reg = RngRegistry(5)
    a = reg.stream("a").normal(size=10)
    b = reg.stream("b").normal(size=10)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").normal(size=10)
    b = RngRegistry(2).stream("x").normal(size=10)
    assert not (a == b).all()


def test_isolation_between_streams():
    """Draws on one stream must not perturb another."""
    reg1 = RngRegistry(9)
    reg1.stream("noise").normal(size=1000)  # heavy use of one stream
    after_heavy = reg1.stream("signal").normal(size=5)

    reg2 = RngRegistry(9)
    fresh = reg2.stream("signal").normal(size=5)
    assert (after_heavy == fresh).all()


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(-1)


def test_fork_changes_streams():
    base = RngRegistry(3)
    forked = base.fork(1)
    assert forked.root_seed != base.root_seed
    a = base.stream("x").normal(size=5)
    b = forked.stream("x").normal(size=5)
    assert not (a == b).all()


def test_fork_deterministic():
    a = RngRegistry(3).fork(7).stream("x").normal(size=5)
    b = RngRegistry(3).fork(7).stream("x").normal(size=5)
    assert (a == b).all()

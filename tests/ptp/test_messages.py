"""PTP wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.ptp.messages import (
    FLAG_TWO_STEP,
    HEADER_LEN,
    PtpHeader,
    PtpMessageType,
    compute_ptp_offset,
    decode_ptp_timestamp,
    encode_ptp_timestamp,
)


def test_timestamp_roundtrip():
    t = 1_460_000_000.123456789
    assert decode_ptp_timestamp(encode_ptp_timestamp(t)) == pytest.approx(
        t, abs=1e-9
    )


def test_timestamp_negative_rejected():
    with pytest.raises(ValueError):
        encode_ptp_timestamp(-1.0)


def test_timestamp_wrong_length():
    with pytest.raises(ValueError):
        decode_ptp_timestamp(b"\x00" * 9)


def test_timestamp_48bit_seconds():
    big = float(2**40)  # beyond 32-bit seconds
    assert decode_ptp_timestamp(encode_ptp_timestamp(big)) == big


@given(st.floats(min_value=0, max_value=2**47))
def test_timestamp_roundtrip_property(t):
    decoded = decode_ptp_timestamp(encode_ptp_timestamp(t))
    assert abs(decoded - t) < 1e-6


def test_sync_roundtrip():
    msg = PtpHeader(
        message_type=PtpMessageType.SYNC,
        sequence_id=42,
        source_port_identity=b"MASTER0001",
        flags=FLAG_TWO_STEP,
        timestamp=None,
    )
    wire = msg.encode()
    assert len(wire) == HEADER_LEN + 10
    decoded = PtpHeader.decode(wire)
    assert decoded.message_type == PtpMessageType.SYNC
    assert decoded.sequence_id == 42
    assert decoded.flags & FLAG_TWO_STEP
    assert decoded.timestamp is None  # two-step Sync body is zero


def test_follow_up_carries_timestamp():
    msg = PtpHeader(
        message_type=PtpMessageType.FOLLOW_UP, sequence_id=7,
        source_port_identity=b"MASTER0001", timestamp=123.456,
    )
    decoded = PtpHeader.decode(msg.encode())
    assert decoded.timestamp == pytest.approx(123.456, abs=1e-9)


def test_delay_resp_carries_requesting_identity():
    msg = PtpHeader(
        message_type=PtpMessageType.DELAY_RESP, sequence_id=7,
        source_port_identity=b"MASTER0001", timestamp=5.0,
        requesting_port_identity=b"SLAVE00001",
    )
    decoded = PtpHeader.decode(msg.encode())
    assert decoded.requesting_port_identity == b"SLAVE00001"


def test_correction_field_roundtrip():
    msg = PtpHeader(
        message_type=PtpMessageType.SYNC, sequence_id=1,
        correction_ns=123_456,
    )
    assert PtpHeader.decode(msg.encode()).correction_ns == 123_456


def test_bad_inputs():
    with pytest.raises(ValueError):
        PtpHeader(message_type=PtpMessageType.SYNC, sequence_id=1,
                  source_port_identity=b"short")
    with pytest.raises(ValueError):
        PtpHeader(message_type=PtpMessageType.SYNC, sequence_id=70_000)
    with pytest.raises(ValueError):
        PtpHeader.decode(b"\x00" * 10)
    # Wrong version byte.
    wire = bytearray(PtpHeader(message_type=PtpMessageType.SYNC,
                               sequence_id=1).encode())
    wire[1] = 1
    with pytest.raises(ValueError):
        PtpHeader.decode(bytes(wire))


def test_offset_formula_symmetric_path():
    # Slave 10 ms ahead, symmetric 2 ms path.
    t1, t2 = 100.000, 100.012     # master send, slave receive (slave clock +10ms)
    t3, t4 = 100.020, 100.012     # slave send, master receive
    offset, delay = compute_ptp_offset(t1, t2, t3, t4)
    assert offset == pytest.approx(0.010, abs=1e-12)
    assert delay == pytest.approx(0.002, abs=1e-12)


def test_offset_formula_asymmetry_error():
    # Forward 10 ms, reverse 0: offset error = +5 ms with zero true offset.
    offset, delay = compute_ptp_offset(0.0, 0.010, 0.020, 0.020)
    assert offset == pytest.approx(0.005)
    assert delay == pytest.approx(0.005)

"""PTP master/slave over simulated links."""

import numpy as np
import pytest

from repro.net.link import Link, LinkEffect
from repro.net.path import PathModel
from repro.ptp import PtpMaster, PtpSlave
from repro.simcore import Simulator
from tests.ntp.helpers import drifting_clock, perfect_clock


def _wire(sim, master_clock, slave_clock, fwd_delay=0.001, rev_delay=0.001,
          effect_hook=None):
    """Wire master and slave over symmetric-or-not links."""
    slave = PtpSlave(sim, slave_clock, send=lambda d: None)
    master = PtpMaster(sim, master_clock, send=lambda d: None,
                       sync_interval=1.0)
    down = Link(sim, PathModel(sim.rng.stream("down"), base_delay=fwd_delay,
                               queue_mean=0.0), receive=slave.on_datagram,
                effect_hook=effect_hook)
    up = Link(sim, PathModel(sim.rng.stream("up"), base_delay=rev_delay,
                             queue_mean=0.0), receive=master.on_datagram,
              effect_hook=effect_hook)
    master._send = down.send
    slave._send = up.send
    return master, slave


def test_exchange_recovers_slave_offset():
    sim = Simulator(seed=1)
    master_clock = perfect_clock(sim, stream="m")
    slave_clock = perfect_clock(sim, offset=0.025, stream="s")
    master, slave = _wire(sim, master_clock, slave_clock)
    master.start()
    sim.run_until(10.0)
    assert len(slave.samples) >= 8
    for sample in slave.samples:
        assert sample.offset == pytest.approx(0.025, abs=1e-6)
        assert sample.mean_path_delay == pytest.approx(0.001, abs=1e-6)


def test_zero_offset_zero_error():
    sim = Simulator(seed=1)
    master, slave = _wire(sim, perfect_clock(sim, stream="m"),
                          perfect_clock(sim, stream="s"))
    master.start()
    sim.run_until(5.0)
    assert all(abs(s.offset) < 1e-6 for s in slave.samples)


def test_asymmetry_biases_by_half_difference():
    sim = Simulator(seed=1)
    master, slave = _wire(
        sim, perfect_clock(sim, stream="m"), perfect_clock(sim, stream="s"),
        fwd_delay=0.010, rev_delay=0.002,
    )
    master.start()
    sim.run_until(5.0)
    # offset error = (fwd - rev)/2 = +4 ms.
    for sample in slave.samples:
        assert sample.offset == pytest.approx(0.004, abs=1e-6)
        assert sample.mean_path_delay == pytest.approx(0.006, abs=1e-6)


def test_lossy_channel_drops_exchanges():
    sim = Simulator(seed=2)
    rng = np.random.default_rng(0)

    def lossy():
        return LinkEffect(lost=rng.random() < 0.5)

    master, slave = _wire(sim, perfect_clock(sim, stream="m"),
                          perfect_clock(sim, stream="s"), effect_hook=lossy)
    master.start()
    sim.run_until(30.0)
    # Some exchanges fail (Sync, Follow_Up, Delay_Req or Resp lost) but
    # survivors are still well-formed.
    assert 0 < len(slave.samples) < master.syncs_sent


def test_wireless_style_jitter_degrades_ptp_like_sntp():
    """The point of including PTP: over an asymmetric-jitter hop its
    per-sample accuracy collapses to the same class as SNTP's."""
    sim = Simulator(seed=3)
    rng = np.random.default_rng(1)

    def bursty():
        extra = float(rng.exponential(0.050)) if rng.random() < 0.3 else 0.0
        return LinkEffect(extra_delay=extra)

    master, slave = _wire(sim, perfect_clock(sim, stream="m"),
                          perfect_clock(sim, stream="s"), effect_hook=bursty)
    master.start()
    sim.run_until(60.0)
    offsets = np.abs([s.offset for s in slave.samples])
    assert offsets.max() > 0.005  # tens of ms errors appear
    assert offsets.mean() > 0.001


def test_tracks_drifting_slave():
    sim = Simulator(seed=4)
    master, slave = _wire(sim, perfect_clock(sim, stream="m"),
                          drifting_clock(sim, skew_ppm=50.0, stream="s"))
    master.start()
    sim.run_until(100.0)
    first = slave.samples[0].offset
    last = slave.samples[-1].offset
    # Slave gains 50 us/s: offset grows by ~5 ms over 100 s.
    assert last - first == pytest.approx(50e-6 * (slave.samples[-1].t3 - slave.samples[0].t3), rel=0.05)


def test_delay_resp_for_other_slave_ignored():
    sim = Simulator(seed=5)
    slave = PtpSlave(sim, perfect_clock(sim, stream="s"), send=lambda d: None,
                     identity=b"SLAVE00001")
    from repro.net.message import Datagram
    from repro.ptp.messages import PtpHeader, PtpMessageType

    resp = PtpHeader(
        message_type=PtpMessageType.DELAY_RESP, sequence_id=1,
        timestamp=1.0, requesting_port_identity=b"OTHERSLAVE",
    )
    slave.on_datagram(Datagram(payload=resp.encode(), src="m", dst="s"))
    assert slave.samples == []


def test_master_stop():
    sim = Simulator(seed=6)
    master, slave = _wire(sim, perfect_clock(sim, stream="m"),
                          perfect_clock(sim, stream="s"))
    master.start()
    sim.run_until(5.0)
    master.stop()
    count = master.syncs_sent
    sim.run_until(50.0)
    assert master.syncs_sent == count


def test_invalid_sync_interval():
    sim = Simulator(seed=7)
    with pytest.raises(ValueError):
        PtpMaster(sim, perfect_clock(sim, stream="m"), send=lambda d: None,
                  sync_interval=0.0)

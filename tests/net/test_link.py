"""Link delivery, loss, and effect hooks."""

import numpy as np

from repro.net.link import Link, LinkEffect
from repro.net.message import Datagram
from repro.net.path import PathModel


def _path(rng, **kwargs):
    defaults = dict(base_delay=0.010, queue_mean=0.0, loss_rate=0.0)
    defaults.update(kwargs)
    return PathModel(rng, **defaults)


def test_delivery_with_delay(sim, rng):
    received = []
    link = Link(sim, _path(rng), receive=received.append)
    link.send(Datagram(payload=b"x", src="a", dst="b"))
    sim.run_until(1.0)
    assert len(received) == 1
    assert received[0].delivered_at == 0.010
    assert received[0].owd() == 0.010


def test_loss_drops_datagram(sim, rng):
    received = []
    link = Link(sim, _path(rng, loss_rate=0.9999999), receive=received.append)
    d = Datagram(payload=b"x", src="a", dst="b")
    link.send(d)
    sim.run_until(1.0)
    assert received == []
    assert d.dropped
    assert link.lost == 1


def test_effect_hook_adds_delay(sim, rng):
    received = []
    link = Link(
        sim,
        _path(rng),
        receive=received.append,
        effect_hook=lambda: LinkEffect(extra_delay=0.5),
    )
    link.send(Datagram(payload=b"x", src="a", dst="b"))
    sim.run_until(1.0)
    assert received[0].owd() == 0.510


def test_effect_hook_can_drop(sim, rng):
    received = []
    link = Link(
        sim,
        _path(rng),
        receive=received.append,
        effect_hook=lambda: LinkEffect(lost=True),
    )
    link.send(Datagram(payload=b"x", src="a", dst="b"))
    sim.run_until(1.0)
    assert received == []


def test_counters(sim, rng):
    link = Link(sim, _path(rng), receive=lambda d: None)
    for _ in range(5):
        link.send(Datagram(payload=b"x", src="a", dst="b"))
    sim.run_until(1.0)
    assert link.sent == 5
    assert link.delivered == 5
    assert link.lost == 0


def test_drop_emits_trace(sim, rng):
    link = Link(
        sim,
        _path(rng),
        receive=lambda d: None,
        effect_hook=lambda: LinkEffect(lost=True),
        name="wifi",
    )
    link.send(Datagram(payload=b"x", src="a", dst="b"))
    sim.run_until(1.0)
    drops = sim.trace.select(component="wifi", kind="drop")
    assert len(drops) == 1


def test_datagram_ids_unique():
    a = Datagram(payload=b"x", src="a", dst="b")
    b = Datagram(payload=b"y", src="a", dst="b")
    assert a.ident != b.ident


def test_datagram_owd_none_in_flight():
    d = Datagram(payload=b"x", src="a", dst="b")
    assert d.owd() is None
    assert d.size == 1

"""Datagram idents: per-run allocation, fallback sequence, trace ids."""

from repro.net.message import Datagram, DatagramIdAllocator
from repro.simcore.simulator import Simulator


def test_allocator_counts_from_one():
    alloc = DatagramIdAllocator()
    assert [alloc.allocate() for _ in range(3)] == [1, 2, 3]


def test_each_simulator_gets_a_fresh_sequence():
    a, b = Simulator(seed=1), Simulator(seed=1)
    assert a.datagram_ids.allocate() == 1
    assert a.datagram_ids.allocate() == 2
    # A second run in the same process starts over — no global bleed.
    assert b.datagram_ids.allocate() == 1


def test_datagram_trace_id_defaults_to_none():
    d = Datagram(payload=b"x", src="a", dst="b")
    assert d.trace_id is None
    assert Datagram(payload=b"x", src="a", dst="b", trace_id="c/1").trace_id == "c/1"


def test_fallback_idents_unique_without_simulator():
    a = Datagram(payload=b"x", src="a", dst="b")
    b = Datagram(payload=b"x", src="a", dst="b")
    assert a.ident != b.ident

"""PathModel delay/loss distributions."""

import numpy as np
import pytest

from repro.net.path import PathModel


def test_base_delay_is_floor(rng):
    path = PathModel(rng, base_delay=0.020, queue_mean=0.005)
    samples = [path.sample() for _ in range(500)]
    assert all(not s.lost for s in samples)
    assert min(s.delay for s in samples) >= 0.020


def test_min_delay_property(rng):
    path = PathModel(rng, base_delay=0.033)
    assert path.min_delay() == 0.033


def test_mean_close_to_base_plus_queue(rng):
    path = PathModel(rng, base_delay=0.020, queue_mean=0.010)
    mean = np.mean([path.sample().delay for _ in range(5000)])
    assert mean == pytest.approx(0.030, rel=0.1)


def test_loss_rate_respected(rng):
    path = PathModel(rng, loss_rate=0.3)
    losses = sum(path.sample().lost for _ in range(5000))
    assert losses / 5000 == pytest.approx(0.3, abs=0.03)


def test_zero_loss(rng):
    path = PathModel(rng, loss_rate=0.0)
    assert not any(path.sample().lost for _ in range(1000))


def test_spikes_add_heavy_tail(rng):
    quiet = PathModel(np.random.default_rng(1), base_delay=0.02, spike_rate=0.0)
    spiky = PathModel(
        np.random.default_rng(1), base_delay=0.02, spike_rate=0.3, spike_scale=0.5
    )
    quiet_max = max(quiet.sample().delay for _ in range(2000))
    spiky_max = max(spiky.sample().delay for _ in range(2000))
    assert spiky_max > quiet_max * 3


def test_invalid_params(rng):
    with pytest.raises(ValueError):
        PathModel(rng, base_delay=-1.0)
    with pytest.raises(ValueError):
        PathModel(rng, loss_rate=1.5)
    with pytest.raises(ValueError):
        PathModel(rng, spike_rate=-0.1)
    with pytest.raises(ValueError):
        PathModel(rng, queue_shape=0.0)


def test_lost_sample_has_inf_delay(rng):
    path = PathModel(rng, loss_rate=0.999)
    sample = path.sample()
    if sample.lost:
        assert sample.delay == float("inf")

"""InternetPath category calibration."""

import numpy as np
import pytest

from repro.net.internet import PROVIDER_CATEGORY_PROFILES, InternetPath


def test_four_categories_defined():
    assert set(PROVIDER_CATEGORY_PROFILES) == {"cloud", "isp", "broadband", "mobile"}


def test_category_median_ordering():
    p = PROVIDER_CATEGORY_PROFILES
    assert (
        p["cloud"].median_min_owd
        < p["isp"].median_min_owd
        < p["broadband"].median_min_owd
        < p["mobile"].median_min_owd
    )


@pytest.mark.parametrize("category", ["cloud", "isp", "broadband", "mobile"])
def test_sampled_median_matches_profile(category, rng):
    profile = PROVIDER_CATEGORY_PROFILES[category]
    path = InternetPath(profile, rng)
    draws = [path.sample_client_min_owd() for _ in range(3000)]
    assert float(np.median(draws)) == pytest.approx(profile.median_min_owd, rel=0.1)


def test_mobile_has_widest_spread(rng):
    def spread(category):
        path = InternetPath(PROVIDER_CATEGORY_PROFILES[category], np.random.default_rng(1))
        draws = np.array([path.sample_client_min_owd() for _ in range(2000)])
        return np.percentile(draws, 75) - np.percentile(draws, 25)

    assert spread("mobile") > spread("broadband") > spread("cloud")


def test_make_pair_asymmetric_but_bounded(rng):
    path = InternetPath(PROVIDER_CATEGORY_PROFILES["isp"], rng)
    fwd, rev = path.make_pair()
    total = fwd.base_delay + rev.base_delay
    # Asymmetry factors sum to 2, so total is twice the floor.
    assert fwd.base_delay != rev.base_delay
    assert total == pytest.approx(2 * (total / 2))
    ratio = fwd.base_delay / rev.base_delay
    assert 0.7 < ratio < 1.4


def test_make_direction_uses_profile_loss(rng):
    profile = PROVIDER_CATEGORY_PROFILES["mobile"]
    path = InternetPath(profile, rng)
    direction = path.make_direction(0.5)
    assert direction.loss_rate == profile.loss_rate

"""Table and series rendering."""

import pytest

from repro.reporting.series import render_cdf, render_series
from repro.reporting.tables import render_table


def test_table_alignment_and_separator():
    text = render_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", 22.25]],
    )
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0]
    assert set(lines[1]) <= {"-", " "}
    assert "1.50" in lines[2]
    assert "22.25" in lines[3]


def test_table_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_table_numeric_right_aligned():
    text = render_table(["n"], [["5"], ["500"]])
    lines = text.splitlines()
    assert lines[2].endswith("  5") or lines[2].strip() == "5"
    # Right alignment: the short number is padded on the left.
    assert lines[2].rstrip().endswith("5")
    assert lines[3].rstrip().endswith("500")
    assert len(lines[2]) == len(lines[3]) or lines[2].strip() == "5"


def test_series_sparkline():
    text = render_series([0.001] * 50 + [0.5], label="offsets")
    assert text.startswith("offsets:")
    assert "peak=500.0ms" in text
    assert "n=51" in text


def test_series_empty():
    assert "(empty)" in render_series([], label="x")


def test_series_width_respected():
    text = render_series(list(range(1000)), label="w", width=40)
    bar = text.split("|")[1]
    assert len(bar) == 40


def test_series_bad_width():
    with pytest.raises(ValueError):
        render_series([1.0], width=0)


def test_cdf_quantiles():
    text = render_cdf([0.001 * i for i in range(101)], label="cdf")
    assert "p50=" in text
    assert "p99=" in text


def test_cdf_empty():
    assert "(empty)" in render_cdf([], label="cdf")

"""Oscillator grade and frequency-error behaviour."""

import numpy as np
import pytest

from repro.clock.oscillator import OSCILLATOR_GRADES, Oscillator


def test_grades_exist():
    assert {"reference", "server", "laptop", "phone"} <= set(OSCILLATOR_GRADES)


def test_grade_quality_ordering():
    g = OSCILLATOR_GRADES
    assert g["reference"].base_skew_ppm_sigma < g["server"].base_skew_ppm_sigma
    assert g["server"].base_skew_ppm_sigma < g["laptop"].base_skew_ppm_sigma
    assert g["laptop"].base_skew_ppm_sigma < g["phone"].base_skew_ppm_sigma


def test_base_skew_sampled_from_grade(rng):
    draws = [
        Oscillator(OSCILLATOR_GRADES["laptop"], np.random.default_rng(i)).base_skew_ppm
        for i in range(200)
    ]
    sigma = OSCILLATOR_GRADES["laptop"].base_skew_ppm_sigma
    assert abs(np.std(draws) - sigma) / sigma < 0.25


def test_frequency_error_includes_temperature(rng):
    osc = Oscillator(OSCILLATOR_GRADES["laptop"], rng)
    at_ref = osc.frequency_error(0.0, osc.grade.reference_temp_c)
    hot = osc.frequency_error(0.0, osc.grade.reference_temp_c + 10.0)
    expected_delta = osc.grade.temp_coeff_ppm_per_k * 10.0 * 1e-6
    assert hot - at_ref == pytest.approx(expected_delta)


def test_frequency_error_includes_wander(rng):
    osc = Oscillator(OSCILLATOR_GRADES["laptop"], rng)
    base = osc.frequency_error(0.0, 25.0)
    with_wander = osc.frequency_error(3.0, 25.0)
    assert with_wander - base == pytest.approx(3.0e-6)


def test_wander_step_scales_with_sqrt_dt(rng):
    osc = Oscillator(OSCILLATOR_GRADES["phone"], np.random.default_rng(0))
    short = np.std([osc.wander_step(1.0) for _ in range(2000)])
    long = np.std([osc.wander_step(100.0) for _ in range(2000)])
    assert long / short == pytest.approx(10.0, rel=0.15)


def test_wander_step_zero_dt(rng):
    osc = Oscillator(OSCILLATOR_GRADES["laptop"], rng)
    assert osc.wander_step(0.0) == 0.0


def test_wander_step_negative_dt_rejected(rng):
    osc = Oscillator(OSCILLATOR_GRADES["laptop"], rng)
    with pytest.raises(ValueError):
        osc.wander_step(-1.0)


def test_reference_grade_is_tight(rng):
    osc = Oscillator(OSCILLATOR_GRADES["reference"], rng)
    assert abs(osc.base_skew_ppm) < 0.01  # sub-ppb-scale constant error

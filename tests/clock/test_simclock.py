"""SimClock drift, corrections, and invariants."""

import numpy as np
import pytest

from repro.clock.oscillator import OSCILLATOR_GRADES, Oscillator, OscillatorGrade
from repro.clock.simclock import SimClock
from repro.clock.temperature import ConstantTemperature


def _perfect_grade() -> OscillatorGrade:
    return OscillatorGrade(
        name="perfect", base_skew_ppm_sigma=0.0, wander_ppm_per_sqrt_s=0.0,
        temp_coeff_ppm_per_k=0.0,
    )


def _make(now_box, skew_ppm=0.0, initial_offset=0.0):
    rng = np.random.default_rng(0)
    osc = Oscillator(_perfect_grade(), rng)
    osc.base_skew_ppm = skew_ppm  # deterministic skew
    return SimClock(osc, now_fn=lambda: now_box[0], initial_offset=initial_offset)


def test_perfect_clock_tracks_true_time():
    now = [0.0]
    clock = _make(now)
    now[0] = 1000.0
    assert clock.read() == pytest.approx(1000.0)
    assert clock.true_offset() == pytest.approx(0.0)


def test_constant_skew_accumulates_linearly():
    now = [0.0]
    clock = _make(now, skew_ppm=10.0)
    now[0] = 3600.0
    # +10 ppm for an hour = +36 ms.
    assert clock.true_offset() == pytest.approx(0.036, rel=1e-6)


def test_initial_offset_respected():
    now = [0.0]
    clock = _make(now, initial_offset=0.5)
    assert clock.read() == pytest.approx(0.5)


def test_step_moves_clock_instantly():
    now = [0.0]
    clock = _make(now)
    clock.step(0.25)
    assert clock.true_offset() == pytest.approx(0.25)
    assert clock.step_count == 1


def test_slew_is_gradual():
    now = [0.0]
    clock = _make(now)
    clock.slew(0.001, rate=500e-6)  # needs 2 s to absorb
    now[0] = 1.0
    mid = clock.true_offset()
    assert 0.0 < mid < 0.001
    now[0] = 10.0
    assert clock.true_offset() == pytest.approx(0.001, abs=1e-9)
    assert clock.slew_count == 1


def test_negative_slew():
    now = [0.0]
    clock = _make(now, initial_offset=0.002)
    clock.slew(-0.002, rate=500e-6)
    now[0] = 10.0
    assert clock.true_offset() == pytest.approx(0.0, abs=1e-9)


def test_slew_bad_rate():
    now = [0.0]
    clock = _make(now)
    with pytest.raises(ValueError):
        clock.slew(0.001, rate=0.0)


def test_frequency_adjustment_cancels_skew():
    now = [0.0]
    clock = _make(now, skew_ppm=10.0)
    clock.adjust_frequency(-10.0)
    now[0] = 3600.0
    assert clock.true_offset() == pytest.approx(0.0, abs=1e-9)
    assert clock.frequency_adjustment_ppm == -10.0


def test_nudge_frequency_accumulates():
    now = [0.0]
    clock = _make(now)
    clock.nudge_frequency(3.0)
    clock.nudge_frequency(-1.0)
    assert clock.frequency_adjustment_ppm == pytest.approx(2.0)


def test_time_going_backwards_rejected():
    now = [100.0]
    clock = _make(now)
    clock.read()
    now[0] = 50.0
    with pytest.raises(ValueError):
        clock.read()


def test_current_skew_reports_total():
    now = [0.0]
    clock = _make(now, skew_ppm=5.0)
    clock.adjust_frequency(2.0)
    assert clock.current_skew() == pytest.approx(7e-6)


def test_reads_are_monotone_with_time():
    """Local time must never go backwards as true time advances."""
    now = [0.0]
    rng = np.random.default_rng(3)
    osc = Oscillator(OSCILLATOR_GRADES["phone"], rng)
    clock = SimClock(osc, now_fn=lambda: now[0])
    last = clock.read()
    for t in np.linspace(1, 5000, 137):
        now[0] = float(t)
        current = clock.read()
        assert current > last  # skew is ppm-scale, cannot reverse time
        last = current


def test_temperature_drives_drift():
    now = [0.0]
    rng = np.random.default_rng(0)
    grade = OscillatorGrade(
        name="t", base_skew_ppm_sigma=0.0, wander_ppm_per_sqrt_s=0.0,
        temp_coeff_ppm_per_k=1.0, reference_temp_c=25.0,
    )
    clock = SimClock(
        Oscillator(grade, rng),
        now_fn=lambda: now[0],
        temperature=ConstantTemperature(35.0),
    )
    now[0] = 1000.0
    # 10 K above reference at 1 ppm/K = +10 ppm -> 10 ms over 1000 s.
    assert clock.true_offset() == pytest.approx(0.010, rel=1e-6)


def test_update_interval_must_be_positive():
    rng = np.random.default_rng(0)
    osc = Oscillator(_perfect_grade(), rng)
    with pytest.raises(ValueError):
        SimClock(osc, now_fn=lambda: 0.0, update_interval=0.0)


def test_wander_changes_offset_stochastically():
    now = [0.0]
    rng = np.random.default_rng(1)
    grade = OscillatorGrade(
        name="w", base_skew_ppm_sigma=0.0, wander_ppm_per_sqrt_s=0.5,
        temp_coeff_ppm_per_k=0.0,
    )
    clock = SimClock(Oscillator(grade, rng), now_fn=lambda: now[0])
    now[0] = 10_000.0
    assert clock.true_offset() != 0.0

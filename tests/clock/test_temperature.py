"""Temperature profiles."""

import pytest

from repro.clock.temperature import (
    ConstantTemperature,
    DiurnalTemperature,
    RampTemperature,
)


def test_constant_is_constant():
    profile = ConstantTemperature(22.0)
    assert profile.at(0) == 22.0
    assert profile.at(1e6) == 22.0


def test_diurnal_oscillates_around_mean():
    profile = DiurnalTemperature(mean_c=25.0, amplitude_c=5.0, period_s=86_400.0)
    quarter = 86_400.0 / 4
    assert profile.at(quarter) == pytest.approx(30.0)
    assert profile.at(3 * quarter) == pytest.approx(20.0)
    assert profile.at(0.0) == pytest.approx(25.0)


def test_diurnal_periodicity():
    profile = DiurnalTemperature(period_s=100.0)
    assert profile.at(13.0) == pytest.approx(profile.at(113.0))


def test_diurnal_bad_period():
    with pytest.raises(ValueError):
        DiurnalTemperature(period_s=0.0)


def test_ramp_endpoints():
    profile = RampTemperature(start_c=20.0, end_c=35.0, ramp_duration_s=100.0)
    assert profile.at(-5.0) == 20.0
    assert profile.at(0.0) == 20.0
    assert profile.at(50.0) == pytest.approx(27.5)
    assert profile.at(100.0) == 35.0
    assert profile.at(1e9) == 35.0


def test_ramp_bad_duration():
    with pytest.raises(ValueError):
        RampTemperature(ramp_duration_s=0.0)


def test_ramp_monotone():
    profile = RampTemperature(start_c=10.0, end_c=40.0, ramp_duration_s=60.0)
    values = [profile.at(t) for t in range(0, 61, 5)]
    assert values == sorted(values)

"""ClockCorrector step/slew policy."""

import numpy as np
import pytest

from repro.clock.discipline_api import ClockCorrector, SlewLimits
from repro.clock.oscillator import Oscillator, OscillatorGrade
from repro.clock.simclock import SimClock


def _clock(now_box):
    grade = OscillatorGrade(
        name="perfect", base_skew_ppm_sigma=0.0, wander_ppm_per_sqrt_s=0.0,
        temp_coeff_ppm_per_k=0.0,
    )
    osc = Oscillator(grade, np.random.default_rng(0))
    return SimClock(osc, now_fn=lambda: now_box[0])


def test_large_offset_steps():
    now = [0.0]
    clock = _clock(now)
    corr = ClockCorrector(clock)
    assert corr.apply_offset(0.5) == "step"
    assert clock.true_offset() == pytest.approx(0.5)


def test_small_offset_slews():
    now = [0.0]
    clock = _clock(now)
    corr = ClockCorrector(clock)
    assert corr.apply_offset(0.010) == "slew"
    assert clock.true_offset() == pytest.approx(0.0)  # not yet absorbed
    now[0] = 60.0
    assert clock.true_offset() == pytest.approx(0.010, abs=1e-9)


def test_threshold_boundary():
    now = [0.0]
    clock = _clock(now)
    corr = ClockCorrector(clock, SlewLimits(step_threshold=0.1))
    assert corr.apply_offset(0.100) == "slew"
    assert corr.apply_offset(0.101) == "step"


def test_disabled_corrector_noops():
    now = [0.0]
    clock = _clock(now)
    corr = ClockCorrector(clock, enabled=False)
    assert corr.apply_offset(0.5) == "noop"
    assert corr.apply_offset_step(0.5) == "noop"
    assert corr.apply_frequency(1e-5) == "noop"
    assert clock.true_offset() == pytest.approx(0.0)
    assert clock.frequency_adjustment_ppm == 0.0


def test_apply_offset_step_always_steps():
    now = [0.0]
    clock = _clock(now)
    corr = ClockCorrector(clock)
    assert corr.apply_offset_step(0.001) == "step"
    assert clock.true_offset() == pytest.approx(0.001)


def test_apply_frequency_cancels_skew():
    now = [0.0]
    clock = _clock(now)
    corr = ClockCorrector(clock)
    corr.apply_frequency(5e-6)  # local clock 5 ppm fast
    assert clock.frequency_adjustment_ppm == pytest.approx(-5.0)

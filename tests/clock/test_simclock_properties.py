"""Property-based tests for the clock model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clock.oscillator import Oscillator, OscillatorGrade
from repro.clock.simclock import SimClock


def _deterministic_clock(now_box, skew_ppm):
    grade = OscillatorGrade(
        name="det", base_skew_ppm_sigma=0.0, wander_ppm_per_sqrt_s=0.0,
        temp_coeff_ppm_per_k=0.0,
    )
    osc = Oscillator(grade, np.random.default_rng(0))
    osc.base_skew_ppm = skew_ppm
    return SimClock(osc, now_fn=lambda: now_box[0])


@given(
    skew=st.floats(-100.0, 100.0),
    horizon=st.floats(1.0, 1e5),
)
def test_constant_skew_offset_is_linear(skew, horizon):
    now = [0.0]
    clock = _deterministic_clock(now, skew)
    now[0] = horizon
    assert clock.true_offset() == pytest.approx(skew * 1e-6 * horizon, rel=1e-9,
                                                abs=1e-12)


@given(
    steps=st.lists(st.floats(-10.0, 10.0), max_size=10),
)
def test_steps_sum_exactly(steps):
    now = [0.0]
    clock = _deterministic_clock(now, 0.0)
    for delta in steps:
        clock.step(delta)
    assert clock.true_offset() == pytest.approx(sum(steps), abs=1e-12)


@given(
    skew=st.floats(-50.0, 50.0),
    split=st.floats(0.1, 0.9),
    horizon=st.floats(10.0, 1e4),
)
def test_reads_are_path_independent(skew, split, horizon):
    """Reading the clock midway must not change where it ends up."""
    now_a = [0.0]
    a = _deterministic_clock(now_a, skew)
    now_a[0] = horizon
    end_a = a.true_offset()

    now_b = [0.0]
    b = _deterministic_clock(now_b, skew)
    now_b[0] = horizon * split
    b.true_offset()  # intermediate read
    now_b[0] = horizon
    end_b = b.true_offset()
    assert end_a == pytest.approx(end_b, abs=1e-12)


@settings(max_examples=30)
@given(
    delta=st.floats(-0.5, 0.5),
    rate=st.floats(1e-5, 1e-3),
)
def test_slew_converges_exactly(delta, rate):
    now = [0.0]
    clock = _deterministic_clock(now, 0.0)
    clock.slew(delta, rate=rate)
    # After enough time the whole delta is absorbed, no overshoot.
    now[0] = abs(delta) / rate + 100.0
    assert clock.true_offset() == pytest.approx(delta, abs=1e-12)


@settings(max_examples=30)
@given(seed=st.integers(0, 1000))
def test_wandering_clock_is_monotone(seed):
    """Even with wander, local time never runs backwards."""
    grade = OscillatorGrade(
        name="w", base_skew_ppm_sigma=30.0, wander_ppm_per_sqrt_s=0.01,
        temp_coeff_ppm_per_k=0.0,
    )
    now = [0.0]
    clock = SimClock(Oscillator(grade, np.random.default_rng(seed)),
                     now_fn=lambda: now[0])
    last = clock.read()
    for t in np.linspace(1.0, 2000.0, 83):
        now[0] = float(t)
        value = clock.read()
        assert value > last
        last = value

"""RRC state machine delay model."""

import numpy as np
import pytest

from repro.cellular.ran import RadioAccessNetwork, RanParams, RrcState


def _ran(now_box, seed=0, **params):
    return RadioAccessNetwork(
        RanParams(**params), np.random.default_rng(seed), now_fn=lambda: now_box[0]
    )


def test_starts_idle():
    now = [0.0]
    ran = _ran(now)
    assert ran.state is RrcState.IDLE


def test_first_uplink_pays_promotion():
    now = [0.0]
    ran = _ran(now, loss_rate=0.0, spike_rate=0.0)
    delay, lost = ran.sample_uplink()
    assert not lost
    assert delay >= ran.params.promotion_min + ran.params.uplink_base
    assert ran.promotions == 1


def test_connected_uplink_skips_promotion():
    now = [0.0]
    ran = _ran(now, loss_rate=0.0, spike_rate=0.0)
    ran.sample_uplink()  # promotes
    now[0] = 1.0  # still within inactivity timeout
    delay, _ = ran.sample_uplink()
    assert delay < ran.params.promotion_min
    assert ran.promotions == 1


def test_inactivity_demotes():
    now = [0.0]
    ran = _ran(now, inactivity_timeout=10.0, loss_rate=0.0, spike_rate=0.0)
    ran.sample_uplink()
    now[0] = 5.0
    assert ran.state is RrcState.CONNECTED
    now[0] = 20.0
    assert ran.state is RrcState.IDLE
    ran.sample_uplink()
    assert ran.promotions == 2


def test_downlink_never_promotes():
    now = [0.0]
    ran = _ran(now, loss_rate=0.0, spike_rate=0.0)
    delay, lost = ran.sample_downlink()
    assert not lost
    assert ran.promotions == 0
    assert delay < 0.2


def test_uplink_slower_than_downlink_on_average():
    now = [0.0]
    ran = _ran(now, seed=1, loss_rate=0.0, spike_rate=0.0, inactivity_timeout=0.0)
    # Timeout 0 forces promotion on every uplink.
    ups, downs = [], []
    for i in range(300):
        now[0] = i * 100.0
        ups.append(ran.sample_uplink()[0])
        downs.append(ran.sample_downlink()[0])
    assert np.mean(ups) > np.mean(downs) + 0.1


def test_loss():
    now = [0.0]
    ran = _ran(now, seed=2, loss_rate=0.5)
    lost = sum(ran.sample_downlink()[1] for _ in range(2000))
    assert lost / 2000 == pytest.approx(0.5, abs=0.05)


def test_promotion_floor_respected():
    now = [0.0]
    ran = _ran(
        now, seed=3, promotion_mean=0.001, promotion_sigma=0.5,
        promotion_min=0.15, loss_rate=0.0, spike_rate=0.0, inactivity_timeout=0.0,
    )
    for i in range(100):
        now[0] = i * 100.0
        delay, _ = ran.sample_uplink()
        assert delay >= 0.15

"""NITZ one-off time updates."""

import pytest

from repro.cellular.nitz import NitzParams, NitzService
from repro.simcore import Simulator
from tests.ntp.helpers import drifting_clock, perfect_clock


def test_force_crossing_steps_clock_to_carrier_second():
    sim = Simulator(seed=1)
    clock = perfect_clock(sim, offset=30.0, stream="p")
    sim.run_until(100.0)
    nitz = NitzService(sim, clock, NitzParams(carrier_error_sigma=0.0))
    nitz.force_crossing()
    # Carrier time == true time, quantized to whole seconds.
    assert abs(clock.true_offset()) <= 1.0
    assert nitz.updates == 1


def test_quantization_leaves_subsecond_error():
    sim = Simulator(seed=1)
    clock = perfect_clock(sim, offset=0.0, stream="p")
    sim.run_until(123.456)
    nitz = NitzService(sim, clock, NitzParams(carrier_error_sigma=0.0))
    nitz.force_crossing()
    # floor(123.456) = 123 -> clock now 0.456 s behind.
    assert clock.true_offset() == pytest.approx(-0.456, abs=1e-6)


def test_carrier_error_passed_through():
    sim = Simulator(seed=1)
    clock = perfect_clock(sim, stream="p")
    nitz = NitzService(sim, clock, NitzParams(carrier_error_sigma=5.0))
    sim.run_until(1000.0)
    nitz.force_crossing()
    # Seconds-scale error is normal for NITZ.
    assert abs(clock.true_offset()) < 30.0


def test_crossings_arrive_stochastically():
    sim = Simulator(seed=2)
    clock = drifting_clock(sim, skew_ppm=10.0, stream="d")
    nitz = NitzService(sim, clock, NitzParams(crossing_rate_hz=1.0 / 600.0))
    nitz.start()
    sim.run_until(24 * 3600.0)
    # ~144 expected; allow wide slack.
    assert 60 < nitz.updates < 300
    assert len(sim.trace.select(component="nitz", kind="update")) == nitz.updates


def test_stationary_device_gets_no_updates():
    sim = Simulator(seed=3)
    clock = drifting_clock(sim, skew_ppm=10.0, stream="d")
    nitz = NitzService(sim, clock, NitzParams(crossing_rate_hz=0.0))
    nitz.start()
    sim.run_until(7 * 24 * 3600.0)
    assert nitz.updates == 0
    # Paper's point: without periodic sync the clock just drifts.
    assert abs(clock.true_offset()) > 1.0


def test_stop():
    sim = Simulator(seed=4)
    clock = perfect_clock(sim, stream="p")
    nitz = NitzService(sim, clock, NitzParams(crossing_rate_hz=1.0))
    nitz.start()
    sim.run_until(10.0)
    nitz.stop()
    count = nitz.updates
    sim.run_until(1000.0)
    assert nitz.updates == count


def test_invalid_params():
    with pytest.raises(ValueError):
        NitzParams(crossing_rate_hz=-1.0)
    with pytest.raises(ValueError):
        NitzParams(quantization=0.0)


def test_nitz_weaker_than_mntp_accuracy_class():
    """The §2 claim: NITZ is a weaker mechanism — even with frequent
    crossings the clock error is seconds-scale, 100x worse than MNTP's
    tens of ms."""
    sim = Simulator(seed=5)
    clock = drifting_clock(sim, skew_ppm=15.0, stream="d")
    nitz = NitzService(sim, clock, NitzParams(crossing_rate_hz=1.0 / 1800.0))
    nitz.start()
    worst = 0.0
    for hour in range(24):
        sim.run_until((hour + 1) * 3600.0)
        worst = max(worst, abs(clock.true_offset()))
    assert worst > 0.2  # hundreds of ms at best, often seconds

"""Figure-5 phone experiment."""

import pytest

from repro.cellular import CellularExperiment, CellularOptions
from repro.cellular.ran import RanParams


def _short_options(**overrides):
    defaults = dict(duration=900.0, cadence=30.0)
    defaults.update(overrides)
    return CellularOptions(**defaults)


def test_run_collects_offsets():
    result = CellularExperiment(seed=1, options=_short_options()).run()
    assert len(result.offsets) >= 20
    assert result.gps_fixes >= 10


def test_offsets_biased_positive_by_promotion():
    """The uplink promotion inflates T2-T1, so reported offsets have a
    positive bias — Figure 5's mechanism."""
    result = CellularExperiment(seed=1, options=_short_options()).run()
    offsets = [p.offset for p in result.offsets]
    mean = sum(offsets) / len(offsets)
    assert mean > 0.05


def test_gps_keeps_clock_true():
    result = CellularExperiment(seed=1, options=_short_options()).run()
    truths = [abs(p.truth) for p in result.offsets]
    assert max(truths) < 0.05


def test_stats_shape_matches_paper():
    """Full 3 h run: mean ~190 ms, std ~55 ms (paper: 192/55)."""
    result = CellularExperiment(seed=1).run()
    stats = result.stats()
    assert 0.120 < stats.mean_abs < 0.280
    assert 0.030 < stats.std_abs < 0.110
    assert stats.max_abs < 1.5


def test_most_requests_pay_promotion():
    opts = _short_options(cadence=30.0)
    result = CellularExperiment(seed=2, options=opts).run()
    # Cadence 30 s >> inactivity timeout 10 s: every request promotes.
    assert result.promotions >= len(result.offsets)


def test_connected_cadence_avoids_promotions():
    opts = _short_options(cadence=5.0, ran=RanParams(inactivity_timeout=30.0))
    result = CellularExperiment(seed=3, options=opts).run()
    # Radio never goes idle between requests after the first.
    assert result.promotions < len(result.offsets) / 3
    assert result.stats().mean_abs < 0.1


def test_reproducible():
    a = CellularExperiment(seed=9, options=_short_options()).run()
    b = CellularExperiment(seed=9, options=_short_options()).run()
    assert [p.offset for p in a.offsets] == [p.offset for p in b.offsets]

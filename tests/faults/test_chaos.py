"""Chaos harness: survival semantics, determinism, fault visibility."""

import pytest

from repro.faults.chaos import (
    ChaosOptions,
    _post_windows,
    _window_verdict,
    default_fault_matrix,
    report_to_json,
    run_chaos,
)
from repro.faults.schedule import FaultEpisode, FaultKind, FaultSchedule


def test_default_matrix_covers_every_kind():
    kinds = {e.kind for e in default_fault_matrix()}
    assert kinds == set(FaultKind)
    smoke_kinds = {e.kind for e in default_fault_matrix(smoke=True)}
    assert smoke_kinds < kinds


def test_post_windows_end_at_next_episode_or_horizon():
    schedule = FaultSchedule(episodes=[
        FaultEpisode(FaultKind.BLACKOUT, start=100.0, duration=50.0),
        FaultEpisode(FaultKind.SERVER_STEP, start=300.0, duration=50.0),
    ])
    windows = dict(
        (ep.kind, win)
        for ep, win in _post_windows(schedule, duration=1000.0, grace=20.0)
    )
    assert windows[FaultKind.BLACKOUT] == (170.0, 300.0)
    assert windows[FaultKind.SERVER_STEP] == (370.0, 1000.0)


def test_window_verdict_requires_samples_and_threshold():
    errors = [(t, 0.001) for t in (10.0, 11.0, 12.0)]
    good = _window_verdict(errors, episode_end=5.0, window=(9.0, 20.0),
                           threshold=0.025)
    assert good["recovered"] and good["samples"] == 3
    assert good["recovery_s"] == pytest.approx(5.0)
    # No samples in the window: not recovered, even with no bad errors.
    starved = _window_verdict([], episode_end=5.0, window=(9.0, 20.0),
                              threshold=0.025)
    assert not starved["recovered"] and starved["max_abs_error_s"] is None
    # A breach inside the window fails it.
    breached = _window_verdict(
        errors + [(13.0, 0.5)], episode_end=5.0, window=(9.0, 20.0),
        threshold=0.025,
    )
    assert not breached["recovered"]


def test_smoke_run_is_byte_deterministic_and_survives():
    options = ChaosOptions(smoke=True, grace_s=60.0)
    a = run_chaos(options)
    b = run_chaos(options)
    assert report_to_json(a) == report_to_json(b)
    assert a["format"] == "mntp-chaos-report-v1"
    assert a["verdict"]["mntp_survived"] is True
    # Every episode must have produced MNTP samples in its window.
    assert all(e["mntp"]["samples"] > 0 for e in a["episodes"])


def test_seed_changes_the_report():
    base = run_chaos(ChaosOptions(smoke=True, grace_s=60.0))
    other = run_chaos(ChaosOptions(smoke=True, grace_s=60.0, seed=11))
    assert report_to_json(base) != report_to_json(other)


def test_custom_schedule_round_trips_into_report():
    schedule = FaultSchedule(
        name="just-a-blackout",
        episodes=[FaultEpisode(FaultKind.BLACKOUT, start=400.0, duration=30.0)],
    )
    report = run_chaos(
        ChaosOptions(smoke=True, duration=700.0, grace_s=60.0),
        schedule=schedule,
    )
    assert report["schedule"]["name"] == "just-a-blackout"
    assert len(report["episodes"]) == 1
    episode = report["episodes"][0]
    assert episode["kind"] == "blackout"
    assert episode["window"] == [490.0, 700.0]
    assert episode["mntp"]["recovered"]


def test_fault_episodes_visible_in_causal_exchanges():
    from repro.obs.causal import assemble_exchanges
    from repro.ntp.sntp_client import HardeningPolicy
    from repro.testbed.experiment import ExperimentRunner
    from repro.testbed.nodes import TestbedOptions

    schedule = FaultSchedule(episodes=[
        FaultEpisode(FaultKind.SERVER_STEP, start=100.0, duration=50.0,
                     target="0.pool.ntp.org", params={"step_s": 0.5}),
    ])
    result = ExperimentRunner(
        seed=0,
        options=TestbedOptions(
            wireless=False, ntp_correction=False, monitor_active=False,
            fault_schedule=schedule, mntp_hardening=HardeningPolicy(),
        ),
        duration=200.0,
    ).run()
    exchanges = assemble_exchanges(result.telemetry)
    overlapping = [e for e in exchanges if 100.0 <= e.t0 < 150.0]
    assert overlapping
    for exchange in overlapping:
        assert any(f.fault == "server_step" for f in exchange.faults)
    outside = [e for e in exchanges if e.t1 < 100.0]
    assert outside and all(not e.faults for e in outside)

"""FaultInjector unit tests: link effects, server state, suspend."""

import pytest

from repro.faults.injectors import FaultInjector
from repro.faults.schedule import FaultEpisode, FaultKind, FaultSchedule
from repro.net.link import LinkEffect
from repro.ntp.server import NtpServer, ServerConfig
from repro.simcore import Simulator
from tests.ntp.helpers import perfect_clock


def _injector(sim, *episodes, name="test"):
    return FaultInjector(sim, FaultSchedule(episodes=list(episodes), name=name))


def _run_to(sim, t):
    sim.run_until(t)


def test_blackout_drops_matching_packets_only_in_window():
    sim = Simulator(seed=1)
    inj = _injector(sim, FaultEpisode(FaultKind.BLACKOUT, start=10.0, duration=5.0))
    inj.install({})
    hook = inj.wrap_hook(None, "up", "srv#0")
    _run_to(sim, 5.0)
    assert not hook().lost
    _run_to(sim, 12.0)
    assert hook().lost
    _run_to(sim, 16.0)
    assert not hook().lost


def test_direction_and_target_filters_apply():
    sim = Simulator(seed=1)
    inj = _injector(sim, FaultEpisode(
        FaultKind.DELAY_SURGE, start=0.0, duration=10.0,
        target="a.pool", direction="down", params={"delay_s": 0.5},
    ))
    inj.install({})
    _run_to(sim, 1.0)
    down_a = inj.wrap_hook(None, "down", "a.pool#1")
    up_a = inj.wrap_hook(None, "up", "a.pool#1")
    down_b = inj.wrap_hook(None, "down", "b.pool#1")
    assert down_a().extra_delay == pytest.approx(0.5)
    assert up_a().extra_delay == 0.0
    assert down_b().extra_delay == 0.0


def test_wrapped_hook_preserves_base_effect():
    sim = Simulator(seed=1)
    inj = _injector(sim, FaultEpisode(
        FaultKind.DELAY_SURGE, start=0.0, duration=10.0, params={"delay_s": 0.2},
    ))
    inj.install({})
    _run_to(sim, 1.0)
    hook = inj.wrap_hook(lambda: LinkEffect(extra_delay=0.1), "up", "srv")
    assert hook().extra_delay == pytest.approx(0.3)


def test_server_step_applies_and_reverts_clock_bias():
    sim = Simulator(seed=1)
    server = NtpServer(sim, perfect_clock(sim, stream="srv"),
                       ServerConfig(name="srv"))
    inj = _injector(sim, FaultEpisode(
        FaultKind.SERVER_STEP, start=5.0, duration=10.0,
        target="srv", params={"step_s": 0.5},
    ))
    inj.install({"srv": server})
    _run_to(sim, 1.0)
    assert server.faults.bias(sim.now) == 0.0
    _run_to(sim, 6.0)
    assert server.faults.bias(sim.now) == pytest.approx(0.5)
    _run_to(sim, 20.0)
    assert server.faults.bias(sim.now) == pytest.approx(0.0)


def test_server_drift_accrues_then_reverts_to_zero():
    sim = Simulator(seed=1)
    server = NtpServer(sim, perfect_clock(sim, stream="srv"),
                       ServerConfig(name="srv"))
    inj = _injector(sim, FaultEpisode(
        FaultKind.SERVER_DRIFT, start=10.0, duration=100.0,
        target="srv", params={"rate_s_per_s": 0.001},
    ))
    inj.install({"srv": server})
    _run_to(sim, 60.0)
    assert server.faults.bias(sim.now) == pytest.approx(0.05)  # 50 s * 1 ms/s
    _run_to(sim, 200.0)
    assert server.faults.bias(sim.now) == pytest.approx(0.0, abs=1e-12)


def test_protocol_fault_depths_toggle():
    sim = Simulator(seed=1)
    server = NtpServer(sim, perfect_clock(sim, stream="srv"),
                       ServerConfig(name="srv"))
    inj = _injector(
        sim,
        FaultEpisode(FaultKind.KOD_STORM, start=1.0, duration=2.0, target="srv"),
        FaultEpisode(FaultKind.SERVER_UNSYNC, start=1.0, duration=4.0, target="srv"),
        FaultEpisode(FaultKind.ZERO_TRANSMIT, start=2.0, duration=1.0, target="srv"),
        FaultEpisode(FaultKind.SERVER_DEATH, start=5.0, duration=1.0, target="srv"),
    )
    inj.install({"srv": server})
    _run_to(sim, 2.5)
    assert server.faults.kod_storm == 1
    assert server.faults.unsynchronized == 1
    assert server.faults.zero_transmit == 1
    _run_to(sim, 5.5)
    assert server.faults.kod_storm == 0
    assert server.faults.zero_transmit == 0
    assert server.faults.unsynchronized == 0
    assert server.faults.dead == 1
    _run_to(sim, 7.0)
    assert server.faults.dead == 0


def test_install_twice_is_an_error():
    sim = Simulator(seed=1)
    inj = _injector(sim)
    inj.install({})
    with pytest.raises(RuntimeError):
        inj.install({})


def test_suspend_tracks_node_and_emits_drop_record():
    sim = Simulator(seed=1)
    inj = _injector(sim, FaultEpisode(
        FaultKind.SUSPEND, start=10.0, duration=5.0, target="tn",
    ))
    inj.install({})
    _run_to(sim, 11.0)
    assert inj.node_suspended("tn")
    assert not inj.node_suspended("mn")
    inj.record_suspend_drop("tn", "client/7", ident=42)
    records = list(sim.trace.by_kind("drop"))
    assert records and records[-1].data["cause"] == "suspend"
    assert records[-1].data["trace_id"] == "client/7"
    _run_to(sim, 16.0)
    assert not inj.node_suspended("tn")


def test_burst_loss_is_seed_deterministic():
    def outcomes(seed):
        sim = Simulator(seed=seed)
        inj = _injector(sim, FaultEpisode(
            FaultKind.BURST_LOSS, start=0.0, duration=100.0,
            params={"loss_rate": 0.5},
        ))
        inj.install({})
        hook = inj.wrap_hook(None, "up", "srv")
        sim.run_until(1.0)
        return [hook().lost for _ in range(32)]

    assert outcomes(3) == outcomes(3)
    assert outcomes(3) != outcomes(4)  # statistically certain for 32 draws


def test_episode_spans_are_emitted():
    sim = Simulator(seed=1)
    inj = _injector(sim, FaultEpisode(
        FaultKind.BLACKOUT, start=1.0, duration=2.0,
    ))
    inj.install({})
    sim.run_until(5.0)
    sim.telemetry.spans.end_all()
    snapshot = sim.telemetry.snapshot()
    spans = [
        r for r in snapshot["records"]
        if r["component"] == "span" and r["kind"] == "fault.episode"
    ]
    assert len(spans) == 1
    assert spans[0]["data"]["fault"] == "blackout"
    assert spans[0]["data"]["t1"] == pytest.approx(3.0)

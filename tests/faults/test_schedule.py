"""FaultSchedule / FaultEpisode semantics and JSON round-tripping."""

import pytest

from repro.faults.schedule import (
    DIRECTIONS,
    FaultEpisode,
    FaultKind,
    FaultSchedule,
    NETWORK_KINDS,
    SERVER_KINDS,
)


def test_episode_active_window_is_half_open():
    ep = FaultEpisode(FaultKind.BLACKOUT, start=10.0, duration=5.0)
    assert ep.end == 15.0
    assert not ep.active(9.999)
    assert ep.active(10.0)
    assert ep.active(14.999)
    assert not ep.active(15.0)


def test_episode_validation():
    with pytest.raises(ValueError):
        FaultEpisode(FaultKind.BLACKOUT, start=-1.0, duration=5.0)
    with pytest.raises(ValueError):
        FaultEpisode(FaultKind.BLACKOUT, start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        FaultEpisode(FaultKind.BLACKOUT, start=0.0, duration=5.0,
                     direction="sideways")
    with pytest.raises(ValueError):
        FaultEpisode(FaultKind.DELAY_SURGE, start=0.0, duration=5.0,
                     params={"delay_s": "much"})


def test_target_matching_covers_pool_members():
    wild = FaultEpisode(FaultKind.BLACKOUT, start=0.0, duration=1.0)
    assert wild.matches("0.pool.ntp.org#2")
    pinned = FaultEpisode(FaultKind.SERVER_STEP, start=0.0, duration=1.0,
                          target="0.pool.ntp.org")
    assert pinned.matches("0.pool.ntp.org")
    assert pinned.matches("0.pool.ntp.org#3")
    assert not pinned.matches("1.pool.ntp.org#0")
    assert not pinned.matches("0.pool.ntp.organ")


def test_direction_filter():
    down_only = FaultEpisode(FaultKind.DELAY_SURGE, start=0.0, duration=1.0,
                             direction="down")
    assert down_only.affects_direction("down")
    assert not down_only.affects_direction("up")
    both = FaultEpisode(FaultKind.DELAY_SURGE, start=0.0, duration=1.0)
    assert all(both.affects_direction(d) for d in ("up", "down"))
    assert set(DIRECTIONS) == {"up", "down", "both"}


def test_kind_families_partition():
    assert NETWORK_KINDS.isdisjoint(SERVER_KINDS)
    assert FaultKind.SUSPEND not in NETWORK_KINDS | SERVER_KINDS


def test_schedule_active_and_horizon():
    schedule = FaultSchedule(episodes=[
        FaultEpisode(FaultKind.BLACKOUT, start=0.0, duration=10.0),
        FaultEpisode(FaultKind.SERVER_STEP, start=5.0, duration=10.0),
    ])
    assert len(schedule.active(7.0)) == 2
    assert [e.kind for e in schedule.active(12.0)] == [FaultKind.SERVER_STEP]
    assert schedule.active(7.0, kinds=NETWORK_KINDS)[0].kind is FaultKind.BLACKOUT
    assert schedule.horizon() == 15.0


def test_json_round_trip_is_lossless_and_stable():
    schedule = FaultSchedule(
        name="rt",
        episodes=[
            FaultEpisode(FaultKind.DELAY_SURGE, start=1.0, duration=2.0,
                         target="x", direction="down",
                         params={"delay_s": 0.25, "a": 1.0}),
            FaultEpisode(FaultKind.SUSPEND, start=3.0, duration=4.0,
                         target="tn"),
        ],
    )
    text = schedule.to_json()
    again = FaultSchedule.from_json(text)
    assert again == schedule
    assert again.to_json() == text  # byte-stable
    with pytest.raises(ValueError):
        FaultSchedule.from_json("{not json")
    with pytest.raises(ValueError):
        FaultSchedule.from_json('{"episodes": [{"kind": "nope", "start": 0, "duration": 1}]}')

"""CLI subcommands."""

import json

import pytest

from repro.cli import main


def test_scenarios_listing(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "mntp_wireless_corrected" in out
    assert "wired_uncorrected" in out


def test_run_sntp_only_scenario(capsys):
    assert main(["--seed", "1", "run", "wired_corrected"]) == 0
    out = capsys.readouterr().out
    assert "SNTP" in out
    assert "MNTP" not in out


def test_run_mntp_scenario(capsys):
    assert main(["--seed", "1", "run", "mntp_wireless_corrected"]) == 0
    out = capsys.readouterr().out
    assert "MNTP" in out
    assert "improvement" in out


def test_run_unknown_scenario_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonsense"])


def test_logstudy(capsys):
    assert main(["--seed", "3", "logstudy", "--servers", "JW1",
                 "--scale", "1e-4"]) == 0
    out = capsys.readouterr().out
    assert "JW1" in out
    assert "category medians" in out


def test_logstudy_unknown_server(capsys):
    assert main(["logstudy", "--servers", "NOPE"]) == 2
    err = capsys.readouterr().err
    assert "unknown server" in err


def test_cellular(capsys):
    assert main(["--seed", "1", "cellular"]) == 0
    out = capsys.readouterr().out
    assert "promotions=" in out
    assert "offset CDF" in out


def test_tune_and_save(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["--seed", "2", "tune", "--hours", "0.5",
                 "--save", str(path)]) == 0
    out = capsys.readouterr().out
    assert "RMSE (ms)" in out
    assert path.exists()
    from repro.tuner import OffsetTrace

    with open(path) as f:
        trace = OffsetTrace.load(f)
    assert len(trace) > 300


def test_autotune(capsys):
    assert main(["--seed", "2", "autotune", "--hours", "0.5",
                 "--target-ms", "50"]) == 0
    out = capsys.readouterr().out
    assert "recommended" in out
    assert "pareto" in out.lower()


def test_autotune_infeasible(capsys):
    assert main(["--seed", "2", "autotune", "--hours", "0.5",
                 "--budget-per-hour", "0.0001"]) == 1
    assert "no viable" in capsys.readouterr().out


def test_run_save_and_replay(tmp_path, capsys):
    path = tmp_path / "run.json"
    assert main(["--seed", "1", "run", "wired_uncorrected",
                 "--save", str(path)]) == 0
    out = capsys.readouterr().out
    assert "archived" in out
    assert path.exists()
    assert main(["replay", str(path)]) == 0
    out = capsys.readouterr().out
    assert "SNTP" in out


def test_replay_missing_file(capsys):
    assert main(["replay", "/nonexistent/run.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_logstudy_save_pcap(tmp_path, capsys):
    assert main(["--seed", "3", "logstudy", "--servers", "JW1",
                 "--scale", "1e-4", "--save-pcap-dir", str(tmp_path)]) == 0
    pcap_path = tmp_path / "JW1.pcap"
    assert pcap_path.exists()
    # The written file is a genuine pcap that parses back to NTP traffic.
    from repro.logs.parser import parse_trace

    observations = parse_trace(pcap_path.read_bytes())
    assert observations


def test_calibrate(capsys):
    code = main(["--seed", "1", "calibrate"])
    out = capsys.readouterr().out
    assert "verdict" in out
    assert code == 0
    assert "calibration OK" in out


# -- telemetry surface ---------------------------------------------------


def test_run_telemetry_export_meets_acceptance(tmp_path, capsys):
    """The ISSUE acceptance bar: >=5 metric names, >=4 span kinds."""
    from repro.obs import load_jsonl, snapshot_metric_names, snapshot_span_kinds

    path = tmp_path / "out.jsonl"
    assert main(["--seed", "1", "run", "mntp_wireless_corrected",
                 "--telemetry", str(path)]) == 0
    assert "telemetry" in capsys.readouterr().out
    with open(path) as f:
        snap = load_jsonl(f)
    assert len(snapshot_metric_names(snap)) >= 5
    assert len(snapshot_span_kinds(snap)) >= 4
    # Byte-identical on re-run with the same seed.
    first = path.read_bytes()
    assert main(["--seed", "1", "run", "mntp_wireless_corrected",
                 "--telemetry", str(path)]) == 0
    capsys.readouterr()
    assert path.read_bytes() == first


def test_run_json_summary(capsys):
    import json

    assert main(["--seed", "1", "run", "wired_uncorrected", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["sntp"]["count"] > 0
    assert "metric_names" in data["telemetry"]


def test_trace_and_metrics_subcommands(tmp_path, capsys):
    import json

    run_path = tmp_path / "run.json"
    assert main(["--seed", "1", "run", "mntp_wireless_corrected",
                 "--save", str(run_path)]) == 0
    capsys.readouterr()

    chrome_path = tmp_path / "chrome.json"
    assert main(["trace", str(run_path), "--chrome", str(chrome_path),
                 "--kind", "deferred", "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "sim.run" in out            # span summary table
    assert "mntp/deferred" in out      # filtered record listing
    with open(chrome_path) as f:
        document = json.load(f)        # must be valid JSON
    assert document["traceEvents"]

    assert main(["metrics", str(run_path)]) == 0
    out = capsys.readouterr().out
    assert "# TYPE sim_events_total counter" in out
    assert "mntp_abs_residual_ms_bucket" in out


def test_trace_without_telemetry_payload(tmp_path, capsys):
    import json

    path = tmp_path / "old.json"
    path.write_text(json.dumps({
        "format": "mntp-experiment-v1", "duration": 1.0,
        "sntp": [], "true_offsets": [], "mntp_reports": [],
    }))
    assert main(["trace", str(path)]) == 2
    assert "no telemetry payload" in capsys.readouterr().err


def test_cellular_json_and_telemetry(tmp_path, capsys):
    import json

    path = tmp_path / "cell.jsonl"
    assert main(["--seed", "1", "cellular", "--json",
                 "--telemetry", str(path)]) == 0
    out = capsys.readouterr().out
    data = json.loads(out[out.index("{"):])
    assert data["offsets"]["count"] > 0
    assert path.exists()


def test_autotune_telemetry(tmp_path, capsys):
    from repro.obs import load_jsonl, snapshot_span_kinds

    path = tmp_path / "tune.jsonl"
    assert main(["--seed", "2", "autotune", "--hours", "0.5",
                 "--target-ms", "50", "--telemetry", str(path)]) == 0
    capsys.readouterr()
    with open(path) as f:
        snap = load_jsonl(f)
    kinds = snapshot_span_kinds(snap)
    assert "tuner.tune" in kinds and "tuner.eval" in kinds


def test_explain_subcommand(tmp_path, capsys):
    import json

    run_path = tmp_path / "run.json"
    assert main(["--seed", "3", "run", "mntp_wireless_corrected",
                 "--save", str(run_path)]) == 0
    capsys.readouterr()

    assert main(["explain", str(run_path)]) == 0
    out = capsys.readouterr().out
    assert "complete causal trees" in out
    assert "cause=" in out

    assert main(["explain", str(run_path), "--worst", "3", "--json"]) == 0
    out = capsys.readouterr().out
    report = json.loads(out)
    assert report["format"] == "mntp-explain-v1"
    assert report["coverage"] >= 0.95            # acceptance bar
    assert len(report["worst"]) == 3
    assert all(w["dominant_cause"] for w in report["worst"])

    trace_id = report["worst"][0]["trace_id"]
    assert main(["explain", str(run_path), "--trace-id", trace_id]) == 0
    out = capsys.readouterr().out
    assert f"sntp.exchange {trace_id}" in out
    assert "link.transit request" in out
    assert "server.turnaround" in out


def test_explain_unknown_trace_id(tmp_path, capsys):
    run_path = tmp_path / "run.json"
    assert main(["--seed", "1", "run", "wired_corrected",
                 "--save", str(run_path)]) == 0
    capsys.readouterr()
    assert main(["explain", str(run_path), "--trace-id", "nope/99"]) == 1
    assert "no exchange with trace id" in capsys.readouterr().err


def test_explain_without_telemetry_payload(tmp_path, capsys):
    import json

    path = tmp_path / "old.json"
    path.write_text(json.dumps({
        "format": "mntp-experiment-v1", "duration": 1.0,
        "sntp": [], "true_offsets": [], "mntp_reports": [],
    }))
    assert main(["explain", str(path)]) == 2
    assert "no telemetry payload" in capsys.readouterr().err


def test_explain_missing_file(capsys):
    assert main(["explain", "does-not-exist.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


# -- scale-out telemetry surface ------------------------------------------


def test_run_with_sampling_and_ring_flags(tmp_path, capsys):
    from repro.obs import load_jsonl

    full = tmp_path / "full.jsonl"
    sampled = tmp_path / "sampled.jsonl"
    assert main(["--seed", "1", "run", "wired_corrected",
                 "--telemetry", str(full)]) == 0
    assert main(["--seed", "1", "run", "wired_corrected",
                 "--sample-rate", "8", "--ring-capacity", "64",
                 "--telemetry", str(sampled)]) == 0
    capsys.readouterr()
    with open(full) as f:
        full_snap = load_jsonl(f)
    with open(sampled) as f:
        sampled_snap = load_jsonl(f)
    assert len(sampled_snap["records"]) < len(full_snap["records"])
    info = sampled_snap["sampling"]
    assert info["rate"] == 8
    # Cold-path records append directly (never offered to the sampler),
    # so the snapshot holds the kept ones plus those.
    assert info["kept"] <= len(sampled_snap["records"])
    assert info["dropped"] > 0
    # The sampled run self-meters its own telemetry cost.
    names = {m["name"] for m in sampled_snap["metrics"]}
    assert "obs_overhead_records_total" in names
    # Sampling changes what is recorded, not what is simulated.
    assert (
        [m for m in sampled_snap["metrics"]
         if m["name"] == "sntp_queries_total"]
        == [m for m in full_snap["metrics"]
            if m["name"] == "sntp_queries_total"]
    )


def test_run_rejects_bad_sample_rate(capsys):
    assert main(["run", "wired_corrected", "--sample-rate", "0"]) == 2
    assert "sample rate" in capsys.readouterr().err


def test_trace_sample_rate_downsamples_deterministically(tmp_path, capsys):
    run_path = tmp_path / "run.json"
    assert main(["--seed", "1", "run", "wired_corrected",
                 "--save", str(run_path)]) == 0
    capsys.readouterr()
    out_a = tmp_path / "a.jsonl"
    out_b = tmp_path / "b.jsonl"
    assert main(["trace", str(run_path), "--sample-rate", "4",
                 "--jsonl", str(out_a), "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "sampled 1-in-4" in out
    assert main(["trace", str(run_path), "--sample-rate", "4",
                 "--jsonl", str(out_b), "--limit", "1"]) == 0
    capsys.readouterr()
    assert out_a.read_bytes() == out_b.read_bytes()
    full = tmp_path / "full.jsonl"
    assert main(["trace", str(run_path), "--jsonl", str(full),
                 "--limit", "1"]) == 0
    capsys.readouterr()
    assert len(out_a.read_text().splitlines()) < len(
        full.read_text().splitlines()
    )


def test_trace_rejects_bad_sample_rate(tmp_path, capsys):
    run_path = tmp_path / "run.json"
    assert main(["--seed", "1", "run", "wired_corrected",
                 "--save", str(run_path)]) == 0
    capsys.readouterr()
    assert main(["trace", str(run_path), "--sample-rate", "0"]) == 2
    assert "sample rate" in capsys.readouterr().err


def test_metrics_merge_is_order_independent(tmp_path, capsys):
    import json

    from repro.obs import Telemetry, make_shard

    def shard(seed, name):
        telemetry = Telemetry.standalone()
        telemetry.metrics.counter("q_total").inc(seed)
        telemetry.trace.emit(float(seed), "mntp", "tick", i=seed)
        path = tmp_path / name
        path.write_text(json.dumps(make_shard(telemetry.snapshot(), name)))
        return path

    a = shard(1, "a.json")
    b = shard(2, "b.json")
    out_ab = tmp_path / "ab.jsonl"
    out_ba = tmp_path / "ba.jsonl"
    assert main(["metrics", "--merge", str(a), str(b),
                 "--out", str(out_ab)]) == 0
    prom_ab = capsys.readouterr().out
    assert main(["metrics", "--merge", str(b), str(a),
                 "--out", str(out_ba)]) == 0
    prom_ba = capsys.readouterr().out
    assert out_ab.read_bytes() == out_ba.read_bytes()
    assert prom_ab == prom_ba
    assert "q_total 3" in prom_ab  # counters summed across shards


def test_metrics_merge_argument_validation(tmp_path, capsys):
    assert main(["metrics", "run.json", "--merge", "a.json"]) == 2
    assert "not both" in capsys.readouterr().err
    assert main(["metrics", "--out", "x.jsonl"]) == 2
    assert "--out only applies" in capsys.readouterr().err
    assert main(["metrics", "--merge", str(tmp_path / "missing.json")]) == 2
    assert "cannot load" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "other"}')
    assert main(["metrics", "--merge", str(bad)]) == 2
    assert "expected" in capsys.readouterr().err


def test_sharddemo_writes_shards_and_merged_jsonl(tmp_path, capsys):
    import json

    out_dir = tmp_path / "shards"
    assert main(["--seed", "3", "sharddemo", "--shards", "2",
                 "--exchanges", "60", "--sample-rate", "3", "--serial",
                 "--out-dir", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "shard-0000" in out
    assert "merged: 2 shards" in out
    assert "sampling 1-in-3" in out
    envelopes = sorted(out_dir.glob("shard-*.json"))
    assert len(envelopes) == 2
    document = json.loads(envelopes[0].read_text())
    assert document["format"] == "mntp-telemetry-shard-v1"
    merged = out_dir / "merged.jsonl"
    assert merged.exists()
    # The CLI merge of the written envelopes reproduces the same bytes.
    check = tmp_path / "check.jsonl"
    assert main(["metrics", "--merge", str(envelopes[1]), str(envelopes[0]),
                 "--out", str(check)]) == 0
    capsys.readouterr()
    assert check.read_bytes() == merged.read_bytes()


def test_sharddemo_argument_validation(capsys):
    assert main(["sharddemo", "--shards", "0"]) == 2
    assert "--shards >= 1" in capsys.readouterr().err
    assert main(["sharddemo", "--shards", "5", "--exchanges", "3"]) == 2
    assert "--exchanges" in capsys.readouterr().err


def test_metrics_merge_single_shard_is_byte_identity(tmp_path, capsys):
    import io
    import json

    from repro.obs import Telemetry, make_shard, write_jsonl

    telemetry = Telemetry.standalone()
    telemetry.metrics.counter("q_total").inc(4)
    telemetry.trace.emit(1.0, "mntp", "tick", i=1)
    snapshot = telemetry.snapshot()
    # Unknown snapshot keys must survive the single-shard pass-through.
    snapshot["future_extension"] = {"x": 1}
    shard = tmp_path / "only.json"
    shard.write_text(json.dumps(make_shard(snapshot, "only")))
    out = tmp_path / "merged.jsonl"
    assert main(["metrics", "--merge", str(shard), "--out", str(out)]) == 0
    capsys.readouterr()
    direct = io.StringIO()
    write_jsonl(snapshot, direct)
    assert out.read_text() == direct.getvalue()


def test_health_smoke_gate(capsys):
    assert main(["health", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "verdict: pass" in out
    assert "health smoke:" in out and "-> OK" in out


def test_health_archived_run_and_slo_spec(tmp_path, capsys):
    from repro.obs import SloSpec

    path = tmp_path / "run.json"
    assert main(["--seed", "4", "run", "wired_corrected",
                 "--save", str(path)]) == 0
    capsys.readouterr()
    assert main(["health", str(path)]) == 0
    assert "verdict:" in capsys.readouterr().out
    # An impossible spec makes the same archive fail the gate.
    strict = tmp_path / "strict.json"
    strict.write_text(SloSpec(
        p99_abs_error_warn_ms=0.0001, p99_abs_error_violate_ms=0.0002,
        min_samples=1,
    ).to_json())
    assert main(["health", str(path), "--slo", str(strict), "--json"]) == 1
    import json

    report = json.loads(capsys.readouterr().out)
    assert report["format"] == "mntp-health-report-v1"
    assert report["verdict"] == "violated"


def test_health_argument_validation(tmp_path, capsys):
    assert main(["health"]) == 2
    assert "--smoke" in capsys.readouterr().err
    assert main(["health", str(tmp_path / "missing.json")]) == 2
    assert "cannot load" in capsys.readouterr().err
    bad_spec = tmp_path / "spec.json"
    bad_spec.write_text('{"p99_err_ms": 1}')
    assert main(["health", "--smoke", "--slo", str(bad_spec)]) == 2
    assert "unknown SloSpec fields" in capsys.readouterr().err


def test_diff_same_seed_is_identical(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    for path in (a, b):
        assert main(["--seed", "9", "run", "wired_corrected",
                     "--save", str(path)]) == 0
    capsys.readouterr()
    assert main(["diff", str(a), str(b)]) == 0
    assert "snapshots are identical" in capsys.readouterr().out


def test_diff_reports_suspects_between_seeds(tmp_path, capsys):
    import json

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["--seed", "9", "run", "wired_corrected", "--save", str(a)]) == 0
    assert main(["--seed", "10", "run", "wired_corrected", "--save", str(b)]) == 0
    capsys.readouterr()
    assert main(["diff", str(a), str(b), "--top", "3"]) == 1
    assert "suspects" in capsys.readouterr().out
    assert main(["diff", str(a), str(b), "--json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["format"] == "mntp-telemetry-diff-v1"
    assert document["identical"] is False


def test_diff_argument_validation(tmp_path, capsys):
    assert main(["diff", str(tmp_path / "nope.json"),
                 str(tmp_path / "nope2.json")]) == 2
    assert "cannot load" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "mystery-v9"}')
    ok = tmp_path / "ok.json"
    assert main(["--seed", "2", "run", "wired_corrected",
                 "--save", str(ok)]) == 0
    capsys.readouterr()
    assert main(["diff", str(bad), str(ok)]) == 2
    assert "mystery-v9" in capsys.readouterr().err


def test_run_watch_prints_health_lines(capsys):
    assert main(["--seed", "2", "run", "wired_corrected", "--watch"]) == 0
    out = capsys.readouterr().out
    assert "health t=" in out
    assert "p99|err|=" in out


def test_run_slo_with_unreadable_spec_fails(capsys):
    assert main(["run", "wired_corrected", "--slo", "missing-spec.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


def _slo_file(tmp_path, name, **overrides):
    from repro.obs import SloSpec

    data = SloSpec().to_dict()
    data.update(overrides)
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def test_run_slo_without_watch_monitors_and_reports(tmp_path, capsys):
    lax = _slo_file(tmp_path, "lax.json",
                    p99_abs_error_warn_ms=5000.0,
                    p99_abs_error_violate_ms=10000.0)
    assert main(["--seed", "2", "run", "wired_corrected",
                 "--slo", lax, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["health"]["format"] == "mntp-health-report-v1"
    assert summary["health"]["verdict"] != "violated"


def test_run_violated_verdict_exits_nonzero(tmp_path, capsys):
    strict = _slo_file(tmp_path, "strict.json",
                       p99_abs_error_warn_ms=0.0005,
                       p99_abs_error_violate_ms=0.001)
    assert main(["--seed", "2", "run", "wired_corrected",
                 "--slo", strict, "--json"]) == 1
    summary = json.loads(capsys.readouterr().out)
    assert summary["health"]["verdict"] == "violated"
    # Same verdict, table mode: the verdict line prints and rc stays 1.
    assert main(["--seed", "2", "run", "wired_corrected",
                 "--slo", strict]) == 1
    assert "health verdict: violated" in capsys.readouterr().out


# -- matrix ----------------------------------------------------------------


def _matrix_spec_file(tmp_path, name, tags=(), strict=False):
    from repro.obs import SloSpec
    from repro.testbed.specs import ScenarioSpec, TopologySpec, save_spec

    bars = (
        {"p99_abs_error_warn_ms": 0.0005, "p99_abs_error_violate_ms": 0.001}
        if strict else
        {"p99_abs_error_warn_ms": 5000.0, "p99_abs_error_violate_ms": 10000.0}
    )
    spec = ScenarioSpec(
        name=name,
        description="cli matrix fixture",
        duration_s=300.0,
        topology=TopologySpec(wireless=False, monitor_active=False),
        guarantees=SloSpec.from_dict({**SloSpec().to_dict(), **bars}),
        tags=tuple(tags),
    )
    save_spec(spec, str(tmp_path / f"{name}.json"))
    return spec


def test_matrix_cli_json_and_save(tmp_path, capsys):
    _matrix_spec_file(tmp_path, "tiny", tags=("smoke",))
    out_path = tmp_path / "report.json"
    assert main(["--seed", "3", "matrix", str(tmp_path), "--jobs", "1",
                 "--json", "--save", str(out_path)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["format"] == "mntp-matrix-report-v1"
    assert report["specs"][0]["name"] == "tiny"
    assert report["specs"][0]["status"] == "success"
    assert json.loads(out_path.read_text()) == report


def test_matrix_cli_hard_fail_exits_nonzero(tmp_path, capsys):
    _matrix_spec_file(tmp_path, "doomed", strict=True)
    assert main(["--seed", "3", "matrix", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "HARD FAIL" in out
    assert "doomed" in out


def test_matrix_cli_smoke_filters_tags(tmp_path, capsys):
    _matrix_spec_file(tmp_path, "gated", tags=("smoke",))
    # Strict spec would fail, but it is untagged so --smoke skips it.
    _matrix_spec_file(tmp_path, "skipped", strict=True)
    assert main(["--seed", "3", "matrix", str(tmp_path), "--smoke",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert [entry["name"] for entry in report["specs"]] == ["gated"]


def test_matrix_cli_argument_validation(tmp_path, capsys):
    assert main(["matrix", str(tmp_path / "missing")]) == 2
    assert "not a directory" in capsys.readouterr().err
    assert main(["matrix", str(tmp_path), "--jobs", "0"]) == 2
    assert "jobs" in capsys.readouterr().err
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["matrix", str(empty)]) == 2
    assert "no scenario specs" in capsys.readouterr().err


def test_matrix_cli_serial_mode(tmp_path, capsys):
    _matrix_spec_file(tmp_path, "tiny")
    assert main(["--seed", "3", "matrix", str(tmp_path), "--serial",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["specs"][0]["status"] == "success"

"""CLI subcommands."""

import pytest

from repro.cli import main


def test_scenarios_listing(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "mntp_wireless_corrected" in out
    assert "wired_uncorrected" in out


def test_run_sntp_only_scenario(capsys):
    assert main(["--seed", "1", "run", "wired_corrected"]) == 0
    out = capsys.readouterr().out
    assert "SNTP" in out
    assert "MNTP" not in out


def test_run_mntp_scenario(capsys):
    assert main(["--seed", "1", "run", "mntp_wireless_corrected"]) == 0
    out = capsys.readouterr().out
    assert "MNTP" in out
    assert "improvement" in out


def test_run_unknown_scenario_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonsense"])


def test_logstudy(capsys):
    assert main(["--seed", "3", "logstudy", "--servers", "JW1",
                 "--scale", "1e-4"]) == 0
    out = capsys.readouterr().out
    assert "JW1" in out
    assert "category medians" in out


def test_logstudy_unknown_server(capsys):
    assert main(["logstudy", "--servers", "NOPE"]) == 2
    err = capsys.readouterr().err
    assert "unknown server" in err


def test_cellular(capsys):
    assert main(["--seed", "1", "cellular"]) == 0
    out = capsys.readouterr().out
    assert "promotions=" in out
    assert "offset CDF" in out


def test_tune_and_save(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["--seed", "2", "tune", "--hours", "0.5",
                 "--save", str(path)]) == 0
    out = capsys.readouterr().out
    assert "RMSE (ms)" in out
    assert path.exists()
    from repro.tuner import OffsetTrace

    with open(path) as f:
        trace = OffsetTrace.load(f)
    assert len(trace) > 300


def test_autotune(capsys):
    assert main(["--seed", "2", "autotune", "--hours", "0.5",
                 "--target-ms", "50"]) == 0
    out = capsys.readouterr().out
    assert "recommended" in out
    assert "pareto" in out.lower()


def test_autotune_infeasible(capsys):
    assert main(["--seed", "2", "autotune", "--hours", "0.5",
                 "--budget-per-hour", "0.0001"]) == 1
    assert "no viable" in capsys.readouterr().out


def test_run_save_and_replay(tmp_path, capsys):
    path = tmp_path / "run.json"
    assert main(["--seed", "1", "run", "wired_uncorrected",
                 "--save", str(path)]) == 0
    out = capsys.readouterr().out
    assert "archived" in out
    assert path.exists()
    assert main(["replay", str(path)]) == 0
    out = capsys.readouterr().out
    assert "SNTP" in out


def test_replay_missing_file(capsys):
    assert main(["replay", "/nonexistent/run.json"]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_logstudy_save_pcap(tmp_path, capsys):
    assert main(["--seed", "3", "logstudy", "--servers", "JW1",
                 "--scale", "1e-4", "--save-pcap-dir", str(tmp_path)]) == 0
    pcap_path = tmp_path / "JW1.pcap"
    assert pcap_path.exists()
    # The written file is a genuine pcap that parses back to NTP traffic.
    from repro.logs.parser import parse_trace

    observations = parse_trace(pcap_path.read_bytes())
    assert observations


def test_calibrate(capsys):
    code = main(["--seed", "1", "calibrate"])
    out = capsys.readouterr().out
    assert "verdict" in out
    assert code == 0
    assert "calibration OK" in out

"""Determinism: identical seeds produce identical experiments."""

from repro.cellular import CellularExperiment, CellularOptions
from repro.core.config import MntpConfig
from repro.logs.analysis import LogStudy
from repro.logs.generator import GeneratorOptions
from repro.logs.servers import server_by_id
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions


def _mntp_run(seed):
    return ExperimentRunner(
        seed=seed,
        options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=600.0,
        mntp_config=MntpConfig.baseline_headtohead(),
    ).run()


def test_testbed_run_reproducible():
    a = _mntp_run(3)
    b = _mntp_run(3)
    assert [p.offset for p in a.sntp] == [p.offset for p in b.sntp]
    assert [r.offset for r in a.mntp_reports] == [r.offset for r in b.mntp_reports]
    assert [r.accepted for r in a.mntp_reports] == [r.accepted for r in b.mntp_reports]


def test_testbed_run_seed_sensitive():
    a = _mntp_run(3)
    c = _mntp_run(4)
    assert [p.offset for p in a.sntp] != [p.offset for p in c.sntp]


def test_log_study_reproducible():
    opts = GeneratorOptions(scale=1e-4, min_clients=20, max_clients=40,
                            max_requests_per_client=10)
    servers = [server_by_id("JW1")]

    def run(seed):
        study = LogStudy(seed=seed, options=opts, servers=servers)
        return study.table1()[0]

    a, b = run(5), run(5)
    assert a.generated_clients == b.generated_clients
    assert a.generated_measurements == b.generated_measurements
    assert a.sntp_clients == b.sntp_clients


def test_cellular_reproducible():
    opts = CellularOptions(duration=600.0, cadence=30.0)
    a = CellularExperiment(seed=2, options=opts).run()
    b = CellularExperiment(seed=2, options=opts).run()
    assert [p.offset for p in a.offsets] == [p.offset for p in b.offsets]

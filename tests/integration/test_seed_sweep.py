"""Statistical robustness: the headline result holds across seeds.

A reproduction that only works at one seed is a coincidence; the
paper's 12-17x claim should hold (within slack) for most draws of the
channel, clock, and population randomness.
"""

import numpy as np
import pytest

from repro.core.config import MntpConfig
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions

SEEDS = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for seed in SEEDS:
        runner = ExperimentRunner(
            seed=seed,
            options=TestbedOptions(wireless=True, ntp_correction=True),
            duration=3600.0,
            mntp_config=MntpConfig.baseline_headtohead(),
        )
        results[seed] = runner.run()
    return results


def test_improvement_factor_across_seeds(sweep):
    factors = [r.improvement_factor() for r in sweep.values()]
    # Every seed shows a solid win; the median is order-of-magnitude.
    assert min(factors) > 4.0
    assert float(np.median(factors)) > 8.0


def test_mntp_error_bounded_across_seeds(sweep):
    for seed, result in sweep.items():
        err = result.mntp_error_stats()
        assert err.mean_abs < 0.020, f"seed {seed}: {err.mean_abs * 1000:.1f} ms"


def test_sntp_error_always_worse(sweep):
    for seed, result in sweep.items():
        sntp = result.sntp_error_stats().mean_abs
        mntp = result.mntp_error_stats().mean_abs
        assert sntp > mntp, f"seed {seed}"


def test_filter_always_active(sweep):
    for seed, result in sweep.items():
        assert result.mntp_rejected(), f"seed {seed}: nothing rejected"


def test_gate_always_active(sweep):
    for seed, result in sweep.items():
        # Fewer MNTP reports than SNTP samples implies deferrals.
        assert len(result.mntp_reports) < len(result.sntp), f"seed {seed}"

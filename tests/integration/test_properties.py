"""Cross-cutting property-based tests against reference oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.protocol import _Compensation
from repro.energy.radio import RadioEnergyModel, RadioEnergyParams
from repro.ntp.select import SelectInterval, intersection


# -- intersection vs brute-force oracle ---------------------------------------


def _brute_force_truechimers(candidates):
    """Reference implementation: maximise the number of intervals
    containing a common point by checking all interval endpoints."""
    n = len(candidates)
    best_count = 0
    best_range = (0.0, 0.0)
    points = sorted({c.low for c in candidates} | {c.high for c in candidates})
    for point in points:
        count = sum(1 for c in candidates if c.low <= point <= c.high)
        if count > best_count:
            best_count = count
    if best_count <= n // 2:
        return []
    # Survivors: intervals containing some point achieving best_count.
    for point in points:
        members = [c for c in candidates if c.low <= point <= c.high]
        if len(members) == best_count:
            return members
    return []


@settings(max_examples=200)
@given(
    st.lists(
        st.tuples(st.floats(-1.0, 1.0), st.floats(0.01, 0.5)),
        min_size=1,
        max_size=7,
    )
)
def test_intersection_majority_agrees_with_oracle(pairs):
    candidates = [
        SelectInterval(source=f"s{i}", midpoint=m, radius=r)
        for i, (m, r) in enumerate(pairs)
    ]
    survivors, (lo, hi) = intersection(candidates)
    oracle = _brute_force_truechimers(candidates)
    # Either both find a majority or neither does.
    assert bool(survivors) == bool(oracle)
    if survivors:
        # The algorithm's agreed range intersects every survivor and
        # is contained in the oracle's achievable region.
        assert lo <= hi
        names = {s.source for s in survivors}
        # The oracle's members all intersect the returned range too.
        for c in oracle:
            assert c.low <= hi and c.high >= lo


# -- the MNTP compensation model ------------------------------------------------


def test_compensation_steps_accumulate():
    comp = _Compensation(0.0)
    comp.add_step(1.0, 0.5)
    comp.add_step(2.0, -0.2)
    assert comp.value(3.0) == pytest.approx(0.3)


def test_compensation_rate_integrates():
    comp = _Compensation(0.0)
    comp.add_rate(10.0, 1e-3)
    assert comp.value(20.0) == pytest.approx(0.01)
    comp.add_rate(20.0, 1e-3)  # now 2e-3/s
    assert comp.value(25.0) == pytest.approx(0.01 + 5 * 2e-3)


def test_compensation_reset():
    comp = _Compensation(0.0)
    comp.add_step(1.0, 1.0)
    comp.add_rate(1.0, 1.0)
    comp.reset(2.0)
    assert comp.value(10.0) == 0.0


@given(
    st.lists(
        st.tuples(st.floats(0.0, 100.0), st.floats(-0.5, 0.5)),
        max_size=20,
    )
)
def test_compensation_matches_naive_sum(steps):
    """Steps queried at the end equal a plain sum regardless of order
    of application times (applied in sorted order)."""
    comp = _Compensation(0.0)
    for t, delta in sorted(steps):
        comp.add_step(t, delta)
    assert comp.value(200.0) == pytest.approx(sum(d for _, d in steps), abs=1e-9)


# -- energy model properties ------------------------------------------------------


@settings(max_examples=100)
@given(
    st.lists(st.floats(0.0, 10_000.0), min_size=1, max_size=40),
)
def test_energy_monotone_in_events(times):
    """Adding an event never decreases total energy."""
    model = RadioEnergyModel(RadioEnergyParams())
    events = [(t, 100) for t in times]
    full = model.evaluate(events).total_j
    partial = model.evaluate(events[:-1]).total_j
    assert full >= partial - 1e-9


@settings(max_examples=100)
@given(st.lists(st.floats(0.0, 10_000.0), min_size=1, max_size=40))
def test_energy_bounded_by_isolated_events(times):
    """Tail sharing means the schedule never costs more than paying
    each event in isolation, and at least one isolated event."""
    model = RadioEnergyModel(RadioEnergyParams())
    events = [(t, 100) for t in times]
    total = model.evaluate(events).total_j
    single = model.evaluate([(0.0, 100)]).total_j
    assert total <= len(events) * single + 1e-6
    assert total >= single - 1e-9


@settings(max_examples=50)
@given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=20))
def test_energy_translation_invariant(times):
    """Shifting the whole schedule in time changes nothing."""
    model = RadioEnergyModel(RadioEnergyParams())
    a = model.evaluate([(t, 76) for t in times]).total_j
    b = model.evaluate([(t + 5000.0, 76) for t in times]).total_j
    assert a == pytest.approx(b, rel=1e-9)

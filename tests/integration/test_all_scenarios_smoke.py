"""Smoke-run every registered scenario (shortened durations).

Catches registry breakage — a scenario whose factories raise, whose
wiring dies mid-run, or which produces no data — without paying the
full experiment durations.
"""

import pytest

from repro.testbed.experiment import ExperimentRunner
from repro.testbed.scenarios import SCENARIOS


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_smoke(name):
    scenario = SCENARIOS[name]
    runner = ExperimentRunner(
        seed=7,
        options=scenario.options_factory(),
        duration=min(scenario.duration, 180.0),
        sntp_cadence=min(scenario.cadence, 5.0),
        run_sntp=scenario.run_sntp,
        mntp_config=(
            scenario.mntp_config_factory()
            if scenario.mntp_config_factory is not None
            else None
        ),
    )
    result = runner.run()
    if scenario.run_sntp:
        assert result.sntp or result.sntp_failures  # traffic flowed
    assert result.true_offsets
    if scenario.mntp_config_factory is not None:
        # MNTP at least attempted queries (reports may be empty if the
        # channel was hostile for the whole 3 minutes).
        sent = runner.sim.trace.select(component="mntp", kind="query_sent")
        deferred = runner.sim.trace.select(component="mntp", kind="deferred")
        assert sent or deferred

"""Robustness and failure-injection tests.

Decoders must reject garbage gracefully, protocols must survive hostile
or dead server populations, and nothing may crash on malformed input.
"""

import io

import pytest
from hypothesis import given, strategies as st

from repro.ntp.packet import NtpPacket
from repro.ntp.server import ServerConfig, ServerPersona
from repro.pcaplib.ntpdissect import dissect_ntp_packet
from repro.pcaplib.pcap import PcapReader
from repro.ptp.messages import PtpHeader
from repro.simcore import Simulator
from repro.tuner.traces import TraceEntry
from tests.ntp.helpers import MiniNet


@given(st.binary(max_size=200))
def test_ntp_decode_never_crashes_unexpectedly(data):
    """Any byte string either parses or raises ValueError — nothing else."""
    try:
        NtpPacket.decode(data)
    except ValueError:
        pass


@given(st.binary(max_size=400))
def test_dissector_never_crashes(data):
    """The dissector returns a dissection or None for arbitrary bytes."""
    result = dissect_ntp_packet(data)
    assert result is None or result.packet is not None


@given(st.binary(max_size=300))
def test_ptp_decode_never_crashes_unexpectedly(data):
    try:
        PtpHeader.decode(data)
    except ValueError:
        pass


@given(st.binary(min_size=24, max_size=200))
def test_pcap_reader_never_crashes_unexpectedly(data):
    try:
        reader = PcapReader(io.BytesIO(data))
        list(reader)
    except ValueError:
        pass


@given(st.text(max_size=200))
def test_trace_entry_rejects_bad_json(text):
    import json

    try:
        TraceEntry.from_json(text)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        pass


def test_mutated_valid_packet_fuzz():
    """Flip every single byte of a valid NTP packet; decode must either
    succeed or raise ValueError."""
    base = bytearray(NtpPacket.ntp_request(1_460_000_000.0).encode())
    for i in range(len(base)):
        mutated = bytearray(base)
        mutated[i] ^= 0xFF
        try:
            NtpPacket.decode(bytes(mutated), pivot_unix=1_460_000_000.0)
        except ValueError:
            pass


def test_client_ignores_stray_datagrams():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    from repro.net.message import Datagram

    # Garbage, short, and unsolicited-valid datagrams must all be ignored.
    net.client.on_datagram(Datagram(payload=b"x", src="?", dst="client"))
    net.client.on_datagram(Datagram(payload=b"\x00" * 48, src="?", dst="client"))
    valid = NtpPacket(mode=NtpPacket().mode.SERVER if False else NtpPacket.decode(
        NtpPacket.sntp_request(1.0).encode()).mode, transmit_ts=1.0)
    assert net.client.responses_received == 0


def test_all_servers_unresponsive_mntp_survives():
    from repro.clock.discipline_api import ClockCorrector
    from repro.core.config import MntpConfig
    from repro.core.protocol import Mntp
    from repro.wireless.hints import ALWAYS_FAVORABLE, StaticHintProvider

    sim = Simulator(seed=1)
    configs = [
        ServerConfig(name=name, persona=ServerPersona.UNRESPONSIVE,
                     drop_rate=1.0)
        for name in ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")
    ]
    net = MiniNet(sim, configs)
    mntp = Mntp(
        sim, net.client, StaticHintProvider(ALWAYS_FAVORABLE),
        ClockCorrector(net.client_clock),
        config=MntpConfig(
            warmup_period=300.0, warmup_wait_time=10.0,
            regular_wait_time=30.0, reset_period=1000.0,
            min_warmup_samples=5, query_timeout=1.0,
        ),
    )
    mntp.start()
    sim.run_until(600.0)
    # No responses, no acceptances, no crash; the clock is untouched.
    assert mntp.accepted_offsets() == []
    assert net.client_clock.step_count == 0
    failed = sim.trace.select(component="mntp", kind="query_failed")
    assert failed


def test_all_falsetickers_discipline_holds_clock():
    """With every upstream lying by the same amount in one direction,
    the intersection algorithm cannot detect it (no honest majority
    exists) — but with *disagreeing* liars, no majority forms and the
    daemon refuses to update."""
    from repro.clock.discipline_api import ClockCorrector
    from repro.ntp.discipline import ClockDiscipline

    sim = Simulator(seed=1)
    configs = [
        ServerConfig(name=f"liar{i}", persona=ServerPersona.FALSETICKER,
                     falseticker_bias=(i + 1) * 2.0, processing_delay=1e-6)
        for i in range(4)
    ]
    net = MiniNet(sim, configs)
    discipline = ClockDiscipline(
        sim, net.client, ClockCorrector(net.client_clock),
        [c.name for c in configs],
    )
    discipline.start()
    sim.run_until(600.0)
    # Liars at +2/+4/+6/+8 s with ms-scale radii share no intersection:
    # no truechimers, no clock updates.
    assert discipline.updates == 0
    assert abs(net.client_clock.true_offset()) < 0.001


def test_duplicate_response_ignored():
    sim = Simulator(seed=1)
    net = MiniNet(sim, [ServerConfig(name="s1", processing_delay=1e-6)])
    results = []
    net.client.query("s1", results.append)
    sim.run_until(1.0)
    assert len(results) == 1
    # Replay the same response: the pending entry is gone, so nothing
    # happens (no crash, no double callback).
    # Reconstruct a response-like datagram from the server reply path.
    from repro.net.message import Datagram
    from repro.ntp.constants import Mode

    response = NtpPacket(
        mode=Mode.SERVER, stratum=2, origin_ts=results[0].sample.t1,
        receive_ts=1.0, transmit_ts=1.0,
    )
    net.client.on_datagram(
        Datagram(payload=response.encode(), src="s1", dst="client",
                 dst_port=10_000)
    )
    assert len(results) == 1

"""Integration tests asserting the paper's qualitative results hold.

These are the 'shape' oracles from DESIGN.md: who wins, by roughly what
factor, and in what direction — not absolute numbers.  Durations are
shortened relative to the benches to keep the suite fast.
"""

import pytest

from repro.core.config import MntpConfig
from repro.testbed.experiment import ExperimentRunner
from repro.testbed.nodes import TestbedOptions


@pytest.fixture(scope="module")
def wired_corrected():
    return ExperimentRunner(
        seed=1, options=TestbedOptions(wireless=False, ntp_correction=True),
        duration=1800.0,
    ).run()


@pytest.fixture(scope="module")
def wireless_corrected():
    return ExperimentRunner(
        seed=1, options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=1800.0,
    ).run()


@pytest.fixture(scope="module")
def mntp_run():
    return ExperimentRunner(
        seed=1, options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=1800.0,
        mntp_config=MntpConfig.baseline_headtohead(),
    ).run()


def test_wired_sntp_is_tight(wired_corrected):
    stats = wired_corrected.sntp_stats()
    # Paper: 4 ms mean / 7 ms std on wired with correction.
    assert stats.mean_abs < 0.015
    assert stats.max_abs < 0.08


def test_wireless_sntp_is_loose(wired_corrected, wireless_corrected):
    """Wireless SNTP offsets are far worse than wired (the §3.2 core
    finding: 31/47 ms vs 4/7 ms)."""
    wired = wired_corrected.sntp_stats()
    wireless = wireless_corrected.sntp_stats()
    assert wireless.mean_abs > wired.mean_abs * 4
    assert wireless.std_abs > wired.std_abs * 4
    assert wireless.max_abs > 0.2  # spikes into hundreds of ms


def test_ntpd_keeps_wireless_clock_disciplined(wireless_corrected):
    truths = [abs(p.offset) for p in wireless_corrected.true_offsets]
    assert max(truths) < 0.06


def test_mntp_beats_sntp(mntp_run):
    """§5: MNTP improves on SNTP by an order of magnitude."""
    factor = mntp_run.improvement_factor()
    assert factor > 4.0
    assert mntp_run.mntp_error_stats().mean_abs < 0.015


def test_mntp_rejects_and_defers(mntp_run):
    assert mntp_run.mntp_rejected()  # the filter fired
    runner_reports = mntp_run.mntp_reports
    assert len(runner_reports) < 360  # fewer than one per 5 s slot: gating


def test_uncorrected_drift_visible():
    result = ExperimentRunner(
        seed=1, options=TestbedOptions(wireless=False, ntp_correction=False),
        duration=1800.0,
    ).run()
    truths = [p.offset for p in result.true_offsets]
    # Laptop-grade clock drifts tens of ms over half an hour.
    assert abs(truths[-1]) > 0.005
    # And the SNTP offsets track it (negated).
    assert result.sntp_stats().mean_abs > 0.005

"""Classic pcap reader/writer."""

import io
import struct

import pytest
from hypothesis import given, strategies as st

from repro.pcaplib.pcap import PCAP_MAGIC, PcapReader, PcapRecord, PcapWriter


def _roundtrip(records):
    buf = io.BytesIO()
    writer = PcapWriter(buf)
    writer.write_all(records)
    buf.seek(0)
    return PcapReader(buf).read_all()


def test_empty_file_roundtrip():
    assert _roundtrip([]) == []


def test_single_record_roundtrip():
    rec = PcapRecord(ts=1_460_000_000.123456, data=b"hello")
    out = _roundtrip([rec])
    assert len(out) == 1
    assert out[0].data == b"hello"
    assert out[0].ts == pytest.approx(rec.ts, abs=1e-6)


def test_global_header_fields():
    buf = io.BytesIO()
    PcapWriter(buf, linktype=1, snaplen=65_535)
    buf.seek(0)
    reader = PcapReader(buf)
    assert reader.version_major == 2
    assert reader.version_minor == 4
    assert reader.linktype == 1
    assert reader.snaplen == 65_535


def test_bad_magic_rejected():
    buf = io.BytesIO(b"\x00" * 24)
    with pytest.raises(ValueError):
        PcapReader(buf)


def test_truncated_header_rejected():
    with pytest.raises(ValueError):
        PcapReader(io.BytesIO(b"\x12\x34"))


def test_truncated_record_rejected():
    buf = io.BytesIO()
    writer = PcapWriter(buf)
    writer.write(PcapRecord(ts=1.0, data=b"abcdef"))
    data = buf.getvalue()[:-3]  # chop the body
    reader = PcapReader(io.BytesIO(data))
    with pytest.raises(ValueError):
        list(reader)


def test_big_endian_read():
    """Reader must accept swapped-magic captures."""
    buf = io.BytesIO()
    buf.write(struct.pack(">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65_535, 1))
    buf.write(struct.pack(">IIII", 100, 500_000, 3, 3))
    buf.write(b"abc")
    buf.seek(0)
    records = PcapReader(buf).read_all()
    assert records[0].data == b"abc"
    assert records[0].ts == pytest.approx(100.5)


def test_microsecond_rounding_carry():
    rec = PcapRecord(ts=5.9999999, data=b"x")
    out = _roundtrip([rec])
    assert out[0].ts == pytest.approx(6.0, abs=1e-6)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=2e9),
            st.binary(min_size=0, max_size=200),
        ),
        max_size=30,
    )
)
def test_roundtrip_property(items):
    records = [PcapRecord(ts=t, data=d) for t, d in items]
    out = _roundtrip(records)
    assert len(out) == len(records)
    for before, after in zip(records, out):
        assert after.data == before.data
        assert abs(after.ts - before.ts) < 1e-5


def test_open_pcap_file_roundtrip(tmp_path):
    from repro.pcaplib.pcap import open_pcap

    path = str(tmp_path / "trace.pcap")
    writer = open_pcap(path, "w")
    writer.write(PcapRecord(ts=12.5, data=b"frame-bytes"))
    writer._f.close()
    reader = open_pcap(path, "r")
    records = reader.read_all()
    assert len(records) == 1
    assert records[0].data == b"frame-bytes"
    with pytest.raises(ValueError):
        open_pcap(path, "x")

"""Ethernet / IP / UDP codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.pcaplib.ethernet import (
    ETHERTYPE_IPV4,
    EthernetFrame,
    bytes_to_mac,
    mac_to_bytes,
)
from repro.pcaplib.ip import Ipv4Header, Ipv6Header, PROTO_UDP, internet_checksum
from repro.pcaplib.udp import UdpDatagram


def test_mac_roundtrip():
    mac = "02:0a:ff:00:12:34"
    assert bytes_to_mac(mac_to_bytes(mac)) == mac


def test_bad_mac():
    with pytest.raises(ValueError):
        mac_to_bytes("not-a-mac")
    with pytest.raises(ValueError):
        bytes_to_mac(b"\x00" * 5)


def test_ethernet_roundtrip():
    frame = EthernetFrame(
        dst="02:00:00:00:00:01", src="02:00:00:00:00:02",
        ethertype=ETHERTYPE_IPV4, payload=b"payload",
    )
    decoded = EthernetFrame.decode(frame.encode())
    assert decoded == frame


def test_ethernet_too_short():
    with pytest.raises(ValueError):
        EthernetFrame.decode(b"\x00" * 10)


def test_checksum_known_vector():
    # RFC 1071 example-style: checksum of a buffer plus its checksum is 0.
    data = b"\x45\x00\x00\x28\x00\x00\x00\x00\x40\x11"
    c = internet_checksum(data)
    full = data + c.to_bytes(2, "big")
    assert internet_checksum(full) == 0


def test_ipv4_roundtrip_and_checksum():
    pkt = Ipv4Header(src="10.1.2.3", dst="192.0.2.1", protocol=PROTO_UDP,
                     payload=b"data")
    decoded = Ipv4Header.decode(pkt.encode())
    assert decoded.src == "10.1.2.3"
    assert decoded.dst == "192.0.2.1"
    assert decoded.payload == b"data"


def test_ipv4_corrupt_checksum_detected():
    raw = bytearray(Ipv4Header(src="10.0.0.1", dst="10.0.0.2",
                               protocol=PROTO_UDP, payload=b"x").encode())
    raw[8] ^= 0xFF  # flip TTL
    with pytest.raises(ValueError):
        Ipv4Header.decode(bytes(raw))


def test_ipv4_wrong_version():
    raw = bytearray(Ipv4Header(src="10.0.0.1", dst="10.0.0.2",
                               protocol=PROTO_UDP, payload=b"").encode())
    raw[0] = (6 << 4) | 5
    with pytest.raises(ValueError):
        Ipv4Header.decode(bytes(raw))


def test_ipv6_roundtrip():
    pkt = Ipv6Header(src="2001:db8:1::1", dst="2001:db8:2::2",
                     next_header=PROTO_UDP, payload=b"abc")
    decoded = Ipv6Header.decode(pkt.encode())
    assert decoded.src == "2001:db8:1::1"
    assert decoded.payload == b"abc"


def test_ipv6_too_short():
    with pytest.raises(ValueError):
        Ipv6Header.decode(b"\x60" + b"\x00" * 20)


def test_udp_roundtrip_with_checksum():
    udp = UdpDatagram(src_port=12_345, dst_port=123, payload=b"ntp packet")
    wire = udp.encode("10.0.0.1", "10.0.0.2")
    decoded = UdpDatagram.decode(wire, "10.0.0.1", "10.0.0.2", verify_checksum=True)
    assert decoded.src_port == 12_345
    assert decoded.dst_port == 123
    assert decoded.payload == b"ntp packet"


def test_udp_checksum_corruption_detected():
    udp = UdpDatagram(src_port=1, dst_port=2, payload=b"abcd")
    wire = bytearray(udp.encode("10.0.0.1", "10.0.0.2"))
    wire[-1] ^= 0xFF
    with pytest.raises(ValueError):
        UdpDatagram.decode(bytes(wire), "10.0.0.1", "10.0.0.2", verify_checksum=True)


def test_udp_ipv6_pseudo_header():
    udp = UdpDatagram(src_port=5, dst_port=123, payload=b"v6")
    wire = udp.encode("2001:db8::1", "2001:db8::2")
    decoded = UdpDatagram.decode(wire, "2001:db8::1", "2001:db8::2",
                                 verify_checksum=True)
    assert decoded.payload == b"v6"


def test_udp_too_short():
    with pytest.raises(ValueError):
        UdpDatagram.decode(b"\x00" * 4)


@given(st.binary(max_size=300), st.integers(1, 65_535), st.integers(1, 65_535))
def test_udp_roundtrip_property(payload, sport, dport):
    udp = UdpDatagram(src_port=sport, dst_port=dport, payload=payload)
    wire = udp.encode("10.0.0.1", "10.0.0.2")
    decoded = UdpDatagram.decode(wire, "10.0.0.1", "10.0.0.2", verify_checksum=True)
    assert decoded == udp

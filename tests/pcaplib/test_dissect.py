"""NTP dissector over full frames."""

from repro.ntp.constants import NTP_PORT
from repro.ntp.packet import NtpPacket
from repro.pcaplib.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetFrame
from repro.pcaplib.ip import Ipv4Header, Ipv6Header, PROTO_UDP
from repro.pcaplib.ntpdissect import dissect_ntp_packet
from repro.pcaplib.udp import UdpDatagram


def _frame(payload, sport=40_000, dport=NTP_PORT, ipv6=False):
    udp = UdpDatagram(src_port=sport, dst_port=dport, payload=payload)
    if ipv6:
        src, dst = "2001:db8::1", "2001:db8::2"
        ip = Ipv6Header(src=src, dst=dst, next_header=PROTO_UDP,
                        payload=udp.encode(src, dst)).encode()
        ethertype = ETHERTYPE_IPV6
    else:
        src, dst = "10.1.0.5", "192.0.2.1"
        ip = Ipv4Header(src=src, dst=dst, protocol=PROTO_UDP,
                        payload=udp.encode(src, dst)).encode()
        ethertype = ETHERTYPE_IPV4
    return EthernetFrame(
        dst="02:00:00:00:00:01", src="02:00:00:00:00:02",
        ethertype=ethertype, payload=ip,
    ).encode()


def test_dissects_sntp_request():
    packet = NtpPacket.sntp_request(1_460_000_000.5)
    d = dissect_ntp_packet(_frame(packet.encode()), pivot_unix=1_460_000_000.0)
    assert d is not None
    assert d.is_request
    assert not d.is_response
    assert d.src_ip == "10.1.0.5"
    assert d.ip_version == 4
    assert d.packet.looks_like_sntp_request()


def test_dissects_ipv6():
    packet = NtpPacket.ntp_request(100.0)
    d = dissect_ntp_packet(_frame(packet.encode(), ipv6=True), pivot_unix=100.0)
    assert d is not None
    assert d.ip_version == 6


def test_response_direction():
    from repro.ntp.constants import Mode

    packet = NtpPacket(mode=Mode.SERVER, stratum=2, receive_ts=1.0, transmit_ts=1.1)
    d = dissect_ntp_packet(
        _frame(packet.encode(), sport=NTP_PORT, dport=40_000), pivot_unix=1.0
    )
    assert d is not None
    assert d.is_response


def test_non_ntp_port_skipped():
    packet = NtpPacket.sntp_request(1.0)
    frame = _frame(packet.encode(), sport=40_000, dport=53)
    assert dissect_ntp_packet(frame) is None


def test_short_payload_skipped():
    frame = _frame(b"\x1b" + b"\x00" * 10)
    assert dissect_ntp_packet(frame) is None


def test_non_udp_skipped():
    ip = Ipv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=6,  # TCP
                    payload=b"\x00" * 60).encode()
    frame = EthernetFrame(dst="02:00:00:00:00:01", src="02:00:00:00:00:02",
                          ethertype=ETHERTYPE_IPV4, payload=ip).encode()
    assert dissect_ntp_packet(frame) is None


def test_garbage_skipped():
    assert dissect_ntp_packet(b"\x00" * 5) is None
    assert dissect_ntp_packet(b"\xff" * 100) is None

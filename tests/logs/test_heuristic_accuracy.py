"""Precision/recall of the synchronized-client heuristic.

The generator records ground truth per client (synchronized or not),
so the Durairajan-style filter can be scored like a classifier: it must
keep nearly all synchronized clients and discard nearly all
unsynchronized ones — otherwise the Figure-1 latency statistics would
be contaminated by clock-offset artefacts.
"""

import pytest

from repro.logs.generator import GeneratorOptions, TraceGenerator, TRACE_EPOCH_UNIX
from repro.logs.heuristic import filter_synchronized_clients
from repro.logs.parser import parse_trace
from repro.logs.servers import server_by_id


@pytest.fixture(scope="module")
def scored():
    options = GeneratorOptions(
        scale=1e-3, min_clients=400, max_clients=800,
        max_requests_per_client=20, synchronized_fraction=0.7,
    )
    generator = TraceGenerator(server_by_id("UI1"), seed=21, options=options)
    pcap_bytes = generator.generate()
    observations = parse_trace(pcap_bytes, pivot_unix=TRACE_EPOCH_UNIX)
    kept = set(filter_synchronized_clients(observations))
    truth_sync = {c.ip for c in generator.clients if c.synchronized}
    truth_unsync = {c.ip for c in generator.clients if not c.synchronized}
    return kept, truth_sync, truth_unsync


def test_recall_of_synchronized_clients(scored):
    kept, truth_sync, _ = scored
    recall = len(kept & truth_sync) / len(truth_sync)
    assert recall > 0.95


def test_rejection_of_unsynchronized_clients(scored):
    kept, _, truth_unsync = scored
    leaked = len(kept & truth_unsync) / len(truth_unsync)
    # Unsynchronized clients whose offset happens to be small and
    # positive can slip through; gross offenders must not.
    assert leaked < 0.15


def test_precision_of_surviving_population(scored):
    kept, truth_sync, _ = scored
    precision = len(kept & truth_sync) / len(kept)
    assert precision > 0.9


def test_surviving_latencies_match_true_floors(scored):
    """Filtered min-OWDs must reflect the real propagation floors, not
    clock artefacts: for synchronized clients, the estimated min-OWD is
    within the clock-offset scale of the generated floor."""
    options = GeneratorOptions(
        scale=1e-3, min_clients=200, max_clients=300,
        max_requests_per_client=20, synchronized_fraction=1.0,
    )
    generator = TraceGenerator(server_by_id("UI2"), seed=22, options=options)
    observations = parse_trace(generator.generate(), pivot_unix=TRACE_EPOCH_UNIX)
    kept = filter_synchronized_clients(observations)
    floors = {c.ip: c.min_owd for c in generator.clients}
    checked = 0
    for ip, obs in kept.items():
        est = obs.min_owd()
        floor = floors[ip]
        # The estimate is floor + residual queueing (min over up to 20
        # samples of an Exp(0.15*floor) tail, so possibly large for the
        # few one-sample clients) - clock offset (±~60 ms).
        assert floor - 0.08 <= est <= floor * 1.6 + 0.15
        checked += 1
    assert checked > 100
    # In aggregate the estimates track the floors tightly.
    import numpy as np

    errors = [kept[ip].min_owd() - floors[ip] for ip in kept]
    assert abs(float(np.median(errors))) < 0.02

"""Trace generation and parsing (the §3.1 pipeline plumbing)."""

import io

import pytest

from repro.logs.generator import GeneratorOptions, TraceGenerator, TRACE_EPOCH_UNIX
from repro.logs.parser import parse_trace
from repro.logs.servers import server_by_id
from repro.pcaplib.pcap import PcapReader


OPTS = GeneratorOptions(scale=1e-4, min_clients=20, max_clients=60,
                        max_requests_per_client=20)


def _generate(server_id="JW2", seed=3, options=OPTS):
    gen = TraceGenerator(server_by_id(server_id), seed=seed, options=options)
    return gen, gen.generate()


def test_generates_valid_pcap():
    gen, data = _generate()
    records = PcapReader(io.BytesIO(data)).read_all()
    assert records
    # Request + response per exchange.
    total_requests = sum(c.requests for c in gen.clients)
    assert len(records) == 2 * total_requests


def test_records_time_ordered():
    _, data = _generate()
    records = PcapReader(io.BytesIO(data)).read_all()
    times = [r.ts for r in records]
    assert times == sorted(times)


def test_deterministic():
    _, a = _generate(seed=5)
    _, b = _generate(seed=5)
    assert a == b
    _, c = _generate(seed=6)
    assert a != c


def test_parser_recovers_every_client():
    gen, data = _generate()
    observations = parse_trace(data, pivot_unix=TRACE_EPOCH_UNIX)
    generated_ips = {c.ip for c in gen.clients}
    assert set(observations) == generated_ips


def test_parser_counts_requests():
    gen, data = _generate()
    observations = parse_trace(data, pivot_unix=TRACE_EPOCH_UNIX)
    for client in gen.clients:
        assert observations[client.ip].total_requests == client.requests


def test_protocol_classification_matches_ground_truth():
    gen, data = _generate()
    observations = parse_trace(data, pivot_unix=TRACE_EPOCH_UNIX)
    for client in gen.clients:
        assert observations[client.ip].uses_sntp == client.uses_sntp


def test_owd_estimates_reflect_clock_state():
    gen, data = _generate()
    observations = parse_trace(data, pivot_unix=TRACE_EPOCH_UNIX)
    for client in gen.clients:
        owds = observations[client.ip].owd_estimates
        if client.synchronized:
            # OWD estimate = true OWD - clock offset; offset is ~20 ms.
            assert min(owds) > 0
            assert min(owds) == pytest.approx(
                client.min_owd - client.clock_offset, abs=0.2
            )
        else:
            # Offsets of 5..300 s make estimates absurd.
            assert min(owds) < 0 or min(owds) > 2.0


def test_client_count_scaling():
    server = server_by_id("MW2")  # 9.48M published clients
    options = GeneratorOptions(scale=1e-5, min_clients=10, max_clients=10_000)
    gen = TraceGenerator(server, seed=1, options=options)
    gen.generate()
    assert len(gen.clients) == pytest.approx(95, rel=0.1)


def test_isp_specific_server_mostly_ntp():
    gen, data = _generate(server_id="CI1", seed=2)
    sntp_clients = sum(c.uses_sntp for c in gen.clients)
    assert sntp_clients / len(gen.clients) < 0.3


def test_ipv6_only_on_supported_servers():
    gen_v4, _ = _generate(server_id="AG1", seed=1)  # v4-only server
    assert all(":" not in c.ip for c in gen_v4.clients)
    gen_v46, _ = _generate(server_id="SU1", seed=1)
    assert any(":" in c.ip for c in gen_v46.clients)

"""Synchronized-client heuristic and classifiers."""

from repro.logs.asndb import AsnDatabase
from repro.logs.classify import (
    classify_protocol_share,
    classify_provider_kind,
    group_by_provider,
    is_wireless,
)
from repro.logs.heuristic import HeuristicParams, filter_synchronized_clients
from repro.logs.parser import ClientObservation
from repro.logs.providers import provider_by_sp


def _obs(ip, owds, sntp=1, ntp=0):
    return ClientObservation(
        ip=ip, owd_estimates=list(owds), sntp_requests=sntp, ntp_requests=ntp
    )


def test_synchronized_client_survives():
    obs = {"a": _obs("a", [0.05, 0.06, 0.055])}
    out = filter_synchronized_clients(obs)
    assert "a" in out
    assert out["a"].owd_estimates == [0.05, 0.06, 0.055]


def test_negative_owds_rejected():
    obs = {"a": _obs("a", [-5.0, -4.9, -5.1])}
    assert filter_synchronized_clients(obs) == {}


def test_absurdly_large_owds_rejected():
    obs = {"a": _obs("a", [250.0, 251.0])}
    assert filter_synchronized_clients(obs) == {}


def test_mixed_samples_filtered_not_dropped():
    # 90% plausible: client kept, bad sample removed.
    owds = [0.05] * 9 + [-3.0]
    out = filter_synchronized_clients({"a": _obs("a", owds)})
    assert "a" in out
    assert len(out["a"].owd_estimates) == 9


def test_mostly_bad_client_dropped():
    owds = [0.05] * 2 + [-3.0] * 8
    assert filter_synchronized_clients({"a": _obs("a", owds)}) == {}


def test_min_owd_bound():
    params = HeuristicParams(max_min_owd=1.0)
    out = filter_synchronized_clients({"a": _obs("a", [1.5, 1.6])}, params)
    assert out == {}


def test_empty_observation_skipped():
    assert filter_synchronized_clients({"a": _obs("a", [])}) == {}


def test_keyword_classification():
    db = AsnDatabase()
    mobile = db.lookup(db.client_ip(provider_by_sp(22), 0))
    cloud = db.lookup(db.client_ip(provider_by_sp(1), 0))
    broadband = db.lookup(db.client_ip(provider_by_sp(10), 0))
    isp = db.lookup(db.client_ip(provider_by_sp(4), 0))
    assert classify_provider_kind(mobile) == "mobile"
    assert classify_provider_kind(cloud) == "cloud"
    assert classify_provider_kind(broadband) == "broadband"
    assert classify_provider_kind(isp) == "isp"
    assert is_wireless(mobile)
    assert not is_wireless(cloud)


def test_protocol_share_majority_vote():
    observations = [
        _obs("a", [0.1], sntp=5, ntp=0),
        _obs("b", [0.1], sntp=0, ntp=5),
        _obs("c", [0.1], sntp=3, ntp=1),
    ]
    sntp, ntp = classify_protocol_share(observations)
    assert (sntp, ntp) == (2, 1)


def test_group_by_provider():
    db = AsnDatabase()
    p22 = provider_by_sp(22)
    p1 = provider_by_sp(1)
    observations = {
        db.client_ip(p22, 0): _obs(db.client_ip(p22, 0), [0.5]),
        db.client_ip(p22, 1): _obs(db.client_ip(p22, 1), [0.6]),
        db.client_ip(p1, 0): _obs(db.client_ip(p1, 0), [0.04]),
        "8.8.8.8": _obs("8.8.8.8", [0.01]),  # unmapped -> dropped
    }
    grouped = group_by_provider(observations, db)
    assert len(grouped[p22.name]) == 2
    assert len(grouped[p1.name]) == 1
    assert len(grouped) == 2

"""End-to-end log study aggregation."""

import pytest

from repro.logs.analysis import LogStudy
from repro.logs.generator import GeneratorOptions
from repro.logs.servers import server_by_id


OPTS = GeneratorOptions(scale=1e-4, min_clients=60, max_clients=150,
                        max_requests_per_client=25)


@pytest.fixture(scope="module")
def study():
    s = LogStudy(
        seed=11,
        options=OPTS,
        servers=[server_by_id(x) for x in ["AG1", "SU1", "CI1"]],
    )
    s.run()
    return s


def test_table1_rows(study):
    rows = study.table1()
    assert [r.server_id for r in rows] == ["AG1", "SU1", "CI1"]
    ag1 = rows[0]
    assert ag1.published_clients == 639_704
    assert ag1.generated_clients >= 60
    assert ag1.generated_measurements > ag1.generated_clients
    assert 0 < ag1.synchronized_clients <= ag1.generated_clients


def test_category_latency_ordering(study):
    medians = study.category_medians("AG1")
    assert medians["cloud"] < medians["isp"] < medians["broadband"] < medians["mobile"]


def test_category_medians_near_paper(study):
    medians = study.category_medians("AG1")
    assert medians["cloud"] == pytest.approx(0.040, rel=0.6)
    assert medians["mobile"] == pytest.approx(0.550, rel=0.6)


def test_figure1_ordered_by_sp(study):
    latencies = study.figure1("AG1")
    sp_ids = [pl.provider.sp_id for pl in latencies]
    assert sp_ids == sorted(sp_ids)
    for pl in latencies:
        assert pl.client_count == len(pl.min_owds)
        assert pl.median >= 0


def test_mobile_iqr_wider_than_cloud(study):
    latencies = {pl.category: pl for pl in study.figure1("AG1")}
    # Pool IQRs per category.
    import numpy as np

    pooled = {}
    for pl in study.figure1("AG1"):
        pooled.setdefault(pl.category, []).extend(pl.min_owds)
    if "mobile" in pooled and "cloud" in pooled:
        mobile_iqr = np.percentile(pooled["mobile"], 75) - np.percentile(
            pooled["mobile"], 25
        )
        cloud_iqr = np.percentile(pooled["cloud"], 75) - np.percentile(
            pooled["cloud"], 25
        )
        assert mobile_iqr > cloud_iqr


def test_figure2_per_server(study):
    shares = study.figure2_per_server()
    assert set(shares) == {"AG1", "SU1", "CI1"}
    # ISP-specific server CI1 is NTP-dominated; AG1 is SNTP-dominated.
    ag1_sntp, ag1_ntp = shares["AG1"]
    ci1_sntp, ci1_ntp = shares["CI1"]
    assert ag1_sntp > ag1_ntp
    assert ci1_ntp > ci1_sntp


def test_mobile_sntp_share_over_90(study):
    share = study.mobile_sntp_share("AG1")
    assert share > 0.90


def test_figure2_per_provider(study):
    per_provider = study.figure2_per_provider("AG1")
    assert per_provider
    for name, (sntp, ntp) in per_provider.items():
        assert sntp + ntp > 0


def test_run_idempotent(study):
    before = study.table1()
    study.run()
    after = study.table1()
    assert [r.generated_clients for r in before] == [
        r.generated_clients for r in after
    ]


def test_observations_accessor(study):
    raw = study.observations("AG1", filtered=False)
    filtered = study.observations("AG1", filtered=True)
    assert len(filtered) <= len(raw)

"""Figure-dataset builders."""

import pytest

from repro.logs.analysis import LogStudy
from repro.logs.figures import (
    figure1_boxplots,
    figure1_cdfs,
    figure2_provider_bars,
    figure2_server_bars,
)
from repro.logs.generator import GeneratorOptions
from repro.logs.servers import server_by_id


@pytest.fixture(scope="module")
def study():
    s = LogStudy(
        seed=17,
        options=GeneratorOptions(scale=2e-4, min_clients=150, max_clients=300),
        servers=[server_by_id(x) for x in ("AG1", "CI1")],
    )
    s.run()
    return s


def test_boxplots_are_internally_consistent(study):
    boxes = figure1_boxplots(study, "AG1")
    assert boxes
    for box in boxes:
        assert box.minimum <= box.whisker_low <= box.q1
        assert box.q1 <= box.median <= box.q3
        assert box.q3 <= box.whisker_high <= box.maximum
        assert box.count > 0
        assert box.label.startswith("SP ")


def test_boxplots_follow_sp_order(study):
    boxes = figure1_boxplots(study, "AG1")
    ranks = [int(b.label.split()[1]) for b in boxes]
    assert ranks == sorted(ranks)


def test_cdfs_monotone_and_normalised(study):
    for cdf in figure1_cdfs(study, "AG1"):
        assert cdf.values == sorted(cdf.values)
        assert cdf.probabilities[0] > 0
        assert cdf.probabilities[-1] == pytest.approx(1.0)
        assert all(
            b >= a for a, b in zip(cdf.probabilities, cdf.probabilities[1:])
        )
        assert len(cdf.values) == len(cdf.probabilities)


def test_server_bars_sum_to_one(study):
    bars = figure2_server_bars(study)
    assert {b.label for b in bars} == {"AG1", "CI1"}
    for bar in bars:
        assert bar.sntp_fraction + bar.ntp_fraction == pytest.approx(1.0)
        assert bar.total_clients > 0


def test_provider_bars(study):
    bars = figure2_provider_bars(study, "AG1")
    assert bars
    for bar in bars:
        assert 0.0 <= bar.sntp_fraction <= 1.0
    # Mobile providers are SNTP-dominated in their bars.
    mobile = [b for b in bars if "Mobile" in b.label or "Cellular" in b.label
              or "Wireless" in b.label]
    assert mobile
    for bar in mobile:
        assert bar.sntp_fraction > 0.8

"""Provider table and synthetic ASN database."""

import pytest

from repro.logs.asndb import AsnDatabase
from repro.logs.providers import PROVIDERS, provider_by_sp, top_providers


def test_25_providers():
    assert len(PROVIDERS) == 25
    assert {p.sp_id for p in PROVIDERS} == set(range(1, 26))


def test_category_ranges_match_figure1():
    for p in PROVIDERS:
        if p.sp_id <= 3:
            assert p.category == "cloud"
        elif p.sp_id <= 9:
            assert p.category == "isp"
        elif p.sp_id <= 21:
            assert p.category == "broadband"
        else:
            assert p.category == "mobile"


def test_mobile_sntp_share_over_95_percent():
    for p in PROVIDERS:
        if p.category == "mobile":
            assert p.sntp_share >= 0.95


def test_unique_prefixes_and_asns():
    assert len({p.prefix16 for p in PROVIDERS}) == 25
    assert len({p.asn for p in PROVIDERS}) == 25


def test_top_providers_ranked_by_weight():
    top = top_providers(5)
    weights = [p.client_weight for p in top]
    assert weights == sorted(weights, reverse=True)


def test_provider_by_sp():
    assert provider_by_sp(22).category == "mobile"
    with pytest.raises(KeyError):
        provider_by_sp(99)


def test_asndb_ipv4_roundtrip():
    db = AsnDatabase()
    provider = provider_by_sp(22)
    ip = db.client_ip(provider, 300)
    record = db.lookup(ip)
    assert record is not None
    assert record.provider.sp_id == 22
    assert record.asn == provider.asn
    assert provider.domain in record.hostname


def test_asndb_ipv6_roundtrip():
    db = AsnDatabase()
    provider = provider_by_sp(3)
    ip = db.client_ip(provider, 7, ipv6=True)
    record = db.lookup(ip)
    assert record is not None
    assert record.provider.sp_id == 3


def test_asndb_unknown_addresses():
    db = AsnDatabase()
    assert db.lookup("8.8.8.8") is None
    assert db.lookup("10.200.0.1") is None  # prefix outside 1..25
    assert db.lookup("2001:4860::1") is None


def test_distinct_indexes_distinct_ips():
    db = AsnDatabase()
    provider = provider_by_sp(1)
    ips = {db.client_ip(provider, i) for i in range(1000)}
    assert len(ips) == 1000

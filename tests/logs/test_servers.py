"""Table-1 server descriptors."""

import pytest

from repro.logs.servers import TABLE1_SERVERS, server_by_id


def test_nineteen_servers():
    assert len(TABLE1_SERVERS) == 19


def test_published_totals():
    assert sum(s.total_measurements for s in TABLE1_SERVERS) == 209_447_922


def test_strata_composition():
    stratum1 = [s for s in TABLE1_SERVERS if s.stratum == 1]
    stratum2 = [s for s in TABLE1_SERVERS if s.stratum == 2]
    assert len(stratum1) == 5
    assert len(stratum2) == 14


def test_isp_specific_servers():
    isp = {s.server_id for s in TABLE1_SERVERS if s.isp_specific}
    assert isp == {"CI1", "CI2", "CI3", "CI4", "EN1", "EN2"}


def test_known_rows():
    ag1 = server_by_id("AG1")
    assert ag1.unique_clients == 639_704
    assert ag1.total_measurements == 9_988_576
    assert ag1.stratum == 2
    assert ag1.ip_versions == ("v4",)

    su1 = server_by_id("SU1")
    assert su1.stratum == 1
    assert su1.ip_versions == ("v4", "v6")


def test_server_ips_unique():
    ips = {s.server_ip for s in TABLE1_SERVERS}
    assert len(ips) == 19


def test_mean_requests_per_client():
    ci1 = server_by_id("CI1")
    # 1.48M measurements over 606 clients: heavy NTP pollers.
    assert ci1.mean_requests_per_client > 1000


def test_unknown_server():
    with pytest.raises(KeyError):
        server_by_id("XX9")

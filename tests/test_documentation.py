"""Documentation coverage: every public item carries a docstring.

The deliverable standard for this library is doc comments on every
public module, class, and function; this meta-test enforces it so the
bar cannot silently erode.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_public_module_has_docstring():
    missing = [m.__name__ for m in _public_modules() if not m.__doc__]
    assert not missing, f"modules missing docstrings: {missing}"


def test_every_public_class_and_function_has_docstring():
    missing = []
    for module in _public_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"missing docstrings: {missing}"


def test_every_public_method_has_docstring():
    missing = []
    for module in _public_modules():
        for name, obj in _public_members(module):
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    missing.append(f"{module.__name__}.{name}.{attr_name}")
    assert not missing, f"methods missing docstrings: {missing}"

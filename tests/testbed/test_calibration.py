"""Calibration report against Figure-4 targets."""

import pytest

from repro.testbed.calibration import TARGETS, CalibrationTarget, run_calibration


@pytest.fixture(scope="module")
def report():
    return run_calibration(seed=1)


def test_default_seed_is_in_band(report):
    assert report.ok, {
        name: f"{report.measured[name] * 1000:.1f} ms"
        for name, ok in report.verdicts.items() if not ok
    }


def test_rows_cover_all_targets(report):
    rows = report.rows()
    assert len(rows) == len(TARGETS)
    assert all(row[-1] in ("ok", "OUT") for row in rows)


def test_target_check_logic():
    target = CalibrationTarget("x", 0.01, 0.005, 0.02)
    assert target.check(0.01)
    assert target.check(0.005)
    assert not target.check(0.021)
    assert not target.check(0.004)

"""Testbed topology wiring."""

import pytest

from repro.simcore import Simulator
from repro.testbed.nodes import OS_REFERENCE, POOL_NAMES, Testbed, TestbedOptions
from repro.wireless.hints import StaticHintProvider


def test_wireless_testbed_has_channel_and_monitor():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(wireless=True, ntp_correction=True))
    assert tb.channel is not None
    assert tb.monitor is not None
    assert tb.ntpd is not None
    assert tb.wap is not None


def test_wired_testbed_has_no_channel():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(wireless=False))
    assert tb.channel is None
    assert tb.monitor is None
    assert isinstance(tb.hints, StaticHintProvider)


def test_all_pools_registered():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(pool_size=3))
    for pool in POOL_NAMES + (OS_REFERENCE,):
        assert len(tb.dns.members(pool)) == 3


def test_sntp_query_roundtrip_wired():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(wireless=False, ntp_correction=False))
    results = []
    tb.sntp_app.query("0.pool.ntp.org", results.append)
    sim.run_until(5.0)
    assert len(results) == 1
    assert results[0].ok
    assert abs(results[0].sample.offset) < 0.05


def test_separate_client_sockets():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(wireless=False, ntp_correction=True))
    assert tb.sntp_app is not tb.mntp_app
    assert tb.sntp_app.clock is tb.mntp_app.clock  # same system clock


def test_falseticker_option_biases_one_member_per_pool():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(include_falseticker=True, pool_size=4))
    from repro.ntp.server import ServerPersona

    for pool in POOL_NAMES:
        personas = [m.config.persona for m in tb.dns.members(pool)]
        assert personas.count(ServerPersona.FALSETICKER) == 1


def test_initial_clock_offset_applied():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(wireless=False, initial_clock_offset=0.5))
    assert tb.tn_clock.true_offset() == pytest.approx(0.5, abs=1e-6)


def test_start_stop_background_wireless():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(wireless=True, ntp_correction=True))
    tb.start_background()
    sim.run_until(60.0)
    tb.stop_background()
    assert tb.ntpd.updates >= 0  # ran without crashing


def test_pool_resolution_rewrites_destination():
    sim = Simulator(seed=1)
    tb = Testbed(sim, TestbedOptions(wireless=False))
    results = []
    tb.sntp_app.query("1.pool.ntp.org", results.append)
    sim.run_until(5.0)
    assert results[0].ok
    assert results[0].server_name.startswith("1.pool.ntp.org#")

"""Matrix runner: fault tolerance, retry policy, deterministic reports."""

import json
import os
import threading

import pytest

from repro.obs.health import SloSpec
from repro.testbed.matrix import (
    MATRIX_FORMAT,
    MatrixOptions,
    discover_specs,
    render_matrix_text,
    report_to_json,
    run_matrix,
)
from repro.testbed.specs import ScenarioSpec, TopologySpec, save_spec

# The scripted worker reads its behaviour from the spec's description,
# so one worker function (picklable, module-level) drives every
# failure path.  "worst" values derive from duration_s so the
# worst-case tables are predictable per spec.


def _spec(name, behaviour, duration_s=300.0, tags=()):
    return ScenarioSpec(
        name=name,
        description=behaviour,
        duration_s=duration_s,
        topology=TopologySpec(wireless=False, monitor_active=False),
        tags=tuple(tags),
    )


def _fake_outcome(spec):
    return {
        "name": spec.name,
        "status": "success",
        "guarantees": {
            "verdict": "pass",
            "worst": {
                "p99_abs_error_ms": spec.duration_s / 10.0,
                "drop_rate_ratio": 0.0,
                "starvation_s": spec.duration_s / 5.0,
            },
        },
        "minimal_guarantees": None,
        "summary": {"duration_s": spec.duration_s},
        "shard": None,
    }


def scripted_worker(spec_json, seed, attempt):
    spec = ScenarioSpec.from_json(spec_json)
    behaviour = spec.description
    if behaviour == "crash":
        os._exit(3)
    if behaviour == "hang":
        threading.Event().wait(60.0)
    if behaviour == "flaky" and attempt == 0:
        os._exit(4)
    if behaviour == "raise":
        raise RuntimeError("boom")
    return _fake_outcome(spec)


def write_failure_dir(tmp_path):
    for spec in (
        _spec("crashy", "crash"),
        _spec("flaky", "flaky"),
        _spec("good_a", "ok", duration_s=400.0),
        _spec("good_b", "ok", duration_s=400.0),
        _spec("slow", "hang"),
    ):
        save_spec(spec, str(tmp_path / f"{spec.name}.json"))
    return str(tmp_path)


def failure_options(jobs):
    return MatrixOptions(seed=7, jobs=jobs, timeout_s=1.0, retries=1,
                         backoff_s=0.01)


def entry_by_name(report):
    return {entry["name"]: entry for entry in report["specs"]}


def test_crash_hang_retry_paths_and_byte_identical_reports(tmp_path):
    directory = write_failure_dir(tmp_path)
    serial_report = run_matrix(directory, failure_options(jobs=1),
                               worker=scripted_worker)
    pooled_report = run_matrix(directory, failure_options(jobs=4),
                               worker=scripted_worker)

    # The aggregated report is byte-identical across worker counts.
    assert report_to_json(serial_report) == report_to_json(pooled_report)

    entries = entry_by_name(serial_report)
    # Worker crash: isolated, retried, exhausted.
    assert entries["crashy"]["status"] == "crashed"
    assert entries["crashy"]["attempts"] == 2
    assert "exit code 3" in entries["crashy"]["error"]
    # Hung worker: terminated at the deadline, retried, exhausted.
    assert entries["slow"]["status"] == "timeout"
    assert entries["slow"]["attempts"] == 2
    assert "within 1s" in entries["slow"]["error"]
    # Retry-then-succeed: first attempt crashes, second lands.
    assert entries["flaky"]["status"] == "success"
    assert entries["flaky"]["attempts"] == 2
    # The healthy specs never pay for their neighbours.
    assert entries["good_a"]["status"] == "success"
    assert entries["good_a"]["attempts"] == 1
    assert entries["good_b"]["status"] == "success"

    assert serial_report["format"] == MATRIX_FORMAT
    assert serial_report["counts"] == {
        "crashed": 1, "success": 3, "timeout": 1,
    }
    assert serial_report["verdict"] == {
        "ok": False, "hard_failed": ["crashy", "slow"],
    }


def test_worst_tables_break_ties_toward_the_smaller_name(tmp_path):
    directory = write_failure_dir(tmp_path)
    report = run_matrix(directory, failure_options(jobs=2),
                        worker=scripted_worker)
    # good_a and good_b share the worst p99 (duration 400 -> 40.0);
    # the tie goes to the lexicographically smaller spec name.
    assert report["worst"]["p99_abs_error_ms"] == {
        "value": 40.0, "spec": "good_a",
    }
    assert report["worst"]["starvation_s"]["spec"] == "good_a"


def test_raising_worker_is_an_error_not_a_crash(tmp_path):
    save_spec(_spec("raiser", "raise"), str(tmp_path / "raiser.json"))
    report = run_matrix(
        str(tmp_path),
        MatrixOptions(seed=1, jobs=2, timeout_s=5.0, retries=0),
        worker=scripted_worker,
    )
    entry = report["specs"][0]
    assert entry["status"] == "error"
    assert "RuntimeError: boom" in entry["error"]
    assert entry["attempts"] == 1


def test_serial_mode_matches_the_pool_for_deterministic_outcomes(tmp_path):
    for spec in (_spec("good_a", "ok"), _spec("raiser", "raise")):
        save_spec(spec, str(tmp_path / f"{spec.name}.json"))
    options = MatrixOptions(seed=1, jobs=2, timeout_s=5.0, retries=1,
                            backoff_s=0.0)
    serial = run_matrix(str(tmp_path),
                        MatrixOptions(seed=1, timeout_s=5.0, retries=1,
                                      backoff_s=0.0, serial=True),
                        worker=scripted_worker)
    pooled = run_matrix(str(tmp_path), options, worker=scripted_worker)
    assert report_to_json(serial) == report_to_json(pooled)


def test_invalid_spec_file_costs_itself_not_the_matrix(tmp_path):
    (tmp_path / "broken.json").write_text("{not json")
    save_spec(_spec("good_a", "ok"), str(tmp_path / "good_a.json"))
    report = run_matrix(
        str(tmp_path), MatrixOptions(seed=1, timeout_s=5.0),
        worker=scripted_worker,
    )
    entries = entry_by_name(report)
    assert entries["broken"]["status"] == "invalid"
    assert "broken.json" in entries["broken"]["error"]
    assert entries["good_a"]["status"] == "success"
    assert report["verdict"]["hard_failed"] == ["broken"]


def test_duplicate_spec_names_flag_the_second_file(tmp_path):
    save_spec(_spec("twin", "ok"), str(tmp_path / "a.json"))
    save_spec(_spec("twin", "ok"), str(tmp_path / "b.json"))
    specs, invalid = discover_specs(str(tmp_path))
    assert [s.name for s in specs] == ["twin"]
    assert len(invalid) == 1
    assert "duplicate spec name" in invalid[0]["error"]


def test_tag_filter_selects_smoke_specs(tmp_path):
    save_spec(_spec("tagged", "ok", tags=("smoke",)),
              str(tmp_path / "tagged.json"))
    save_spec(_spec("untagged", "ok"), str(tmp_path / "untagged.json"))
    specs, _ = discover_specs(str(tmp_path), tags=("smoke",))
    assert [s.name for s in specs] == ["tagged"]


def test_real_worker_end_to_end_with_telemetry_merge(tmp_path):
    lax = SloSpec.from_dict({
        **SloSpec().to_dict(),
        "p99_abs_error_warn_ms": 5000.0,
        "p99_abs_error_violate_ms": 10000.0,
    })
    spec = ScenarioSpec(
        name="tiny",
        description="real end-to-end matrix spec",
        duration_s=300.0,
        topology=TopologySpec(wireless=False, monitor_active=False),
        guarantees=lax,
    )
    save_spec(spec, str(tmp_path / "tiny.json"))
    report = run_matrix(str(tmp_path),
                        MatrixOptions(seed=3, jobs=1, timeout_s=120.0))
    entry = report["specs"][0]
    assert entry["status"] == "success"
    assert entry["guarantees"]["verdict"] != "violated"
    assert entry["summary"]["sntp_samples"] > 0
    assert report["telemetry"]["shards"] == ["tiny"]
    assert report["telemetry"]["records"] > 0
    assert report["verdict"]["ok"] is True
    # The document is valid JSON and renders without a crash.
    assert json.loads(report_to_json(report))["format"] == MATRIX_FORMAT
    assert "tiny" in render_matrix_text(report)


def test_matrix_options_validation():
    with pytest.raises(ValueError, match="jobs"):
        MatrixOptions(jobs=0)
    with pytest.raises(ValueError, match="timeout_s"):
        MatrixOptions(timeout_s=0.0)
    with pytest.raises(ValueError, match="retries"):
        MatrixOptions(retries=-1)

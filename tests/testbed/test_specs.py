"""ScenarioSpec: round-trip, strict validation, derivation, judging."""

from pathlib import Path

import pytest

from repro.faults.chaos import default_fault_matrix
from repro.obs.health import SloSpec, smoke_spec
from repro.testbed.scenarios import SCENARIOS
from repro.testbed.specs import (
    SPEC_FORMAT,
    ScenarioSpec,
    TopologySpec,
    chaos_matrix_spec,
    default_specs,
    judge_result,
    load_spec,
    load_spec_dir,
    run_spec,
    save_spec,
    spec_for_scenario,
    write_default_specs,
)

REPO_SCENARIOS = Path(__file__).resolve().parents[2] / "scenarios"


# -- round-trip ------------------------------------------------------------


def test_every_default_spec_round_trips():
    for spec in default_specs():
        assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_named_scenarios_derive_equivalent_options():
    for name, scenario in SCENARIOS.items():
        spec = spec_for_scenario(name)
        assert spec.build_options() == scenario.options_factory()
        assert spec.duration_s == scenario.duration
        assert spec.cadence_s == scenario.cadence
        assert spec.run_sntp == scenario.run_sntp
        expected_mntp = (
            scenario.mntp_config_factory()
            if scenario.mntp_config_factory is not None
            else None
        )
        assert spec.mntp == expected_mntp


def test_chaos_full_spec_carries_the_twelve_episode_matrix():
    spec = chaos_matrix_spec()
    assert spec.faults == default_fault_matrix(smoke=False)
    assert len(spec.faults.episodes) == 12
    assert spec.minimal_guarantees is not None
    rt = ScenarioSpec.from_json(spec.to_json())
    assert rt.faults == spec.faults
    assert rt.minimal_guarantees == spec.minimal_guarantees


def test_chaos_smoke_spec_embeds_the_smoke_slo_verbatim():
    assert spec_for_scenario("chaos_smoke").guarantees == smoke_spec()


def test_checked_in_spec_files_match_the_generator(tmp_path):
    written = write_default_specs(str(tmp_path))
    assert [Path(p).name for p in written] == sorted(
        p.name for p in REPO_SCENARIOS.glob("*.json")
    )
    for path in written:
        generated = Path(path).read_text()
        checked_in = (REPO_SCENARIOS / Path(path).name).read_text()
        assert generated == checked_in, (
            f"{Path(path).name} is stale; regenerate with "
            "write_default_specs('scenarios')"
        )


def test_load_spec_dir_round_trips_the_shipped_set():
    specs = load_spec_dir(str(REPO_SCENARIOS))
    assert [s.name for s in specs] == sorted(s.name for s in default_specs())
    by_name = {s.name: s for s in default_specs()}
    for spec in specs:
        assert spec == by_name[spec.name]


def test_load_spec_dir_rejects_duplicate_names(tmp_path):
    spec = spec_for_scenario("wired_corrected")
    save_spec(spec, str(tmp_path / "a.json"))
    save_spec(spec, str(tmp_path / "b.json"))
    with pytest.raises(ValueError, match="duplicate spec name"):
        load_spec_dir(str(tmp_path))


# -- strict validation -----------------------------------------------------


def base_dict():
    return spec_for_scenario("wired_corrected").to_dict()


def test_unknown_top_level_key_rejected():
    data = base_dict()
    data["durationn_s"] = 60.0
    with pytest.raises(ValueError, match="spec: unknown keys.*durationn_s"):
        ScenarioSpec.from_dict(data)


def test_unknown_topology_key_rejected():
    data = base_dict()
    data["topology"]["wirelesss"] = True
    with pytest.raises(ValueError,
                       match="spec.topology: unknown keys.*wirelesss"):
        ScenarioSpec.from_dict(data)


def test_unknown_guarantee_key_names_the_block():
    data = base_dict()
    data["guarantees"]["p99_abs_error_violate"] = 10.0
    with pytest.raises(ValueError, match="spec.guarantees:.*unknown"):
        ScenarioSpec.from_dict(data)


def test_unknown_mntp_key_rejected():
    data = spec_for_scenario("chaos_smoke").to_dict()
    data["mntp"]["warmup_periods"] = 1.0
    with pytest.raises(ValueError, match="spec.mntp: unknown keys"):
        ScenarioSpec.from_dict(data)


def test_unknown_fault_episode_key_carries_its_index():
    data = spec_for_scenario("chaos_smoke").to_dict()
    data["faults"]["episodes"][1]["strt"] = 1.0
    with pytest.raises(ValueError,
                       match=r"spec.faults.episodes\[1\]: unknown keys"):
        ScenarioSpec.from_dict(data)


def test_wrong_format_tag_rejected():
    data = base_dict()
    data["format"] = "mntp-scenario-spec-v0"
    with pytest.raises(ValueError, match=SPEC_FORMAT):
        ScenarioSpec.from_dict(data)


def test_unknown_temperature_profile_rejected():
    data = base_dict()
    data["topology"]["temperature"] = {"profile": "volcanic", "celsius_c": 9000}
    with pytest.raises(ValueError, match="spec.topology.temperature.profile"):
        ScenarioSpec.from_dict(data)


def test_temperature_profiles_round_trip():
    spec = spec_for_scenario("mntp_insitu_24h")
    rt = ScenarioSpec.from_json(spec.to_json())
    assert rt.topology.temperature == spec.topology.temperature
    assert rt.build_options() == SCENARIOS[
        "mntp_insitu_24h"
    ].options_factory()


def test_invalid_timing_fields_rejected():
    with pytest.raises(ValueError, match="duration_s must be positive"):
        ScenarioSpec(name="x", duration_s=0.0)
    with pytest.raises(ValueError, match="cadence_s must be positive"):
        ScenarioSpec(name="x", cadence_s=-5.0)
    with pytest.raises(ValueError, match="filename stem"):
        ScenarioSpec(name="a/b")
    with pytest.raises(ValueError, match="pool_size"):
        TopologySpec(pool_size=0)


def test_load_spec_prefixes_the_path(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="broken.json"):
        load_spec(str(path))


# -- execution + two-tier judging -----------------------------------------


def quick_spec(**overrides):
    """A fast wired spec for live judging tests."""
    defaults = dict(
        name="quick",
        duration_s=300.0,
        cadence_s=5.0,
        topology=TopologySpec(wireless=False, ntp_correction=True,
                              monitor_active=False),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def strict_slo():
    """Guarantees no real run can hold (p99 must stay under 1 µs)."""
    return SloSpec.from_dict({
        **SloSpec().to_dict(),
        "p99_abs_error_warn_ms": 0.0005,
        "p99_abs_error_violate_ms": 0.001,
    })


def lax_slo():
    """Guarantees any sane run holds."""
    return SloSpec.from_dict({
        **SloSpec().to_dict(),
        "p99_abs_error_warn_ms": 5000.0,
        "p99_abs_error_violate_ms": 10000.0,
    })


def test_success_tier():
    result, judgement = run_spec(quick_spec(guarantees=lax_slo()), seed=3)
    assert judgement["status"] == "success"
    assert judgement["guarantees"]["verdict"] != "violated"
    assert judgement["minimal_guarantees"] is None
    assert result.health == judgement["guarantees"]


def test_minimal_tier_downgrades_a_violated_success_tier():
    spec = quick_spec(guarantees=strict_slo(), minimal_guarantees=lax_slo())
    _result, judgement = run_spec(spec, seed=3)
    assert judgement["guarantees"]["verdict"] == "violated"
    assert judgement["minimal_guarantees"]["verdict"] != "violated"
    assert judgement["status"] == "minimal"


def test_violating_both_tiers_is_a_hard_failure():
    spec = quick_spec(guarantees=strict_slo(),
                      minimal_guarantees=strict_slo())
    _result, judgement = run_spec(spec, seed=3)
    assert judgement["status"] == "failed"


def test_violated_without_minimal_tier_is_a_hard_failure():
    _result, judgement = run_spec(quick_spec(guarantees=strict_slo()),
                                  seed=3)
    assert judgement["status"] == "failed"
    assert judgement["minimal_guarantees"] is None


def test_judge_requires_a_monitored_result():
    from repro.testbed.experiment import ExperimentResult

    with pytest.raises(ValueError, match="no health verdict"):
        judge_result(quick_spec(), ExperimentResult())

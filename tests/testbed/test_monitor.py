"""MonitorNode feedback loop."""

import numpy as np

from repro.simcore import Simulator
from repro.testbed.monitor import MonitorNode, MonitorParams
from repro.testbed.pingtool import PingTool
from repro.wireless.channel import ChannelParams, WirelessChannel
from repro.wireless.crosstraffic import CrossTrafficGenerator
from repro.wireless.wap import AccessPoint


def _setup(sim, probe):
    ch = WirelessChannel(ChannelParams(), sim.rng.stream("ch"), now_fn=lambda: sim.now)
    wap = AccessPoint(ch)
    xt = CrossTrafficGenerator(sim)
    ping = PingTool(sim, probe, interval=1.0)
    mn = MonitorNode(sim, wap, xt, ping, MonitorParams(control_interval=10.0))
    return ch, wap, xt, ping, mn


def test_stable_channel_gets_degraded():
    sim = Simulator(seed=1)
    # Perfect pings: channel looks stable -> MN escalates hostility.
    ch, wap, xt, ping, mn = _setup(sim, lambda cb: cb(0.02))
    start_power = wap.tx_power_dbm
    mn.start()
    sim.run_until(120.0)
    assert mn.escalations > 0
    assert wap.tx_power_dbm < start_power
    assert xt.frequency_scale > 1.0


def test_degraded_channel_gets_relief():
    sim = Simulator(seed=1)
    # All pings lost: MN must back off.
    ch, wap, xt, ping, mn = _setup(sim, lambda cb: cb(None))
    xt.set_frequency_scale(4.0)
    wap.set_tx_power(-30.0)
    mn.start()
    sim.run_until(120.0)
    assert mn.backoffs > 0
    assert wap.tx_power_dbm > -30.0
    assert xt.frequency_scale < 4.0


def test_control_decisions_traced():
    sim = Simulator(seed=1)
    ch, wap, xt, ping, mn = _setup(sim, lambda cb: cb(0.02))
    mn.start()
    sim.run_until(100.0)
    controls = sim.trace.select(component="monitor", kind="control")
    assert len(controls) == mn.backoffs + mn.escalations
    assert all("tx_power" in c.data for c in controls)


def test_stop_halts_control():
    sim = Simulator(seed=1)
    ch, wap, xt, ping, mn = _setup(sim, lambda cb: cb(0.02))
    mn.start()
    sim.run_until(50.0)
    mn.stop()
    count = mn.escalations + mn.backoffs
    sim.run_until(500.0)
    assert mn.escalations + mn.backoffs == count


def test_oscillation_between_regimes():
    """With pings that reflect hostility, the loop alternates."""
    sim = Simulator(seed=1)
    state = {"mn": None}

    def reactive_probe(cb):
        mn = state["mn"]
        hostile = mn is not None and mn.cross_traffic.frequency_scale > 1.5
        cb(None if hostile and sim.rng.stream("p").random() < 0.5 else 0.02)

    ch, wap, xt, ping, mn = _setup(sim, reactive_probe)
    state["mn"] = mn
    mn.start()
    sim.run_until(1200.0)
    assert mn.escalations > 0
    assert mn.backoffs > 0

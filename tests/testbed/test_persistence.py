"""Experiment result JSON persistence."""

import io
import math

import pytest

from repro.core.config import MntpConfig
from repro.testbed.experiment import ExperimentRunner, OffsetPoint
from repro.testbed.nodes import TestbedOptions
from repro.testbed.persistence import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def result():
    return ExperimentRunner(
        seed=1,
        options=TestbedOptions(wireless=True, ntp_correction=False),
        duration=300.0,
        mntp_config=MntpConfig.baseline_headtohead(),
    ).run()


def test_roundtrip_preserves_series(result):
    buf = io.StringIO()
    save_result(result, buf)
    buf.seek(0)
    loaded = load_result(buf)
    assert loaded.duration == result.duration
    assert loaded.sntp_failures == result.sntp_failures
    assert [p.offset for p in loaded.sntp] == [p.offset for p in result.sntp]
    assert [p.truth for p in loaded.sntp] == [p.truth for p in result.sntp]
    assert len(loaded.mntp_reports) == len(result.mntp_reports)
    for a, b in zip(loaded.mntp_reports, result.mntp_reports):
        assert a.offset == b.offset
        assert a.accepted == b.accepted
        assert a.phase == b.phase
        assert a.residual == b.residual


def test_roundtrip_preserves_statistics(result):
    buf = io.StringIO()
    save_result(result, buf)
    buf.seek(0)
    loaded = load_result(buf)
    assert loaded.sntp_stats().mean_abs == result.sntp_stats().mean_abs
    assert loaded.mntp_error_stats().mean_abs == result.mntp_error_stats().mean_abs
    assert loaded.improvement_factor() == result.improvement_factor()


def test_missing_truth_roundtrips_as_nan():
    from repro.testbed.experiment import ExperimentResult

    r = ExperimentResult(duration=1.0)
    r.sntp = [OffsetPoint(0.0, 0.5)]  # no truth
    loaded = result_from_dict(result_to_dict(r))
    assert math.isnan(loaded.sntp[0].truth)


def test_wrong_format_rejected():
    with pytest.raises(ValueError):
        result_from_dict({"format": "something-else"})


def test_roundtrip_preserves_telemetry_payload(result):
    from repro.obs import snapshot_metric_names, snapshot_span_kinds

    assert result.telemetry is not None
    buf = io.StringIO()
    save_result(result, buf)
    buf.seek(0)
    loaded = load_result(buf)
    assert loaded.telemetry is not None
    assert loaded.telemetry["format"] == result.telemetry["format"]
    assert len(loaded.telemetry["records"]) == len(result.telemetry["records"])
    assert snapshot_metric_names(loaded.telemetry) == snapshot_metric_names(
        result.telemetry
    )
    assert snapshot_span_kinds(loaded.telemetry) == snapshot_span_kinds(
        result.telemetry
    )
    # Stats survive alongside the payload.
    assert loaded.sntp_stats().rmse == result.sntp_stats().rmse


def test_result_without_telemetry_loads_as_none():
    from repro.testbed.experiment import ExperimentResult

    r = ExperimentResult(duration=1.0)
    data = result_to_dict(r)
    assert "telemetry" not in data
    assert "explain" not in data
    loaded = result_from_dict(data)
    assert loaded.telemetry is None
    assert loaded.explain is None


def test_save_embeds_explain_report(result):
    data = result_to_dict(result)
    explain = data["explain"]
    assert explain["format"] == "mntp-explain-v1"
    assert explain["coverage"] >= 0.95
    assert explain["exchanges_total"] > 0
    assert explain["worst"] and explain["worst"][0]["dominant_cause"]
    # Round-trips verbatim.
    loaded = result_from_dict(data)
    assert loaded.explain == explain
    # And matches a fresh computation from the archived telemetry.
    from repro.obs import explain_run

    fresh = explain_run(
        loaded.telemetry, samples=loaded.offset_samples()
    ).to_dict(worst_n=5)
    assert fresh == explain


def test_roundtrip_preserves_health_report():
    from repro.obs import SloSpec

    monitored = ExperimentRunner(
        seed=1,
        options=TestbedOptions(wireless=True, ntp_correction=False),
        duration=300.0,
        mntp_config=MntpConfig.baseline_headtohead(),
        health_spec=SloSpec(),
    ).run()
    assert monitored.health is not None
    buf = io.StringIO()
    save_result(monitored, buf)
    buf.seek(0)
    loaded = load_result(buf)
    assert loaded.health == monitored.health
    # An unmonitored result round-trips health as None.
    assert result_from_dict(
        result_to_dict(
            ExperimentRunner(
                seed=1,
                options=TestbedOptions(wireless=True, ntp_correction=False),
                duration=300.0,
                mntp_config=MntpConfig.baseline_headtohead(),
            ).run()
        )
    ).health is None

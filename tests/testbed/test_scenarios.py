"""Named scenarios registry."""

import pytest

from repro.testbed.scenarios import SCENARIOS, run_scenario


EXPECTED = {
    "wired_corrected",
    "wired_uncorrected",
    "wireless_corrected",
    "wireless_uncorrected",
    "mntp_wireless_corrected",
    "mntp_wireless_uncorrected",
    "mntp_longrun",
    "mntp_falsetickers",
}


def test_all_scenarios_registered():
    assert EXPECTED <= set(SCENARIOS)


def test_scenario_metadata_consistent():
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.duration > 0
        assert scenario.description


def test_mntp_scenarios_have_configs():
    assert SCENARIOS["mntp_wireless_corrected"].mntp_config_factory is not None
    assert SCENARIOS["wired_corrected"].mntp_config_factory is None


def test_longrun_is_four_hours():
    assert SCENARIOS["mntp_longrun"].duration == 4 * 3600.0


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        run_scenario("nope")


def test_correction_flags_match_names():
    assert SCENARIOS["wired_corrected"].options_factory().ntp_correction
    assert not SCENARIOS["wired_uncorrected"].options_factory().ntp_correction
    assert not SCENARIOS["wireless_uncorrected"].options_factory().ntp_correction
    assert SCENARIOS["wired_corrected"].options_factory().wireless is False
    assert SCENARIOS["wireless_corrected"].options_factory().wireless is True

"""ExperimentRunner and result series."""

import math

import pytest

from repro.core.config import MntpConfig
from repro.testbed.experiment import (
    ExperimentResult,
    ExperimentRunner,
    OffsetPoint,
    SeriesStats,
)
from repro.testbed.nodes import TestbedOptions


def test_offset_point_error():
    p = OffsetPoint(time=0.0, offset=-0.05, truth=0.05)
    assert p.error == pytest.approx(0.0)
    q = OffsetPoint(time=0.0, offset=0.0, truth=0.05)
    assert q.error == pytest.approx(0.05)


def test_offset_point_error_nan_without_truth():
    p = OffsetPoint(time=0.0, offset=0.01)
    assert math.isnan(p.error)


def test_series_stats_empty():
    s = SeriesStats.of([])
    assert s.count == 0
    assert s.rmse == 0.0


def test_series_stats_values():
    pts = [OffsetPoint(0.0, 0.03), OffsetPoint(1.0, -0.04)]
    s = SeriesStats.of(pts)
    assert s.count == 2
    assert s.mean_abs == pytest.approx(0.035)
    assert s.max_abs == pytest.approx(0.04)
    assert s.rmse == pytest.approx(math.sqrt((0.03**2 + 0.04**2) / 2))


def test_series_stats_error_mode_skips_missing_truth():
    pts = [OffsetPoint(0.0, 0.03, truth=-0.03), OffsetPoint(1.0, 0.5)]
    s = SeriesStats.of(pts, use_error=True)
    assert s.count == 1
    assert s.mean_abs == pytest.approx(0.0)


def test_short_wired_run_collects_series():
    runner = ExperimentRunner(
        seed=1,
        options=TestbedOptions(wireless=False, ntp_correction=False),
        duration=120.0,
        sntp_cadence=5.0,
    )
    result = runner.run()
    assert len(result.sntp) >= 20
    assert len(result.true_offsets) >= 20
    assert result.duration == 120.0


def test_run_with_mntp_collects_reports():
    runner = ExperimentRunner(
        seed=1,
        options=TestbedOptions(wireless=True, ntp_correction=False),
        duration=300.0,
        mntp_config=MntpConfig.baseline_headtohead(),
    )
    result = runner.run()
    assert result.mntp_reports
    accepted = result.mntp_accepted()
    assert accepted
    # Truth stamped on every report.
    assert all(p.truth == p.truth for p in accepted)


def test_improvement_factor_positive():
    runner = ExperimentRunner(
        seed=1,
        options=TestbedOptions(wireless=True, ntp_correction=True),
        duration=600.0,
        mntp_config=MntpConfig.baseline_headtohead(),
    )
    result = runner.run()
    assert result.improvement_factor() > 1.0


def test_invalid_durations():
    with pytest.raises(ValueError):
        ExperimentRunner(duration=0.0)
    with pytest.raises(ValueError):
        ExperimentRunner(sntp_cadence=0.0)


def test_no_sntp_mode():
    runner = ExperimentRunner(
        seed=1,
        options=TestbedOptions(wireless=False, ntp_correction=False),
        duration=60.0,
        run_sntp=False,
    )
    result = runner.run()
    assert result.sntp == []

"""PingTool probing and rolling stats."""

import pytest

from repro.simcore import Simulator
from repro.testbed.pingtool import PingTool


def _echo_probe(rtt=0.05):
    """Probe fn that always answers with a fixed RTT."""

    def probe(on_result):
        on_result(rtt)

    return probe


def test_stats_empty_before_probes():
    sim = Simulator(seed=1)
    tool = PingTool(sim, _echo_probe())
    stats = tool.stats()
    assert stats.sent == 0
    assert stats.loss_fraction == 0.0
    assert stats.mean_rtt == 0.0


def test_probes_on_interval():
    sim = Simulator(seed=1)
    tool = PingTool(sim, _echo_probe(0.03), interval=1.0, window=100)
    tool.start()
    sim.run_until(10.5)
    stats = tool.stats()
    assert stats.sent == 11  # t=0..10
    assert stats.received == 11
    assert stats.mean_rtt == pytest.approx(0.03)
    assert stats.max_rtt == pytest.approx(0.03)


def test_loss_fraction():
    sim = Simulator(seed=1)
    calls = {"n": 0}

    def probe(on_result):
        calls["n"] += 1
        on_result(None if calls["n"] % 2 == 0 else 0.02)

    tool = PingTool(sim, probe, interval=1.0, window=100)
    tool.start()
    sim.run_until(9.5)
    stats = tool.stats()
    assert stats.loss_fraction == pytest.approx(0.5)


def test_window_limits_history():
    sim = Simulator(seed=1)
    tool = PingTool(sim, _echo_probe(), interval=1.0, window=5)
    tool.start()
    sim.run_until(20.0)
    assert tool.stats().sent == 5


def test_stop():
    sim = Simulator(seed=1)
    tool = PingTool(sim, _echo_probe(), interval=1.0, window=100)
    tool.start()
    sim.run_until(5.0)
    tool.stop()
    sent = tool.stats().sent
    sim.run_until(50.0)
    assert tool.stats().sent == sent


def test_bad_interval():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError):
        PingTool(sim, _echo_probe(), interval=0.0)

"""Per-protocol energy accounting."""

import pytest

from repro.energy.accounting import NTP_EXCHANGE_BYTES, EnergyAccountant


def test_price_schedule_basic():
    acct = EnergyAccountant()
    report = acct.price_schedule("sntp", [0.0, 5.0, 10.0], duration=3600.0)
    assert report.requests == 3
    assert report.bytes_on_wire == 3 * NTP_EXCHANGE_BYTES
    assert report.duration_h == pytest.approx(1.0)
    assert report.breakdown.total_j > 0
    assert report.joules_per_hour == pytest.approx(report.breakdown.total_j)


def test_parallel_queries_share_wakeup():
    acct = EnergyAccountant()
    # MNTP warm-up: 3 exchanges per instant vs 3 separated instants.
    together = acct.price_schedule(
        "mntp", [0.0], duration=3600.0, requests_per_event=3
    )
    apart = acct.price_schedule("seq", [0.0, 60.0, 120.0], duration=3600.0)
    assert together.requests == apart.requests == 3
    assert together.breakdown.promotions == 1
    assert apart.breakdown.promotions == 3
    assert together.breakdown.total_j < apart.breakdown.total_j


def test_wakeups_per_hour():
    acct = EnergyAccountant()
    report = acct.price_schedule(
        "x", [i * 120.0 for i in range(30)], duration=3600.0
    )
    assert report.wakeups_per_hour == pytest.approx(30.0)


def test_fewer_requests_less_energy():
    acct = EnergyAccountant()
    dense = acct.price_schedule(
        "dense", [i * 5.0 for i in range(720)], duration=3600.0
    )
    sparse = acct.price_schedule(
        "sparse", [i * 900.0 for i in range(4)], duration=3600.0
    )
    assert sparse.breakdown.total_j < dense.breakdown.total_j / 5


def test_invalid_duration():
    acct = EnergyAccountant()
    with pytest.raises(ValueError):
        acct.price_schedule("x", [0.0], duration=0.0)

"""Radio energy model."""

import pytest

from repro.energy.radio import RadioEnergyModel, RadioEnergyParams


P = RadioEnergyParams(
    promotion_time=2.0, promotion_power=1.0,
    active_power=1.0, tail_time=10.0, tail_power=0.5,
    transfer_rate=1000.0, per_byte_energy=0.0,
)


def test_empty_schedule_costs_nothing():
    b = RadioEnergyModel(P).evaluate([])
    assert b.total_j == 0.0
    assert b.promotions == 0
    assert b.radio_on_seconds == 0.0


def test_single_transfer_components():
    b = RadioEnergyModel(P).evaluate([(100.0, 1000)])  # 1 s active
    assert b.promotions == 1
    assert b.promotion_j == pytest.approx(2.0)   # 2 s @ 1 W
    assert b.active_j == pytest.approx(1.0)      # 1 s @ 1 W
    assert b.tail_j == pytest.approx(5.0)        # 10 s @ 0.5 W
    assert b.total_j == pytest.approx(8.0)
    assert b.radio_on_seconds == pytest.approx(13.0)


def test_close_transfers_share_tail_and_promotion():
    # Second event 1 s after the first finishes: inside the tail.
    together = RadioEnergyModel(P).evaluate([(0.0, 0), (1.0, 0)])
    apart = RadioEnergyModel(P).evaluate([(0.0, 0), (1000.0, 0)])
    assert together.promotions == 1
    assert apart.promotions == 2
    assert together.total_j < apart.total_j
    # Far-apart events pay two full promotions and two full tails.
    assert apart.total_j == pytest.approx(2 * (2.0 + 5.0))
    # Close events pay one promotion, one truncated + one full tail.
    assert together.total_j == pytest.approx(2.0 + 0.5 * 1.0 + 5.0)


def test_tail_truncation_credits_only_overlap():
    # Event at t=0, next at t=9 (tail would run to 10): tail paid 9 s
    # + fresh full tail.
    b = RadioEnergyModel(P).evaluate([(0.0, 0), (9.0, 0)])
    assert b.tail_j == pytest.approx((9.0 + 10.0) * 0.5)


def test_unsorted_events_handled():
    a = RadioEnergyModel(P).evaluate([(50.0, 0), (0.0, 0)])
    b = RadioEnergyModel(P).evaluate([(0.0, 0), (50.0, 0)])
    assert a.total_j == pytest.approx(b.total_j)


def test_per_byte_energy():
    params = RadioEnergyParams(per_byte_energy=0.001)
    b = RadioEnergyModel(params).evaluate([(0.0, 500)])
    assert b.payload_j == pytest.approx(0.5)


def test_invalid_params():
    with pytest.raises(ValueError):
        RadioEnergyParams(promotion_time=-1.0)
    with pytest.raises(ValueError):
        RadioEnergyParams(transfer_rate=0.0)


def test_periodic_small_transfers_beat_paper_intuition():
    """Balasubramanian et al.'s headline: frequent small transfers cost
    more than the same bytes in one shot, because of tails."""
    model = RadioEnergyModel(P)
    periodic = model.evaluate([(i * 60.0, 100) for i in range(60)])  # hourly drip
    bulk = model.evaluate([(0.0, 6000)])
    assert periodic.total_j > 5 * bulk.total_j

"""The favorable-SNR gate."""

from repro.core.config import HintThresholds
from repro.core.thresholds import failing_conditions, favorable_snr_condition
from repro.wireless.hints import WirelessHints


T = HintThresholds()


def _h(rssi, noise):
    return WirelessHints(rssi_dbm=rssi, noise_dbm=noise)


def test_clearly_good_passes():
    assert favorable_snr_condition(_h(-50.0, -92.0), T)


def test_low_rssi_fails():
    assert not favorable_snr_condition(_h(-80.0, -92.0), T)
    assert "rssi" in failing_conditions(_h(-80.0, -92.0), T)


def test_high_noise_fails():
    assert not favorable_snr_condition(_h(-40.0, -65.0), T)
    assert "noise" in failing_conditions(_h(-40.0, -65.0), T)


def test_thin_margin_fails():
    # RSSI and noise individually fine but margin < 20 dB.
    hints = _h(-72.0, -88.0)  # margin 16
    assert not favorable_snr_condition(hints, T)
    assert failing_conditions(hints, T) == ["snr_margin"]


def test_boundaries_match_paper_wording():
    # "RSSI should be greater than -75": exactly -75 fails.
    assert not favorable_snr_condition(_h(-75.0, -100.0), T)
    # "noise lesser than -70": exactly -70 fails.
    assert not favorable_snr_condition(_h(-40.0, -70.0), T)
    # "SNR margin greater than or equal to 20": exactly 20 passes.
    assert favorable_snr_condition(_h(-60.0, -80.0), T)


def test_multiple_failures_listed():
    failures = failing_conditions(_h(-90.0, -60.0), T)
    assert set(failures) == {"rssi", "noise", "snr_margin"}


def test_no_failures_when_favorable():
    assert failing_conditions(_h(-50.0, -92.0), T) == []

"""Warm-up false-ticker rejection."""

import pytest
from hypothesis import given, strategies as st

from repro.core.falsetickers import reject_false_tickers


def test_empty_rejected():
    with pytest.raises(ValueError):
        reject_false_tickers({})


def test_single_source_accepted_as_is():
    verdict = reject_false_tickers({"a": 0.5})
    assert verdict.accepted == {"a": 0.5}
    assert verdict.rejected == []
    assert verdict.combined_offset == 0.5


def test_obvious_outlier_rejected():
    verdict = reject_false_tickers({"a": 0.001, "b": 0.002, "liar": 0.400})
    assert "liar" in verdict.rejected
    assert set(verdict.accepted) == {"a", "b"}
    assert verdict.combined_offset == pytest.approx(0.0015)


def test_negative_outlier_rejected_too():
    verdict = reject_false_tickers({"a": 0.001, "b": 0.002, "liar": -0.400})
    assert "liar" in verdict.rejected


def test_identical_offsets_all_accepted():
    verdict = reject_false_tickers({"a": 0.01, "b": 0.01, "c": 0.01})
    assert verdict.rejected == []
    assert verdict.combined_offset == pytest.approx(0.01)


def test_never_rejects_everything():
    # Two sources exactly 1 sigma apart in a symmetric pair: the rule
    # could fire on both; the guard keeps the population.
    verdict = reject_false_tickers({"a": -1.0, "b": 1.0})
    assert verdict.accepted


def test_combined_is_mean_of_survivors():
    verdict = reject_false_tickers({"a": 0.0, "b": 0.002, "c": 0.004, "liar": 1.0})
    assert verdict.combined_offset == pytest.approx(
        sum(verdict.accepted.values()) / len(verdict.accepted)
    )


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=4),
        st.floats(-1.0, 1.0),
        min_size=1,
        max_size=8,
    )
)
def test_invariants_property(offsets):
    verdict = reject_false_tickers(offsets)
    assert set(verdict.accepted) | set(verdict.rejected) == set(offsets)
    assert set(verdict.accepted) & set(verdict.rejected) == set()
    assert verdict.accepted  # never empty
    lo, hi = min(offsets.values()), max(offsets.values())
    assert lo - 1e-9 <= verdict.combined_offset <= hi + 1e-9

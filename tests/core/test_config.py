"""MntpConfig validation and presets."""

import pytest

from repro.core.config import TABLE2_CONFIGS, HintThresholds, MntpConfig


def test_defaults_match_paper_thresholds():
    t = HintThresholds()
    assert t.min_rssi_dbm == -75.0
    assert t.max_noise_dbm == -70.0
    assert t.min_snr_margin_db == 20.0


def test_default_pools_skip_2():
    cfg = MntpConfig()
    assert "2.pool.ntp.org" not in cfg.warmup_pools
    assert cfg.warmup_pools == (
        "0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org",
    )


def test_min_warmup_samples_default_10():
    assert MntpConfig().min_warmup_samples == 10


@pytest.mark.parametrize(
    "field", ["warmup_period", "warmup_wait_time", "regular_wait_time", "reset_period"]
)
def test_nonpositive_durations_rejected(field):
    with pytest.raises(ValueError):
        MntpConfig(**{field: 0.0})


def test_too_few_warmup_samples_rejected():
    with pytest.raises(ValueError):
        MntpConfig(min_warmup_samples=1)


def test_empty_pools_rejected():
    with pytest.raises(ValueError):
        MntpConfig(warmup_pools=())


def test_with_overrides():
    cfg = MntpConfig().with_overrides(warmup_period=60.0)
    assert cfg.warmup_period == 60.0
    assert cfg.reset_period == MntpConfig().reset_period


def test_headtohead_preset_disables_corrections():
    cfg = MntpConfig.baseline_headtohead(cadence_s=5.0)
    assert cfg.warmup_wait_time == 5.0
    assert not cfg.enable_drift_correction
    assert not cfg.enable_clock_correction
    assert cfg.enable_hint_gate
    assert cfg.enable_filter


def test_table2_configs_match_published_parameters():
    # (warmup min, warmup wait min, regular wait min, reset min)
    published = {
        1: (30, 0.25, 15, 240),
        2: (40, 0.25, 15, 240),
        3: (50, 0.25, 15, 240),
        4: (70, 0.25, 30, 240),
        5: (90, 0.084, 15, 240),
        6: (240, 0.084, 15, 240),
    }
    for num, (wp, ww, rw, rp) in published.items():
        cfg = TABLE2_CONFIGS[num]
        assert cfg.warmup_period == pytest.approx(wp * 60)
        assert cfg.warmup_wait_time == pytest.approx(ww * 60)
        assert cfg.regular_wait_time == pytest.approx(rw * 60)
        assert cfg.reset_period == pytest.approx(rp * 60)


def test_config_frozen():
    cfg = MntpConfig()
    with pytest.raises(Exception):
        cfg.warmup_period = 5.0

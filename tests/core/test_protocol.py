"""The Mntp state machine (Algorithm 1)."""

import pytest

from repro.clock.discipline_api import ClockCorrector
from repro.core.config import MntpConfig
from repro.core.events import MntpEventKind
from repro.core.protocol import Mntp, MntpPhase
from repro.ntp.server import ServerConfig, ServerPersona
from repro.simcore import Simulator
from repro.wireless.hints import WirelessHints
from tests.ntp.helpers import MiniNet, drifting_clock


class MutableHints:
    """A hint provider the test can flip between good and bad."""

    def __init__(self) -> None:
        self.good = True

    def read_hints(self) -> WirelessHints:
        if self.good:
            return WirelessHints(rssi_dbm=-45.0, noise_dbm=-92.0)
        return WirelessHints(rssi_dbm=-85.0, noise_dbm=-60.0)


POOLS = ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")


def _build(sim, config, clock=None, falseticker=False, corrector_enabled=True):
    configs = [
        ServerConfig(
            name=name,
            processing_delay=1e-6,
            persona=(
                ServerPersona.FALSETICKER
                if falseticker and name == "3.pool.ntp.org"
                else ServerPersona.TRUECHIMER
            ),
            falseticker_bias=0.4,
        )
        for name in POOLS
    ]
    clock = clock or drifting_clock(sim, skew_ppm=0.0, stream="tn")
    net = MiniNet(sim, configs, client_clock=clock)
    hints = MutableHints()
    corrector = ClockCorrector(clock, enabled=corrector_enabled)
    mntp = Mntp(sim, net.client, hints, corrector, config=config)
    return net, hints, mntp


def _config(**overrides):
    base = dict(
        warmup_period=120.0,
        warmup_wait_time=10.0,
        regular_wait_time=20.0,
        reset_period=1000.0,
        min_warmup_samples=5,
        query_timeout=1.0,
    )
    base.update(overrides)
    return MntpConfig(**base)


def test_starts_in_warmup_then_enters_regular():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config())
    mntp.start()
    sim.run_until(60.0)
    assert mntp.phase is MntpPhase.WARMUP
    sim.run_until(200.0)
    assert mntp.phase is MntpPhase.REGULAR
    events = sim.trace.select(component="mntp", kind="warmup_complete")
    assert len(events) == 1


def test_warmup_queries_three_pools():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config())
    mntp.start()
    sim.run_until(50.0)
    sent = sim.trace.select(component="mntp", kind="query_sent")
    assert sent
    assert sent[0].data["sources"] == list(POOLS)


def test_regular_queries_single_source():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config())
    mntp.start()
    sim.run_until(300.0)
    regular = [
        r for r in sim.trace.select(component="mntp", kind="query_sent")
        if r.data["phase"] == "regular"
    ]
    assert regular
    assert all(len(r.data["sources"]) == 1 for r in regular)


def test_bad_hints_defer_queries():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config())
    hints.good = False
    mntp.start()
    sim.run_until(60.0)
    assert mntp.deferral_count > 0
    assert net.client.queries_sent == 0
    # Channel recovers: queries flow.
    hints.good = True
    sim.run_until(120.0)
    assert net.client.queries_sent > 0


def test_hint_gate_disabled_never_defers():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config(enable_hint_gate=False))
    hints.good = False
    mntp.start()
    sim.run_until(60.0)
    assert mntp.deferral_count == 0
    assert net.client.queries_sent > 0


def test_falseticker_rejected_in_warmup():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config(), falseticker=True)
    mntp.start()
    sim.run_until(119.0)
    false_tickers = sim.trace.select(component="mntp", kind="false_ticker")
    assert false_tickers
    assert all(r.data["source"] == "3.pool.ntp.org" for r in false_tickers)
    # Accepted warm-up offsets stay near zero despite the 400 ms liar.
    for report in mntp.accepted_offsets():
        assert abs(report.offset) < 0.050


def test_drift_estimated_and_corrected():
    sim = Simulator(seed=1)
    clock = None
    sim2 = Simulator(seed=1)
    clock = drifting_clock(sim2, skew_ppm=30.0, stream="tn")
    net, hints, mntp = _build(sim2, _config(), clock=clock)
    mntp.start()
    sim2.run_until(130.0)
    assert mntp.drift_estimate is not None
    # Offset slope is -(local skew): -30 ppm.
    assert mntp.drift_estimate == pytest.approx(-30e-6, rel=0.4)
    corrected = sim2.trace.select(component="mntp", kind="drift_corrected")
    assert corrected
    # Frequency trim cancels the skew.
    assert clock.frequency_adjustment_ppm == pytest.approx(-30.0, rel=0.4)


def test_drift_correction_can_be_disabled():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=30.0, stream="tn")
    net, hints, mntp = _build(
        sim, _config(enable_drift_correction=False), clock=clock
    )
    mntp.start()
    sim.run_until(130.0)
    assert clock.frequency_adjustment_ppm == 0.0


def test_regular_phase_corrects_clock():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, offset=0.040, stream="tn")
    net, hints, mntp = _build(sim, _config(), clock=clock)
    mntp.start()
    sim.run_until(400.0)
    corrections = sim.trace.select(component="mntp", kind="clock_corrected")
    assert corrections
    assert abs(clock.true_offset()) < 0.020


def test_measurement_only_mode_never_touches_clock():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=0.0, offset=0.040, stream="tn")
    net, hints, mntp = _build(
        sim,
        _config(enable_clock_correction=False, enable_drift_correction=False),
        clock=clock,
    )
    mntp.start()
    sim.run_until(400.0)
    assert clock.true_offset() == pytest.approx(0.040, abs=1e-6)
    assert clock.step_count == 0


def test_reset_restarts_warmup():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config(reset_period=300.0))
    mntp.start()
    sim.run_until(700.0)
    assert mntp.reset_count >= 1
    resets = sim.trace.select(component="mntp", kind="reset")
    assert len(resets) == mntp.reset_count


def test_stop_halts_queries():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config())
    mntp.start()
    sim.run_until(50.0)
    mntp.stop()
    count = net.client.queries_sent
    sim.run_until(500.0)
    assert net.client.queries_sent <= count + 3  # only in-flight round
    assert mntp.phase is MntpPhase.STOPPED


def test_reports_carry_phase_and_residual():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config())
    mntp.start()
    sim.run_until(400.0)
    phases = {r.phase for r in mntp.reports}
    assert MntpPhase.WARMUP in phases
    assert MntpPhase.REGULAR in phases
    post_bootstrap = [r for r in mntp.reports if r.residual is not None]
    assert post_bootstrap


def test_on_report_callback_invoked():
    sim = Simulator(seed=1)
    net, hints, mntp = _build(sim, _config())
    seen = []
    mntp.on_report = seen.append
    mntp.start()
    sim.run_until(100.0)
    assert len(seen) == len(mntp.reports)

"""TrendLine fitting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.trend import TrendLine


def test_unfit_with_fewer_than_two_points():
    t = TrendLine()
    assert t.slope is None
    assert t.predict(10.0) is None
    t.add(0.0, 1.0)
    assert t.slope is None


def test_exact_line_recovered():
    t = TrendLine()
    for x in range(10):
        t.add(float(x), 2.0 + 0.5 * x)
    assert t.slope == pytest.approx(0.5)
    assert t.predict(20.0) == pytest.approx(12.0)


def test_residual_stats_zero_on_exact_fit():
    t = TrendLine()
    for x in range(5):
        t.add(float(x), 3.0 * x)
    mean, std = t.residual_stats()
    assert mean == pytest.approx(0.0, abs=1e-12)
    assert std == pytest.approx(0.0, abs=1e-12)


def test_residuals_reflect_noise():
    rng = np.random.default_rng(0)
    t = TrendLine()
    for x in range(100):
        t.add(float(x), 0.001 * x + float(rng.normal(0, 0.01)))
    mean, std = t.residual_stats()
    assert mean == pytest.approx(0.0001, rel=0.5)  # E[resid^2] ~ 1e-4


def test_matches_numpy_polyfit():
    rng = np.random.default_rng(1)
    xs = np.sort(rng.uniform(0, 1000, 50))
    ys = rng.normal(0, 1, 50)
    t = TrendLine()
    for x, y in zip(xs, ys):
        t.add(float(x), float(y))
    slope_np, intercept_np = np.polyfit(xs, ys, 1)
    assert t.slope == pytest.approx(float(slope_np), rel=1e-6)
    assert t.predict(0.0) == pytest.approx(float(intercept_np), rel=1e-4, abs=1e-9)


def test_large_epoch_numerically_stable():
    """Fits at epoch ~1.46e9 (the trace epoch) must not lose precision."""
    t = TrendLine()
    t0 = 1_460_000_000.0
    for x in range(20):
        t.add(t0 + x * 5.0, 0.001 + 1e-6 * x * 5.0)
    assert t.slope == pytest.approx(1e-6, rel=1e-3)
    assert t.predict(t0 + 200.0) == pytest.approx(0.001 + 2e-4, rel=1e-3)


def test_window_bounds_memory():
    t = TrendLine(max_points=10)
    for x in range(100):
        t.add(float(x), float(x))
    assert len(t) == 10
    times, _ = t.points()
    assert times[0] == 90.0


def test_clear():
    t = TrendLine()
    t.add(0.0, 1.0)
    t.add(1.0, 2.0)
    t.clear()
    assert len(t) == 0
    assert t.slope is None


def test_min_window_size_rejected():
    with pytest.raises(ValueError):
        TrendLine(max_points=1)


def test_refit_after_add():
    t = TrendLine()
    t.add(0.0, 0.0)
    t.add(1.0, 1.0)
    assert t.slope == pytest.approx(1.0)
    t.add(2.0, 4.0)  # bends the fit upward
    assert t.slope == pytest.approx(2.0)


@given(
    slope=st.floats(-1e-3, 1e-3),
    intercept=st.floats(-1.0, 1.0),
    n=st.integers(3, 40),
)
def test_noiseless_line_property(slope, intercept, n):
    t = TrendLine()
    for i in range(n):
        x = i * 7.0
        t.add(x, intercept + slope * x)
    assert t.slope == pytest.approx(slope, abs=1e-9)

"""The MNTP offset filter."""

import numpy as np
import pytest

from repro.core.filter import FilterDecision, OffsetFilter


def _bootstrap(fil, n=10, slope=0.0, noise=0.0, rng=None, start=0.0, dt=5.0):
    rng = rng or np.random.default_rng(0)
    t = start
    for _ in range(n):
        fil.offer(t, slope * t + float(rng.normal(0, noise)))
        t += dt
    return t


def test_bootstrap_accepts_everything():
    fil = OffsetFilter(min_samples=5)
    for i in range(5):
        outcome = fil.offer(float(i), 100.0 * i)  # wild values
        assert outcome.decision == FilterDecision.ACCEPT_BOOTSTRAP
    assert fil.bootstrapped


def test_on_trend_sample_accepted():
    fil = OffsetFilter(min_samples=10)
    t = _bootstrap(fil, slope=1e-5, noise=0.001)
    outcome = fil.offer(t, 1e-5 * t)
    assert outcome.decision == FilterDecision.ACCEPT


def test_spike_rejected():
    fil = OffsetFilter(min_samples=10)
    t = _bootstrap(fil, slope=1e-5, noise=0.001)
    outcome = fil.offer(t, 1e-5 * t + 0.5)  # 500 ms spike
    assert outcome.decision == FilterDecision.REJECT_HIGH_ERROR
    assert not outcome.decision.accepted
    assert outcome.squared_error > outcome.gate


def test_rejected_sample_not_recorded():
    fil = OffsetFilter(min_samples=10)
    t = _bootstrap(fil, noise=0.001)
    before = len(fil.trend)
    fil.offer(t, 5.0)
    assert len(fil.trend) == before


def test_gate_floor_prevents_starvation():
    """After a noiseless bootstrap the raw gate is ~0; the floor must
    keep normal measurement noise acceptable (§5.3 failure mode)."""
    fil = OffsetFilter(min_samples=10, gate_floor=0.010)
    t = _bootstrap(fil, slope=0.0, noise=0.0)
    outcome = fil.offer(t, 0.005)  # 5 ms of ordinary noise
    assert outcome.decision.accepted


def test_two_sided_mode_rejects_suspiciously_good():
    fil = OffsetFilter(min_samples=10, two_sided=True, gate_floor=0.0)
    rng = np.random.default_rng(1)
    t = _bootstrap(fil, noise=0.01, rng=rng)
    # An exactly-on-line sample has squared error far below mean-1sigma.
    outcome = fil.offer(t, fil.trend.predict(t))
    assert outcome.decision in (
        FilterDecision.REJECT_LOW_ERROR, FilterDecision.ACCEPT,
    )


def test_drift_estimate_tracks_slope():
    fil = OffsetFilter(min_samples=10)
    _bootstrap(fil, n=50, slope=2e-5, noise=0.0005)
    assert fil.drift_estimate() == pytest.approx(2e-5, rel=0.2)


def test_reestimation_off_freezes_trend():
    fil = OffsetFilter(min_samples=10, reestimate_every_sample=False)
    t = _bootstrap(fil, slope=0.0, noise=0.001)
    frozen_slope = fil.drift_estimate()
    # Accept many new samples along a different slope; frozen estimate
    # must not move.
    for i in range(20):
        fil.offer(t + i * 5.0, 0.0)
    assert fil.drift_estimate() == frozen_slope


def test_consecutive_rejections_trigger_rebootstrap():
    fil = OffsetFilter(min_samples=10, max_consecutive_rejections=5)
    t = _bootstrap(fil, slope=0.0, noise=0.0005)
    for i in range(5):
        fil.offer(t + i * 5.0, 10.0)  # absurd, always rejected
    assert fil.rebootstrap_count == 1
    assert not fil.bootstrapped  # back in bootstrap mode


def test_acceptance_resets_rejection_streak():
    fil = OffsetFilter(min_samples=10, max_consecutive_rejections=4)
    t = _bootstrap(fil, slope=0.0, noise=0.001)
    for i in range(3):
        fil.offer(t + i, 10.0)
    fil.offer(t + 3, 0.0)  # accepted, resets the streak
    for i in range(3):
        fil.offer(t + 4 + i, 10.0)
    assert fil.rebootstrap_count == 0


def test_bootstrap_trim_discards_spiked_bootstrap_points():
    fil = OffsetFilter(min_samples=10)
    rng = np.random.default_rng(2)
    t = 0.0
    for i in range(9):
        fil.offer(t, float(rng.normal(0, 0.001)))
        t += 5.0
    fil.offer(t, 0.800)  # spike as the final bootstrap sample
    # The trim pass should have dropped the 800 ms point.
    _, offsets = fil.trend.points()
    assert max(abs(o) for o in offsets) < 0.1


def test_counters():
    fil = OffsetFilter(min_samples=5)
    t = _bootstrap(fil, n=5, noise=0.001)
    fil.offer(t, 0.0)
    fil.offer(t + 5, 9.0)
    assert fil.accepted_count == 6
    assert fil.rejected_count == 1


def test_reset_clears_everything():
    fil = OffsetFilter(min_samples=5)
    _bootstrap(fil, n=5)
    fil.reset()
    assert not fil.bootstrapped
    assert len(fil.trend) == 0


def test_invalid_params():
    with pytest.raises(ValueError):
        OffsetFilter(min_samples=1)
    with pytest.raises(ValueError):
        OffsetFilter(gate_floor=-0.1)

"""Graceful degradation: upstream step detection and re-warm-up."""

from repro.clock.discipline_api import ClockCorrector
from repro.core.config import MntpConfig
from repro.core.protocol import Mntp, MntpPhase
from repro.ntp.server import ServerConfig
from repro.simcore import Simulator
from tests.ntp.helpers import MiniNet, drifting_clock

POOLS = ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")


def _config(**overrides):
    base = dict(
        warmup_period=120.0,
        warmup_wait_time=10.0,
        regular_wait_time=20.0,
        reset_period=100_000.0,  # far away: recovery must not lean on it
        min_warmup_samples=5,
        query_timeout=1.0,
        enable_hint_gate=False,  # wired scenario: no channel gating
        enable_step_recovery=True,
        step_recovery_rejections=4,
        # High ceiling so the filter's own re-bootstrap guard cannot
        # mask the behaviour under test.
        max_consecutive_rejections=1000,
    )
    base.update(overrides)
    return MntpConfig(**base)


def _build(sim, config):
    configs = [ServerConfig(name=n, processing_delay=1e-6) for n in POOLS]
    clock = drifting_clock(sim, skew_ppm=0.0, stream="tn")
    net = MiniNet(sim, configs, client_clock=clock)
    corrector = ClockCorrector(clock, enabled=False)
    mntp = Mntp(sim, net.client, hints=None, corrector=corrector, config=config)
    return net, mntp


def _step_all(net, delta):
    for server in net.servers.values():
        server.faults.add_step(delta)


def test_upstream_step_triggers_detection_and_reacquisition():
    sim = Simulator(seed=1)
    net, mntp = _build(sim, _config())
    mntp.start()
    sim.run_until(200.0)
    assert mntp.phase is MntpPhase.REGULAR
    sim.call_at(300.0, lambda: _step_all(net, 0.5))
    sim.run_until(900.0)
    assert mntp.step_detections == 1
    assert mntp.reset_count == 1
    events = sim.trace.select(component="mntp", kind="step_detected")
    assert len(events) == 1
    detected_at = events[0].time
    assert detected_at > 300.0
    # Re-warm-up re-acquires the stepped timescale: the regular phase
    # resumes and accepts offsets at the new ~+0.5 s level.
    assert mntp.phase is MntpPhase.REGULAR
    late = [r for r in mntp.accepted_offsets()
            if r.time > detected_at + mntp.config.warmup_period]
    assert late
    assert all(abs(r.offset - 0.5) < 0.05 for r in late)


def test_no_detection_when_disabled():
    sim = Simulator(seed=1)
    net, mntp = _build(sim, _config(enable_step_recovery=False))
    mntp.start()
    sim.run_until(200.0)
    sim.call_at(300.0, lambda: _step_all(net, 0.5))
    sim.run_until(900.0)
    assert mntp.step_detections == 0
    assert not sim.trace.select(component="mntp", kind="step_detected")
    assert mntp.reset_count == 0
    # Without recovery the filter stonewalls the stepped timescale.
    assert not [r for r in mntp.accepted_offsets() if r.time > 320.0]


def test_small_residuals_reset_the_streak():
    sim = Simulator(seed=1)
    _, mntp = _build(sim, _config(step_recovery_rejections=3))
    big = mntp.config.step_recovery_min_residual * 2
    mntp._note_rejection(big)
    mntp._note_rejection(big)
    mntp._note_rejection(0.001)  # below min_residual: streak resets
    mntp._note_rejection(big)
    mntp._note_rejection(big)
    assert mntp.step_detections == 0
    mntp._note_rejection(big)
    assert mntp.step_detections == 1


def test_sign_flip_resets_the_streak():
    sim = Simulator(seed=1)
    _, mntp = _build(sim, _config(step_recovery_rejections=3))
    big = mntp.config.step_recovery_min_residual * 2
    mntp._note_rejection(big)
    mntp._note_rejection(big)
    mntp._note_rejection(-big)  # opposite sign: streak restarts at 1
    mntp._note_rejection(-big)
    assert mntp.step_detections == 0
    mntp._note_rejection(-big)
    assert mntp.step_detections == 1


def test_config_validation():
    import pytest

    with pytest.raises(ValueError):
        _config(step_recovery_rejections=1)
    with pytest.raises(ValueError):
        _config(step_recovery_min_residual=0.0)

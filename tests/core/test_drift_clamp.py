"""The drift-correction clamp (poisoned warm-up containment)."""

import pytest

from repro.clock.discipline_api import ClockCorrector
from repro.core.config import MntpConfig
from repro.core.protocol import Mntp
from repro.ntp.server import ServerConfig
from repro.simcore import Simulator
from repro.wireless.hints import ALWAYS_FAVORABLE, StaticHintProvider
from tests.ntp.helpers import MiniNet, drifting_clock


def _run_with_estimate_bias(sim, clock, config):
    configs = [
        ServerConfig(name=name, processing_delay=1e-6)
        for name in ("0.pool.ntp.org", "1.pool.ntp.org", "3.pool.ntp.org")
    ]
    net = MiniNet(sim, configs, client_clock=clock)
    mntp = Mntp(
        sim, net.client, StaticHintProvider(ALWAYS_FAVORABLE),
        ClockCorrector(clock), config=config,
    )
    return net, mntp


def test_sane_estimate_applied_unclamped():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=30.0, stream="c")
    config = MntpConfig(
        warmup_period=120.0, warmup_wait_time=5.0, regular_wait_time=30.0,
        reset_period=3600.0, min_warmup_samples=5,
        max_drift_correction_ppm=50.0,
    )
    net, mntp = _run_with_estimate_bias(sim, clock, config)
    mntp.start()
    sim.run_until(150.0)
    # 30 ppm < 50 ppm clamp: trim ~ -30 ppm applied in full.
    assert clock.frequency_adjustment_ppm == pytest.approx(-30.0, abs=8.0)


def test_extreme_estimate_clamped():
    sim = Simulator(seed=1)
    # 300 ppm skew produces a trend slope far past the clamp.
    clock = drifting_clock(sim, skew_ppm=300.0, stream="c")
    config = MntpConfig(
        warmup_period=120.0, warmup_wait_time=5.0, regular_wait_time=30.0,
        reset_period=3600.0, min_warmup_samples=5,
        max_drift_correction_ppm=50.0,
    )
    net, mntp = _run_with_estimate_bias(sim, clock, config)
    mntp.start()
    sim.run_until(150.0)
    # Applied trim clamped to the configured bound.
    assert abs(clock.frequency_adjustment_ppm) <= 50.0 + 1e-6
    corrected = sim.trace.select(component="mntp", kind="drift_corrected")
    assert corrected
    assert abs(corrected[0].data["drift"]) <= 50e-6 + 1e-12


def test_clamp_configurable():
    sim = Simulator(seed=1)
    clock = drifting_clock(sim, skew_ppm=300.0, stream="c")
    config = MntpConfig(
        warmup_period=120.0, warmup_wait_time=5.0, regular_wait_time=30.0,
        reset_period=3600.0, min_warmup_samples=5,
        max_drift_correction_ppm=500.0,
    )
    net, mntp = _run_with_estimate_bias(sim, clock, config)
    mntp.start()
    sim.run_until(150.0)
    # With a generous clamp the full 300 ppm is cancelled.
    assert clock.frequency_adjustment_ppm == pytest.approx(-300.0, rel=0.1)

"""WirelessChannel process behaviour."""

import numpy as np
import pytest

from repro.wireless.channel import ChannelParams, WirelessChannel


def _channel(now_box, seed=0, **params):
    return WirelessChannel(
        params=ChannelParams(**params),
        rng=np.random.default_rng(seed),
        now_fn=lambda: now_box[0],
    )


def test_initial_hints_reflect_tx_power_and_path_loss():
    now = [0.0]
    ch = _channel(now, path_loss_db=45.0)
    ch.set_tx_power(-10.0)
    hints = ch.read_hints()
    assert hints.rssi_dbm == pytest.approx(-55.0, abs=15.0)
    assert hints.noise_dbm == pytest.approx(-92.0, abs=8.0)


def test_rssi_tracks_tx_power():
    now = [0.0]
    ch = _channel(now)
    ch.set_tx_power(0.0)
    high = ch.read_hints().rssi_dbm
    ch.set_tx_power(-20.0)
    low = ch.read_hints().rssi_dbm
    assert high - low == pytest.approx(20.0)


def test_tx_power_clamped():
    now = [0.0]
    ch = _channel(now)
    ch.set_tx_power(50.0)
    assert ch.tx_power_dbm == 0.0
    ch.set_tx_power(-100.0)
    assert ch.tx_power_dbm == -30.0


def test_state_varies_over_time():
    now = [0.0]
    ch = _channel(now, seed=3)
    readings = []
    for t in range(0, 600, 10):
        now[0] = float(t)
        readings.append(ch.read_hints().rssi_dbm)
    assert np.std(readings) > 0.5


def test_interference_raises_noise_and_dips_rssi():
    now = [0.0]
    # Force frequent, strong interference.
    ch = _channel(
        now,
        seed=1,
        interference_rate_hz=0.5,
        interference_mean_duration_s=100.0,
        interference_noise_lift_db=25.0,
        interference_rssi_dip_db=20.0,
    )
    quiet_noise = ch.params.quiet_noise_dbm
    saw_interference = False
    for t in range(0, 300):
        now[0] = float(t)
        if ch.interference_active():
            saw_interference = True
            hints = ch.read_hints()
            assert hints.noise_dbm > quiet_noise + 5.0
            break
    assert saw_interference


def test_zero_pressure_stops_new_interference():
    now = [0.0]
    ch = _channel(now, seed=2, interference_rate_hz=0.5)
    ch.set_interference_pressure(0.0)
    active = []
    for t in range(0, 500):
        now[0] = float(t)
        active.append(ch.interference_active())
    assert not any(active)


def test_reproducible_with_same_seed():
    def trajectory(seed):
        now = [0.0]
        ch = _channel(now, seed=seed)
        vals = []
        for t in range(0, 100, 5):
            now[0] = float(t)
            vals.append(ch.read_hints().rssi_dbm)
        return vals

    assert trajectory(5) == trajectory(5)
    assert trajectory(5) != trajectory(6)


def test_bad_params_rejected():
    now = [0.0]
    with pytest.raises(ValueError):
        _channel(now, tick_s=0.0)
    with pytest.raises(ValueError):
        _channel(now, fading_rho=1.0)


def test_snr_margin_is_difference():
    now = [0.0]
    ch = _channel(now)
    hints = ch.read_hints()
    assert hints.snr_margin_db == pytest.approx(hints.rssi_dbm - hints.noise_dbm)


def test_occupancy_lifts_noise_floor():
    """Co-channel traffic raises the measured noise (the CCA coupling
    that lets the MNTP gate see cross-traffic bursts)."""
    now = [0.0]
    ch = _channel(now, seed=9, shadow_sigma_db=0.0, fading_sigma_db=0.0,
                  noise_jitter_db=0.0, interference_rate_hz=0.0,
                  occupancy_noise_gain_db=15.0)
    quiet = ch.read_hints().noise_dbm
    ch.occupancy_fn = lambda: 0.8
    busy = ch.read_hints().noise_dbm
    assert busy == pytest.approx(quiet + 12.0, abs=1e-9)
    ch.occupancy_fn = lambda: 5.0  # clamped to 1.0
    assert ch.read_hints().noise_dbm == pytest.approx(quiet + 15.0, abs=1e-9)


def test_interference_episode_clears_exactly_when_time_runs_out():
    """Regression: episode strengths must reset the moment the remaining
    time is exhausted, even when the duration is not a tick multiple."""
    now = [0.0]
    ch = _channel(now, interference_rate_hz=0.0)
    ch._intf_remaining_s = 2.5
    ch._intf_rssi_dip_db = 10.0
    ch._intf_noise_lift_db = 12.0
    for i in range(3):  # 2.5 s of episode consumed in 1 s ticks
        ch._step_once(ch.params.tick_s, (i + 1) * ch.params.tick_s)
    assert ch._intf_remaining_s == 0.0
    assert ch._intf_rssi_dip_db == 0.0
    assert ch._intf_noise_lift_db == 0.0

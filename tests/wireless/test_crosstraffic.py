"""Cross-traffic generator alternation and control."""

from repro.simcore import Simulator
from repro.wireless.crosstraffic import CrossTrafficGenerator, CrossTrafficParams


def test_downloads_start_and_stop():
    sim = Simulator(seed=1)
    gen = CrossTrafficGenerator(
        sim, CrossTrafficParams(mean_gap_s=10.0, mean_duration_s=5.0)
    )
    gen.start()
    sim.run_until(600.0)
    assert gen.downloads_started >= 10
    starts = sim.trace.select(component="crosstraffic", kind="download_start")
    ends = sim.trace.select(component="crosstraffic", kind="download_end")
    assert abs(len(starts) - len(ends)) <= 1


def test_occupancy_levels():
    sim = Simulator(seed=1)
    params = CrossTrafficParams(occupancy_during_download=0.8, occupancy_idle=0.1)
    gen = CrossTrafficGenerator(sim, params)
    assert gen.occupancy() == 0.1
    gen.downloading = True
    assert gen.occupancy() == 0.8


def test_frequency_scale_shortens_gaps():
    def count(scale):
        sim = Simulator(seed=2)
        gen = CrossTrafficGenerator(
            sim, CrossTrafficParams(mean_gap_s=50.0, mean_duration_s=1.0)
        )
        gen.set_frequency_scale(scale)
        gen.start()
        sim.run_until(3600.0)
        return gen.downloads_started

    assert count(4.0) > count(0.5) * 2


def test_frequency_scale_clamped():
    sim = Simulator(seed=1)
    gen = CrossTrafficGenerator(sim)
    gen.set_frequency_scale(0.0)
    assert gen.frequency_scale > 0.0


def test_stop_ceases_new_downloads():
    sim = Simulator(seed=3)
    gen = CrossTrafficGenerator(
        sim, CrossTrafficParams(mean_gap_s=5.0, mean_duration_s=1.0)
    )
    gen.start()
    sim.run_until(100.0)
    started = gen.downloads_started
    gen.stop()
    sim.run_until(1000.0)
    assert gen.downloads_started == started


def test_start_idempotent():
    sim = Simulator(seed=4)
    gen = CrossTrafficGenerator(sim)
    gen.start()
    gen.start()
    sim.run_until(1.0)  # must not crash or double-schedule wildly

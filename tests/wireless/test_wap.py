"""AccessPoint power control commands."""

import numpy as np
import pytest

from repro.wireless.channel import ChannelParams, WirelessChannel
from repro.wireless.wap import AccessPoint


def _wap():
    now = [0.0]
    ch = WirelessChannel(ChannelParams(), np.random.default_rng(0), now_fn=lambda: now[0])
    return AccessPoint(ch)


def test_set_clamps_to_range():
    wap = _wap()
    assert wap.set_tx_power(10.0) == 0.0
    assert wap.set_tx_power(-99.0) == -30.0


def test_step_up_down():
    wap = _wap()
    wap.set_tx_power(-15.0)
    assert wap.increase_tx_power() == -12.0
    assert wap.decrease_tx_power() == -15.0


def test_steps_respect_bounds():
    wap = _wap()
    wap.set_tx_power(-29.0)
    assert wap.decrease_tx_power() == -30.0
    wap.set_tx_power(-1.0)
    assert wap.increase_tx_power() == 0.0


def test_command_counter():
    wap = _wap()
    wap.increase_tx_power()
    wap.decrease_tx_power()
    assert wap.commands_received == 2


def test_power_reflected_in_channel():
    wap = _wap()
    wap.set_tx_power(-20.0)
    assert wap.channel.tx_power_dbm == -20.0


def test_invalid_range_rejected():
    now = [0.0]
    ch = WirelessChannel(ChannelParams(), np.random.default_rng(0), now_fn=lambda: now[0])
    with pytest.raises(ValueError):
        AccessPoint(ch, min_tx_dbm=0.0, max_tx_dbm=0.0)

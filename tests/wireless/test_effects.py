"""Channel-effects mapping: hints drive loss and delay."""

import numpy as np
import pytest

from repro.wireless.channel import ChannelParams, WirelessChannel
from repro.wireless.crosstraffic import CrossTrafficGenerator, CrossTrafficParams
from repro.simcore import Simulator
from repro.wireless.effects import ChannelEffects, EffectsParams


def _fixed_channel(rssi=-50.0, noise=-92.0):
    """A channel pinned to given hints (no dynamics)."""
    now = [0.0]
    params = ChannelParams(
        path_loss_db=0.0,
        shadow_sigma_db=0.0,
        fading_sigma_db=0.0,
        noise_jitter_db=0.0,
        quiet_noise_dbm=noise,
        interference_rate_hz=0.0,
    )
    ch = WirelessChannel(params, np.random.default_rng(0), now_fn=lambda: now[0])
    ch.set_tx_power(rssi if rssi <= 0 else 0.0)
    return ch


def _stats(effects, n=3000):
    lost = 0
    delays = []
    for _ in range(n):
        e = effects.sample()
        if e.lost:
            lost += 1
        else:
            delays.append(e.extra_delay)
    return lost / n, (np.mean(delays) if delays else float("inf"))


def test_good_snr_low_loss_low_delay():
    ch = _fixed_channel(rssi=-50.0, noise=-92.0)  # margin 42 dB
    effects = ChannelEffects(ch, np.random.default_rng(1))
    loss, mean_delay = _stats(effects)
    assert loss < 0.01
    assert mean_delay < 0.010


def test_poor_snr_high_loss_high_delay():
    ch = _fixed_channel(rssi=-22.0, noise=-30.0)  # margin 8 dB
    effects = ChannelEffects(ch, np.random.default_rng(1))
    loss, mean_delay = _stats(effects)
    assert loss > 0.05
    assert mean_delay > 0.010  # retransmission backoffs


def test_loss_monotone_in_snr():
    losses = []
    for margin_noise in (-80.0, -55.0, -35.0):  # margins 80, 55, 35... then worse
        ch = _fixed_channel(rssi=-20.0, noise=margin_noise)
        effects = ChannelEffects(ch, np.random.default_rng(2))
        loss, _ = _stats(effects, n=2000)
        losses.append(loss)
    assert losses == sorted(losses)


def test_occupancy_adds_contention_delay():
    sim = Simulator(seed=1)
    ch = _fixed_channel()
    xt = CrossTrafficGenerator(
        sim, CrossTrafficParams(occupancy_during_download=0.8, occupancy_idle=0.0)
    )
    effects = ChannelEffects(ch, np.random.default_rng(3), cross_traffic=xt)
    xt.downloading = False
    _, idle_delay = _stats(effects, n=2000)
    xt.downloading = True
    _, busy_delay = _stats(effects, n=2000)
    assert busy_delay > idle_delay * 3


def test_retry_limit_bounds_delay():
    ch = _fixed_channel(rssi=-20.0, noise=-25.0)  # terrible margin
    params = EffectsParams(max_retries=2, retry_delay_s=0.01)
    effects = ChannelEffects(ch, np.random.default_rng(4), params=params)
    for _ in range(2000):
        e = effects.sample()
        if not e.lost:
            # At most 2 retries at <= 0.015 s each plus jitter/queue.
            assert e.extra_delay < 0.2


def test_as_hook_returns_callable():
    ch = _fixed_channel()
    effects = ChannelEffects(ch, np.random.default_rng(5))
    hook = effects.as_hook()
    result = hook()
    assert hasattr(result, "extra_delay")

"""Statistical grounding of the channel processes.

The OU shadowing and AR(1) fading are specified by stationary variances
and correlation structure; these tests verify the simulated processes
actually realise them (so calibration statements in DESIGN.md mean what
they say).
"""

import numpy as np
import pytest

from repro.wireless.channel import ChannelParams, WirelessChannel


def _trajectory(seconds, seed=0, **params):
    now = [0.0]
    defaults = dict(interference_rate_hz=0.0, noise_jitter_db=0.0)
    defaults.update(params)
    ch = WirelessChannel(ChannelParams(**defaults),
                         np.random.default_rng(seed), now_fn=lambda: now[0])
    rssi = []
    for t in range(1, seconds + 1):
        now[0] = float(t)
        rssi.append(ch.read_hints().rssi_dbm)
    return np.asarray(rssi)


def test_stationary_rssi_variance_matches_components():
    """Var(rssi) = shadow sigma^2 + fading sigma^2 (independent sums)."""
    shadow, fading = 3.0, 2.5
    rssi = _trajectory(60_000, seed=1, shadow_sigma_db=shadow,
                       fading_sigma_db=fading, shadow_tau_s=60.0)
    expected = shadow**2 + fading**2
    assert rssi.var() == pytest.approx(expected, rel=0.2)


def test_fading_autocorrelation_matches_rho():
    rho = 0.7
    rssi = _trajectory(60_000, seed=2, shadow_sigma_db=0.0,
                       fading_sigma_db=2.0, fading_rho=rho)
    x = rssi - rssi.mean()
    lag1 = float((x[:-1] * x[1:]).mean() / x.var())
    assert lag1 == pytest.approx(rho, abs=0.05)


def test_shadowing_correlation_time():
    """OU autocorrelation at lag tau is 1/e."""
    tau = 120.0
    rssi = _trajectory(120_000, seed=3, shadow_sigma_db=3.0,
                       fading_sigma_db=0.0, shadow_tau_s=tau)
    x = rssi - rssi.mean()
    lag = int(tau)
    ac = float((x[:-lag] * x[lag:]).mean() / x.var())
    assert ac == pytest.approx(np.exp(-1.0), abs=0.1)


def test_interference_duty_cycle_matches_rates():
    """Fraction of time in interference ~ rate * mean_duration
    (for rate * duration << 1)."""
    now = [0.0]
    rate, duration = 1.0 / 300.0, 30.0
    ch = WirelessChannel(
        ChannelParams(interference_rate_hz=rate,
                      interference_mean_duration_s=duration),
        np.random.default_rng(4), now_fn=lambda: now[0],
    )
    active = 0
    total = 200_000
    for t in range(1, total + 1):
        now[0] = float(t)
        if ch.interference_active():
            active += 1
    expected = rate * duration / (1 + rate * duration)
    assert active / total == pytest.approx(expected, rel=0.25)


def test_mean_rssi_is_txpower_minus_pathloss():
    rssi = _trajectory(20_000, seed=5, path_loss_db=45.0)
    assert rssi.mean() == pytest.approx(-10.0 - 45.0, abs=0.5)

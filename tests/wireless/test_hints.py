"""WirelessHints and providers."""

from repro.wireless.hints import ALWAYS_FAVORABLE, StaticHintProvider, WirelessHints


def test_snr_margin():
    hints = WirelessHints(rssi_dbm=-60.0, noise_dbm=-90.0)
    assert hints.snr_margin_db == 30.0


def test_static_provider_returns_fixed():
    hints = WirelessHints(rssi_dbm=-50.0, noise_dbm=-95.0)
    provider = StaticHintProvider(hints)
    assert provider.read_hints() is hints
    assert provider.read_hints() is hints


def test_always_favorable_passes_paper_thresholds():
    assert ALWAYS_FAVORABLE.rssi_dbm > -75.0
    assert ALWAYS_FAVORABLE.noise_dbm < -70.0
    assert ALWAYS_FAVORABLE.snr_margin_db >= 20.0


def test_hints_frozen():
    hints = WirelessHints(rssi_dbm=-60.0, noise_dbm=-90.0)
    try:
        hints.rssi_dbm = -10.0
        raised = False
    except AttributeError:
        raised = True
    assert raised

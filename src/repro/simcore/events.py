"""Event and event-queue primitives for the discrete-event kernel.

The queue is a binary heap ordered by (time, sequence number).  The
sequence number makes ordering total and deterministic: two events
scheduled for the same instant fire in the order they were scheduled.
Events can be cancelled in O(1); cancelled entries are skipped lazily
when popped.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Virtual time (seconds) at which the event fires.
        seq: Monotonic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked at ``time``.
        label: Optional human-readable tag used in traces and repr.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}, {self.label!r}{state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __bool__(self) -> bool:
        return any(not ev.cancelled for ev in self._heap)

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at virtual ``time`` and return the event."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        event = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the earliest live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()

"""Per-component random number stream management.

Every stochastic component in the library (channel model, clock wander,
path jitter, server population, ...) draws from its own named child
stream of a single root seed.  This gives two properties the experiments
rely on:

* **Reproducibility** — the same root seed always produces the same
  experiment, byte for byte.
* **Isolation** — adding draws to one component does not perturb the
  sequences seen by any other component, so ablations compare like with
  like.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError("root seed must be non-negative")
        self._root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this registry was created with."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived from (root seed, name) via
        ``numpy.random.SeedSequence`` spawn-key semantics, so streams are
        statistically independent and stable across runs.
        """
        if name not in self._streams:
            # Hash the name into a stable integer entropy contribution.
            name_entropy = [ord(c) for c in name]
            seq = np.random.SeedSequence(entropy=self._root_seed, spawn_key=tuple(name_entropy))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """Return a new registry whose root seed mixes in ``salt``.

        Used to run replicated experiments (same structure, different
        randomness) without coordinating seed arithmetic at call sites.
        """
        return RngRegistry(root_seed=(self._root_seed * 1_000_003 + salt) % (2**63))

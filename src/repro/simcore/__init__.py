"""Discrete-event simulation kernel.

All experiments in this reproduction run on *virtual time*: a float number
of simulated seconds advanced by an event queue.  Nothing in the library
ever sleeps on the wall clock, which makes hour-long protocol experiments
run in seconds and keeps millisecond-level timing exact regardless of
interpreter jitter.
"""

from repro.simcore.events import Event, EventQueue
from repro.simcore.simulator import Simulator, SimProcess
from repro.simcore.random import RngRegistry
from repro.simcore.trace import TraceRecord, TraceLog

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimProcess",
    "RngRegistry",
    "TraceRecord",
    "TraceLog",
]

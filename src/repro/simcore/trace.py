"""Structured simulation tracing.

Components append :class:`TraceRecord` entries to a shared
:class:`TraceLog`.  The experiment harness and the Figure-7 "signals and
selection" reproduction read decisions back out of this log rather than
scraping printed output.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class TraceRecord:
    """One structured trace entry.

    A plain ``__slots__`` class rather than a dataclass: the ring
    buffer materialises thousands of records per run in its flush
    batches, and the frozen-dataclass ``__init__`` (one
    ``object.__setattr__`` per field) costs ~4x a direct slot store
    on that path.  Records are treated as immutable by convention.

    Attributes:
        time: Virtual time of the event.
        component: Emitting component name (e.g. ``"mntp"``, ``"channel"``).
        kind: Event kind within the component (e.g. ``"offset_accepted"``).
        data: Arbitrary payload fields.
    """

    __slots__ = ("time", "component", "kind", "data")

    def __init__(
        self,
        time: float,
        component: str,
        kind: str,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.component = component
        self.kind = kind
        self.data = {} if data is None else data

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.component == other.component
            and self.kind == other.kind
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time!r}, "
            f"component={self.component!r}, kind={self.kind!r}, "
            f"data={self.data!r})"
        )


class TraceLog:
    """Append-only in-memory log of :class:`TraceRecord` entries.

    A staging *sink* (see :class:`repro.obs.ringbuf.RingBufferSink`) may
    be attached; hot-path emitters then batch records in the sink and
    the log drains it before any direct append or read, so the record
    sequence observed by consumers is exactly the emission order with
    or without a sink.
    """

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._sink: Optional[Any] = None

    def attach_sink(self, sink: Any) -> None:
        """Register a staging sink drained before every append/read."""
        self._sink = sink

    def _drain(self) -> None:
        sink = self._sink
        if sink is not None and sink.pending:
            sink.flush()

    def __len__(self) -> int:
        self._drain()
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        self._drain()
        return iter(self._records)

    def emit(self, time: float, component: str, kind: str, **data: Any) -> TraceRecord:
        """Append and return a new record."""
        self._drain()
        record = TraceRecord(time=time, component=component, kind=kind, data=dict(data))
        self._records.append(record)
        return record

    def append(self, record: TraceRecord) -> None:
        """Raw append used by the sink's batch flush (no drain, no copy)."""
        self._records.append(record)

    def extend(self, records: List[TraceRecord]) -> None:
        """Raw bulk append (sink flush path; no drain, no copy)."""
        self._records.extend(records)

    def select(
        self, component: Optional[str] = None, kind: Optional[str] = None
    ) -> List[TraceRecord]:
        """Return records filtered by component and/or kind."""
        return list(self.iter_filtered(component=component, kind=kind))

    def iter_filtered(
        self,
        component: Optional[str] = None,
        kind: Optional[str] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> Iterator[TraceRecord]:
        """Lazily yield records matching every given filter.

        Args:
            component: Keep only this emitting component.
            kind: Keep only this event kind.
            t0: Keep records with ``time >= t0``.
            t1: Keep records with ``time < t1``.
        """
        self._drain()
        for rec in self._records:
            if component is not None and rec.component != component:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if t0 is not None and rec.time < t0:
                continue
            if t1 is not None and rec.time >= t1:
                continue
            yield rec

    def by_component(self, component: str) -> Iterator[TraceRecord]:
        """Lazily yield records emitted by ``component``."""
        return self.iter_filtered(component=component)

    def by_kind(self, kind: str, component: Optional[str] = None) -> Iterator[TraceRecord]:
        """Lazily yield records of ``kind`` (optionally one component's)."""
        return self.iter_filtered(component=component, kind=kind)

    def window(self, t0: float, t1: float) -> Iterator[TraceRecord]:
        """Lazily yield records with time in the half-open ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError(f"window end {t1} before start {t0}")
        return self.iter_filtered(t0=t0, t1=t1)

    def components(self) -> List[str]:
        """Distinct emitting components, sorted."""
        self._drain()
        return sorted({rec.component for rec in self._records})

    def kinds(self, component: Optional[str] = None) -> List[str]:
        """Distinct kinds (optionally for one component), sorted."""
        return sorted(
            {rec.kind for rec in self.iter_filtered(component=component)}
        )

    def clear(self) -> None:
        """Drop all records (staged ones included)."""
        self._drain()
        self._records.clear()

"""Structured simulation tracing.

Components append :class:`TraceRecord` entries to a shared
:class:`TraceLog`.  The experiment harness and the Figure-7 "signals and
selection" reproduction read decisions back out of this log rather than
scraping printed output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry.

    Attributes:
        time: Virtual time of the event.
        component: Emitting component name (e.g. ``"mntp"``, ``"channel"``).
        kind: Event kind within the component (e.g. ``"offset_accepted"``).
        data: Arbitrary payload fields.
    """

    time: float
    component: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Append-only in-memory log of :class:`TraceRecord` entries."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def emit(self, time: float, component: str, kind: str, **data: Any) -> TraceRecord:
        """Append and return a new record."""
        record = TraceRecord(time=time, component=component, kind=kind, data=dict(data))
        self._records.append(record)
        return record

    def select(
        self, component: Optional[str] = None, kind: Optional[str] = None
    ) -> List[TraceRecord]:
        """Return records filtered by component and/or kind."""
        out = []
        for rec in self._records:
            if component is not None and rec.component != component:
                continue
            if kind is not None and rec.kind != kind:
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

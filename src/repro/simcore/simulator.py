"""The discrete-event simulator.

Two programming models are supported:

* **Callbacks** — ``sim.call_at(t, fn)`` / ``sim.call_after(dt, fn)``.
* **Processes** — generator functions that ``yield`` either a float
  delay in simulated seconds or a :class:`Waiter` condition object.
  Processes are the natural way to express protocol loops ("send,
  wait 5 s, send again") without inverting control flow.

Time is a float of simulated seconds starting at 0.0 by default.
``sim.run_until(t)`` advances virtual time by draining the event queue.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Union

from repro.simcore.events import Event, EventQueue
from repro.simcore.random import RngRegistry
from repro.simcore.trace import TraceLog


class Waiter:
    """A resumable condition a process can yield on.

    ``poll_interval`` controls how often the predicate is re-evaluated;
    ``predicate`` receives the current virtual time and returns True when
    the process may resume.
    """

    def __init__(
        self,
        predicate: Callable[[float], bool],
        poll_interval: float = 1.0,
        label: str = "",
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self.predicate = predicate
        self.poll_interval = poll_interval
        self.label = label


ProcessGen = Generator[Union[float, Waiter], None, None]


class SimProcess:
    """A running generator-based process inside a :class:`Simulator`."""

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str) -> None:
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self._pending: Optional[Event] = None

    def _advance(self) -> None:
        if self.finished:
            return
        try:
            yielded = self._gen.send(None)
        except StopIteration:
            self.finished = True
            return
        self._schedule(yielded)

    def _schedule(self, yielded: Union[float, Waiter]) -> None:
        if isinstance(yielded, Waiter):
            self._wait_on(yielded)
            return
        delay = float(yielded)
        if delay < 0:
            raise ValueError(f"process {self.name!r} yielded negative delay {delay}")
        self._pending = self._sim.call_after(delay, self._advance, label=f"proc:{self.name}")

    def _wait_on(self, waiter: Waiter) -> None:
        def poll() -> None:
            if self.finished:
                return
            if waiter.predicate(self._sim.now):
                self._advance()
            else:
                self._pending = self._sim.call_after(
                    waiter.poll_interval, poll, label=f"wait:{self.name}:{waiter.label}"
                )

        poll()

    def stop(self) -> None:
        """Terminate the process; any pending wakeup is cancelled."""
        self.finished = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class Simulator:
    """Virtual-time discrete-event simulator.

    Attributes:
        now: Current virtual time in seconds.
        rng: Registry of named random streams for components.
        trace: Structured log of component events (optional use).
        telemetry: Metrics/span bundle on this simulator's virtual
            clock, sharing :attr:`trace` (see :mod:`repro.obs`).
        health: Optional :class:`repro.obs.health.HealthMonitor`
            attached by the run loop; fault injectors notify it of
            episode windows when present.
        datagram_ids: Per-run datagram ident sequence; network senders
            allocate from here so trace records carry run-local idents
            and same-seed runs stay byte-identical within one process.

    Args:
        seed: Root seed for every named random stream.
        start_time: Initial virtual time.
        ring_capacity: Slot count of the telemetry ring buffer (see
            :mod:`repro.obs.ringbuf`); ``None`` uses the default.
        sample_rate: Keep roughly 1-in-N traced exchanges
            (:mod:`repro.obs.sampling`); ``None`` keeps all.
        instrument: ``False`` runs with no-op telemetry (the bare leg
            of the obs-overhead bench).
    """

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        ring_capacity: Optional[int] = None,
        sample_rate: Optional[int] = None,
        instrument: bool = True,
    ) -> None:
        # Imported here, not at module scope: repro.obs and repro.net
        # depend on repro.simcore, so top-level imports would be circular.
        from repro.net.message import DatagramIdAllocator
        from repro.obs.ringbuf import DEFAULT_RING_CAPACITY
        from repro.obs.telemetry import Telemetry

        self.now = float(start_time)
        self._queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.trace = TraceLog()
        self.datagram_ids = DatagramIdAllocator()
        self.telemetry = Telemetry(
            now_fn=lambda: self.now,
            trace=self.trace,
            ring_capacity=(
                ring_capacity if ring_capacity is not None else DEFAULT_RING_CAPACITY
            ),
            sample_rate=sample_rate,
            enabled=instrument,
        )
        self._events_total = self.telemetry.metrics.counter(
            "sim_events_total", "events executed by the simulator loop"
        )
        self.health: Optional[Any] = None
        self._running = False

    # -- scheduling ------------------------------------------------------

    def call_at(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self._queue.push(time, callback, label=label)

    def call_after(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self.now + delay, callback, label=label)

    def spawn(self, gen: ProcessGen, name: str = "process") -> SimProcess:
        """Start a generator-based process immediately."""
        proc = SimProcess(self, gen, name)
        self.call_after(0.0, proc._advance, label=f"spawn:{name}")
        return proc

    # -- execution -------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Drain events with fire time <= ``end_time``; leave now = end_time."""
        if end_time < self.now:
            raise ValueError(f"end time {end_time} is before now {self.now}")
        self._running = True
        executed = 0
        span = self.telemetry.spans.begin("sim.run", mode="run_until")
        try:
            while self._running:
                t = self._queue.peek_time()
                if t is None or t > end_time:
                    break
                event = self._queue.pop()
                assert event is not None
                self.now = max(self.now, event.time)
                event.callback()
                executed += 1
        except BaseException:
            # Close the run span on the crash path too, or the trace
            # loses exactly the run that went wrong.
            span.end(events=executed, error=True)
            self.telemetry.flush()
            raise
        finally:
            self._running = False
            self._events_total.inc(executed)
        self.now = max(self.now, end_time)
        span.end(events=executed)
        self.telemetry.flush()

    def run_for(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.run_until(self.now + duration)

    def run_to_completion(self, max_time: float = 1e12) -> None:
        """Run until the event queue drains (bounded by ``max_time``)."""
        self._running = True
        executed = 0
        span = self.telemetry.spans.begin("sim.run", mode="run_to_completion")
        try:
            while self._running:
                t = self._queue.peek_time()
                if t is None or t > max_time:
                    break
                event = self._queue.pop()
                assert event is not None
                self.now = max(self.now, event.time)
                event.callback()
                executed += 1
        except BaseException:
            span.end(events=executed, error=True)
            self.telemetry.flush()
            raise
        finally:
            self._running = False
            self._events_total.inc(executed)
        span.end(events=executed)
        self.telemetry.flush()

    def stop(self) -> None:
        """Stop the current run_* call after the in-flight event returns."""
        self._running = False

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

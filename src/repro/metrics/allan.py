"""Allan deviation — the standard oscillator-stability statistic.

Given a uniformly sampled phase (offset) series x(t) with period tau0,
the overlapping Allan variance at averaging time tau = m * tau0 is

    AVAR(tau) = 1 / (2 tau^2 (N - 2m)) * sum_{i=0}^{N-2m-1}
                (x[i+2m] - 2 x[i+m] + x[i])^2

and the Allan deviation is its square root.  Used here to characterise
the simulated oscillators (white-FM vs random-walk-FM regions) and to
compare the stability of MNTP-steered vs free-running clocks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def allan_deviation(
    phase: Sequence[float], tau0: float, m: int
) -> float:
    """Overlapping Allan deviation at averaging factor ``m``.

    Args:
        phase: Uniformly sampled clock offsets (seconds).
        tau0: Sampling period (seconds).
        m: Averaging factor (tau = m * tau0); needs len(phase) > 2m.

    Raises:
        ValueError: On a non-positive period/factor or too-short series.
    """
    if tau0 <= 0:
        raise ValueError("tau0 must be positive")
    if m < 1:
        raise ValueError("averaging factor must be >= 1")
    x = np.asarray(phase, dtype=float)
    n = x.size
    if n <= 2 * m:
        raise ValueError(f"need more than {2 * m} samples, got {n}")
    d2 = x[2 * m:] - 2.0 * x[m:-m] + x[:-2 * m]
    tau = m * tau0
    avar = float((d2**2).sum()) / (2.0 * tau * tau * (n - 2 * m))
    return float(np.sqrt(avar))


def allan_deviation_curve(
    phase: Sequence[float], tau0: float, max_points: int = 20
) -> List[Tuple[float, float]]:
    """ADEV over octave-spaced averaging times.

    Returns (tau, adev) pairs for m = 1, 2, 4, ... while the series
    supports them (at most ``max_points`` entries).
    """
    x = np.asarray(phase, dtype=float)
    out: List[Tuple[float, float]] = []
    m = 1
    while x.size > 2 * m and len(out) < max_points:
        out.append((m * tau0, allan_deviation(x, tau0, m)))
        m *= 2
    return out

"""Distribution helpers for the figure reproductions (CDFs, quantiles)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, cumulative probabilities) for a CDF plot.

    Probabilities use the ``i/n`` convention so the last point is 1.0.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def quantile(values: Sequence[float], q: float) -> float:
    """Quantile ``q`` in [0, 1] (linear interpolation); 0.0 if empty."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.quantile(arr, q))


def iqr(values: Sequence[float]) -> float:
    """Interquartile range — the paper's spread measure in Figure 1."""
    return quantile(values, 0.75) - quantile(values, 0.25)


def cdf_at(values: Sequence[float], thresholds: Sequence[float]) -> List[float]:
    """Fraction of ``values`` at or below each threshold."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return [0.0 for _ in thresholds]
    return [float((arr <= t).mean()) for t in thresholds]

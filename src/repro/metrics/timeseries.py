"""Offset time-series container with resampling helpers."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


class OffsetSeries:
    """An ordered (time, offset) series with analysis conveniences.

    Times must be non-decreasing; values are seconds.
    """

    def __init__(self, times: Sequence[float] = (), offsets: Sequence[float] = ()) -> None:
        if len(times) != len(offsets):
            raise ValueError("times and offsets must have equal length")
        self._times = list(map(float, times))
        self._offsets = list(map(float, offsets))
        if any(b < a for a, b in zip(self._times, self._times[1:])):
            raise ValueError("times must be non-decreasing")

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, offset: float) -> None:
        """Append a point (must not go back in time)."""
        if self._times and time < self._times[-1]:
            raise ValueError("appended time goes backwards")
        self._times.append(float(time))
        self._offsets.append(float(offset))

    @classmethod
    def from_points(cls, points: Iterable) -> "OffsetSeries":
        """Build from objects with ``.time`` and ``.offset`` attributes."""
        times, offsets = [], []
        for p in points:
            times.append(p.time)
            offsets.append(p.offset)
        return cls(times, offsets)

    @property
    def times(self) -> List[float]:
        """Copy of the time axis."""
        return list(self._times)

    @property
    def offsets(self) -> List[float]:
        """Copy of the offset values."""
        return list(self._offsets)

    def abs_offsets(self) -> np.ndarray:
        """Absolute offsets as an array."""
        return np.abs(np.asarray(self._offsets))

    def window(self, start: float, end: float) -> "OffsetSeries":
        """Sub-series with start <= time < end."""
        times, offsets = [], []
        for t, o in zip(self._times, self._offsets):
            if start <= t < end:
                times.append(t)
                offsets.append(o)
        return OffsetSeries(times, offsets)

    def resample_max_abs(self, bin_width: float) -> "Tuple[List[float], List[float]]":
        """Max-|offset| per time bin — used to render long series as
        compact text plots without hiding the spikes."""
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        if not self._times:
            return [], []
        start = self._times[0]
        bins: List[float] = []
        values: List[float] = []
        current_bin = start
        current_max = 0.0
        has_any = False
        for t, o in zip(self._times, self._offsets):
            while t >= current_bin + bin_width:
                if has_any:
                    bins.append(current_bin)
                    values.append(current_max)
                current_bin += bin_width
                current_max = 0.0
                has_any = False
            current_max = max(current_max, abs(o))
            has_any = True
        if has_any:
            bins.append(current_bin)
            values.append(current_max)
        return bins, values

"""Basic summary statistics.

All functions accept any 1-D sequence of floats and are NaN-free by
contract: callers filter invalid samples first (the analysis pipeline's
heuristics do this explicitly, mirroring the paper's filtering step).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample.

    Attributes:
        count / mean / std / minimum / median / maximum: as named.
    """

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summary(values: Sequence[float]) -> Summary:
    """Summarise ``values`` (all-zeros summary for an empty input)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return Summary(count=0, mean=0.0, std=0.0, minimum=0.0, median=0.0, maximum=0.0)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def rmse(values: Sequence[float], target: float = 0.0) -> float:
    """Root mean square error of ``values`` against ``target``.

    This is the tuner's accuracy metric: "RMSE of the MNTP offsets with
    respect to a perfectly synchronized clock (i.e., offset value of
    0 ms)".  Returns 0.0 for an empty input.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(math.sqrt(((arr - target) ** 2).mean()))


def robust_mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Median and scaled MAD — outlier-resistant location/scale.

    The 1.4826 factor makes the MAD a consistent estimator of the
    standard deviation under normality.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    med = float(np.median(arr))
    mad = float(np.median(np.abs(arr - med)))
    return med, 1.4826 * mad

"""Statistics helpers shared by the analysis pipeline and benches."""

from repro.metrics.stats import rmse, summary, robust_mean_std, Summary
from repro.metrics.distributions import empirical_cdf, quantile, iqr
from repro.metrics.timeseries import OffsetSeries
from repro.metrics.allan import allan_deviation, allan_deviation_curve

__all__ = [
    "rmse",
    "summary",
    "robust_mean_std",
    "Summary",
    "empirical_cdf",
    "quantile",
    "iqr",
    "OffsetSeries",
    "allan_deviation",
    "allan_deviation_curve",
]

"""NTP payload dissector — the ``print-ntp.c`` equivalent.

Takes a full captured frame, walks Ethernet -> IPv4/IPv6 -> UDP, and if
the datagram involves port 123 decodes the NTP header, returning the
fields the §3.1 analysis needs (mode, version, stratum, poll, precision,
timestamps, addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ntp.constants import NTP_PORT
from repro.ntp.packet import NtpPacket
from repro.pcaplib.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetFrame
from repro.pcaplib.ip import PROTO_UDP, Ipv4Header, Ipv6Header
from repro.pcaplib.udp import UdpDatagram


@dataclass(frozen=True)
class NtpDissection:
    """Decoded view of one captured NTP packet.

    Attributes:
        src_ip / dst_ip: Network-layer addresses.
        src_port / dst_port: UDP ports.
        ip_version: 4 or 6.
        packet: The parsed NTP header.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    ip_version: int
    packet: NtpPacket

    @property
    def is_request(self) -> bool:
        """Whether this is client->server traffic."""
        return self.dst_port == NTP_PORT and self.packet.mode.value == 3

    @property
    def is_response(self) -> bool:
        """Whether this is server->client traffic."""
        return self.src_port == NTP_PORT and self.packet.mode.value == 4


def dissect_ntp_packet(
    frame_bytes: bytes, pivot_unix: float = 0.0
) -> Optional[NtpDissection]:
    """Dissect a captured Ethernet frame down to NTP.

    Returns None for anything that is not a well-formed UDP/123 packet
    with at least 48 bytes of payload — the same silent skipping a
    tcpdump filter of ``port 123`` plus print-ntp performs.
    """
    try:
        frame = EthernetFrame.decode(frame_bytes)
        if frame.ethertype == ETHERTYPE_IPV4:
            ip4 = Ipv4Header.decode(frame.payload)
            if ip4.protocol != PROTO_UDP:
                return None
            src_ip, dst_ip, ip_version, ip_payload = ip4.src, ip4.dst, 4, ip4.payload
        elif frame.ethertype == ETHERTYPE_IPV6:
            ip6 = Ipv6Header.decode(frame.payload)
            if ip6.next_header != PROTO_UDP:
                return None
            src_ip, dst_ip, ip_version, ip_payload = ip6.src, ip6.dst, 6, ip6.payload
        else:
            return None
        udp = UdpDatagram.decode(ip_payload)
        if NTP_PORT not in (udp.src_port, udp.dst_port):
            return None
        if len(udp.payload) < 48:
            return None
        packet = NtpPacket.decode(udp.payload, pivot_unix=pivot_unix)
    except ValueError:
        return None
    return NtpDissection(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=udp.src_port,
        dst_port=udp.dst_port,
        ip_version=ip_version,
        packet=packet,
    )

"""IPv4 and IPv6 header codecs (with the real IPv4 header checksum)."""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass

PROTO_UDP = 17


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class Ipv4Header:
    """A minimal (option-less) IPv4 packet.

    Attributes:
        src / dst: Dotted-quad addresses.
        protocol: Payload protocol number (17 = UDP).
        ttl: Time to live.
        payload: Encapsulated bytes.
    """

    src: str
    dst: str
    protocol: int
    payload: bytes
    ttl: int = 64

    def encode(self) -> bytes:
        """Serialise with a correct header checksum."""
        total_len = 20 + len(self.payload)
        head = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version 4, IHL 5
            0,  # DSCP/ECN
            total_len,
            0,  # identification
            0,  # flags/fragment
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            ipaddress.IPv4Address(self.src).packed,
            ipaddress.IPv4Address(self.dst).packed,
        )
        checksum = internet_checksum(head)
        head = head[:10] + struct.pack("!H", checksum) + head[12:]
        return head + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "Ipv4Header":
        """Parse wire bytes; validates version/IHL and the checksum."""
        if len(data) < 20:
            raise ValueError("IPv4 packet too short")
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        ihl = (version_ihl & 0xF) * 4
        if ihl < 20 or len(data) < ihl:
            raise ValueError("bad IPv4 IHL")
        if verify_checksum and internet_checksum(data[:ihl]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        (total_len,) = struct.unpack("!H", data[2:4])
        if total_len < ihl or total_len > len(data):
            raise ValueError("bad IPv4 total length")
        return cls(
            src=str(ipaddress.IPv4Address(data[12:16])),
            dst=str(ipaddress.IPv4Address(data[16:20])),
            protocol=data[9],
            ttl=data[8],
            payload=bytes(data[ihl:total_len]),
        )


@dataclass(frozen=True)
class Ipv6Header:
    """A minimal (extension-header-free) IPv6 packet.

    Attributes:
        src / dst: Textual IPv6 addresses.
        next_header: Payload protocol number (17 = UDP).
        hop_limit: Hop limit.
        payload: Encapsulated bytes.
    """

    src: str
    dst: str
    next_header: int
    payload: bytes
    hop_limit: int = 64

    def encode(self) -> bytes:
        """Serialise to wire bytes."""
        head = struct.pack(
            "!IHBB16s16s",
            6 << 28,  # version 6, tc/flow zero
            len(self.payload),
            self.next_header,
            self.hop_limit,
            ipaddress.IPv6Address(self.src).packed,
            ipaddress.IPv6Address(self.dst).packed,
        )
        return head + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "Ipv6Header":
        """Parse wire bytes."""
        if len(data) < 40:
            raise ValueError("IPv6 packet too short")
        (vtf,) = struct.unpack("!I", data[:4])
        if vtf >> 28 != 6:
            raise ValueError("not an IPv6 packet")
        (payload_len,) = struct.unpack("!H", data[4:6])
        if payload_len > len(data) - 40:
            raise ValueError("bad IPv6 payload length")
        return cls(
            src=str(ipaddress.IPv6Address(data[8:24])),
            dst=str(ipaddress.IPv6Address(data[24:40])),
            next_header=data[6],
            hop_limit=data[7],
            payload=bytes(data[40 : 40 + payload_len]),
        )

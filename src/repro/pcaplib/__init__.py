"""Minimal packet-capture substrate.

The paper's §3.1 tool is built on tcpdump's ``netdissect.h`` /
``print-ntp.c``; this package is the equivalent: a classic-pcap file
reader/writer, Ethernet/IPv4/IPv6/UDP codecs (with real checksums), and
an NTP payload dissector.  The log study writes synthetic server traces
as genuine pcap bytes and parses them back through this stack, so the
analysis pipeline exercises the same code path it would on real
captures.
"""

from repro.pcaplib.pcap import PcapReader, PcapWriter, PcapRecord
from repro.pcaplib.ethernet import EthernetFrame, ETHERTYPE_IPV4, ETHERTYPE_IPV6
from repro.pcaplib.ip import Ipv4Header, Ipv6Header
from repro.pcaplib.udp import UdpDatagram
from repro.pcaplib.ntpdissect import dissect_ntp_packet, NtpDissection

__all__ = [
    "PcapReader",
    "PcapWriter",
    "PcapRecord",
    "EthernetFrame",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPV6",
    "Ipv4Header",
    "Ipv6Header",
    "UdpDatagram",
    "dissect_ntp_packet",
    "NtpDissection",
]

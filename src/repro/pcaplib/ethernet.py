"""Ethernet II frame codec."""

from __future__ import annotations

import struct
from dataclasses import dataclass

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD

_HEADER_LEN = 14


def mac_to_bytes(mac: str) -> bytes:
    """Parse ``aa:bb:cc:dd:ee:ff`` into 6 bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address: {mac!r}")
    return bytes(int(p, 16) for p in parts)


def bytes_to_mac(data: bytes) -> str:
    """Render 6 bytes as ``aa:bb:cc:dd:ee:ff``."""
    if len(data) != 6:
        raise ValueError("MAC must be 6 bytes")
    return ":".join(f"{b:02x}" for b in data)


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame.

    Attributes:
        dst / src: MAC addresses in colon-hex form.
        ethertype: Payload protocol (e.g. :data:`ETHERTYPE_IPV4`).
        payload: Encapsulated bytes.
    """

    dst: str
    src: str
    ethertype: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialise to wire bytes (no FCS; pcap captures omit it)."""
        return (
            mac_to_bytes(self.dst)
            + mac_to_bytes(self.src)
            + struct.pack("!H", self.ethertype)
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        """Parse wire bytes into a frame."""
        if len(data) < _HEADER_LEN:
            raise ValueError(f"Ethernet frame too short: {len(data)}")
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(
            dst=bytes_to_mac(data[0:6]),
            src=bytes_to_mac(data[6:12]),
            ethertype=ethertype,
            payload=bytes(data[14:]),
        )

"""UDP codec with pseudo-header checksums for IPv4 and IPv6."""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass

from repro.pcaplib.ip import PROTO_UDP, internet_checksum


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram.

    Attributes:
        src_port / dst_port: Ports.
        payload: Application bytes.
    """

    src_port: int
    dst_port: int
    payload: bytes

    def encode(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialise with the checksum over the IP pseudo header.

        Args:
            src_ip / dst_ip: Addresses of the enclosing IP packet
                (needed for the pseudo-header).
        """
        length = 8 + len(self.payload)
        head = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        body = head + self.payload
        checksum = internet_checksum(_pseudo_header(src_ip, dst_ip, length) + body)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        return body[:6] + struct.pack("!H", checksum) + body[8:]

    @classmethod
    def decode(
        cls, data: bytes, src_ip: str = "", dst_ip: str = "", verify_checksum: bool = False
    ) -> "UdpDatagram":
        """Parse wire bytes; optionally verify the checksum (requires
        the enclosing IP addresses)."""
        if len(data) < 8:
            raise ValueError("UDP datagram too short")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        if length < 8 or length > len(data):
            raise ValueError("bad UDP length")
        if verify_checksum and checksum != 0:
            if not src_ip or not dst_ip:
                raise ValueError("checksum verification needs IP addresses")
            total = internet_checksum(
                _pseudo_header(src_ip, dst_ip, length) + data[:length]
            )
            if total not in (0, 0xFFFF):
                raise ValueError("UDP checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port, payload=bytes(data[8:length]))


def _pseudo_header(src_ip: str, dst_ip: str, udp_length: int) -> bytes:
    src = ipaddress.ip_address(src_ip)
    dst = ipaddress.ip_address(dst_ip)
    if src.version != dst.version:
        raise ValueError("mixed IP versions in pseudo header")
    if src.version == 4:
        return src.packed + dst.packed + struct.pack("!BBH", 0, PROTO_UDP, udp_length)
    return src.packed + dst.packed + struct.pack("!IHBB", udp_length, 0, 0, PROTO_UDP)

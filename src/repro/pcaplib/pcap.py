"""Classic pcap (libpcap 2.4) file format reader/writer.

Implements the original fixed-endianness-per-file format tcpdump
writes: a 24-byte global header (magic 0xa1b2c3d4, microsecond
timestamps) followed by 16-byte per-record headers.  Both byte orders
are accepted on read; writes are little-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, Union

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION = (2, 4)

#: Link type for Ethernet frames.
LINKTYPE_ETHERNET = 1


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet.

    Attributes:
        ts: Capture timestamp (Unix seconds, microsecond precision).
        data: Captured bytes (assumed unsnapped: caplen == origlen).
    """

    ts: float
    data: bytes


class PcapWriter:
    """Streams records into a classic pcap file."""

    def __init__(self, fileobj: BinaryIO, linktype: int = LINKTYPE_ETHERNET,
                 snaplen: int = 65_535) -> None:
        self._f = fileobj
        self._f.write(
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                linktype,
            )
        )
        self.records_written = 0

    def write(self, record: PcapRecord) -> None:
        """Append one record."""
        secs = int(record.ts)
        usecs = int(round((record.ts - secs) * 1_000_000))
        if usecs == 1_000_000:
            secs += 1
            usecs = 0
        length = len(record.data)
        self._f.write(struct.pack("<IIII", secs, usecs, length, length))
        self._f.write(record.data)
        self.records_written += 1

    def write_all(self, records: "List[PcapRecord]") -> None:
        """Append many records."""
        for record in records:
            self.write(record)


class PcapReader:
    """Iterates records out of a classic pcap file (either byte order)."""

    def __init__(self, fileobj: BinaryIO) -> None:
        self._f = fileobj
        header = fileobj.read(24)
        if len(header) != 24:
            raise ValueError("truncated pcap global header")
        (magic,) = struct.unpack("<I", header[:4])
        if magic == PCAP_MAGIC:
            self._endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise ValueError(f"bad pcap magic: {magic:#x}")
        (
            self.version_major,
            self.version_minor,
            self.thiszone,
            self.sigfigs,
            self.snaplen,
            self.linktype,
        ) = struct.unpack(self._endian + "HHiIII", header[4:])

    def __iter__(self) -> Iterator[PcapRecord]:
        while True:
            head = self._f.read(16)
            if not head:
                return
            if len(head) != 16:
                raise ValueError("truncated pcap record header")
            secs, usecs, caplen, origlen = struct.unpack(self._endian + "IIII", head)
            data = self._f.read(caplen)
            if len(data) != caplen:
                raise ValueError("truncated pcap record body")
            yield PcapRecord(ts=secs + usecs / 1_000_000, data=data)

    def read_all(self) -> "List[PcapRecord]":
        """Read every remaining record into a list."""
        return list(self)


def open_pcap(path: Union[str, "bytes"], mode: str = "r"):
    """Open a pcap file for reading ('r') or writing ('w')."""
    if mode == "r":
        return PcapReader(open(path, "rb"))
    if mode == "w":
        return PcapWriter(open(path, "wb"))
    raise ValueError("mode must be 'r' or 'w'")

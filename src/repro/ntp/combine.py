"""Combine algorithm (RFC 5905 §11.2.3).

Produces the final offset estimate as a weighted average of the cluster
survivors, weights inversely proportional to root distance.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.ntp.cluster import ClusterCandidate


def combine_offsets(survivors: Sequence[ClusterCandidate]) -> Tuple[float, float]:
    """Return (combined offset, combined jitter).

    Raises:
        ValueError: With an empty survivor list.
    """
    if not survivors:
        raise ValueError("combine requires at least one survivor")
    total_weight = 0.0
    weighted_offset = 0.0
    for c in survivors:
        weight = 1.0 / max(1e-9, c.root_distance)
        total_weight += weight
        weighted_offset += weight * c.offset
    offset = weighted_offset / total_weight

    # Combined jitter: weighted RMS of survivor offsets about the estimate,
    # floored by the best survivor's own jitter.
    acc = 0.0
    for c in survivors:
        weight = 1.0 / max(1e-9, c.root_distance)
        acc += weight * (c.offset - offset) ** 2
    spread = (acc / total_weight) ** 0.5
    jitter = max(spread, min(c.jitter for c in survivors))
    return offset, jitter

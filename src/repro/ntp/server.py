"""Simulated NTP server.

Each server owns a :class:`~repro.clock.simclock.SimClock` (high-grade
oscillator for honest servers) and answers client-mode packets with
server-mode responses carrying the four-timestamp exchange.  A
*persona* lets experiments include misbehaving servers:

* ``TRUECHIMER`` — honest, near-true clock;
* ``FALSETICKER`` — constant bias on its clock (the population MNTP's
  warm-up mean+1σ rejection must discard);
* ``NOISY`` — unbiased but high-variance timestamps (bad oscillator /
  load);
* ``UNRESPONSIVE`` — silently drops a fraction of requests;
* ``RATE_LIMITED`` — answers with kiss-of-death RATE packets once a
  client exceeds its request budget (pool servers do this to abusive
  SNTP clients);
* ``UNSYNCHRONIZED`` — answers, but advertises leap=ALARM / stratum 0
  style unsynchronized state (a server that lost its own upstream).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.clock.simclock import SimClock
from repro.net.message import Datagram
from repro.ntp.constants import LeapIndicator, Mode
from repro.ntp.packet import NtpPacket
from repro.obs.spans import Span
from repro.simcore.simulator import Simulator


class ServerPersona(Enum):
    """Behavioural class of a simulated server."""

    TRUECHIMER = "truechimer"
    FALSETICKER = "falseticker"
    NOISY = "noisy"
    UNRESPONSIVE = "unresponsive"
    RATE_LIMITED = "rate_limited"
    UNSYNCHRONIZED = "unsynchronized"


@dataclass
class ServerFaultState:
    """Transient fault flags injected by :mod:`repro.faults.injectors`.

    Unlike a :class:`ServerPersona` — a *static* behavioural class — the
    fault state changes mid-run at episode boundaries.  The boolean-ish
    flags are depth counters so overlapping episodes nest: each episode
    increments its flag at start and decrements it at end, and the
    server misbehaves while any count is positive.

    Attributes:
        dead: Silently drop every request while positive.
        kod_storm: Answer every request with a kiss-of-death packet.
        unsynchronized: Answer with leap=ALARM / stratum 16.
        zero_transmit: Zero the transmit timestamp in responses.
        bias_step: Constant clock bias currently injected (seconds).
        bias_rate: Injected clock drift (seconds/second).
        bias_since: Time the current ``bias_rate`` took effect.
    """

    dead: int = 0
    kod_storm: int = 0
    unsynchronized: int = 0
    zero_transmit: int = 0
    bias_step: float = 0.0
    bias_rate: float = 0.0
    bias_since: float = 0.0

    def add_step(self, delta: float) -> None:
        """Add a constant bias component (negative delta reverts)."""
        self.bias_step += delta

    def add_rate(self, now: float, delta: float) -> None:
        """Change the drift rate at time ``now``.

        Bias accrued under the old rate is folded into ``bias_step``
        first, so rate changes compose and revert exactly.
        """
        self.bias_step += self.bias_rate * (now - self.bias_since)
        self.bias_since = now
        self.bias_rate += delta

    def bias(self, now: float) -> float:
        """Total injected clock bias at time ``now`` (seconds)."""
        return self.bias_step + self.bias_rate * (now - self.bias_since)


@dataclass
class ServerConfig:
    """Static server properties.

    Attributes:
        name: Address label ("0.pool.ntp.org" member, etc.).
        stratum: Advertised stratum (1 or 2 in the paper's dataset).
        persona: Behavioural class.
        processing_delay: Mean request-handling time (seconds).
        falseticker_bias: Clock bias applied when persona is FALSETICKER.
        noisy_sigma: Timestamp noise when persona is NOISY.
        drop_rate: Request drop probability when UNRESPONSIVE.
        rate_limit: Requests allowed per client before RATE_LIMITED
            servers start answering with kiss-of-death packets.
        ref_id: 4-byte reference identifier.
    """

    name: str
    stratum: int = 2
    persona: ServerPersona = ServerPersona.TRUECHIMER
    processing_delay: float = 0.0005
    falseticker_bias: float = 0.250
    noisy_sigma: float = 0.030
    drop_rate: float = 0.5
    rate_limit: int = 8
    ref_id: bytes = b"GPS\x00"


class NtpServer:
    """A responding NTP/SNTP server node.

    Args:
        sim: Simulation kernel.
        clock: The server's own clock (read for T2/T3).
        config: Static properties and persona.
        send_reply: Callable delivering a response datagram back toward
            the client; wired by the topology after construction.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        config: ServerConfig,
        send_reply: Optional[Callable[[Datagram], None]] = None,
    ) -> None:
        self._sim = sim
        self.clock = clock
        self.config = config
        self.send_reply = send_reply
        self._rng = sim.rng.stream(f"server:{config.name}")
        # Trace component name, precomputed: on_datagram is a hot root
        # and an f-string per ignored packet is per-event cost.
        self._component = f"server:{config.name}"
        #: Transient fault flags, mutated by the fault injector at
        #: episode boundaries (all-zero in benign runs).
        self.faults = ServerFaultState()
        self.requests_seen = 0
        self.responses_sent = 0
        self.kod_sent = 0
        self._per_client_requests: dict = {}

    # -- clock reads with persona applied ------------------------------------

    def _read_clock(self) -> float:
        value = self.clock.read()
        if self.config.persona is ServerPersona.FALSETICKER:
            value += self.config.falseticker_bias
        elif self.config.persona is ServerPersona.NOISY:
            value += float(self._rng.normal(0.0, self.config.noisy_sigma))
        return value + self.faults.bias(self._sim.now)

    # -- datagram handling ------------------------------------------------------

    def on_datagram(self, datagram: Datagram) -> None:
        """Receive-side entry point: parse, then schedule the reply."""
        self.requests_seen += 1
        if self.faults.dead:
            self._sim.telemetry.emit(
                self._sim.now, self._component, "ignored",
                cause="server_death", ident=datagram.ident,
                trace_id=datagram.trace_id,
            )
            return
        if self.config.persona is ServerPersona.UNRESPONSIVE:
            if self._rng.random() < self.config.drop_rate:
                self._sim.telemetry.emit(
                    self._sim.now, self._component, "ignored",
                    ident=datagram.ident, trace_id=datagram.trace_id,
                )
                return
        try:
            request = NtpPacket.decode(datagram.payload, pivot_unix=self._sim.now)
        except ValueError:
            return  # malformed; real servers drop these too
        if request.mode != Mode.CLIENT:
            return
        t2 = self._read_clock()
        # Turnaround span: request arrival through reply dispatch, tied
        # into the exchange's causal tree via the request's trace_id.
        span = self._sim.telemetry.spans.begin(
            "server.turnaround", server=self.config.name,
            ident=datagram.ident, trace_id=datagram.trace_id,
        )
        delay = float(self._rng.exponential(self.config.processing_delay))
        self._sim.call_after(
            delay,
            lambda: self._send_response(request, datagram, t2, span),
            label=f"server:{self.config.name}:respond",
        )

    def _send_response(
        self,
        request: NtpPacket,
        datagram: Datagram,
        t2: float,
        span: Optional["Span"] = None,
    ) -> None:
        if self.send_reply is None:
            raise RuntimeError(f"server {self.config.name} has no reply path wired")
        if self.faults.kod_storm:
            self._send_kiss_of_death(request, datagram, span)
            return
        if self.config.persona is ServerPersona.RATE_LIMITED:
            count = self._per_client_requests.get(datagram.src, 0) + 1
            self._per_client_requests[datagram.src] = count
            if count > self.config.rate_limit:
                self._send_kiss_of_death(request, datagram, span)
                return
        t3 = self._read_clock()
        if self.config.persona is ServerPersona.UNSYNCHRONIZED or self.faults.unsynchronized:
            response = NtpPacket(
                leap=LeapIndicator.ALARM,
                version=request.version,
                mode=Mode.SERVER,
                stratum=16,  # unsynchronized per RFC 5905 on the wire
                poll=request.poll,
                precision=-20,
                ref_id=b"INIT",
                origin_ts=request.transmit_ts,
                receive_ts=t2,
                transmit_ts=t3,
            )
            reply = Datagram(
                payload=response.encode(),
                src=self.config.name,
                dst=datagram.src,
                src_port=datagram.dst_port,
                dst_port=datagram.src_port,
                ident=self._sim.datagram_ids.allocate(),
                trace_id=datagram.trace_id,
            )
            self.responses_sent += 1
            if span is not None:
                span.end(outcome="unsynchronized")
            self.send_reply(reply)
            return
        response = NtpPacket(
            leap=LeapIndicator.NO_WARNING,
            version=request.version,
            mode=Mode.SERVER,
            stratum=self.config.stratum,
            poll=request.poll,
            precision=-20,
            root_delay=0.001 * self.config.stratum,
            root_dispersion=0.002 * self.config.stratum,
            ref_id=self.config.ref_id,
            reference_ts=t3 - 16.0,
            origin_ts=request.transmit_ts,
            receive_ts=t2,
            # A zero-transmit fault ships the RFC 4330 "you must
            # discard this" packet: transmit timestamp all zeros.
            transmit_ts=None if self.faults.zero_transmit else t3,
        )
        reply = Datagram(
            payload=response.encode(),
            src=self.config.name,
            dst=datagram.src,
            src_port=datagram.dst_port,
            dst_port=datagram.src_port,
            ident=self._sim.datagram_ids.allocate(),
            trace_id=datagram.trace_id,
        )
        self.responses_sent += 1
        if span is not None:
            span.end(outcome="ok")
        self.send_reply(reply)

    def _send_kiss_of_death(
        self,
        request: NtpPacket,
        datagram: Datagram,
        span: Optional["Span"] = None,
    ) -> None:
        """Stratum-0 RATE response telling the client to back off."""
        kod = NtpPacket(
            leap=LeapIndicator.ALARM,
            version=request.version,
            mode=Mode.SERVER,
            stratum=0,
            poll=request.poll,
            precision=-20,
            ref_id=b"RATE",
            origin_ts=request.transmit_ts,
            transmit_ts=self._sim.now,
        )
        reply = Datagram(
            payload=kod.encode(),
            src=self.config.name,
            dst=datagram.src,
            src_port=datagram.dst_port,
            dst_port=datagram.src_port,
            ident=self._sim.datagram_ids.allocate(),
            trace_id=datagram.trace_id,
        )
        self.kod_sent += 1
        if span is not None:
            span.end(outcome="kod")
        self.send_reply(reply)

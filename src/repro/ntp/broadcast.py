"""Broadcast SNTP (RFC 4330 / RFC 5905 mode 5).

The third client mode the SNTP spec defines: the server periodically
multicasts its time; listeners apply it after adding a locally
calibrated one-way delay.  No requests, no per-client state — even
lighter than unicast SNTP, but the accuracy is bounded by how well the
fixed delay estimate matches the real path (there is no round-trip
measurement to cancel it), which is why it only suits LANs.

Included for protocol completeness; on the paper's wireless hop its
errors are the full one-way-delay excursions, strictly worse than
unicast SNTP's half-asymmetry errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.clock.simclock import SimClock
from repro.net.message import Datagram
from repro.ntp.constants import LeapIndicator, Mode
from repro.ntp.packet import NtpPacket
from repro.simcore.simulator import Simulator


class BroadcastServer:
    """Periodically multicasts mode-5 packets carrying server time.

    Args:
        sim: Simulation kernel.
        clock: The server's clock.
        send: Callable delivering the datagram toward the listeners
            (the topology fans it out).
        interval: Broadcast period (RFC suggests ~64 s; LAN deployments
            often use less).
        stratum: Advertised stratum.
        name: Source address label.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        send: Callable[[Datagram], None],
        interval: float = 64.0,
        stratum: int = 2,
        name: str = "broadcast-server",
    ) -> None:
        if interval <= 0:
            raise ValueError("broadcast interval must be positive")
        self._sim = sim
        self.clock = clock
        self._send = send
        self.interval = interval
        self.stratum = stratum
        self.name = name
        self.broadcasts_sent = 0
        self._running = False

    def start(self) -> None:
        """Begin the broadcast cycle."""
        self._running = True
        self._sim.call_after(0.0, self._broadcast, label="bcast:send")

    def stop(self) -> None:
        """Halt broadcasting."""
        self._running = False

    def _broadcast(self) -> None:
        if not self._running:
            return
        packet = NtpPacket(
            leap=LeapIndicator.NO_WARNING,
            version=4,
            mode=Mode.BROADCAST,
            stratum=self.stratum,
            poll=6,
            precision=-20,
            ref_id=b"GPS\x00",
            reference_ts=self.clock.read() - 16.0,
            transmit_ts=self.clock.read(),
        )
        self._send(Datagram(payload=packet.encode(), src=self.name,
                            dst="broadcast",
                            ident=self._sim.datagram_ids.allocate()))
        self.broadcasts_sent += 1
        self._sim.call_after(self.interval, self._broadcast, label="bcast:send")


@dataclass(frozen=True)
class BroadcastSample:
    """One received broadcast's derived offset.

    Attributes:
        time: Local receive time.
        offset: Estimated (server - client) offset after adding the
            calibrated delay.
        raw_transmit: The server transmit timestamp carried.
    """

    time: float
    offset: float
    raw_transmit: float


class BroadcastClient:
    """Listens for mode-5 packets and derives offsets.

    Args:
        sim: Simulation kernel.
        clock: The listener's local clock.
        calibrated_delay: Assumed one-way delay from server to listener
            (seconds).  RFC 4330 expects this to be measured once via a
            unicast exchange at startup; here it is a constructor
            parameter so tests can explore miscalibration directly.
        on_sample: Optional callback per received broadcast.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        calibrated_delay: float = 0.0,
        on_sample: Optional[Callable[[BroadcastSample], None]] = None,
    ) -> None:
        if calibrated_delay < 0:
            raise ValueError("calibrated delay must be non-negative")
        self._sim = sim
        self.clock = clock
        self.calibrated_delay = calibrated_delay
        self.on_sample = on_sample
        self.samples: List[BroadcastSample] = []

    def on_datagram(self, datagram: Datagram) -> None:
        """Receive-side entry point for broadcast packets."""
        try:
            packet = NtpPacket.decode(datagram.payload, pivot_unix=self._sim.now)
        except ValueError:
            return
        if packet.mode != Mode.BROADCAST or packet.transmit_ts is None:
            return
        local = self.clock.read()
        # server time at arrival ~ transmit + path delay; offset is the
        # difference from the local clock.
        offset = (packet.transmit_ts + self.calibrated_delay) - local
        sample = BroadcastSample(
            time=local, offset=offset, raw_transmit=packet.transmit_ts
        )
        self.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)

"""NTP timestamp codecs.

RFC 5905 defines two on-wire time formats:

* the 64-bit **timestamp format**: 32 bits of seconds since the era
  epoch (era 0 = 1900-01-01) and 32 bits of fraction (units of 2^-32 s,
  ~233 ps resolution);
* the 32-bit **short format**: 16.16 fixed point, used for root delay
  and root dispersion.

All library-internal times are floats of Unix seconds; these helpers
convert at the wire boundary.  Era handling: encoding wraps modulo
2^32 seconds, decoding pins to era 0/1 via the customary pivot (values
with the high bit clear are interpreted as era 1, i.e. post-2036 —
irrelevant for this reproduction's simulated epochs but implemented for
correctness).
"""

from __future__ import annotations

import struct

from repro.ntp.constants import NTP_UNIX_EPOCH_DELTA

_TWO32 = 2**32
_TWO16 = 2**16

#: Special value meaning "unknown/unset" on the wire.
ZERO_TIMESTAMP = b"\x00" * 8


def unix_to_ntp(unix_seconds: float) -> float:
    """Convert Unix seconds to NTP-era seconds (float)."""
    return unix_seconds + NTP_UNIX_EPOCH_DELTA


def ntp_to_unix(ntp_seconds: float) -> float:
    """Convert NTP-era seconds to Unix seconds (float)."""
    return ntp_seconds - NTP_UNIX_EPOCH_DELTA


def encode_timestamp(unix_seconds: float) -> bytes:
    """Encode Unix seconds as an 8-byte NTP timestamp.

    Negative-fraction rounding is handled by flooring the integer part;
    encoding of exactly 0.0 Unix time yields the era-0 1970 instant, not
    the wire "unset" sentinel — use :data:`ZERO_TIMESTAMP` for unset.
    """
    ntp = unix_to_ntp(unix_seconds)
    secs = int(ntp // 1)
    frac = int(round((ntp - secs) * _TWO32))
    if frac == _TWO32:  # rounding carried into the next second
        secs += 1
        frac = 0
    return struct.pack("!II", secs % _TWO32, frac)


def decode_timestamp(data: bytes, pivot_unix: float = 0.0) -> float:
    """Decode an 8-byte NTP timestamp to Unix seconds.

    Args:
        data: Exactly 8 bytes.
        pivot_unix: A Unix time near the true value, used to resolve the
            32-bit era ambiguity.  The decoded instant is the one within
            +/- 2^31 seconds of the pivot.
    """
    if len(data) != 8:
        raise ValueError(f"NTP timestamp must be 8 bytes, got {len(data)}")
    secs, frac = struct.unpack("!II", data)
    base = secs + frac / _TWO32
    unix = ntp_to_unix(base)
    if pivot_unix:
        # Shift by whole eras until within half an era of the pivot.
        while unix < pivot_unix - _TWO32 / 2:
            unix += _TWO32
        while unix > pivot_unix + _TWO32 / 2:
            unix -= _TWO32
    return unix


def is_zero_timestamp(data: bytes) -> bool:
    """Whether the 8 bytes are the wire 'unset' sentinel."""
    return data == ZERO_TIMESTAMP


def encode_short(seconds: float) -> bytes:
    """Encode a non-negative duration as 16.16 fixed-point short format."""
    if seconds < 0:
        raise ValueError("short format encodes non-negative durations")
    value = int(round(seconds * _TWO16))
    if value >= _TWO32:
        value = _TWO32 - 1  # saturate (~18.2 h), matching practice
    return struct.pack("!I", value)


def decode_short(data: bytes) -> float:
    """Decode a 4-byte short-format duration to seconds."""
    if len(data) != 4:
        raise ValueError(f"short format must be 4 bytes, got {len(data)}")
    (value,) = struct.unpack("!I", data)
    return value / _TWO16

"""Cluster algorithm (RFC 5905 §11.2.2).

Given the truechimers that survived the intersection algorithm, the
cluster algorithm repeatedly casts off the survivor with the greatest
*selection jitter* (RMS distance of its offset from the others') until
either the minimum survivor count is reached or the worst selection
jitter is no larger than the best individual jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class ClusterCandidate:
    """A survivor entering the cluster algorithm.

    Attributes:
        source: Identifier.
        offset: Filtered offset estimate.
        jitter: The source's own filter jitter.
        root_distance: Used as the selection weight (lower = better).
    """

    source: str
    offset: float
    jitter: float
    root_distance: float


def _selection_jitter(candidate: ClusterCandidate, others: Sequence[ClusterCandidate]) -> float:
    if not others:
        return 0.0
    acc = sum((candidate.offset - o.offset) ** 2 for o in others)
    return math.sqrt(acc / len(others))


def cluster_survivors(
    candidates: Sequence[ClusterCandidate], min_survivors: int = 3
) -> List[ClusterCandidate]:
    """Prune outliers until the cluster is tight; returns survivors
    sorted by root distance (best first)."""
    survivors = list(candidates)
    while len(survivors) > max(1, min_survivors):
        sel_jitters = [
            _selection_jitter(c, [o for o in survivors if o is not c]) for c in survivors
        ]
        worst_idx = max(range(len(survivors)), key=lambda i: sel_jitters[i])
        min_own_jitter = min(c.jitter for c in survivors)
        if sel_jitters[worst_idx] <= min_own_jitter:
            break
        survivors.pop(worst_idx)
    return sorted(survivors, key=lambda c: c.root_distance)

"""RFC 5905 packet header encode/decode.

The 48-byte header::

     0                   1                   2                   3
     0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    |LI | VN  |Mode |    Stratum     |     Poll      |  Precision   |
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    |                         Root Delay                            |
    |                       Root Dispersion                         |
    |                          Reference ID                         |
    |                     Reference Timestamp (64)                  |
    |                      Origin Timestamp (64)                    |
    |                      Receive Timestamp (64)                   |
    |                      Transmit Timestamp (64)                  |
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

SNTP (RFC 4330) clients "set all fields to zero except the first octet"
(and the transmit timestamp); :meth:`NtpPacket.sntp_request` builds
exactly that shape, which is also what the log-study classifier keys on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.ntp.constants import LeapIndicator, Mode, NTP_HEADER_LEN, Version
from repro.ntp.timestamps import (
    ZERO_TIMESTAMP,
    decode_short,
    decode_timestamp,
    encode_short,
    encode_timestamp,
    is_zero_timestamp,
)


@dataclass
class NtpPacket:
    """A parsed or to-be-encoded NTP packet.

    Timestamps are Unix-second floats; ``None`` encodes as the wire zero
    sentinel.  ``precision`` is the signed log2-seconds exponent.
    """

    leap: LeapIndicator = LeapIndicator.NO_WARNING
    version: int = Version.V4
    mode: Mode = Mode.CLIENT
    stratum: int = 0
    poll: int = 0
    precision: int = -20
    root_delay: float = 0.0
    root_dispersion: float = 0.0
    ref_id: bytes = b"\x00\x00\x00\x00"
    reference_ts: Optional[float] = None
    origin_ts: Optional[float] = None
    receive_ts: Optional[float] = None
    transmit_ts: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 <= int(self.stratum) <= 255:
            raise ValueError(f"stratum out of range: {self.stratum}")
        if not 1 <= int(self.version) <= 7:
            raise ValueError(f"version out of range: {self.version}")
        if len(self.ref_id) != 4:
            raise ValueError("ref_id must be exactly 4 bytes")
        if not -128 <= int(self.poll) <= 127:
            raise ValueError(f"poll out of range: {self.poll}")
        if not -128 <= int(self.precision) <= 127:
            raise ValueError(f"precision out of range: {self.precision}")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def sntp_request(cls, transmit_unix: float, version: int = Version.V3) -> "NtpPacket":
        """Build the minimal SNTP client request (first octet + xmt only)."""
        return cls(
            leap=LeapIndicator.NO_WARNING,
            version=version,
            mode=Mode.CLIENT,
            stratum=0,
            poll=0,
            precision=0,
            transmit_ts=transmit_unix,
        )

    @classmethod
    def ntp_request(
        cls,
        transmit_unix: float,
        poll: int = 6,
        precision: int = -20,
        version: int = Version.V4,
    ) -> "NtpPacket":
        """Build a full-NTP client request (non-zero poll/precision —
        the wire difference the log classifier uses)."""
        return cls(
            leap=LeapIndicator.NO_WARNING,
            version=version,
            mode=Mode.CLIENT,
            stratum=2,
            poll=poll,
            precision=precision,
            transmit_ts=transmit_unix,
        )

    # -- codec ------------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialise to the 48-byte wire format."""
        first = (int(self.leap) & 0x3) << 6 | (int(self.version) & 0x7) << 3 | (
            int(self.mode) & 0x7
        )
        head = struct.pack(
            "!BBbb",
            first,
            int(self.stratum),
            int(self.poll),
            int(self.precision),
        )
        body = (
            encode_short(self.root_delay)
            + encode_short(self.root_dispersion)
            + self.ref_id
            + self._ts(self.reference_ts)
            + self._ts(self.origin_ts)
            + self._ts(self.receive_ts)
            + self._ts(self.transmit_ts)
        )
        packet = head + body
        assert len(packet) == NTP_HEADER_LEN
        return packet

    @staticmethod
    def _ts(value: Optional[float]) -> bytes:
        return ZERO_TIMESTAMP if value is None else encode_timestamp(value)

    @classmethod
    def decode(cls, data: bytes, pivot_unix: float = 0.0) -> "NtpPacket":
        """Parse a wire packet (ignores any extension fields past 48 B).

        Args:
            data: At least 48 bytes.
            pivot_unix: Era-resolution pivot for timestamp decoding.
        """
        if len(data) < NTP_HEADER_LEN:
            raise ValueError(f"NTP packet too short: {len(data)} bytes")
        first, stratum, poll, precision = struct.unpack("!BBbb", data[:4])
        leap = LeapIndicator((first >> 6) & 0x3)
        version = (first >> 3) & 0x7
        mode = Mode(first & 0x7)

        def ts(chunk: bytes) -> Optional[float]:
            if is_zero_timestamp(chunk):
                return None
            return decode_timestamp(chunk, pivot_unix=pivot_unix)

        return cls(
            leap=leap,
            version=version,
            mode=mode,
            stratum=stratum,
            poll=poll,
            precision=precision,
            root_delay=decode_short(data[4:8]),
            root_dispersion=decode_short(data[8:12]),
            ref_id=bytes(data[12:16]),
            reference_ts=ts(data[16:24]),
            origin_ts=ts(data[24:32]),
            receive_ts=ts(data[32:40]),
            transmit_ts=ts(data[40:48]),
        )

    # -- classification helpers (used by the log study) ---------------------------

    def looks_like_sntp_request(self) -> bool:
        """Heuristic used in §3.1: SNTP requests zero everything except
        the first octet (and carry a transmit timestamp)."""
        return (
            self.mode == Mode.CLIENT
            and self.stratum == 0
            and self.poll == 0
            and self.precision == 0
            and self.root_delay == 0.0
            and self.root_dispersion == 0.0
            and self.origin_ts is None
            and self.receive_ts is None
        )

    def is_kiss_of_death(self) -> bool:
        """Stratum-0 server responses are KoD packets."""
        return self.mode == Mode.SERVER and self.stratum == 0

"""SNTP client (RFC 4330), including the Android policy quirks.

The client is transport-agnostic: the topology supplies a ``send``
callable and routes response datagrams back into :meth:`on_datagram`.
Each query is sent from its own ephemeral source port (as a real UDP
client socket would be), the server echoes the port, and the response
is matched to the outstanding query by that port; the origin timestamp
is additionally verified against the request's transmit timestamp, the
same sanity check real SNTP clients perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.clock.simclock import SimClock
from repro.net.message import Datagram
from repro.ntp.constants import LeapIndicator, Mode
from repro.ntp.packet import NtpPacket
from repro.ntp.wire import OffsetSample, sample_from_exchange
from repro.obs.spans import Span
from repro.simcore.events import Event
from repro.simcore.simulator import Simulator

# Hardening counter names, hoisted: the call sites run per query inside
# the hot closure and batch their increments through the telemetry ring
# (the counters are still created lazily, so a plain client's snapshot
# keeps the exact baseline metric-name set).
_BACKED_OFF_TOTAL = "sntp_backed_off_queries_total"
_FAILOVERS_TOTAL = "sntp_failovers_total"
_INVALID_TOTAL = "sntp_invalid_responses_total"
_EVICTIONS_TOTAL = "sntp_pending_evictions_total"


@dataclass
class SntpResult:
    """Outcome of one SNTP query.

    Attributes:
        sample: The derived offset/delay sample (None on timeout).
        server_name: Who was asked (post pool resolution, if known).
        timed_out: True if no response arrived within the timeout.
        kiss_of_death: True if the server answered with a KoD packet
            (e.g. RATE) — the client backs off from that server.
        unsynchronized: True if the server advertised it has no valid
            time (leap alarm / stratum 16).
        invalid: True if the response failed RFC 4330 sanity validation
            (e.g. a zeroed transmit timestamp) and was discarded.
        backed_off: True if the query never touched the wire because
            every eligible server was under a backoff window.
    """

    sample: Optional[OffsetSample]
    server_name: str
    timed_out: bool = False
    kiss_of_death: bool = False
    unsynchronized: bool = False
    invalid: bool = False
    backed_off: bool = False

    @property
    def ok(self) -> bool:
        """Whether a usable sample was obtained."""
        return self.sample is not None


@dataclass(frozen=True)
class HardeningPolicy:
    """Client-side robustness knobs (see docs/ROBUSTNESS.md).

    A client constructed with a policy keeps per-server health state,
    applies exponential backoff with deterministic jitter after
    failures, and — when ``failover`` is on and peers are registered —
    reroutes queries away from unhealthy servers.

    Attributes:
        backoff_base: Hold-off after the first consecutive failure (s).
        backoff_factor: Multiplier per further consecutive failure.
        backoff_max: Hold-off ceiling (seconds).
        jitter_frac: Backoff windows are scaled by a deterministic
            draw from ``1 ± jitter_frac`` so the fleet's retries do not
            synchronize.
        failover: Reroute to the healthiest eligible peer when the
            requested server is under backoff.
        health_decay: Exponential smoothing factor of the per-server
            health score (closer to 1.0 = longer memory).
    """

    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    jitter_frac: float = 0.1
    failover: bool = True
    health_decay: float = 0.8

    def __post_init__(self) -> None:
        """Validate knob ranges."""
        if self.backoff_base <= 0 or self.backoff_max <= 0:
            raise ValueError("backoff windows must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")
        if not 0.0 <= self.health_decay < 1.0:
            raise ValueError("health_decay must be in [0, 1)")


class ServerHealth:
    """Per-server score and backoff bookkeeping for a hardened client.

    The score is an exponentially smoothed success indicator in
    ``[0, 1]``; consecutive failures also open an exponentially growing
    hold-off window during which the server is not queried.
    """

    __slots__ = (
        "name", "score", "consecutive_failures", "backoff_until",
        "successes", "failures",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.score = 1.0
        self.consecutive_failures = 0
        self.backoff_until = 0.0
        self.successes = 0
        self.failures = 0

    def eligible(self, now: float) -> bool:
        """Whether the server may be queried at time ``now``."""
        return now >= self.backoff_until

    def record_success(self, policy: HardeningPolicy) -> None:
        """Fold a success in: score rises, backoff resets."""
        self.successes += 1
        self.consecutive_failures = 0
        self.backoff_until = 0.0
        self.score = policy.health_decay * self.score + (1.0 - policy.health_decay)

    def record_failure(self, now: float, policy: HardeningPolicy, jitter: float) -> None:
        """Fold a failure in: score decays, the hold-off window grows.

        Args:
            now: Current virtual time.
            policy: Backoff shape.
            jitter: Deterministic multiplier drawn from
                ``1 ± jitter_frac`` by the client.
        """
        self.failures += 1
        self.consecutive_failures += 1
        self.score = policy.health_decay * self.score
        window = min(
            policy.backoff_base
            * policy.backoff_factor ** (self.consecutive_failures - 1),
            policy.backoff_max,
        )
        self.backoff_until = now + window * jitter


class SntpClient:
    """Minimal one-shot SNTP querier bound to a local clock.

    Args:
        sim: Simulation kernel.
        clock: Local clock supplying T1/T4 readings.
        send: Callable that puts a request datagram on the wire.
        name: Source address label for datagrams.
        default_timeout: Seconds to wait before declaring a query lost.
        kod_backoff: Seconds to refuse querying a server after it sent
            a kiss-of-death packet (RFC 4330 demands clients stop);
            used when the KoD packet carries no usable poll hint.
        min_kod_holdoff: Floor on the KoD hold-off, applied even when
            the packet's poll field advertises a shorter retry hint.
        max_pending: Cap on the outstanding-query table; when full, the
            oldest in-flight query is failed early so a dead server
            cannot accumulate state.
        hardening: Optional robustness policy; None keeps the exact
            baseline behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        send: Callable[[Datagram], None],
        name: str = "client",
        default_timeout: float = 2.0,
        kod_backoff: float = 900.0,
        min_kod_holdoff: float = 60.0,
        max_pending: int = 64,
        hardening: Optional[HardeningPolicy] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._sim = sim
        self.clock = clock
        self._send = send
        self.name = name
        self.default_timeout = default_timeout
        self.kod_backoff = kod_backoff
        self.min_kod_holdoff = min_kod_holdoff
        self.max_pending = max_pending
        self.hardening = hardening
        # Outstanding queries keyed by the ephemeral source port.
        self._pending: Dict[int, "_PendingQuery"] = {}
        self._next_port = 10_000
        # Per-client exchange sequence feeding causal trace ids.
        self._trace_seq = 0
        # Servers that sent kiss-of-death: name -> earliest retry time.
        self._kod_until: Dict[str, float] = {}
        self.queries_sent = 0
        self.responses_received = 0
        self.timeouts = 0
        self.kod_received = 0
        self.invalid_received = 0
        self.failovers = 0
        self.backed_off_queries = 0
        self.pending_evictions = 0
        # Hardened-only state, created lazily so plain clients keep the
        # exact RNG stream set and metric names of the baseline.
        self.health: Dict[str, ServerHealth] = {}
        self._peers: "list[str]" = []
        self._hardening_rng = (
            sim.rng.stream(f"sntp-hardening:{name}") if hardening else None
        )

    # -- hardening ---------------------------------------------------------

    def set_failover_peers(self, peers: "list[str]") -> None:
        """Register the server names failover may reroute to."""
        self._peers = [p for p in peers]

    def _health_of(self, server_name: str) -> ServerHealth:
        health = self.health.get(server_name)
        if health is None:
            health = self.health[server_name] = ServerHealth(server_name)
        return health

    def _jitter(self) -> float:
        assert self.hardening is not None and self._hardening_rng is not None
        frac = self.hardening.jitter_frac
        return 1.0 + float(self._hardening_rng.uniform(-frac, frac))

    def _note_outcome(self, server_name: str, result: SntpResult) -> None:
        """Fold a query outcome into the server's health state."""
        if self.hardening is None:
            return
        health = self._health_of(server_name)
        if result.ok:
            health.record_success(self.hardening)
        else:
            health.record_failure(self._sim.now, self.hardening, self._jitter())

    def _under_kod(self, server_name: str) -> bool:
        """Whether ``server_name`` is inside a KoD hold-off (pruning
        expired entries as a side effect)."""
        until = self._kod_until.get(server_name)
        if until is None:
            return False
        if self._sim.now < until:
            return True
        del self._kod_until[server_name]
        return False

    def _select_server(self, requested: str) -> Optional[str]:
        """Pick the server to actually query (hardened clients only).

        The requested server wins when eligible; otherwise the
        healthiest eligible registered peer (score descending, name as
        the deterministic tiebreak).  None when everything is under a
        backoff or KoD window.
        """
        assert self.hardening is not None

        def usable(name: str) -> bool:
            if self._under_kod(name):
                return False
            return self._health_of(name).eligible(self._sim.now)

        if usable(requested):
            return requested
        if not self.hardening.failover:
            return None
        candidates = [p for p in self._peers if p != requested and usable(p)]
        if not candidates:
            return None
        candidates.sort(key=lambda n: (-self._health_of(n).score, n))
        return candidates[0]

    def query(
        self,
        server_name: str,
        callback: Callable[[SntpResult], None],
        timeout: Optional[float] = None,
        version: int = 3,
    ) -> None:
        """Fire one SNTP request; ``callback`` runs on response/timeout.

        Queries to a server currently under kiss-of-death back-off fail
        immediately without touching the wire.  A hardened client
        additionally reroutes away from servers under failure backoff
        (see :class:`HardeningPolicy`) and fails fast with
        ``backed_off=True`` when no server is eligible.
        """
        if self.hardening is not None:
            chosen = self._select_server(server_name)
            if chosen is None:
                self.backed_off_queries += 1
                self._sim.telemetry.count(_BACKED_OFF_TOTAL)
                self._sim.call_after(
                    0.0,
                    lambda: callback(SntpResult(
                        sample=None, server_name=server_name,
                        backed_off=True,
                    )),
                    label="sntp:backed-off",
                )
                return
            if chosen != server_name:
                self.failovers += 1
                self._sim.telemetry.count(_FAILOVERS_TOTAL)
            server_name = chosen
            inner_callback = callback

            def callback(result: SntpResult) -> None:
                self._note_outcome(chosen, result)
                inner_callback(result)

        elif self._under_kod(server_name):
            self._sim.call_after(
                0.0,
                lambda: callback(SntpResult(
                    sample=None, server_name=server_name,
                    kiss_of_death=True,
                )),
                label="sntp:kod-backoff",
            )
            return
        timeout = self.default_timeout if timeout is None else timeout
        if len(self._pending) >= self.max_pending:
            self._evict_oldest_pending()
        t1 = self.clock.read()
        request = NtpPacket.sntp_request(t1, version=version)
        payload = request.encode()
        port = self._next_port
        self._next_port = 10_000 + (self._next_port - 9_999) % 50_000
        self._trace_seq += 1
        trace_id = f"{self.name}/{self._trace_seq}"
        datagram = Datagram(
            payload=payload, src=self.name, dst=server_name, src_port=port,
            ident=self._sim.datagram_ids.allocate(), trace_id=trace_id,
        )
        # Root span of the exchange's causal tree; hop and server spans
        # link to it through the shared trace_id.
        span = self._sim.telemetry.spans.begin(
            "sntp.exchange", trace_id=trace_id, client=self.name,
            server=server_name,
        )

        pending = _PendingQuery(
            t1=t1,
            t1_wire=payload[40:48],  # echoes back as the origin timestamp
            server_name=server_name,
            callback=callback,
            timeout_event=None,
            trace_id=trace_id,
            span=span,
        )
        pending.timeout_event = self._sim.call_after(
            timeout, lambda: self._on_timeout(port), label="sntp:timeout"
        )
        self._pending[port] = pending
        self.queries_sent += 1
        self._send(datagram)

    def on_datagram(self, datagram: Datagram) -> None:
        """Receive-side entry point for server responses."""
        if len(datagram.payload) < 48:
            return
        pending = self._pending.get(datagram.dst_port)
        if pending is None:
            return  # late duplicate or stray packet
        if bytes(datagram.payload[24:32]) != pending.t1_wire:
            return  # origin mismatch: not a reply to our request
        del self._pending[datagram.dst_port]
        assert pending.timeout_event is not None
        pending.timeout_event.cancel()
        try:
            response = NtpPacket.decode(datagram.payload, pivot_unix=self._sim.now)
        except ValueError:
            pending.span.end(outcome="malformed", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=pending.server_name, timed_out=False)
            )
            return
        if response.is_kiss_of_death():
            self.kod_received += 1
            holdoff = self._kod_holdoff(response)
            self._kod_until[datagram.src] = self._sim.now + holdoff
            # Back off from the asked name too (pool rotation hides the
            # member behind the hostname the caller uses).
            if pending.server_name != datagram.src:
                self._kod_until[pending.server_name] = self._sim.now + holdoff
            pending.span.end(outcome="kod", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=datagram.src,
                           kiss_of_death=True)
            )
            return
        if response.mode != Mode.SERVER:
            pending.span.end(outcome="bad_mode", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=pending.server_name, timed_out=False)
            )
            return
        if response.leap == LeapIndicator.ALARM or response.stratum >= 16:
            pending.span.end(outcome="unsynchronized", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=datagram.src,
                           unsynchronized=True)
            )
            return
        if response.receive_ts is None or response.transmit_ts is None:
            # RFC 4330 §5: a zeroed transmit timestamp means the reply
            # carries no time and MUST be discarded.  Without this
            # guard sample_from_exchange would raise out of the event
            # loop and crash the run.
            self.invalid_received += 1
            self._sim.telemetry.count(_INVALID_TOTAL)
            pending.span.end(outcome="invalid", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=datagram.src, invalid=True)
            )
            return
        t4 = self.clock.read()
        self.responses_received += 1
        sample = sample_from_exchange(pending.t1, response, t4)
        pending.span.end(
            outcome="ok", server=datagram.src,
            offset=sample.offset, delay=sample.delay,
        )
        pending.callback(
            SntpResult(sample=sample, server_name=datagram.src, timed_out=False)
        )

    def _kod_holdoff(self, response: NtpPacket) -> float:
        """Hold-off to apply after a kiss-of-death response.

        RFC 4330 lets the KoD packet's poll field hint at a retry
        interval (2^poll seconds); when the hint is absent or
        implausible the configured ``kod_backoff`` applies.  Either way
        the hold-off is floored at ``min_kod_holdoff`` so a mangled
        hint can never turn KoD into an invitation to hammer.
        """
        if 1 <= response.poll <= 17:
            hint = 2.0 ** response.poll
        else:
            hint = self.kod_backoff
        return max(hint, self.min_kod_holdoff)

    def _evict_oldest_pending(self) -> None:
        """Fail the oldest in-flight query to make room for a new one.

        Keeps the pending table bounded by ``max_pending`` even when a
        dead server swallows every request faster than timeouts fire.
        """
        port, pending = next(iter(self._pending.items()))
        del self._pending[port]
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        self.pending_evictions += 1
        self._sim.telemetry.count(_EVICTIONS_TOTAL)
        pending.span.end(outcome="evicted")
        pending.callback(
            SntpResult(sample=None, server_name=pending.server_name, timed_out=True)
        )

    def _on_timeout(self, port: int) -> None:
        pending = self._pending.pop(port, None)
        if pending is None:
            return
        self.timeouts += 1
        pending.span.end(outcome="timeout")
        pending.callback(
            SntpResult(sample=None, server_name=pending.server_name, timed_out=True)
        )


class _PendingQuery:
    """Book-keeping for one in-flight query."""

    __slots__ = (
        "t1", "t1_wire", "server_name", "callback", "timeout_event",
        "trace_id", "span",
    )

    def __init__(
        self,
        t1: float,
        t1_wire: bytes,
        server_name: str,
        callback: Callable[[SntpResult], None],
        timeout_event: Optional[Event],
        trace_id: str,
        span: "Span",
    ) -> None:
        self.t1 = t1
        self.t1_wire = t1_wire
        self.server_name = server_name
        self.callback = callback
        self.timeout_event = timeout_event
        self.trace_id = trace_id
        self.span = span


@dataclass
class AndroidSntpPolicy:
    """Android's stock SNTP behaviour as documented in the paper's §2.

    Attributes:
        poll_interval: Once a day when NITZ data is unavailable.
        max_retries: "only three retries upon error".
        update_threshold: System time updated *only* if the estimate
            differs by more than 5000 ms.
        retry_backoff: Gap between retries.
    """

    poll_interval: float = 86_400.0
    max_retries: int = 3
    update_threshold: float = 5.0
    retry_backoff: float = 5.0


class AndroidSntpDaemon:
    """Background process reproducing the Android update policy.

    Polls once per ``policy.poll_interval``; on failure retries up to
    ``policy.max_retries`` times; applies a step correction only when
    |offset| exceeds ``policy.update_threshold``.
    """

    def __init__(
        self,
        sim: Simulator,
        client: SntpClient,
        server_name: str,
        policy: AndroidSntpPolicy = AndroidSntpPolicy(),
    ) -> None:
        self._sim = sim
        self.client = client
        self.server_name = server_name
        self.policy = policy
        self.updates_applied = 0
        self.polls = 0
        self._running = False

    def start(self, initial_delay: float = 0.0) -> None:
        """Begin the daily polling loop."""
        self._running = True
        self._sim.call_after(initial_delay, self._poll, label="android:poll")

    def stop(self) -> None:
        """Halt polling after any in-flight attempt resolves."""
        self._running = False

    def _poll(self, attempt: int = 0) -> None:
        if not self._running:
            return
        self.polls += 1

        def on_result(result: SntpResult) -> None:
            if not self._running:
                return
            if result.ok:
                assert result.sample is not None
                offset = result.sample.offset
                if abs(offset) > self.policy.update_threshold:
                    self.client.clock.step(offset)
                    self.updates_applied += 1
                    self._sim.telemetry.emit(
                        self._sim.now, "android", "step", offset=offset
                    )
                self._schedule_next()
            elif attempt + 1 < self.policy.max_retries:
                self._sim.call_after(
                    self.policy.retry_backoff,
                    lambda: self._poll(attempt + 1),
                    label="android:retry",
                )
            else:
                # Out of retries: give up until the next daily poll.
                self._schedule_next()

        self.client.query(self.server_name, on_result)

    def _schedule_next(self) -> None:
        if self._running:
            self._sim.call_after(
                self.policy.poll_interval, self._poll, label="android:poll"
            )

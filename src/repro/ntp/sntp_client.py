"""SNTP client (RFC 4330), including the Android policy quirks.

The client is transport-agnostic: the topology supplies a ``send``
callable and routes response datagrams back into :meth:`on_datagram`.
Each query is sent from its own ephemeral source port (as a real UDP
client socket would be), the server echoes the port, and the response
is matched to the outstanding query by that port; the origin timestamp
is additionally verified against the request's transmit timestamp, the
same sanity check real SNTP clients perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.clock.simclock import SimClock
from repro.net.message import Datagram
from repro.ntp.constants import LeapIndicator, Mode
from repro.ntp.packet import NtpPacket
from repro.ntp.wire import OffsetSample, sample_from_exchange
from repro.obs.spans import Span
from repro.simcore.events import Event
from repro.simcore.simulator import Simulator


@dataclass
class SntpResult:
    """Outcome of one SNTP query.

    Attributes:
        sample: The derived offset/delay sample (None on timeout).
        server_name: Who was asked (post pool resolution, if known).
        timed_out: True if no response arrived within the timeout.
        kiss_of_death: True if the server answered with a KoD packet
            (e.g. RATE) — the client backs off from that server.
        unsynchronized: True if the server advertised it has no valid
            time (leap alarm / stratum 16).
    """

    sample: Optional[OffsetSample]
    server_name: str
    timed_out: bool = False
    kiss_of_death: bool = False
    unsynchronized: bool = False

    @property
    def ok(self) -> bool:
        """Whether a usable sample was obtained."""
        return self.sample is not None


class SntpClient:
    """Minimal one-shot SNTP querier bound to a local clock.

    Args:
        sim: Simulation kernel.
        clock: Local clock supplying T1/T4 readings.
        send: Callable that puts a request datagram on the wire.
        name: Source address label for datagrams.
        default_timeout: Seconds to wait before declaring a query lost.
        kod_backoff: Seconds to refuse querying a server after it sent
            a kiss-of-death packet (RFC 4330 demands clients stop).
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        send: Callable[[Datagram], None],
        name: str = "client",
        default_timeout: float = 2.0,
        kod_backoff: float = 900.0,
    ) -> None:
        self._sim = sim
        self.clock = clock
        self._send = send
        self.name = name
        self.default_timeout = default_timeout
        self.kod_backoff = kod_backoff
        # Outstanding queries keyed by the ephemeral source port.
        self._pending: Dict[int, "_PendingQuery"] = {}
        self._next_port = 10_000
        # Per-client exchange sequence feeding causal trace ids.
        self._trace_seq = 0
        # Servers that sent kiss-of-death: name -> earliest retry time.
        self._kod_until: Dict[str, float] = {}
        self.queries_sent = 0
        self.responses_received = 0
        self.timeouts = 0
        self.kod_received = 0

    def query(
        self,
        server_name: str,
        callback: Callable[[SntpResult], None],
        timeout: Optional[float] = None,
        version: int = 3,
    ) -> None:
        """Fire one SNTP request; ``callback`` runs on response/timeout.

        Queries to a server currently under kiss-of-death back-off fail
        immediately without touching the wire.
        """
        until = self._kod_until.get(server_name)
        if until is not None:
            if self._sim.now < until:
                self._sim.call_after(
                    0.0,
                    lambda: callback(SntpResult(
                        sample=None, server_name=server_name,
                        kiss_of_death=True,
                    )),
                    label="sntp:kod-backoff",
                )
                return
            del self._kod_until[server_name]
        timeout = self.default_timeout if timeout is None else timeout
        t1 = self.clock.read()
        request = NtpPacket.sntp_request(t1, version=version)
        payload = request.encode()
        port = self._next_port
        self._next_port = 10_000 + (self._next_port - 9_999) % 50_000
        self._trace_seq += 1
        trace_id = f"{self.name}/{self._trace_seq}"
        datagram = Datagram(
            payload=payload, src=self.name, dst=server_name, src_port=port,
            ident=self._sim.datagram_ids.allocate(), trace_id=trace_id,
        )
        # Root span of the exchange's causal tree; hop and server spans
        # link to it through the shared trace_id.
        span = self._sim.telemetry.spans.begin(
            "sntp.exchange", trace_id=trace_id, client=self.name,
            server=server_name,
        )

        pending = _PendingQuery(
            t1=t1,
            t1_wire=payload[40:48],  # echoes back as the origin timestamp
            server_name=server_name,
            callback=callback,
            timeout_event=None,
            trace_id=trace_id,
            span=span,
        )
        pending.timeout_event = self._sim.call_after(
            timeout, lambda: self._on_timeout(port), label="sntp:timeout"
        )
        self._pending[port] = pending
        self.queries_sent += 1
        self._send(datagram)

    def on_datagram(self, datagram: Datagram) -> None:
        """Receive-side entry point for server responses."""
        if len(datagram.payload) < 48:
            return
        pending = self._pending.get(datagram.dst_port)
        if pending is None:
            return  # late duplicate or stray packet
        if bytes(datagram.payload[24:32]) != pending.t1_wire:
            return  # origin mismatch: not a reply to our request
        del self._pending[datagram.dst_port]
        assert pending.timeout_event is not None
        pending.timeout_event.cancel()
        try:
            response = NtpPacket.decode(datagram.payload, pivot_unix=self._sim.now)
        except ValueError:
            pending.span.end(outcome="malformed", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=pending.server_name, timed_out=False)
            )
            return
        if response.is_kiss_of_death():
            self.kod_received += 1
            self._kod_until[datagram.src] = self._sim.now + self.kod_backoff
            # Back off from the asked name too (pool rotation hides the
            # member behind the hostname the caller uses).
            if pending.server_name != datagram.src:
                self._kod_until[pending.server_name] = (
                    self._sim.now + self.kod_backoff
                )
            pending.span.end(outcome="kod", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=datagram.src,
                           kiss_of_death=True)
            )
            return
        if response.mode != Mode.SERVER:
            pending.span.end(outcome="bad_mode", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=pending.server_name, timed_out=False)
            )
            return
        if response.leap == LeapIndicator.ALARM or response.stratum >= 16:
            pending.span.end(outcome="unsynchronized", server=datagram.src)
            pending.callback(
                SntpResult(sample=None, server_name=datagram.src,
                           unsynchronized=True)
            )
            return
        t4 = self.clock.read()
        self.responses_received += 1
        sample = sample_from_exchange(pending.t1, response, t4)
        pending.span.end(
            outcome="ok", server=datagram.src,
            offset=sample.offset, delay=sample.delay,
        )
        pending.callback(
            SntpResult(sample=sample, server_name=datagram.src, timed_out=False)
        )

    def _on_timeout(self, port: int) -> None:
        pending = self._pending.pop(port, None)
        if pending is None:
            return
        self.timeouts += 1
        pending.span.end(outcome="timeout")
        pending.callback(
            SntpResult(sample=None, server_name=pending.server_name, timed_out=True)
        )


class _PendingQuery:
    """Book-keeping for one in-flight query."""

    __slots__ = (
        "t1", "t1_wire", "server_name", "callback", "timeout_event",
        "trace_id", "span",
    )

    def __init__(
        self,
        t1: float,
        t1_wire: bytes,
        server_name: str,
        callback: Callable[[SntpResult], None],
        timeout_event: Optional[Event],
        trace_id: str,
        span: "Span",
    ) -> None:
        self.t1 = t1
        self.t1_wire = t1_wire
        self.server_name = server_name
        self.callback = callback
        self.timeout_event = timeout_event
        self.trace_id = trace_id
        self.span = span


@dataclass
class AndroidSntpPolicy:
    """Android's stock SNTP behaviour as documented in the paper's §2.

    Attributes:
        poll_interval: Once a day when NITZ data is unavailable.
        max_retries: "only three retries upon error".
        update_threshold: System time updated *only* if the estimate
            differs by more than 5000 ms.
        retry_backoff: Gap between retries.
    """

    poll_interval: float = 86_400.0
    max_retries: int = 3
    update_threshold: float = 5.0
    retry_backoff: float = 5.0


class AndroidSntpDaemon:
    """Background process reproducing the Android update policy.

    Polls once per ``policy.poll_interval``; on failure retries up to
    ``policy.max_retries`` times; applies a step correction only when
    |offset| exceeds ``policy.update_threshold``.
    """

    def __init__(
        self,
        sim: Simulator,
        client: SntpClient,
        server_name: str,
        policy: AndroidSntpPolicy = AndroidSntpPolicy(),
    ) -> None:
        self._sim = sim
        self.client = client
        self.server_name = server_name
        self.policy = policy
        self.updates_applied = 0
        self.polls = 0
        self._running = False

    def start(self, initial_delay: float = 0.0) -> None:
        """Begin the daily polling loop."""
        self._running = True
        self._sim.call_after(initial_delay, self._poll, label="android:poll")

    def stop(self) -> None:
        """Halt polling after any in-flight attempt resolves."""
        self._running = False

    def _poll(self, attempt: int = 0) -> None:
        if not self._running:
            return
        self.polls += 1

        def on_result(result: SntpResult) -> None:
            if not self._running:
                return
            if result.ok:
                assert result.sample is not None
                offset = result.sample.offset
                if abs(offset) > self.policy.update_threshold:
                    self.client.clock.step(offset)
                    self.updates_applied += 1
                    self._sim.trace.emit(
                        self._sim.now, "android", "step", offset=offset
                    )
                self._schedule_next()
            elif attempt + 1 < self.policy.max_retries:
                self._sim.call_after(
                    self.policy.retry_backoff,
                    lambda: self._poll(attempt + 1),
                    label="android:retry",
                )
            else:
                # Out of retries: give up until the next daily poll.
                self._schedule_next()

        self.client.query(self.server_name, on_result)

    def _schedule_next(self) -> None:
        if self._running:
            self._sim.call_after(
                self.policy.poll_interval, self._poll, label="android:poll"
            )

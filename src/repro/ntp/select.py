"""Intersection (selection) algorithm — Marzullo's algorithm as adapted
by RFC 5905 §11.2.1.

Each candidate source contributes a *correctness interval*
``[offset - rootdist, offset + rootdist]``.  The algorithm finds the
largest group of sources whose intervals share a common point; members
of that group are *truechimers*, the rest *falsetickers*.  This is the
"philosophy of NTP's clock selection heuristic" the paper cites as
inspiration for MNTP's warm-up false-ticker rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class SelectInterval:
    """A candidate's correctness interval.

    Attributes:
        source: Opaque identifier for the contributing source.
        midpoint: Offset estimate.
        radius: Root distance (error bound) around the midpoint.
    """

    source: str
    midpoint: float
    radius: float

    @property
    def low(self) -> float:
        """Lower edge of the interval."""
        return self.midpoint - self.radius

    @property
    def high(self) -> float:
        """Upper edge of the interval."""
        return self.midpoint + self.radius


def intersection(
    candidates: Sequence[SelectInterval],
) -> Tuple[List[SelectInterval], Tuple[float, float]]:
    """Run the intersection algorithm.

    Returns:
        (truechimers, (low, high)) — the surviving candidates whose
        intervals contain the agreed range, and that range itself.
        With no candidates, returns ``([], (0.0, 0.0))``.

    The implementation follows the RFC's endpoint-scanning formulation:
    find the smallest number of falsetickers ``f`` such that an
    intersection containing at least ``len(candidates) - f`` midpoints
    exists.
    """
    n = len(candidates)
    if n == 0:
        return [], (0.0, 0.0)
    if n == 1:
        c = candidates[0]
        return [c], (c.low, c.high)

    # Endpoint lists: (value, type) with type -1 = low edge, +1 = high edge,
    # 0 = midpoint.
    endpoints: List[Tuple[float, int]] = []
    for c in candidates:
        endpoints.append((c.low, -1))
        endpoints.append((c.midpoint, 0))
        endpoints.append((c.high, +1))
    endpoints.sort(key=lambda e: (e[0], e[1]))

    # Truechimers must outnumber falsetickers: f < n/2, so the largest
    # allowed falseticker count is (n - 1) // 2.
    for allowed_false in range((n + 1) // 2):
        needed = n - allowed_false
        low = None
        high = None
        # Scan upward for the low edge.
        chime = 0
        midcount = 0
        for value, kind in endpoints:
            chime -= kind
            if kind == 0:
                midcount += 1
            if chime >= needed:
                low = value
                break
        # Scan downward for the high edge.
        chime = 0
        for value, kind in reversed(endpoints):
            chime += kind
            if chime >= needed:
                high = value
                break
        if low is not None and high is not None and low <= high:
            survivors = [
                c for c in candidates if c.low <= high and c.high >= low
            ]
            return survivors, (low, high)
    # No majority agreement: no truechimers.
    return [], (0.0, 0.0)

"""On-wire offset/delay arithmetic.

Given the four timestamps of a client/server exchange —

* T1 origin (client transmit, client clock),
* T2 receive (server receive, server clock),
* T3 transmit (server transmit, server clock),
* T4 destination (client receive, client clock),

RFC 5905 defines::

    offset = ((T2 - T1) + (T3 - T4)) / 2      # server - client
    delay  =  (T4 - T1) - (T3 - T2)           # round trip

The offset estimate is exact only if forward and reverse one-way delays
are equal; path asymmetry contributes error of half the asymmetry —
the core mechanism by which the lossy, bursty wireless hop corrupts
SNTP samples in this paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ntp.packet import NtpPacket


@dataclass(frozen=True)
class OffsetSample:
    """One completed exchange's derived quantities.

    Attributes:
        offset: Estimated (server - client) clock offset, seconds.
        delay: Round-trip delay, seconds.
        t1..t4: The raw exchange timestamps (Unix seconds).
        server_stratum: Stratum claimed by the responder.
        root_delay / root_dispersion: Server-reported path to stratum 0.
    """

    offset: float
    delay: float
    t1: float
    t2: float
    t3: float
    t4: float
    server_stratum: int = 0
    root_delay: float = 0.0
    root_dispersion: float = 0.0

    @property
    def dispersion_bound(self) -> float:
        """Half the round-trip delay: the classic error bound on the
        offset estimate from path asymmetry alone."""
        return abs(self.delay) / 2.0


def compute_offset_delay(
    t1: float, t2: float, t3: float, t4: float
) -> "tuple[float, float]":
    """Return (offset, delay) from the four exchange timestamps."""
    offset = ((t2 - t1) + (t3 - t4)) / 2.0
    delay = (t4 - t1) - (t3 - t2)
    return offset, delay


def sample_from_exchange(
    request_t1: float, response: NtpPacket, t4: float
) -> OffsetSample:
    """Build an :class:`OffsetSample` from a server response packet.

    Args:
        request_t1: Client transmit time of the request (client clock).
        response: Decoded server response (must carry receive/transmit).
        t4: Client receive time of the response (client clock).

    Raises:
        ValueError: If the response lacks the server timestamps.
    """
    if response.receive_ts is None or response.transmit_ts is None:
        raise ValueError("server response missing receive/transmit timestamps")
    offset, delay = compute_offset_delay(
        request_t1, response.receive_ts, response.transmit_ts, t4
    )
    return OffsetSample(
        offset=offset,
        delay=delay,
        t1=request_t1,
        t2=response.receive_ts,
        t3=response.transmit_ts,
        t4=t4,
        server_stratum=response.stratum,
        root_delay=response.root_delay,
        root_dispersion=response.root_dispersion,
    )

"""Pool DNS emulation.

``0.pool.ntp.org``-style names resolve, per query, to a random member
of a rotating server pool — the paper notes "every SNTP request to the
pool server is randomly assigned to a new NTP time reference enabling
unbiased time server selection".  :class:`PoolDns` reproduces that:
each resolution draws a member uniformly at random.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ntp.server import NtpServer


class PoolDns:
    """Maps pool hostnames to rotating member servers.

    Args:
        rng: Random stream used for per-query member selection.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._pools: Dict[str, List[NtpServer]] = {}

    def register(self, pool_name: str, members: List[NtpServer]) -> None:
        """Associate ``pool_name`` with its member servers."""
        if not members:
            raise ValueError("a pool needs at least one member")
        self._pools[pool_name] = list(members)

    def pool_names(self) -> List[str]:
        """Registered pool hostnames."""
        return list(self._pools)

    def members(self, pool_name: str) -> List[NtpServer]:
        """All members of a pool."""
        return list(self._pools[pool_name])

    def resolve(self, name: str) -> NtpServer:
        """Resolve ``name`` to a concrete server.

        Pool names rotate randomly per query; non-pool names must match
        a member's configured name exactly.
        """
        if name in self._pools:
            members = self._pools[name]
            return members[int(self._rng.integers(0, len(members)))]
        for members in self._pools.values():
            for server in members:
                if server.config.name == name:
                    return server
        raise KeyError(f"unknown server or pool: {name!r}")

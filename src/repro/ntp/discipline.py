"""ntpd-style clock discipline.

Drives the full reference pipeline the paper calls "NTP's sophisticated
sample filtering and clock selection heuristics":

  poll N servers -> per-association clock filter -> intersection
  (Marzullo) -> cluster -> popcorn gate -> phase slew/step +
  regression-based frequency trim, with adaptive poll interval.

Design notes on the frequency loop: a naive FLL (offset/interval per
update) is unstable here because phase slews hide the skew and
queueing noise divided by short poll intervals swamps the signal.
Instead the daemon reconstructs the *uncorrected* offset trajectory by
adding back the phase corrections it has applied, fits a degree-1
least-squares line over a window of rounds, and trims the clock
frequency by the damped slope — then restarts the window so each fit
sees a constant-trim regime.

Experiments labelled "with NTP clock correction" run this daemon on the
target node; "without" runs nothing and lets the clock free-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clock.discipline_api import ClockCorrector
from repro.ntp.clock_filter import ClockFilter
from repro.ntp.cluster import ClusterCandidate, cluster_survivors
from repro.ntp.select import SelectInterval, intersection
from repro.ntp.sntp_client import SntpClient, SntpResult
from repro.ntp.wire import OffsetSample
from repro.simcore.simulator import Simulator


@dataclass
class DisciplineParams:
    """Discipline loop tunables.

    Attributes:
        min_poll_exp / max_poll_exp: Poll interval is 2^exp seconds.
        step_threshold: Offsets above this are stepped, not slewed.
        freq_damping: Fraction of the fitted residual slope folded into
            the frequency trim per window.
        freq_window_rounds: Rounds per frequency-fit window.
        freq_window_min_span: Minimum seconds a window must cover.
        max_freq_nudge_ppm: Per-window clamp on the frequency trim step.
        popcorn_gate: Offset-change multiple of the accepted-sample
            jitter EWMA treated as a burst artefact and skipped.
        popcorn_floor: Absolute floor for the popcorn gate (seconds).
        stepout: Seconds of uninterrupted skipping after which the
            excursion is accepted as a genuine clock step (ntpd's
            step-out is 900 s).
        poll_adapt_gate: Jitter multiplier gating poll-interval growth.
    """

    min_poll_exp: int = 4
    max_poll_exp: int = 7
    step_threshold: float = 0.128
    freq_damping: float = 0.7
    freq_window_rounds: int = 8
    freq_window_min_span: float = 90.0
    max_freq_nudge_ppm: float = 30.0
    popcorn_gate: float = 5.0
    popcorn_floor: float = 0.030
    stepout: float = 900.0
    poll_adapt_gate: float = 4.0


class NtpAssociation:
    """State for one upstream server: its clock filter and last sample."""

    def __init__(self, server_name: str) -> None:
        self.server_name = server_name
        self.clock_filter = ClockFilter()
        self.reachable = False
        self.last_sample: Optional[OffsetSample] = None

    def root_distance(self, now: float) -> float:
        """Root distance = delay/2 + dispersion of the best sample."""
        best = self.clock_filter.best(now)
        if best is None:
            return float("inf")
        return abs(best.delay) / 2.0 + best.dispersion


class ClockDiscipline:
    """The polling + discipline daemon.

    Args:
        sim: Simulation kernel.
        client: Wire querier bound to the clock being disciplined.
        corrector: Applies phase/frequency corrections.
        server_names: Upstream servers (>= 3 recommended so the
            intersection algorithm can out-vote a falseticker).
        params: Loop tunables.
    """

    def __init__(
        self,
        sim: Simulator,
        client: SntpClient,
        corrector: ClockCorrector,
        server_names: Sequence[str],
        params: DisciplineParams = DisciplineParams(),
    ) -> None:
        if not server_names:
            raise ValueError("discipline needs at least one server")
        self._sim = sim
        self.client = client
        self.corrector = corrector
        self.params = params
        self.associations: Dict[str, NtpAssociation] = {
            name: NtpAssociation(name) for name in server_names
        }
        self.poll_exp = params.min_poll_exp
        self.last_offset: Optional[float] = None
        self.last_jitter: float = 0.0
        self.updates = 0
        self.steps = 0
        self.popcorn_skips = 0
        self.delay_gate_skips = 0
        self._first_skip_time: Optional[float] = None
        self._jitter_ewma = 0.002
        self._min_delay: Optional[float] = None
        # Frequency-fit window: (epoch, offset + corrections applied so
        # far within this window) — i.e. uncorrected-space points.
        self._window: List[Tuple[float, float]] = []
        self._applied_phase_sum = 0.0
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, initial_delay: float = 0.0) -> None:
        """Begin the polling loop."""
        self._running = True
        self._sim.call_after(initial_delay, self._poll_round, label="ntpd:poll")

    def stop(self) -> None:
        """Halt after any in-flight round."""
        self._running = False

    @property
    def poll_interval(self) -> float:
        """Current poll interval in seconds."""
        return float(2 ** self.poll_exp)

    # -- polling ----------------------------------------------------------------

    def _poll_round(self) -> None:
        if not self._running:
            return
        fresh: List[Tuple[str, OffsetSample]] = []
        outstanding = {"count": len(self.associations)}

        def make_cb(assoc: NtpAssociation):
            def on_result(result: SntpResult) -> None:
                self._absorb(assoc, result)
                if result.ok:
                    assert result.sample is not None
                    fresh.append((assoc.server_name, result.sample))
                outstanding["count"] -= 1
                if outstanding["count"] == 0:
                    self._update_clock(fresh)
                    self._schedule_next()

            return on_result

        for assoc in self.associations.values():
            self.client.query(assoc.server_name, make_cb(assoc))

    def _absorb(self, assoc: NtpAssociation, result: SntpResult) -> None:
        if not result.ok:
            assoc.reachable = False
            return
        assert result.sample is not None
        s = result.sample
        assoc.reachable = True
        assoc.last_sample = s
        assoc.clock_filter.add(
            offset=s.offset,
            delay=s.delay,
            epoch=self._sim.now,
            dispersion=s.root_dispersion,
        )

    # -- mitigation + discipline ---------------------------------------------------

    def _survivor_names(self, now: float) -> Optional[List[str]]:
        """Run select + cluster over the filtered bests.

        Returns the names of the surviving (trustworthy) associations;
        an empty list means selection ran and rejected everyone (no
        majority agreement — do NOT update the clock); None means there
        was nothing to evaluate yet.
        """
        candidates: List[SelectInterval] = []
        meta: Dict[str, ClusterCandidate] = {}
        for assoc in self.associations.values():
            best = assoc.clock_filter.best(now)
            if best is None or not assoc.reachable:
                continue
            rootdist = assoc.root_distance(now)
            candidates.append(
                SelectInterval(
                    source=assoc.server_name, midpoint=best.offset, radius=rootdist
                )
            )
            meta[assoc.server_name] = ClusterCandidate(
                source=assoc.server_name,
                offset=best.offset,
                jitter=assoc.clock_filter.jitter(),
                root_distance=rootdist,
            )
        if not candidates:
            return None
        truechimers, _ = intersection(candidates)
        if not truechimers:
            return []
        survivors = cluster_survivors([meta[c.source] for c in truechimers])
        return [s.source for s in survivors]

    def _update_clock(self, fresh: List[Tuple[str, OffsetSample]]) -> None:
        if not fresh:
            return
        now = self._sim.now
        survivor_names = self._survivor_names(now)
        if survivor_names is not None and not survivor_names:
            # Selection ran and found no majority agreement: every
            # candidate may be a falseticker; refuse to touch the clock.
            self._sim.trace.emit(now, "ntpd", "no_majority")
            return
        if survivor_names is None:
            selected = [s for _, s in fresh]
        else:
            survivors = set(survivor_names)
            selected = [s for name, s in fresh if name in survivors] or [
                s for _, s in fresh
            ]
        # Phase estimate: the fresh sample with the lowest round-trip
        # delay among survivors — lowest asymmetry error right now.
        best = min(selected, key=lambda s: s.delay)
        offset = best.offset
        jitter = float(np.std([s.offset for s in selected])) if len(selected) > 1 else 0.0

        # Delay gate: a genuine clock step presents a large offset at a
        # normal round-trip delay, while an interference burst inflates
        # the delay along with the offset.  Samples whose delay is far
        # above the running floor carry too much asymmetry error to
        # drive the clock at all (this is why full NTP survives the
        # wireless hop where SNTP does not).
        if self._min_delay is None:
            self._min_delay = best.delay
        else:
            # Slow upward adaptation so a route change does not pin the
            # floor forever.
            self._min_delay = min(self._min_delay * 1.002, best.delay)
        if best.delay > max(0.010, 2.5 * self._min_delay):
            self.delay_gate_skips += 1
            self._sim.trace.emit(
                now, "ntpd", "delay_gate_skip", offset=offset, delay=best.delay,
                floor=self._min_delay,
            )
            return

        # Popcorn gate: a sudden large excursion is more likely a burst
        # of queueing asymmetry (wireless interference episode) than a
        # real clock change; skip it — unless it persists past the
        # step-out, in which case it is a genuine step.  The gate is
        # derived from an EWMA of accepted-sample changes only, so a
        # burst cannot widen its own gate.
        if self.last_offset is not None:
            gate = max(
                self.params.popcorn_floor,
                self.params.popcorn_gate * self._jitter_ewma,
            )
            if abs(offset - self.last_offset) > gate:
                if self._first_skip_time is None:
                    self._first_skip_time = now
                if now - self._first_skip_time < self.params.stepout:
                    self.popcorn_skips += 1
                    self._sim.trace.emit(
                        now, "ntpd", "popcorn_skip", offset=offset, gate=gate
                    )
                    return
            self._jitter_ewma = (
                0.75 * self._jitter_ewma + 0.25 * abs(offset - self.last_offset)
            )
        self._first_skip_time = None
        self.last_offset = offset
        self.last_jitter = jitter
        self.updates += 1

        # Record the uncorrected-space point before applying corrections.
        self._window.append((now, offset + self._applied_phase_sum))

        action = self.corrector.apply_offset(offset)
        if action == "step":
            self.steps += 1
        if action in ("step", "slew"):
            self._applied_phase_sum += offset
        self._maybe_trim_frequency()
        self._adapt_poll(offset, jitter)
        self._sim.trace.emit(
            now, "ntpd", "update", offset=offset, jitter=jitter, action=action
        )

    def _maybe_trim_frequency(self) -> None:
        p = self.params
        if len(self._window) < p.freq_window_rounds:
            return
        span = self._window[-1][0] - self._window[0][0]
        if span < p.freq_window_min_span:
            return
        t = np.asarray([w[0] for w in self._window])
        u = np.asarray([w[1] for w in self._window])
        slope = float(np.polyfit(t - t.mean(), u, 1)[0])
        # Uncorrected offset slope s implies residual local skew of -s;
        # nudge the trim to cancel a damped fraction of it.
        nudge = slope * p.freq_damping
        cap = p.max_freq_nudge_ppm * 1e-6
        nudge = max(-cap, min(cap, nudge))
        self.corrector.apply_frequency(-nudge)
        self._window.clear()
        self._applied_phase_sum = 0.0

    def _adapt_poll(self, offset: float, jitter: float) -> None:
        gate = max(1e-4, self.params.poll_adapt_gate * max(jitter, 1e-4))
        if abs(offset) < gate:
            self.poll_exp = min(self.params.max_poll_exp, self.poll_exp + 1)
        else:
            self.poll_exp = max(self.params.min_poll_exp, self.poll_exp - 1)

    def _schedule_next(self) -> None:
        if self._running:
            self._sim.call_after(self.poll_interval, self._poll_round, label="ntpd:poll")

"""NTP / SNTP protocol implementation.

Implements the RFC 5905 wire format and the full reference processing
pipeline (clock filter, intersection/select, cluster, combine,
PLL/FLL discipline), plus the RFC 4330 SNTP client behaviour that
mobile devices actually ship (including Android's retry/threshold
quirks documented in the paper's §2).
"""

from repro.ntp.constants import LeapIndicator, Mode, NTP_PORT, NTP_UNIX_EPOCH_DELTA
from repro.ntp.timestamps import (
    ntp_to_unix,
    unix_to_ntp,
    encode_timestamp,
    decode_timestamp,
    encode_short,
    decode_short,
)
from repro.ntp.packet import NtpPacket
from repro.ntp.wire import compute_offset_delay, OffsetSample
from repro.ntp.server import NtpServer, ServerPersona
from repro.ntp.sntp_client import SntpClient, SntpResult, AndroidSntpPolicy
from repro.ntp.clock_filter import ClockFilter, FilterSample
from repro.ntp.select import intersection, SelectInterval
from repro.ntp.cluster import cluster_survivors
from repro.ntp.combine import combine_offsets
from repro.ntp.discipline import ClockDiscipline, DisciplineParams
from repro.ntp.pool import PoolDns
from repro.ntp.broadcast import BroadcastServer, BroadcastClient, BroadcastSample

__all__ = [
    "LeapIndicator",
    "Mode",
    "NTP_PORT",
    "NTP_UNIX_EPOCH_DELTA",
    "ntp_to_unix",
    "unix_to_ntp",
    "encode_timestamp",
    "decode_timestamp",
    "encode_short",
    "decode_short",
    "NtpPacket",
    "compute_offset_delay",
    "OffsetSample",
    "NtpServer",
    "ServerPersona",
    "SntpClient",
    "SntpResult",
    "AndroidSntpPolicy",
    "ClockFilter",
    "FilterSample",
    "intersection",
    "SelectInterval",
    "cluster_survivors",
    "combine_offsets",
    "ClockDiscipline",
    "DisciplineParams",
    "PoolDns",
    "BroadcastServer",
    "BroadcastClient",
    "BroadcastSample",
]

"""NTP protocol constants (RFC 5905 / RFC 4330)."""

from __future__ import annotations

from enum import IntEnum

#: UDP port NTP listens on.
NTP_PORT = 123

#: Seconds between the NTP era-0 epoch (1900-01-01) and the Unix epoch
#: (1970-01-01): 70 years including 17 leap days.
NTP_UNIX_EPOCH_DELTA = 2_208_988_800

#: Length of the base NTP header in bytes.
NTP_HEADER_LEN = 48

#: Maximum stratum; 16 (displayed as 0 "unspecified") means unsynchronised.
MAX_STRATUM = 15

#: KoD / special reference identifiers.
REFID_GPS = b"GPS\x00"
REFID_ATOM = b"ATOM"
REFID_PPS = b"PPS\x00"
REFID_RATE = b"RATE"  # kiss-of-death: rate limiting


class LeapIndicator(IntEnum):
    """2-bit leap indicator field."""

    NO_WARNING = 0
    LAST_MINUTE_61 = 1
    LAST_MINUTE_59 = 2
    ALARM = 3  # clock unsynchronised


class Mode(IntEnum):
    """3-bit association mode field."""

    RESERVED = 0
    SYMMETRIC_ACTIVE = 1
    SYMMETRIC_PASSIVE = 2
    CLIENT = 3
    SERVER = 4
    BROADCAST = 5
    CONTROL = 6
    PRIVATE = 7


class Version(IntEnum):
    """Protocol versions seen in the wild (the paper's server logs carry
    a mix of v3 SNTP and v4 NTP traffic)."""

    V1 = 1
    V2 = 2
    V3 = 3
    V4 = 4

"""The NTP clock filter (RFC 5905 §10).

Per association, the last eight (offset, delay, dispersion) tuples are
kept in a shift register.  The tuple with the **lowest delay** wins —
low round-trip delay correlates with low asymmetry error, which is the
insight that lets full NTP shrug off the queueing spikes that cripple
SNTP.  A *popcorn spike suppressor* additionally discards a sample
whose offset jumps more than ``popcorn_gate`` times the jitter.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

#: Per-second dispersion growth rate (RFC 5905 PHI).
PHI = 15e-6

#: Shift register depth.
STAGES = 8


@dataclass(frozen=True)
class FilterSample:
    """One filter-stage tuple.

    Attributes:
        offset: Measured offset (server - client), seconds.
        delay: Round-trip delay, seconds.
        dispersion: Sample dispersion at measurement time.
        epoch: Local time of measurement (for dispersion aging).
    """

    offset: float
    delay: float
    dispersion: float
    epoch: float


class ClockFilter:
    """Eight-stage minimum-delay clock filter with popcorn suppression.

    Args:
        popcorn_gate: Spike gate multiplier (RFC default 3).
        min_dispersion: Floor on sample dispersion.
    """

    def __init__(self, popcorn_gate: float = 3.0, min_dispersion: float = 0.001) -> None:
        self._stages: Deque[FilterSample] = deque(maxlen=STAGES)
        self.popcorn_gate = popcorn_gate
        self.min_dispersion = min_dispersion
        self._last_best: Optional[FilterSample] = None
        self.samples_in = 0
        self.popcorn_discards = 0

    def add(self, offset: float, delay: float, epoch: float, dispersion: float = 0.0) -> None:
        """Insert a new sample into the shift register."""
        self.samples_in += 1
        sample = FilterSample(
            offset=offset,
            delay=delay,
            dispersion=max(self.min_dispersion, dispersion),
            epoch=epoch,
        )
        if self._is_popcorn(sample):
            self.popcorn_discards += 1
            return
        self._stages.append(sample)

    def _is_popcorn(self, sample: FilterSample) -> bool:
        if self._last_best is None or len(self._stages) < 2:
            return False
        jitter = max(self.jitter(), 1e-6)
        return abs(sample.offset - self._last_best.offset) > self.popcorn_gate * jitter

    def best(self, now: float) -> Optional[FilterSample]:
        """Return the minimum-delay sample, dispersion aged to ``now``."""
        if not self._stages:
            return None
        candidate = min(self._stages, key=lambda s: s.delay)
        aged = FilterSample(
            offset=candidate.offset,
            delay=candidate.delay,
            dispersion=candidate.dispersion + PHI * max(0.0, now - candidate.epoch),
            epoch=candidate.epoch,
        )
        self._last_best = aged
        return aged

    def jitter(self) -> float:
        """RMS offset difference from the current best sample."""
        if len(self._stages) < 2:
            return 0.0
        best = min(self._stages, key=lambda s: s.delay)
        diffs = [s.offset - best.offset for s in self._stages if s is not best]
        return math.sqrt(sum(d * d for d in diffs) / len(diffs))

    def samples(self) -> List[FilterSample]:
        """Copy of the current register contents (oldest first)."""
        return list(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

"""Cellular/WiFi radio power-state machine.

States and default powers follow the measurements of Balasubramanian
et al. (IMC 2009) for 3G/LTE-class radios, simplified to the structure
that matters for periodic small transfers:

* ``IDLE`` — radio sleeping (baseline power excluded from accounting);
* ``PROMOTION`` — ramping up to the dedicated channel before the first
  byte moves;
* ``ACTIVE`` — transferring;
* ``TAIL`` — the radio holds the high-power state for a fixed timeout
  after the last transfer before falling back to idle.

The *tail* is why request pacing dominates energy: a 48-byte NTP packet
costs almost nothing to transmit but wakes the radio for
``tail_time`` seconds.  Two requests within one tail share it; two
requests farther apart pay it twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence, Tuple


class RadioState(Enum):
    """Radio power state."""

    IDLE = "idle"
    PROMOTION = "promotion"
    ACTIVE = "active"
    TAIL = "tail"


@dataclass(frozen=True)
class RadioEnergyParams:
    """Power-state model parameters (3G/LTE-class defaults).

    Attributes:
        promotion_time: Seconds spent ramping before a transfer when the
            radio was idle.
        promotion_power: Watts during promotion.
        active_power: Watts while transferring.
        tail_time: Seconds the radio lingers at tail power after the
            last transfer.
        tail_power: Watts during the tail.
        transfer_rate: Effective application-layer bytes/second used to
            convert payload size into active time.
        per_byte_energy: Extra joules per payload byte (marginal cost on
            top of the time-based terms).
    """

    promotion_time: float = 2.0
    promotion_power: float = 1.2
    active_power: float = 1.0
    tail_time: float = 12.5
    tail_power: float = 0.6
    transfer_rate: float = 50_000.0
    per_byte_energy: float = 1e-6

    def __post_init__(self) -> None:
        for name in ("promotion_time", "tail_time"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.transfer_rate <= 0:
            raise ValueError("transfer rate must be positive")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attribution for one transmission schedule.

    Attributes:
        total_j: Total joules above idle baseline.
        promotion_j / active_j / tail_j / payload_j: Per-component terms.
        promotions: Radio wake-ups (idle -> promotion transitions).
        radio_on_seconds: Total non-idle time.
    """

    total_j: float
    promotion_j: float
    active_j: float
    tail_j: float
    payload_j: float
    promotions: int
    radio_on_seconds: float


class RadioEnergyModel:
    """Replays a transmission schedule through the power-state machine.

    The model is evaluated offline over a list of (time, bytes) events
    (request+response pairs count their combined bytes at the request
    instant — the tail dominates, so sub-RTT structure is immaterial).
    """

    def __init__(self, params: RadioEnergyParams = RadioEnergyParams()) -> None:
        self.params = params

    def evaluate(self, events: Sequence[Tuple[float, int]]) -> EnergyBreakdown:
        """Compute the energy of a schedule of (time, payload bytes).

        Events need not be sorted; zero-byte events still wake the
        radio (a retry that times out transmitted a request).
        """
        p = self.params
        ordered = sorted(events, key=lambda e: e[0])
        promotions = 0
        promotion_j = active_j = tail_j = payload_j = 0.0
        radio_on = 0.0
        #: Time at which the radio would return to IDLE if nothing else
        #: happens (end of current tail); None while idle.
        tail_until = None

        for time, size in ordered:
            active_time = size / p.transfer_rate
            if tail_until is None or time > tail_until:
                # Radio idle: full promotion cost.
                promotions += 1
                promotion_j += p.promotion_time * p.promotion_power
                radio_on += p.promotion_time
                if tail_until is not None and time > tail_until:
                    pass  # previous tail fully paid below at truncation
            else:
                # Within the previous tail: truncate that tail at this
                # event (the tail resets), crediting only the elapsed
                # portion.
                overlap = tail_until - time
                tail_j -= overlap * p.tail_power
                radio_on -= overlap
            active_j += active_time * p.active_power
            payload_j += size * p.per_byte_energy
            radio_on += active_time
            # A fresh full tail starts after this transfer.
            tail_j += p.tail_time * p.tail_power
            radio_on += p.tail_time
            tail_until = time + active_time + p.tail_time

        total = promotion_j + active_j + tail_j + payload_j
        return EnergyBreakdown(
            total_j=total,
            promotion_j=promotion_j,
            active_j=active_j,
            tail_j=tail_j,
            payload_j=payload_j,
            promotions=promotions,
            radio_on_seconds=radio_on,
        )

"""Energy accounting for time-synchronization traffic.

The paper's §3.4 argues NTP is ill-suited to mobile devices on energy
grounds, citing Balasubramanian et al. (IMC 2009): on cellular radios
every transfer pays a *tail* — the radio lingers in a high-power state
after the last packet — so "a few 100 B transfers periodically ... can
consume more energy than bulk one-shot transfers".  §7 lists
"benchmarking of MNTP against SNTP and NTP in terms of metrics like
processor and battery performance" as future work.

This package implements that benchmark: a radio power-state machine
(idle / promotion / active / tail) driven by the transmission instants
a protocol produces, and an accountant that attributes energy to each
synchronization strategy.
"""

from repro.energy.radio import RadioEnergyModel, RadioEnergyParams, RadioState
from repro.energy.accounting import EnergyAccountant, ProtocolEnergyReport

__all__ = [
    "RadioEnergyModel",
    "RadioEnergyParams",
    "RadioState",
    "EnergyAccountant",
    "ProtocolEnergyReport",
]

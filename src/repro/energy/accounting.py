"""Per-protocol energy accounting.

Collects the transmission schedules of the competing synchronization
strategies from an experiment's traces and prices them through the
radio model, yielding the paper's future-work comparison: accuracy vs
network load vs battery cost for SNTP, MNTP, full NTP (ntpd), and the
stock Android daily-poll policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.energy.radio import EnergyBreakdown, RadioEnergyModel, RadioEnergyParams

#: Wire cost of one NTP exchange: 48 B payload + 28 B UDP/IP overhead,
#: each way.
NTP_EXCHANGE_BYTES = 2 * (48 + 28)


@dataclass(frozen=True)
class ProtocolEnergyReport:
    """Energy/load summary for one strategy over one experiment.

    Attributes:
        name: Strategy label.
        duration_h: Experiment length in hours.
        requests: Synchronization requests emitted.
        bytes_on_wire: Total request+response bytes.
        breakdown: Radio energy attribution.
    """

    name: str
    duration_h: float
    requests: int
    bytes_on_wire: int
    breakdown: EnergyBreakdown

    @property
    def joules_per_hour(self) -> float:
        """Average radio energy per hour (J/h)."""
        if self.duration_h == 0:
            return 0.0
        return self.breakdown.total_j / self.duration_h

    @property
    def wakeups_per_hour(self) -> float:
        """Radio promotions per hour — the keep-alive cost Haverinen
        et al. identify for UDP protocols."""
        if self.duration_h == 0:
            return 0.0
        return self.breakdown.promotions / self.duration_h


class EnergyAccountant:
    """Prices request schedules through a shared radio model."""

    def __init__(self, params: RadioEnergyParams = RadioEnergyParams()) -> None:
        self.model = RadioEnergyModel(params)

    def price_schedule(
        self,
        name: str,
        request_times: Sequence[float],
        duration: float,
        bytes_per_request: int = NTP_EXCHANGE_BYTES,
        requests_per_event: int = 1,
    ) -> ProtocolEnergyReport:
        """Price a schedule of synchronization instants.

        Args:
            name: Strategy label.
            request_times: Instants at which requests were emitted.
            duration: Experiment duration (seconds).
            bytes_per_request: Wire bytes per request+response exchange.
            requests_per_event: Parallel exchanges per instant (MNTP's
                warm-up queries three servers at once — one radio
                wake-up, triple payload).
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        events: List[Tuple[float, int]] = [
            (t, bytes_per_request * requests_per_event) for t in request_times
        ]
        breakdown = self.model.evaluate(events)
        return ProtocolEnergyReport(
            name=name,
            duration_h=duration / 3600.0,
            requests=len(request_times) * requests_per_event,
            bytes_on_wire=sum(size for _, size in events),
            breakdown=breakdown,
        )

    def price_events(
        self,
        name: str,
        events: Sequence[Tuple[float, int]],
        duration: float,
        bytes_per_request: int = NTP_EXCHANGE_BYTES,
    ) -> ProtocolEnergyReport:
        """Price a schedule of (time, parallel exchange count) events.

        Used for protocols whose instants carry varying fan-out, e.g.
        MNTP's three-server warm-up rounds and one-server regular
        rounds in a single run.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        wire_events: List[Tuple[float, int]] = [
            (t, bytes_per_request * n) for t, n in events
        ]
        breakdown = self.model.evaluate(wire_events)
        return ProtocolEnergyReport(
            name=name,
            duration_h=duration / 3600.0,
            requests=sum(n for _, n in events),
            bytes_on_wire=sum(size for _, size in wire_events),
            breakdown=breakdown,
        )

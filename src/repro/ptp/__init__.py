"""IEEE 1588 Precision Time Protocol (PTPv2) — the third protocol
variant the paper's §2 names beside NTP and SNTP.

Implements the two-step delay-request/response mechanism over the same
simulated links as NTP: the master multicasts ``Sync`` (precise origin
timestamp delivered in ``Follow_Up``), the slave measures t2 on
arrival, sends ``Delay_Req`` at t3, and learns t4 from ``Delay_Resp``;
offset and mean path delay follow from the four timestamps.  Included
both as a faithful substrate and to demonstrate that PTP's accuracy
advantage on clean LANs evaporates over the asymmetric wireless hop —
the same failure mode the paper shows for SNTP.
"""

from repro.ptp.messages import (
    PtpHeader,
    PtpMessageType,
    encode_ptp_timestamp,
    decode_ptp_timestamp,
)
from repro.ptp.protocol import PtpMaster, PtpSlave, PtpSample

__all__ = [
    "PtpHeader",
    "PtpMessageType",
    "encode_ptp_timestamp",
    "decode_ptp_timestamp",
    "PtpMaster",
    "PtpSlave",
    "PtpSample",
]

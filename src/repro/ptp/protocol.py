"""PTP two-step master/slave over the simulated network.

The master periodically emits ``Sync`` (event message; its precise
transmit timestamp t1 travels in the ``Follow_Up`` general message) and
answers ``Delay_Req`` with ``Delay_Resp`` carrying the master-side
receive timestamp t4.  The slave combines (t1, t2, t3, t4) into offset
and mean-path-delay samples.

Hardware timestamping is what gives PTP its LAN-grade accuracy; the
simulator models it as zero-error capture of the link-entry/exit
instants, so residual error comes only from *path asymmetry* — which is
exactly why PTP, too, degrades over the paper's wireless hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.clock.simclock import SimClock
from repro.net.message import Datagram
from repro.ptp.messages import (
    FLAG_TWO_STEP,
    PtpHeader,
    PtpMessageType,
    compute_ptp_offset,
)
from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class PtpSample:
    """One completed two-step exchange.

    Attributes:
        offset: Slave clock minus master clock (seconds).
        mean_path_delay: One-way delay estimate (seconds).
        t1..t4: The exchange timestamps.
        sequence_id: Sync sequence this sample belongs to.
    """

    offset: float
    mean_path_delay: float
    t1: float
    t2: float
    t3: float
    t4: float
    sequence_id: int


class PtpMaster:
    """Grandmaster-side endpoint.

    Args:
        sim: Simulation kernel.
        clock: Master clock (the time source).
        send: Callable putting datagrams on the wire toward the slave.
        sync_interval: Seconds between Sync emissions.
        identity: 10-byte port identity.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        send: Callable[[Datagram], None],
        sync_interval: float = 1.0,
        identity: bytes = b"MASTER0001",
    ) -> None:
        if sync_interval <= 0:
            raise ValueError("sync interval must be positive")
        self._sim = sim
        self.clock = clock
        self._send = send
        self.sync_interval = sync_interval
        self.identity = identity
        self._sequence = 0
        self.syncs_sent = 0
        self.delay_resps_sent = 0
        self._running = False

    def start(self) -> None:
        """Begin the Sync/Follow_Up cycle."""
        self._running = True
        self._sim.call_after(0.0, self._emit_sync, label="ptp:sync")

    def stop(self) -> None:
        """Halt Sync emission (Delay_Req are still answered)."""
        self._running = False

    def _emit_sync(self) -> None:
        if not self._running:
            return
        self._sequence = (self._sequence + 1) & 0xFFFF
        seq = self._sequence
        sync = PtpHeader(
            message_type=PtpMessageType.SYNC,
            sequence_id=seq,
            source_port_identity=self.identity,
            flags=FLAG_TWO_STEP,
            timestamp=None,  # two-step: precise t1 goes in Follow_Up
        )
        # Hardware timestamp captured as the frame leaves the port.
        t1 = self.clock.read()
        self._send(Datagram(payload=sync.encode(), src="ptp-master",
                            dst="ptp-slave", dst_port=319,
                            ident=self._sim.datagram_ids.allocate()))
        follow_up = PtpHeader(
            message_type=PtpMessageType.FOLLOW_UP,
            sequence_id=seq,
            source_port_identity=self.identity,
            timestamp=t1,
        )
        self._send(Datagram(payload=follow_up.encode(), src="ptp-master",
                            dst="ptp-slave", dst_port=320,
                            ident=self._sim.datagram_ids.allocate()))
        self.syncs_sent += 1
        self._sim.call_after(self.sync_interval, self._emit_sync, label="ptp:sync")

    def on_datagram(self, datagram: Datagram) -> None:
        """Handle slave messages (Delay_Req)."""
        try:
            message = PtpHeader.decode(datagram.payload)
        except ValueError:
            return
        if message.message_type != PtpMessageType.DELAY_REQ:
            return
        t4 = self.clock.read()  # hardware receive timestamp
        resp = PtpHeader(
            message_type=PtpMessageType.DELAY_RESP,
            sequence_id=message.sequence_id,
            source_port_identity=self.identity,
            timestamp=t4,
            requesting_port_identity=message.source_port_identity,
        )
        self.delay_resps_sent += 1
        self._send(Datagram(payload=resp.encode(), src="ptp-master",
                            dst=datagram.src, dst_port=320,
                            ident=self._sim.datagram_ids.allocate()))


class PtpSlave:
    """Slave-side endpoint collecting offset samples.

    Args:
        sim: Simulation kernel.
        clock: The slave's local clock.
        send: Callable putting datagrams on the wire toward the master.
        identity: 10-byte port identity.
        on_sample: Optional callback per completed exchange.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        send: Callable[[Datagram], None],
        identity: bytes = b"SLAVE00001",
        on_sample: Optional[Callable[[PtpSample], None]] = None,
    ) -> None:
        self._sim = sim
        self.clock = clock
        self._send = send
        self.identity = identity
        self.on_sample = on_sample
        self.samples: List[PtpSample] = []
        #: Per-sequence partial state: t2 (sync arrival), t1 (follow-up).
        self._t2: Dict[int, float] = {}
        self._t1: Dict[int, float] = {}
        self._t3: Dict[int, float] = {}

    def on_datagram(self, datagram: Datagram) -> None:
        """Handle master messages (Sync / Follow_Up / Delay_Resp)."""
        try:
            message = PtpHeader.decode(datagram.payload)
        except ValueError:
            return
        seq = message.sequence_id
        if message.message_type == PtpMessageType.SYNC:
            self._t2[seq] = self.clock.read()
            self._maybe_send_delay_req(seq)
        elif message.message_type == PtpMessageType.FOLLOW_UP:
            if message.timestamp is None:
                return
            self._t1[seq] = message.timestamp
            self._maybe_send_delay_req(seq)
        elif message.message_type == PtpMessageType.DELAY_RESP:
            if message.requesting_port_identity != self.identity:
                return
            if message.timestamp is None:
                return
            self._complete(seq, message.timestamp)

    def _maybe_send_delay_req(self, seq: int) -> None:
        if seq in self._t1 and seq in self._t2 and seq not in self._t3:
            t3 = self.clock.read()
            self._t3[seq] = t3
            req = PtpHeader(
                message_type=PtpMessageType.DELAY_REQ,
                sequence_id=seq,
                source_port_identity=self.identity,
            )
            self._send(Datagram(payload=req.encode(), src="ptp-slave",
                                dst="ptp-master", dst_port=319,
                                ident=self._sim.datagram_ids.allocate()))

    def _complete(self, seq: int, t4: float) -> None:
        t1 = self._t1.pop(seq, None)
        t2 = self._t2.pop(seq, None)
        t3 = self._t3.pop(seq, None)
        if t1 is None or t2 is None or t3 is None:
            return
        offset, mean_delay = compute_ptp_offset(t1, t2, t3, t4)
        sample = PtpSample(
            offset=offset, mean_path_delay=mean_delay,
            t1=t1, t2=t2, t3=t3, t4=t4, sequence_id=seq,
        )
        self.samples.append(sample)
        self._sim.trace.emit(
            self._sim.now, "ptp", "sample",
            offset=offset, mean_delay=mean_delay, seq=seq,
        )
        if self.on_sample is not None:
            self.on_sample(sample)

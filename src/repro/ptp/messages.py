"""PTPv2 message codecs (IEEE 1588-2008 wire format).

The 34-byte common header, the 10-byte PTP timestamp (48-bit seconds +
32-bit nanoseconds), and the event/general message bodies used by the
two-step mechanism: ``Sync``, ``Follow_Up``, ``Delay_Req``,
``Delay_Resp``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

PTP_VERSION = 2
HEADER_LEN = 34
TIMESTAMP_LEN = 10

#: messageType values (transport-specific nibble).
class PtpMessageType(IntEnum):
    """4-bit messageType field."""

    SYNC = 0x0
    DELAY_REQ = 0x1
    FOLLOW_UP = 0x8
    DELAY_RESP = 0x9
    ANNOUNCE = 0xB


#: Flag bit: twoStepFlag (octet 6, bit 1).
FLAG_TWO_STEP = 0x0200


def encode_ptp_timestamp(seconds: float) -> bytes:
    """Encode seconds (Unix) as a PTP timestamp (48-bit s + 32-bit ns)."""
    if seconds < 0:
        raise ValueError("PTP timestamps are non-negative")
    secs = int(seconds)
    nanos = int(round((seconds - secs) * 1e9))
    if nanos == 1_000_000_000:
        secs += 1
        nanos = 0
    return struct.pack("!HII", (secs >> 32) & 0xFFFF, secs & 0xFFFFFFFF, nanos)


def decode_ptp_timestamp(data: bytes) -> float:
    """Decode a 10-byte PTP timestamp to float seconds."""
    if len(data) != TIMESTAMP_LEN:
        raise ValueError(f"PTP timestamp must be 10 bytes, got {len(data)}")
    hi, lo, nanos = struct.unpack("!HII", data)
    if nanos >= 1_000_000_000:
        raise ValueError("invalid nanoseconds field")
    return ((hi << 32) | lo) + nanos / 1e9


@dataclass
class PtpHeader:
    """The PTPv2 common header plus the single-timestamp body used by
    the delay mechanism messages.

    Attributes:
        message_type: One of :class:`PtpMessageType`.
        sequence_id: Per-message-class sequence counter.
        source_port_identity: 10-byte clock+port identity.
        flags: Header flag field (two-step bit etc.).
        correction_ns: correctionField in nanoseconds (transparent-clock
            residence times; zero in this simulator).
        timestamp: The body's origin/receive timestamp (None encodes
            zero — Sync in two-step mode carries 0).
        requesting_port_identity: Only for Delay_Resp: the identity of
            the slave whose Delay_Req is being answered.
    """

    message_type: PtpMessageType
    sequence_id: int
    source_port_identity: bytes = b"\x00" * 10
    flags: int = 0
    correction_ns: int = 0
    timestamp: Optional[float] = None
    requesting_port_identity: Optional[bytes] = None

    def __post_init__(self) -> None:
        if len(self.source_port_identity) != 10:
            raise ValueError("sourcePortIdentity must be 10 bytes")
        if not 0 <= self.sequence_id <= 0xFFFF:
            raise ValueError("sequenceId out of range")
        if self.requesting_port_identity is not None and len(
            self.requesting_port_identity
        ) != 10:
            raise ValueError("requestingPortIdentity must be 10 bytes")

    def encode(self) -> bytes:
        """Serialise header + body."""
        body = (
            encode_ptp_timestamp(self.timestamp)
            if self.timestamp is not None
            else b"\x00" * TIMESTAMP_LEN
        )
        if self.message_type == PtpMessageType.DELAY_RESP:
            body += self.requesting_port_identity or b"\x00" * 10
        length = HEADER_LEN + len(body)
        header = (
            struct.pack("!BB", (0 << 4) | int(self.message_type), PTP_VERSION)
            + struct.pack("!H", length)
            + struct.pack("!BB", 0, 0)
            + struct.pack("!H", self.flags)
            + struct.pack("!q", self.correction_ns << 16)
            + b"\x00" * 4
            + self.source_port_identity
            + struct.pack("!H", self.sequence_id)
            + struct.pack("!B", _control_field(self.message_type))
            + struct.pack("!b", 0)  # logMessageInterval
        )
        assert len(header) == HEADER_LEN
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "PtpHeader":
        """Parse header + body."""
        if len(data) < HEADER_LEN:
            raise ValueError("PTP message too short")
        message_type = PtpMessageType(data[0] & 0x0F)
        version = data[1]
        if version != PTP_VERSION:
            raise ValueError(f"unsupported PTP version {version}")
        (length,) = struct.unpack("!H", data[2:4])
        if length > len(data):
            raise ValueError("truncated PTP message")
        (flags,) = struct.unpack("!H", data[6:8])
        (correction_raw,) = struct.unpack("!q", data[8:16])
        source_port_identity = bytes(data[20:30])
        (sequence_id,) = struct.unpack("!H", data[30:32])
        body = data[HEADER_LEN:length]
        timestamp = None
        requesting = None
        if len(body) >= TIMESTAMP_LEN:
            ts_bytes = body[:TIMESTAMP_LEN]
            if ts_bytes != b"\x00" * TIMESTAMP_LEN:
                timestamp = decode_ptp_timestamp(ts_bytes)
        if message_type == PtpMessageType.DELAY_RESP and len(body) >= 20:
            requesting = bytes(body[10:20])
        return cls(
            message_type=message_type,
            sequence_id=sequence_id,
            source_port_identity=source_port_identity,
            flags=flags,
            correction_ns=correction_raw >> 16,
            timestamp=timestamp,
            requesting_port_identity=requesting,
        )


def _control_field(message_type: PtpMessageType) -> int:
    """Deprecated v1-compat controlField values."""
    return {
        PtpMessageType.SYNC: 0x00,
        PtpMessageType.DELAY_REQ: 0x01,
        PtpMessageType.FOLLOW_UP: 0x02,
        PtpMessageType.DELAY_RESP: 0x03,
    }.get(message_type, 0x05)


def compute_ptp_offset(
    t1: float, t2: float, t3: float, t4: float
) -> Tuple[float, float]:
    """(offset of slave from master, mean path delay) per IEEE 1588:

        offset     = ((t2 - t1) - (t4 - t3)) / 2
        mean delay = ((t2 - t1) + (t4 - t3)) / 2
    """
    ms_diff = t2 - t1  # master-to-slave, includes +offset
    sm_diff = t4 - t3  # slave-to-master, includes -offset
    offset = (ms_diff - sm_diff) / 2.0
    mean_delay = (ms_diff + sm_diff) / 2.0
    return offset, mean_delay

"""Datagram container used by the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_datagram_ids = itertools.count(1)


def reset_datagram_ids() -> None:
    """Restart datagram numbering at 1.

    Idents land in trace records (e.g. link ``drop`` events), which are
    exported as telemetry; experiment entry points reset the counter so
    same-seed runs within one process stay byte-identical.
    """
    global _datagram_ids
    _datagram_ids = itertools.count(1)


@dataclass
class Datagram:
    """A UDP-like message in flight through the simulated network.

    Attributes:
        payload: Raw wire bytes (e.g. an encoded NTP packet).
        src: Source address label (free-form, e.g. ``"tn"``).
        dst: Destination address label.
        src_port / dst_port: UDP-style ports; clients allocate a unique
            source port per query and servers echo it back, which is
            how responses find the right outstanding request.
        sent_at: True (virtual) time the datagram left the sender.
        delivered_at: True time of delivery; None while in flight/lost.
        dropped: True if the network dropped the datagram.
        ident: Unique id for tracing request/response pairs.
    """

    payload: bytes
    src: str
    dst: str
    src_port: int = 0
    dst_port: int = 123
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    dropped: bool = False
    ident: int = field(default_factory=lambda: next(_datagram_ids))

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    def owd(self) -> Optional[float]:
        """One-way delay experienced, or None if not (yet) delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

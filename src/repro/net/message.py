"""Datagram container used by the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Fallback sequence for datagrams built outside a simulator (tests,
#: ad-hoc fixtures).  Simulation code allocates idents from the per-run
#: :class:`DatagramIdAllocator` on the :class:`~repro.simcore.simulator.
#: Simulator` instead, so same-seed runs are byte-identical without any
#: process-global reset.
_datagram_ids = itertools.count(1)  # repro: noqa[CONC003]


class DatagramIdAllocator:
    """Per-run datagram ident sequence (1, 2, 3, ...).

    Each :class:`~repro.simcore.simulator.Simulator` owns one, so the
    idents appearing in trace records are a function of the run alone —
    not of how many runs happened earlier in the process.
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 1

    def allocate(self) -> int:
        """Return the next ident in this run's sequence."""
        ident = self._next
        self._next += 1
        return ident


@dataclass
class Datagram:
    """A UDP-like message in flight through the simulated network.

    Attributes:
        payload: Raw wire bytes (e.g. an encoded NTP packet).
        src: Source address label (free-form, e.g. ``"tn"``).
        dst: Destination address label.
        src_port / dst_port: UDP-style ports; clients allocate a unique
            source port per query and servers echo it back, which is
            how responses find the right outstanding request.
        sent_at: True (virtual) time the datagram left the sender.
        delivered_at: True time of delivery; None while in flight/lost.
        dropped: True if the network dropped the datagram.
        ident: Unique id for tracing request/response pairs.
        trace_id: Causal exchange id propagated across hops; set by the
            originating client, echoed onto replies by servers, so one
            request/response pair reconstructs as a single tree in the
            trace log (see :mod:`repro.obs.causal`).
    """

    payload: bytes
    src: str
    dst: str
    src_port: int = 0
    dst_port: int = 123
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    dropped: bool = False
    ident: int = field(default_factory=lambda: next(_datagram_ids))
    trace_id: Optional[str] = None

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    def owd(self) -> Optional[float]:
        """One-way delay experienced, or None if not (yet) delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

"""Network path substrate.

Models one-way delays, jitter and loss on the paths between the testbed
nodes and the (simulated) stratum servers, plus presets calibrated to
the per-provider latency categories observed in the paper's Figure 1.
"""

from repro.net.message import Datagram
from repro.net.path import PathModel, DelaySample
from repro.net.link import Link, LinkEffect
from repro.net.internet import InternetPath, PROVIDER_CATEGORY_PROFILES, CategoryProfile

__all__ = [
    "Datagram",
    "PathModel",
    "DelaySample",
    "Link",
    "LinkEffect",
    "InternetPath",
    "CategoryProfile",
    "PROVIDER_CATEGORY_PROFILES",
]

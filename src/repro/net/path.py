"""One-way path delay/loss model.

A :class:`PathModel` produces per-packet one-way delays composed of a
fixed propagation base, a queueing term (Gamma-distributed, the common
empirical fit for access-network queueing), and occasional heavy-tail
spikes (bufferbloat episodes).  Loss is Bernoulli per packet.  The two
directions of a path are modelled by two independent ``PathModel``
instances so asymmetry — a first-order concern for NTP offset error —
falls out naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DelaySample:
    """Result of sampling the path for one packet.

    Attributes:
        delay: One-way delay in seconds (meaningless if ``lost``).
        lost: Whether the packet was dropped.
        base: Propagation floor component of ``delay``.
        queue: Gamma queueing component of ``delay``.
        spike: Bufferbloat spike component of ``delay``.

    The three components sum to ``delay``; they feed the per-hop delay
    breakdown the causal tracer records (:mod:`repro.obs.causal`).
    """

    delay: float
    lost: bool
    base: float = 0.0
    queue: float = 0.0
    spike: float = 0.0


class PathModel:
    """Stochastic one-way delay and loss generator.

    Args:
        rng: Random stream for this path direction.
        base_delay: Fixed propagation+transmission floor (seconds).
        queue_mean: Mean of the Gamma queueing term (seconds).
        queue_shape: Gamma shape; small values give burstier queueing.
        loss_rate: Bernoulli packet loss probability.
        spike_rate: Probability a packet hits a bufferbloat episode.
        spike_scale: Exponential scale of the spike magnitude (seconds).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        base_delay: float = 0.020,
        queue_mean: float = 0.003,
        queue_shape: float = 1.2,
        loss_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_scale: float = 0.100,
    ) -> None:
        if base_delay < 0 or queue_mean < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if not 0.0 <= spike_rate < 1.0:
            raise ValueError("spike rate must be in [0, 1)")
        if queue_shape <= 0:
            raise ValueError("queue shape must be positive")
        self._rng = rng
        self.base_delay = float(base_delay)
        self.queue_mean = float(queue_mean)
        self.queue_shape = float(queue_shape)
        self.loss_rate = float(loss_rate)
        self.spike_rate = float(spike_rate)
        self.spike_scale = float(spike_scale)

    def sample(self) -> DelaySample:
        """Draw the fate of one packet on this path direction."""
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            return DelaySample(delay=float("inf"), lost=True)
        queue = 0.0
        spike = 0.0
        if self.queue_mean > 0:
            scale = self.queue_mean / self.queue_shape
            queue = float(self._rng.gamma(self.queue_shape, scale))
        if self.spike_rate > 0 and self._rng.random() < self.spike_rate:
            spike = float(self._rng.exponential(self.spike_scale))
        return DelaySample(
            delay=self.base_delay + queue + spike,
            lost=False,
            base=self.base_delay,
            queue=queue,
            spike=spike,
        )

    def min_delay(self) -> float:
        """The propagation floor — what min-OWD filtering converges to."""
        return self.base_delay

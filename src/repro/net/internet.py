"""Internet path presets per provider category.

Figure 1 of the paper groups the top-25 service providers into four
latency classes by their clients' minimum one-way delays to the NTP
servers:

=============== ================= ===============================
Category        Median min-OWD    Notes from the paper
=============== ================= ===============================
cloud/hosting   ~40 ms            very low, tight IQR (SP 1-3)
ISP             ~50 ms            medium trend (SP 4-9)
broadband       ~250 ms           high latency (SP 10-21)
mobile          ~550 ms           very high, huge IQR (SP 22-25)
=============== ================= ===============================

These presets generate per-client minimum OWDs with those marginals.
Individual clients of a provider draw a min-OWD from a log-normal
centred on the category median; mobile clients additionally get a wide
spread reproducing the paper's "linear trend" / high-IQR observation,
attributed to broad geographic distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.net.path import PathModel


@dataclass(frozen=True)
class CategoryProfile:
    """Latency statistics for one provider category.

    Attributes:
        name: Category identifier.
        median_min_owd: Median of the per-client minimum OWD (seconds).
        sigma_log: Log-normal sigma controlling the interquartile range.
        queue_mean: Typical queueing delay on top of the floor (seconds).
        loss_rate: Typical packet loss probability.
        spike_rate: Probability of heavy-tail delay episodes.
    """

    name: str
    median_min_owd: float
    sigma_log: float
    queue_mean: float
    loss_rate: float
    spike_rate: float


#: Calibrated to Figure 1 (medians) and the qualitative IQR observations.
PROVIDER_CATEGORY_PROFILES: Dict[str, CategoryProfile] = {
    "cloud": CategoryProfile(
        name="cloud",
        median_min_owd=0.040,
        sigma_log=0.25,
        queue_mean=0.002,
        loss_rate=0.0005,
        spike_rate=0.001,
    ),
    "isp": CategoryProfile(
        name="isp",
        median_min_owd=0.050,
        sigma_log=0.35,
        queue_mean=0.004,
        loss_rate=0.002,
        spike_rate=0.005,
    ),
    "broadband": CategoryProfile(
        name="broadband",
        median_min_owd=0.250,
        sigma_log=0.45,
        queue_mean=0.015,
        loss_rate=0.005,
        spike_rate=0.02,
    ),
    "mobile": CategoryProfile(
        name="mobile",
        median_min_owd=0.550,
        sigma_log=0.70,
        queue_mean=0.060,
        loss_rate=0.02,
        spike_rate=0.08,
    ),
}


class InternetPath:
    """Factory for per-client bidirectional path models of a category."""

    def __init__(self, profile: CategoryProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self._rng = rng

    def sample_client_min_owd(self) -> float:
        """Draw one client's minimum OWD (the propagation floor)."""
        mu = np.log(self.profile.median_min_owd)
        return float(self._rng.lognormal(mean=mu, sigma=self.profile.sigma_log))

    def make_direction(self, base_delay: float, asymmetry: float = 1.0) -> PathModel:
        """Build one direction's :class:`PathModel`.

        Args:
            base_delay: Propagation floor for this client (from
                :meth:`sample_client_min_owd`).
            asymmetry: Multiplier applied to this direction's floor;
                the reverse direction typically uses ``2 - asymmetry``.
        """
        p = self.profile
        return PathModel(
            rng=self._rng,
            base_delay=base_delay * asymmetry,
            queue_mean=p.queue_mean,
            queue_shape=1.1,
            loss_rate=p.loss_rate,
            spike_rate=p.spike_rate,
            spike_scale=max(0.05, base_delay * 0.5),
        )

    def make_pair(self) -> "tuple[PathModel, PathModel]":
        """Build a (forward, reverse) pair for one client with mild
        random asymmetry."""
        floor = self.sample_client_min_owd()
        asym = float(self._rng.uniform(0.85, 1.15))
        fwd = self.make_direction(floor, asymmetry=asym)
        rev = self.make_direction(floor, asymmetry=2.0 - asym)
        return fwd, rev

"""Link: glues a pair of PathModels to the simulator event queue.

A :class:`Link` moves :class:`~repro.net.message.Datagram` objects from
one endpoint to another with sampled delay/loss, invoking the receiver
callback at the delivery instant.  Extra per-packet delay and loss
contributed by higher-level effects (e.g. the wireless channel state at
transmission time) is injected via optional hook callables, keeping the
wireless model decoupled from the transport plumbing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.net.message import Datagram
from repro.net.path import PathModel
from repro.simcore.simulator import Simulator

ReceiveFn = Callable[[Datagram], None]
ExtraEffectFn = Callable[[], "LinkEffect"]


class LinkEffect:
    """Additional (delay, loss) contributed by a dynamic effect source.

    ``retry_delay`` is the portion of ``extra_delay`` caused by 802.11
    retransmission backoff — the part attributable to interference /
    poor SNR rather than contention queueing.  The causal tracer uses
    the split to name the cause of a delayed packet.

    ``duplicate_extra``, when set, asks the link to deliver a second
    copy of the packet that many seconds after the first (duplication
    faults; see :mod:`repro.faults.injectors`).
    """

    __slots__ = ("extra_delay", "lost", "retry_delay", "duplicate_extra")

    def __init__(
        self,
        extra_delay: float = 0.0,
        lost: bool = False,
        retry_delay: float = 0.0,
        duplicate_extra: Optional[float] = None,
    ) -> None:
        self.extra_delay = extra_delay
        self.lost = lost
        self.retry_delay = retry_delay
        self.duplicate_extra = duplicate_extra


class Link:
    """Unidirectional datagram pipe with stochastic delay and loss.

    Args:
        sim: The simulation kernel (supplies time and scheduling).
        path: Base path delay/loss model for this direction.
        receive: Callback invoked with each delivered datagram.
        effect_hook: Optional callable sampled per packet for extra
            delay/loss (the wireless channel plugs in here).
        name: Label used in trace records.
    """

    def __init__(
        self,
        sim: Simulator,
        path: PathModel,
        receive: ReceiveFn,
        effect_hook: Optional[ExtraEffectFn] = None,
        name: str = "link",
    ) -> None:
        self._sim = sim
        self.path = path
        self._receive = receive
        self._effect_hook = effect_hook
        self.name = name
        self.sent = 0
        self.delivered = 0
        self.lost = 0

    def send(self, datagram: Datagram) -> None:
        """Inject ``datagram``; it is delivered (or dropped) later."""
        self.sent += 1
        datagram.sent_at = self._sim.now
        sample = self.path.sample()
        effect = self._effect_hook() if self._effect_hook else LinkEffect()
        if sample.lost or effect.lost:
            datagram.dropped = True
            self.lost += 1
            self._sim.telemetry.emit(
                self._sim.now, self.name, "drop", ident=datagram.ident,
                dst=datagram.dst, trace_id=datagram.trace_id,
            )
            return
        delay = sample.delay + effect.extra_delay
        # Per-hop causal span: the delay is recorded split into its
        # physical causes so obs.explain can attribute offset error.
        span = self._sim.telemetry.spans.begin(
            "link.transit",
            link=self.name,
            ident=datagram.ident,
            trace_id=datagram.trace_id,
            prop_s=sample.base,
            queue_s=sample.queue + sample.spike
            + (effect.extra_delay - effect.retry_delay),
            intf_s=effect.retry_delay,
        )

        def deliver() -> None:
            datagram.delivered_at = self._sim.now
            self.delivered += 1
            span.end()
            self._receive(datagram)

        self._sim.call_after(delay, deliver, label=f"{self.name}:deliver")
        if effect.duplicate_extra is not None:
            self._send_duplicate(datagram, delay + effect.duplicate_extra)

    def _send_duplicate(self, original: Datagram, delay: float) -> None:
        """Deliver a second copy of ``original`` after ``delay``.

        The copy keeps the payload and trace id (it *is* the same wire
        packet) but gets its own ident so trace consumers can tell the
        two deliveries apart.
        """
        duplicate = replace(original, ident=self._sim.datagram_ids.allocate())
        span = self._sim.telemetry.spans.begin(
            "link.transit",
            link=self.name,
            ident=duplicate.ident,
            trace_id=duplicate.trace_id,
            prop_s=0.0,
            queue_s=delay,
            intf_s=0.0,
            duplicate=1,
        )

        def deliver() -> None:
            duplicate.delivered_at = self._sim.now
            self.delivered += 1
            span.end()
            self._receive(duplicate)

        self._sim.call_after(delay, deliver, label=f"{self.name}:deliver-dup")

"""The ``lint`` command implementation.

Shared between ``repro-mntp lint`` (a subcommand of the main CLI) and
``python -m repro.analysis`` (standalone), so both accept identical
options and return identical exit codes:

* 0 — no new findings (baselined findings do not fail the run),
* 1 — at least one new finding or an unreadable file,
* 2 — usage errors (unknown rule ids, bad baseline file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.analysis.engine import Engine
from repro.analysis.reporting import render_human, render_json


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human",
        dest="output_format", help="output format",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_BASELINE_NAME,
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME}; "
             "a missing file means an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every shipped rule and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    try:
        engine = Engine(
            select=_split(args.select), ignore=_split(args.ignore)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_rules:
        from repro.analysis.rules import all_rules

        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}  {rule_cls.summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2

    result = engine.check_paths(paths)

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} to {baseline_path}"
        )
        return 0

    if args.no_baseline:
        baseline = set()
    else:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    match = match_baseline(result.findings, baseline)

    if args.output_format == "json":
        print(render_json(result, match))
    else:
        print(render_human(result, match))
    return 1 if (match.new or result.errors) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Domain-aware static analysis for the MNTP reproduction: "
        "simulation determinism, time-unit safety, generic correctness.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]

"""The ``lint`` command implementation.

Shared between ``repro-mntp lint`` (a subcommand of the main CLI) and
``python -m repro.analysis`` (standalone), so both accept identical
options and return identical exit codes:

* 0 — no new findings (baselined findings do not fail the run),
* 1 — at least one new finding or an unreadable file,
* 2 — usage errors (unknown rule ids, bad baseline file, refused
  flag combinations such as ``--update-baseline`` with ``--select``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_NAME, LintCache, config_key
from repro.analysis.engine import Engine
from repro.analysis.fix import apply_fixes, plan_fixes
from repro.analysis.reporting import render_human, render_json, render_sarif


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format", choices=["human", "json", "sarif"], default="human",
        dest="output_format", help="output format",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_BASELINE_NAME,
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME}; "
             "a missing file means an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from a full-rule run; refuses to run "
             "with --select/--ignore (a partial run would silently drop "
             "entries for the disabled rules)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="auto-fix mechanically repairable findings (unused imports, "
             "missing __all__, unambiguous unit-suffix renames), then "
             "re-lint",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="with --fix: print the unified diff, write nothing",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the per-file phase (default 1: "
             "in-process; output is identical either way)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-phase timing and cache hit rate after the report",
    )
    parser.add_argument(
        "--profile", metavar="PATH", dest="profile_path",
        help="rank findings and the hot-path report by measured cost "
             "from a 'repro-mntp profile' artifact",
    )
    parser.add_argument(
        "--hot-report", action="store_true",
        help="print the hot-closure report (static order, or measured "
             "order with --profile)",
    )
    parser.add_argument(
        "--hot-top", type=int, default=15, metavar="N",
        help="rows shown in the hot-path report (default 15)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help=f"disable the incremental cache ({DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--cache-path", metavar="PATH", default=DEFAULT_CACHE_NAME,
        help=argparse.SUPPRESS,  # for tests; the default name is the contract
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every shipped rule and exit",
    )
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print the catalogue entry (summary, rationale, example, "
             "fix guidance) for one rule and exit",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="only analyse files changed vs the merge-base with "
             "origin/main (falls back to a full run outside a git repo)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.update_baseline and (args.select or args.ignore):
        print(
            "error: refusing to run --update-baseline with --select/"
            "--ignore: a partial-rule run would write a partial baseline",
            file=sys.stderr,
        )
        return 2
    if args.dry_run and not args.fix:
        print("error: --dry-run requires --fix", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    if args.changed and (args.write_baseline or args.update_baseline):
        print(
            "error: refusing to run --changed with --write-baseline/"
            "--update-baseline: a partial-tree run would write a "
            "partial baseline",
            file=sys.stderr,
        )
        return 2

    if args.explain:
        return _explain(args.explain)

    profile = None
    if args.profile_path:
        from repro.analysis.profile import load_profile

        try:
            profile = load_profile(Path(args.profile_path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        engine = Engine(
            select=_split(args.select), ignore=_split(args.ignore)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_rules:
        from repro.analysis.rules import all_project_rules, all_rules

        catalogue = {**all_rules(), **all_project_rules()}
        for rule_id, rule_cls in sorted(catalogue.items()):
            print(f"{rule_id}  {rule_cls.summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2

    if args.changed:
        changed = _changed_files()
        if changed is None:
            print(
                "note: --changed: not a git checkout with a merge-base "
                "against origin/main; analysing the full tree",
                file=sys.stderr,
            )
        else:
            paths = _restrict_to_changed(paths, changed)
            if not paths:
                print("no changed files under the given paths")
                return 0

    cache = None
    if not args.no_cache:
        cache = LintCache(
            Path(args.cache_path), config_key(engine.rule_ids)
        )

    result = engine.check_paths(paths, cache=cache, jobs=args.jobs)

    if args.fix:
        fixes = plan_fixes(result.findings)
        if args.dry_run:
            for fix in fixes:
                diff = fix.diff()
                if diff:
                    print(diff, end="")
            print(
                f"would fix {sum(len(f.applied) for f in fixes)} finding(s) "
                f"in {sum(1 for f in fixes if f.changed)} file(s) (dry run)"
            )
        else:
            changed = apply_fixes(fixes)
            print(
                f"fixed {sum(len(f.applied) for f in fixes)} finding(s) "
                f"in {changed} file(s)"
            )
            # Re-lint so the reported findings reflect the fixed tree.
            result = engine.check_paths(paths, cache=cache, jobs=args.jobs)
        for fix in fixes:
            for rendered in fix.skipped:
                print(f"not auto-fixable: {rendered}")

    if cache is not None:
        cache.save()

    baseline_path = Path(args.baseline)
    if args.write_baseline or args.update_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} to {baseline_path}"
        )
        return 0

    if args.no_baseline:
        baseline = set()
    else:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    match = match_baseline(result.findings, baseline)

    if profile is not None:
        from repro.analysis.flow.hot import rank_findings_by_profile

        match.new = rank_findings_by_profile(
            match.new, result.project, profile
        )

    if (args.hot_report or profile is not None) and result.project is not None:
        from repro.analysis.flow.hot import render_hot_report

        report = render_hot_report(
            result.project, profile=profile, top=args.hot_top
        )
        # Keep json/sarif stdout machine-parseable.
        stream = sys.stdout if args.output_format == "human" else sys.stderr
        print(report, file=stream)

    if args.output_format == "json":
        print(render_json(result, match))
    elif args.output_format == "sarif":
        print(render_sarif(result, match))
    else:
        print(render_human(result, match))

    if args.stats:
        stats = result.stats
        checked = stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
        rate = stats.get("cache_hits", 0) / checked if checked else 0.0
        stream = sys.stdout if args.output_format == "human" else sys.stderr
        print(
            f"stats: {stats.get('files', 0)} files, cache "
            f"{stats.get('cache_hits', 0)}/{checked} hits ({rate:.0%}), "
            f"jobs {stats.get('jobs', 1)}, "
            f"phase1 {stats.get('phase1_s', 0.0):.3f}s, "
            f"phase2 {stats.get('phase2_s', 0.0):.3f}s",
            file=stream,
        )
    return 1 if (match.new or result.errors) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Domain-aware static analysis for the MNTP reproduction: "
        "simulation determinism, time-unit safety, generic correctness.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _explain(rule_id: str) -> int:
    """Print one rule's catalogue entry; exit 2 with a hint if unknown."""
    import difflib
    import textwrap

    from repro.analysis.catalogue import ENTRIES
    from repro.analysis.rules import all_project_rules, all_rules

    catalogue = {**all_rules(), **all_project_rules()}
    rule_cls = catalogue.get(rule_id) or catalogue.get(rule_id.upper())
    if rule_cls is None:
        close = difflib.get_close_matches(
            rule_id.upper(), sorted(catalogue), n=1
        )
        hint = f"; did you mean {close[0]}?" if close else ""
        print(f"error: unknown rule id '{rule_id}'{hint}", file=sys.stderr)
        return 2
    extra = ENTRIES.get(rule_cls.rule_id, {})
    print(f"{rule_cls.rule_id} — {rule_cls.summary}")
    sections = (
        ("rationale", rule_cls.rationale or extra.get("rationale", "")),
        ("example", rule_cls.example or extra.get("example", "")),
        ("fix", rule_cls.fix_hint or extra.get("fix_hint", "")),
    )
    for title, body in sections:
        if body:
            print(f"\n{title}:")
            print(textwrap.indent(textwrap.dedent(body).strip("\n"), "  "))
    return 0


def _changed_files() -> Optional[List[Path]]:
    """Files changed vs the origin/main merge-base, or None without git.

    Includes committed, staged, unstaged, and untracked changes — the
    pre-commit use case wants everything the working tree differs by.
    """
    import subprocess

    def git(*argv: str) -> Optional[List[str]]:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        if proc.returncode != 0:
            return None
        return [line for line in proc.stdout.split("\0") if line]

    base = git("merge-base", "HEAD", "origin/main")
    if not base:
        return None
    merge_base = base[0].strip()
    diffed = git("diff", "--name-only", "-z", merge_base)
    if diffed is None:
        return None
    untracked = git("ls-files", "--others", "--exclude-standard", "-z") or []
    return [Path(name) for name in sorted(set(diffed) | set(untracked))]


def _restrict_to_changed(
    paths: List[Path], changed: List[Path]
) -> List[Path]:
    """The changed python files that fall under the requested paths."""
    roots = [p.resolve() for p in paths]
    keep: List[Path] = []
    for path in changed:
        if path.suffix != ".py" or not path.is_file():
            continue
        resolved = path.resolve()
        if any(root == resolved or root in resolved.parents
               for root in roots):
            keep.append(path)
    return keep

"""The ``repro-mntp profile`` harness: measured hot-path artifacts.

Runs one named scenario (deterministic: fixed seed, virtual time)
under :mod:`cProfile` and reduces the pstats table to a JSON artifact
in ``benchmarks/``::

    {"format": "mntp-profile-v1", "scenario": ..., "seed": ...,
     "duration_s": ..., "functions": [
        {"path": "repro/simcore/simulator.py", "line": 151,
         "name": "run_until", "ncalls": 1, "tottime_s": ..., "cumtime_s": ...},
        ...]}

Call counts are exactly reproducible run to run (the simulation is
seeded and virtual-time); wall-clock fields are measured and therefore
machine-dependent, which is why consumers rank by them but never
compare them across artifacts.  ``lint --profile <artifact>`` joins
the samples onto the static hot closure
(:mod:`repro.analysis.flow.hot`), ranking both the hot-path report and
the PERF/CONC findings by measured cost instead of guessed cost.

Each run also appends a ``"mode": "profile"`` entry to the
``BENCH_obs.json`` trajectory (same document the bench harness grows),
so hot-path composition shifts stay visible over time next to the
bench timings.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

PROFILE_FORMAT = "mntp-profile-v1"

#: Where ``profile --smoke`` writes its artifact (the check.sh gate).
DEFAULT_PROFILE_PATH = "benchmarks/profile-smoke.json"

#: The smoke scenario: wireless + MNTP, so the event loop, the wireless
#: sampler, and both protocol stacks all appear in the profile.
SMOKE_SCENARIO = "mntp_wireless_corrected"
SMOKE_DURATION_S = 900.0

DEFAULT_TRAJECTORY = "BENCH_obs.json"
_TRAJECTORY_FORMAT = "mntp-bench-trajectory-v1"

#: Entries carried into the trajectory per profile run.
_TRAJECTORY_TOP = 10


def _norm(path: str) -> str:
    """Repo-relative ``repro/...`` form of a source path.

    Profile frames carry absolute interpreter paths while lint displays
    are cwd-relative; both reduce to the suffix starting at the
    ``repro`` package so the join is location-independent.
    """
    posix = Path(path).as_posix()
    index = posix.rfind("/repro/")
    if index >= 0:
        return "repro/" + posix[index + len("/repro/"):]
    return posix


def profile_scenario(
    scenario_name: str, seed: int = 0, duration_s: Optional[float] = None
) -> Tuple[cProfile.Profile, float]:
    """Run a scenario under cProfile; returns (profiler, wall seconds)."""
    from repro.testbed.experiment import ExperimentRunner
    from repro.testbed.scenarios import SCENARIOS

    scenario = SCENARIOS[scenario_name]
    runner = ExperimentRunner(
        seed=seed,
        options=scenario.options_factory(),
        duration=duration_s if duration_s is not None else scenario.duration,
        sntp_cadence=scenario.cadence,
        run_sntp=scenario.run_sntp,
        mntp_config=(
            scenario.mntp_config_factory()
            if scenario.mntp_config_factory is not None
            else None
        ),
    )
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        runner.run()
    finally:
        profiler.disable()
    return profiler, time.perf_counter() - start


def collect_functions(profiler: cProfile.Profile) -> List[Dict[str, Any]]:
    """Reduce a profiler to repo-function rows, sorted by location."""
    stats = pstats.Stats(profiler)
    rows: List[Dict[str, Any]] = []
    for (filename, lineno, name), value in stats.stats.items():
        _, ncalls, tottime, cumtime = value[:4]
        norm = _norm(filename)
        if not norm.startswith("repro/"):
            continue
        rows.append({
            "path": norm,
            "line": lineno,
            "name": name,
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    rows.sort(key=lambda r: (r["path"], r["line"], r["name"]))
    return rows


def write_profile(
    path: Path,
    *,
    scenario: str,
    seed: int,
    duration_s: float,
    functions: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Write the artifact document; returns it."""
    document = {
        "format": PROFILE_FORMAT,
        "scenario": scenario,
        "seed": seed,
        "duration_s": duration_s,
        "functions": functions,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    return document


class ProfileData:
    """A loaded artifact, indexed for the lint-side join.

    The join key is (normalized path, function name); same-name frames
    in one file (closures, nested defs) merge by summing call counts
    and keeping the largest cumulative time.
    """

    def __init__(self, document: Dict[str, Any]) -> None:
        self.document = document
        self._index: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for row in document.get("functions", []):
            key = (row["path"], row["name"])
            entry = self._index.get(key)
            if entry is None:
                self._index[key] = {
                    "ncalls": row["ncalls"],
                    "cumtime_s": row["cumtime_s"],
                    "tottime_s": row["tottime_s"],
                }
            else:
                entry["ncalls"] += row["ncalls"]
                entry["cumtime_s"] = max(entry["cumtime_s"], row["cumtime_s"])
                entry["tottime_s"] += row["tottime_s"]

    def lookup(self, path: str, name: str) -> Optional[Dict[str, Any]]:
        """Sample for a lint display path + function name, if profiled."""
        return self._index.get((_norm(path), name))

    def describe(self) -> str:
        """Provenance line for report headers."""
        return (
            f"cumtime from scenario '{self.document.get('scenario')}' "
            f"(seed {self.document.get('seed')}, "
            f"{self.document.get('duration_s')} virtual s)"
        )


def load_profile(path: Path) -> ProfileData:
    """Load and validate an artifact; raises ``ValueError`` on mismatch."""
    with open(path) as f:
        document = json.load(f)
    if not isinstance(document, dict) or document.get("format") != PROFILE_FORMAT:
        raise ValueError(
            f"{path} is not a {PROFILE_FORMAT} artifact; "
            "generate one with 'repro-mntp profile'"
        )
    return ProfileData(document)


def migrate_trajectory_runs(
    runs: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Normalise trajectory runs to the wall-seconds schema, in place.

    Early trajectories recorded every run's wall clock as
    ``total_seconds`` — including profile-mode runs, whose single
    scenario wall time is not a bench-suite total and polluted any
    consumer summing or comparing totals across the trajectory.  The
    current schema stores each run's own wall clock as
    ``wall_seconds`` and reserves ``total_seconds`` for bench-suite
    runs (sum over benches).  Old entries are migrated on every
    append: ``wall_seconds`` is backfilled from ``total_seconds`` (or
    the bench sum) and profile runs drop ``total_seconds``.
    """
    for run in runs:
        if "wall_seconds" not in run:
            total = run.get("total_seconds")
            if total is None:
                total = round(
                    sum(float(v) for v in run.get("benches", {}).values()), 3
                )
            run["wall_seconds"] = total
        if run.get("mode") == "profile":
            run.pop("total_seconds", None)
    return runs


def append_trajectory(
    path: Path, document: Dict[str, Any], wall_s: float
) -> Optional[int]:
    """Append a profile run to the bench trajectory; returns its number.

    Only a missing file or an existing trajectory document is written;
    anything else is left untouched (return None) — this helper must
    never clobber a file it does not understand.
    """
    runs: List[Dict[str, Any]] = []
    if path.exists():
        try:
            with open(path) as f:
                existing = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(existing, dict)
            or existing.get("format") != _TRAJECTORY_FORMAT
        ):
            return None
        runs = migrate_trajectory_runs(list(existing.get("runs", [])))
    ranked = sorted(
        document["functions"],
        key=lambda r: (-r["cumtime_s"], r["path"], r["name"]),
    )[:_TRAJECTORY_TOP]
    number = len(runs) + 1
    runs.append({
        "run": number,
        "mode": "profile",
        "benches": {},
        "wall_seconds": round(wall_s, 3),
        "profile": {
            "scenario": document["scenario"],
            "seed": document["seed"],
            "duration_s": document["duration_s"],
            "top_cumtime": [
                {
                    "function": f"{r['path']}::{r['name']}",
                    "ncalls": r["ncalls"],
                    "cumtime_s": r["cumtime_s"],
                }
                for r in ranked
            ],
        },
    })
    with open(path, "w") as f:
        json.dump(
            {"format": _TRAJECTORY_FORMAT, "runs": runs},
            f, indent=2, sort_keys=True,
        )
    return number


def run_profile_command(args: Any) -> int:
    """Back end of the ``repro-mntp profile`` subcommand."""
    from repro.testbed.scenarios import SCENARIOS

    scenario = args.scenario or SMOKE_SCENARIO
    if scenario not in SCENARIOS:
        print(f"error: unknown scenario: {scenario}")
        return 2
    duration_s = args.duration
    if duration_s is None and args.smoke:
        duration_s = SMOKE_DURATION_S
    if duration_s is None:
        duration_s = SCENARIOS[scenario].duration

    profiler, wall_s = profile_scenario(
        scenario, seed=args.seed, duration_s=duration_s
    )
    functions = collect_functions(profiler)
    out = Path(args.out)
    document = write_profile(
        out, scenario=scenario, seed=args.seed,
        duration_s=duration_s, functions=functions,
    )
    print(
        f"profiled '{scenario}' (seed {args.seed}, {duration_s:g} virtual s, "
        f"{wall_s:.2f} wall s): {len(functions)} repro functions -> {out}"
    )

    ranked = sorted(
        functions, key=lambda r: (-r["cumtime_s"], r["path"], r["name"])
    )
    print(f"top {min(args.top, len(ranked))} by cumulative time:")
    for row in ranked[: args.top]:
        print(
            f"  {row['cumtime_s']:8.3f}s {row['ncalls']:>9}x  "
            f"{row['path']}:{row['line']} {row['name']}"
        )

    if not args.no_trajectory:
        number = append_trajectory(Path(args.trajectory), document, wall_s)
        if number is not None:
            print(f"run {number} appended to trajectory {args.trajectory}")
        else:
            print(
                f"trajectory {args.trajectory} not in "
                f"{_TRAJECTORY_FORMAT} format; skipped append"
            )
    return 0

"""Domain-aware static analysis for the MNTP reproduction.

Two invariants keep the experiments in this repository trustworthy, and
neither is checked by the interpreter:

* **Determinism** — every run must be bit-for-bit reproducible from its
  root seed: no wall-clock reads inside the simulator, all randomness
  through :class:`repro.simcore.random.RngRegistry` named streams.
* **Time-unit safety** — a quantity declared in one unit (``_s``,
  ``_ms``, ``_us``, ``_ns`` suffixes, NTP wire fixed-point) must never
  silently meet a quantity in another.

This package enforces both (plus a few generic correctness rules) as an
AST-based lint, runnable as ``repro-mntp lint`` or
``python -m repro.analysis``.  See ``docs/STATIC_ANALYSIS.md`` for the
rule catalogue and the suppression/baseline workflow.
"""

from repro.analysis.baseline import (
    BaselineMatch,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    AnalysisResult,
    Engine,
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    fingerprint_findings,
    load_source,
)
from repro.analysis.reporting import render_human, render_json, render_sarif
from repro.analysis.rules import all_project_rules, all_rules


def check_source(text, *, module="sample", path="<memory>", select=None,
                 ignore=None, project=False):
    """Analyse a source string with a fresh engine (test convenience).

    ``project=True`` additionally runs the interprocedural rules over
    the single module (intra-module call resolution only).
    """
    return Engine(select=select, ignore=ignore).check_source(
        text, path=path, module=module, project=project
    )


__all__ = [
    "AnalysisResult",
    "BaselineMatch",
    "Engine",
    "Finding",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "all_project_rules",
    "all_rules",
    "check_source",
    "fingerprint_findings",
    "load_baseline",
    "load_source",
    "match_baseline",
    "render_human",
    "render_json",
    "render_sarif",
    "write_baseline",
]

"""Auto-fixes for the mechanical finding classes.

``repro-mntp lint --fix`` rewrites exactly the violations whose repair
is deterministic and provably local:

* **COR004** — unused imports: the dead alias is dropped from its
  ``import``/``from ... import`` statement (the whole statement when no
  alias survives);
* **COR003** — a package ``__init__`` binding public names without
  ``__all__``: an ``__all__`` listing the public bound names, sorted,
  is appended;
* **UNIT005** — a unit-suffix rename, only where a *single consistent
  fix exists*: the assignment target is a simple local name bound
  exactly once in its scope, and the corrected name is not already in
  use there.  All occurrences in the scope are renamed.

Everything else (UNIT001/002/004, DET*, ...) needs judgement — a
conversion, a refactor, or a justification — and is deliberately left
to a human.  ``--fix --dry-run`` prints the unified diff and writes
nothing.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Finding

#: Rules --fix knows how to repair.
FIXABLE_RULES = frozenset({"COR003", "COR004", "UNIT005"})

_UNUSED_IMPORT_RE = re.compile(r"import '(?P<name>[^']+)' is never used")
_RENAME_RE = re.compile(
    r"assignment target '(?P<target>[^']+)' is declared "
    r"'(?P<declared>\w+)' but .* returns '(?P<actual>\w+)'"
)


@dataclass
class FileFix:
    """The outcome of fixing one file."""

    path: str
    original: str
    fixed: str
    applied: List[str] = field(default_factory=list)   # finding renderings
    skipped: List[str] = field(default_factory=list)   # fixable but unsafe

    @property
    def changed(self) -> bool:
        return self.fixed != self.original

    def diff(self) -> str:
        """Unified diff of the fix, for ``--dry-run``."""
        return "".join(
            difflib.unified_diff(
                self.original.splitlines(keepends=True),
                self.fixed.splitlines(keepends=True),
                fromfile=f"a/{self.path}",
                tofile=f"b/{self.path}",
            )
        )


def plan_fixes(findings: Sequence[Finding]) -> List[FileFix]:
    """Compute fixes for every fixable finding, grouped per file.

    Reads each affected file from disk; unreadable or since-changed
    files are skipped silently (the next lint run reports them again).
    """
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.rule in FIXABLE_RULES:
            by_path.setdefault(finding.path, []).append(finding)
    fixes: List[FileFix] = []
    for path, file_findings in sorted(by_path.items()):
        try:
            text = Path(path).read_text(encoding="utf-8")
            tree = ast.parse(text, filename=path)
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue
        fixes.append(_fix_file(path, text, tree, file_findings))
    return [f for f in fixes if f.changed or f.skipped]


def apply_fixes(fixes: Sequence[FileFix]) -> int:
    """Write fixed files back; returns the number of files changed."""
    written = 0
    for fix in fixes:
        if fix.changed:
            Path(fix.path).write_text(fix.fixed, encoding="utf-8")
            written += 1
    return written


# ---------------------------------------------------------------------------
# per-file mechanics


def _fix_file(
    path: str, text: str, tree: ast.Module, findings: Sequence[Finding]
) -> FileFix:
    fix = FileFix(path=path, original=text, fixed=text)
    lines = text.splitlines(keepends=True)

    # 1. Renames first: they never change line structure.
    for finding in findings:
        if finding.rule == "UNIT005":
            if _apply_rename(lines, tree, finding, fix):
                fix.applied.append(finding.render())
            else:
                fix.skipped.append(finding.render())

    # 2. Import removals, bottom-up so line numbers stay valid.
    removals = [f for f in findings if f.rule == "COR004"]
    for finding in sorted(removals, key=lambda f: -f.line):
        if _remove_import(lines, tree, finding):
            fix.applied.append(finding.render())
        else:
            fix.skipped.append(finding.render())

    # 3. Appends last.
    for finding in findings:
        if finding.rule == "COR003":
            if _append_all(lines, tree):
                fix.applied.append(finding.render())
            else:
                fix.skipped.append(finding.render())

    fix.fixed = "".join(lines)
    return fix


def _remove_import(
    lines: List[str], tree: ast.Module, finding: Finding
) -> bool:
    match = _UNUSED_IMPORT_RE.search(finding.message)
    if match is None:
        return False
    name = match.group("name")
    node = _import_at(tree, finding.line)
    if node is None:
        return False
    kept = [
        alias for alias in node.names
        if (alias.asname or alias.name.split(".", 1)[0]) != name
        and (alias.asname or alias.name) != name
    ]
    if len(kept) == len(node.names):
        return False
    indent = re.match(r"[ \t]*", lines[node.lineno - 1]).group(0)
    end = getattr(node, "end_lineno", node.lineno)
    if not kept:
        replacement: List[str] = []
    else:
        node.names = kept
        replacement = [indent + ast.unparse(node) + "\n"]
    lines[node.lineno - 1:end] = replacement
    return True


def _import_at(tree: ast.Module, lineno: int) -> Optional[ast.stmt]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and node.lineno == lineno:
            return node
    return None


def _append_all(lines: List[str], tree: ast.Module) -> bool:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            return False  # already present (e.g. fixed earlier this run)
    names: List[str] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            names.extend(
                a.asname or a.name.split(".", 1)[0] for a in stmt.names
            )
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module == "__future__":
                continue
            names.extend(a.asname or a.name for a in stmt.names if a.name != "*")
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.append(stmt.name)
    public = sorted({n for n in names if not n.startswith("_")})
    if not public:
        return False
    block = ["\n", "__all__ = [\n"]
    block.extend(f'    "{name}",\n' for name in public)
    block.append("]\n")
    if lines and not lines[-1].endswith("\n"):
        lines[-1] += "\n"
    lines.extend(block)
    return True


def _apply_rename(
    lines: List[str], tree: ast.Module, finding: Finding, fix: FileFix
) -> bool:
    match = _RENAME_RE.search(finding.message)
    if match is None:
        return False
    old = match.group("target")
    if not old.isidentifier():
        return False  # attribute targets (self.x_s) are not local renames
    declared, actual = match.group("declared"), match.group("actual")
    if not old.endswith(f"_{declared}"):
        return False
    new = old[: -len(declared)] + actual
    scope = _scope_at(tree, finding.line)
    occurrences: List[Tuple[int, int]] = []
    stores = 0
    for node in ast.walk(scope):
        if isinstance(node, ast.Name):
            if node.id == new:
                return False  # corrected name already in use: not mechanical
            if node.id == old:
                occurrences.append((node.lineno, node.col_offset))
                if isinstance(node.ctx, ast.Store):
                    stores += 1
        elif isinstance(node, ast.arg) and node.arg in (old, new):
            return False  # parameter rename would change the API
    if stores != 1 or not occurrences:
        return False  # multiple bindings: no single consistent fix
    for lineno, col in sorted(occurrences, reverse=True):
        line = lines[lineno - 1]
        if line[col:col + len(old)] != old:
            return False  # source drifted under us; leave untouched
        lines[lineno - 1] = line[:col] + new + line[col + len(old):]
    return True


def _scope_at(tree: ast.Module, lineno: int) -> ast.AST:
    """Innermost function scope containing ``lineno`` (module if none)."""
    best: ast.AST = tree
    best_span = float("inf")
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= lineno <= end and end - node.lineno < best_span:
                best = node
                best_span = end - node.lineno
    return best

"""The rule engine: source loading, visitor dispatch, suppressions.

A :class:`Rule` is an :class:`ast.NodeVisitor` subclass instantiated
fresh for every analysed module; the :class:`Engine` parses each file
once and hands the tree to every enabled per-file rule.  A
:class:`ProjectRule` runs in a second, whole-program phase over the
:class:`repro.analysis.flow.project.Project` built from every analysed
module's flow summary, so it can see across call and module boundaries.
Findings carry a ``file:line:col`` anchor plus a line-independent
*fingerprint* used by the baseline machinery (see
:mod:`repro.analysis.baseline`); cross-file findings additionally name
their far *endpoint* (``path::qualname``), which participates in the
fingerprint so either end moving invalidates a baseline entry.

Inline suppression follows the codebase convention::

    t = time.time()  # repro: noqa[DET001] calibrating against the host clock

A bare ``# repro: noqa`` (no rule list) suppresses every rule on that
line.  Suppressions apply to the physical line the finding is anchored
to.  A malformed rule list (unclosed bracket, empty brackets, stray
separators) suppresses *nothing* and is surfaced as a warning — a typo
must never silently widen a suppression.
"""

from __future__ import annotations

import ast
import hashlib
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Bumped whenever findings, summaries, or rule semantics change shape;
#: part of the incremental cache key so stale caches self-invalidate.
TOOL_VERSION = "4.0"

#: Matches ``# repro: noqa`` with an optional ``[RULE1,RULE2]`` list.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?P<rest>\[[^\]]*\])?")

#: Matches ``# repro: hot`` — forces the function defined on that line
#: into the hot closure (see :mod:`repro.analysis.flow.hot`).
_HOT_RE = re.compile(r"#\s*repro:\s*hot\b")

#: A well-formed, non-empty rule list: ``[DET001]``, ``[A, B]``.
_NOQA_RULES_RE = re.compile(r"\[\s*[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*\s*\]")

#: Sentinel meaning "every rule" in a noqa set.
_ALL_RULES = "*"

#: Identifier tokens, for the cheap reference scan over test/script trees.
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Directories scanned for name references (COR005's "never tested")
#: when they exist under the working directory and are not analysed.
DEFAULT_REFERENCE_ROOTS = ("tests", "scripts", "benchmarks", "examples")


@dataclass(frozen=True)
class Finding:
    """One diagnostic anchored to a source location.

    ``endpoint`` is empty for single-file findings; interprocedural
    rules set it to ``path::qualname`` of the other end (the callee, or
    the function performing a transitive effect).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    endpoint: str = ""

    def anchor(self) -> str:
        """``path:line:col`` string for terminals and editors."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The canonical one-line human rendering."""
        text = f"{self.anchor()}: {self.rule} {self.message}"
        if self.endpoint:
            text += f" [-> {self.endpoint}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record / reports)."""
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message,
            "endpoint": self.endpoint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            rule=data["rule"], path=data["path"], line=data["line"],
            col=data["col"], message=data["message"],
            endpoint=data.get("endpoint", ""),
        )


#: A line-independent identity for a finding: (rule, path, message,
#: endpoint, occurrence index among identical tuples, ordered by line).
#: Stable across unrelated edits that merely shift line numbers.
Fingerprint = Tuple[str, str, str, str, int]


def fingerprint_findings(findings: Iterable[Finding]) -> List[Fingerprint]:
    """Fingerprints for ``findings``, occurrence-indexed in line order."""
    counts: Dict[Tuple[str, str, str, str], int] = {}
    prints: List[Fingerprint] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.message, f.endpoint)
        index = counts.get(key, 0)
        counts[key] = index + 1
        prints.append((f.rule, f.path, f.message, f.endpoint, index))
    return prints


@dataclass
class SourceModule:
    """A parsed source file plus the metadata rules need."""

    path: str                    # display path (as reported in findings)
    text: str
    tree: ast.Module
    module: Tuple[str, ...]      # dotted-module parts, e.g. ("repro", "ntp", "wire")
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    noqa_problems: List[Tuple[int, str]] = field(default_factory=list)
    hot_lines: Set[int] = field(default_factory=set)  # "# repro: hot" lines

    @property
    def is_init(self) -> bool:
        """Whether this file is a package ``__init__.py``."""
        return self.path.endswith("__init__.py")

    @property
    def package(self) -> Optional[str]:
        """Top-level sub-package under ``repro`` (e.g. ``"simcore"``)."""
        if len(self.module) >= 2 and self.module[0] == "repro":
            return self.module[1]
        return None

    def dotted(self) -> str:
        """The dotted module name (``repro.ntp.wire``)."""
        return ".".join(self.module)


def _parse_noqa(text: str) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Noqa table plus (line, description) pairs for malformed comments."""
    table: Dict[int, Set[str]] = {}
    problems: List[Tuple[int, str]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rest = match.group("rest")
        if rest is None:
            # Bare noqa — but an unterminated bracket right after it is
            # a typo'd rule list, not a deliberate suppress-everything.
            tail = line[match.end():].lstrip()
            if tail.startswith("["):
                problems.append(
                    (lineno,
                     "malformed noqa rule list (unclosed '['); nothing "
                     "is suppressed on this line")
                )
                continue
            table[lineno] = {_ALL_RULES}
            continue
        if not _NOQA_RULES_RE.fullmatch(rest):
            problems.append(
                (lineno,
                 f"malformed noqa rule list {rest!r}; nothing is "
                 "suppressed on this line")
            )
            continue
        rules = rest.strip("[]")
        table[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return table, problems


def _parse_hot(text: str) -> Set[int]:
    """Line numbers carrying a ``# repro: hot`` annotation."""
    lines: Set[int] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro:" in line and _HOT_RE.search(line):
            lines.add(lineno)
    return lines


def module_parts_for(path: Path) -> Tuple[str, ...]:
    """Infer dotted-module parts from a filesystem path.

    The convention is that everything under a ``repro`` directory is the
    ``repro`` package (the repository keeps it under ``src/repro``), and
    everything under a ``tests`` directory is the test tree (which the
    determinism rules also police).  Files outside both get a
    single-part module name, which no package-scoped rule matches.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        mod = tuple(parts[parts.index("repro"):])
    elif "tests" in parts:
        mod = tuple(parts[parts.index("tests"):])
    else:
        mod = (parts[-1],) if parts else ()
    if mod and mod[-1] == "__init__":
        mod = mod[:-1] or ("repro",)
    return mod


def source_from_text(
    text: str, *, path: str, module: Tuple[str, ...]
) -> SourceModule:
    """Parse ``text`` into a SourceModule; raises ``SyntaxError``."""
    tree = ast.parse(text, filename=path)
    noqa, problems = _parse_noqa(text)
    return SourceModule(
        path=path, text=text, tree=tree, module=module,
        noqa=noqa, noqa_problems=problems, hot_lines=_parse_hot(text),
    )


def load_source(
    path: Path,
    display_path: Optional[str] = None,
    module: Optional[Tuple[str, ...]] = None,
) -> SourceModule:
    """Read and parse ``path``; raises ``SyntaxError`` / ``OSError``."""
    text = path.read_text(encoding="utf-8")
    display = display_path if display_path is not None else _display(path)
    mod = module if module is not None else module_parts_for(path)
    return source_from_text(text, path=display, module=mod)


def _display(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


class Rule(ast.NodeVisitor):
    """Base class for per-file analysis rules.

    Subclasses set :attr:`rule_id` and :attr:`summary`, then override
    ``visit_*`` methods (or :meth:`run` for whole-module checks) and call
    :meth:`report` for each diagnostic.  The optional catalogue fields
    (:attr:`rationale`, :attr:`example`, :attr:`fix_hint`) feed
    ``lint --explain``.
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""   # why the rule exists (one short paragraph)
    example: str = ""     # a minimal violating snippet
    fix_hint: str = ""    # how to repair a finding

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        """Visit the module tree and return the findings."""
        self.visit(self.module.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                rule=self.rule_id,
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


class ProjectRule:
    """Base class for whole-program (phase-two) rules.

    Subclasses set :attr:`rule_id` and :attr:`summary` and implement
    :meth:`run` over ``self.project``, a
    :class:`repro.analysis.flow.project.Project`.  The optional
    catalogue fields mirror :class:`Rule`'s.
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""
    example: str = ""
    fix_hint: str = ""

    def __init__(self, project: Any) -> None:
        self.project = project
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        """Analyse the project and return the findings."""
        raise NotImplementedError

    def report(
        self,
        *,
        path: str,
        lineno: int,
        col: int,
        message: str,
        endpoint: str = "",
    ) -> None:
        """Record a finding at an explicit location."""
        self.findings.append(
            Finding(
                rule=self.rule_id, path=path, line=lineno, col=col,
                message=message, endpoint=endpoint,
            )
        )


@dataclass
class AnalysisResult:
    """Everything one engine run produced.

    ``project`` is the phase-two :class:`~repro.analysis.flow.project.
    Project` when interprocedural rules ran (``None`` otherwise); it is
    never serialized, but the CLI uses it for the hot-path report.
    ``stats`` carries per-phase timings and cache hit counts for
    ``lint --stats``.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)   # unreadable/unparsable files
    warnings: List[str] = field(default_factory=list)  # e.g. malformed noqa
    files_checked: int = 0
    project: Optional[Any] = None
    stats: Dict[str, Any] = field(default_factory=dict)


class Engine:
    """Runs per-file rules then project rules, applying suppressions."""

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        from repro.analysis.rules import all_project_rules, all_rules

        # Kept verbatim so --jobs worker processes can rebuild an
        # identical engine from picklable arguments.
        self._select_arg = list(select) if select else None
        self._ignore_arg = list(ignore) if ignore else None
        registry = all_rules()
        project_registry = all_project_rules()
        known = set(registry) | set(project_registry)
        chosen = dict(registry)
        chosen_project = dict(project_registry)
        if select:
            wanted = {r.upper() for r in select}
            unknown = wanted - known
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            chosen = {rid: cls for rid, cls in registry.items() if rid in wanted}
            chosen_project = {
                rid: cls for rid, cls in project_registry.items()
                if rid in wanted
            }
        if ignore:
            dropped = {r.upper() for r in ignore}
            unknown = dropped - known
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            chosen = {rid: cls for rid, cls in chosen.items() if rid not in dropped}
            chosen_project = {
                rid: cls for rid, cls in chosen_project.items()
                if rid not in dropped
            }
        self._rules = chosen
        self._project_rules = chosen_project

    @property
    def rule_ids(self) -> List[str]:
        """Ids of the rules this engine runs, sorted."""
        return sorted(set(self._rules) | set(self._project_rules))

    def check_module(self, module: SourceModule) -> List[Finding]:
        """Run every enabled per-file rule over one parsed module."""
        findings: List[Finding] = []
        for rule_cls in self._rules.values():
            findings.extend(rule_cls(module).run())
        return [f for f in findings if not _suppressed(f, module.noqa)]

    def check_source(
        self,
        text: str,
        *,
        path: str = "<memory>",
        module: str = "sample",
        project: bool = False,
    ) -> List[Finding]:
        """Analyse a source string (test/fixture convenience).

        ``project=True`` additionally runs the interprocedural rules
        over the single module, which resolves intra-module calls.
        """
        sm = source_from_text(text, path=path, module=tuple(module.split(".")))
        findings = self.check_module(sm)
        if project and self._project_rules:
            from repro.analysis.flow import Project, summarize

            proj = Project([summarize(sm)])
            for rule_cls in self._project_rules.values():
                findings.extend(
                    f for f in rule_cls(proj).run()
                    if not _suppressed(f, sm.noqa)
                )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def phase_one_record(
        self, raw: bytes, display: str, module_parts: Tuple[str, ...]
    ) -> Dict[str, Any]:
        """Phase one for one file: parse, per-file rules, flow summary.

        Returns the JSON-serializable cache record.  Raises
        ``SyntaxError`` / ``UnicodeDecodeError`` / ``ValueError`` for
        unparsable input.  Pure with respect to engine state, so it is
        safe to run in a ``--jobs`` worker process.
        """
        from repro.analysis.flow import summarize

        text = raw.decode("utf-8")
        module = source_from_text(text, path=display, module=module_parts)
        return {
            "findings": [f.to_dict() for f in self.check_module(module)],
            "summary": summarize(module).to_dict(),
            "noqa": {
                str(line): sorted(rules)
                for line, rules in module.noqa.items()
            },
            "noqa_problems": [
                [line, text] for line, text in module.noqa_problems
            ],
        }

    def check_paths(
        self,
        paths: Sequence[Path],
        *,
        cache: Optional[Any] = None,
        reference_roots: Optional[Sequence[Path]] = None,
        jobs: int = 1,
    ) -> AnalysisResult:
        """Analyse files and directories (recursed for ``*.py``).

        ``cache`` is a :class:`repro.analysis.cache.LintCache` (duck
        typed: ``lookup(path, digest)`` / ``store(path, digest,
        record)``); cached files are not re-parsed.  ``reference_roots``
        override the directories scanned for name references by the
        dead-code rule (default: existing ``tests``/``scripts``/
        ``benchmarks``/``examples`` directories).  ``jobs > 1`` fans the
        per-file phase out over a process pool; results merge back in
        file order, so output and cache contents are identical to a
        serial run.
        """
        from repro.analysis.flow import ModuleSummary, Project

        phase1_start = time.perf_counter()
        result = AnalysisResult()
        hits = 0
        # One slot per readable file, filled from cache, worker pool, or
        # the serial path — always consumed in file order.
        slots: List[Tuple[str, str, Optional[Dict[str, Any]], bytes, Tuple[str, ...]]] = []
        for path in _collect_files(paths):
            try:
                raw = path.read_bytes()
            except OSError as exc:
                result.errors.append(f"{_display(path)}: {exc}")
                continue
            display = _display(path)
            digest = hashlib.sha256(raw).hexdigest()
            record = cache.lookup(display, digest) if cache is not None else None
            if record is not None:
                hits += 1
            slots.append((display, digest, record, raw, module_parts_for(path)))
        pending = [i for i, slot in enumerate(slots) if slot[2] is None]
        computed: Dict[int, Any] = {}
        if jobs > 1 and len(pending) > 1:
            computed = self._pool_phase_one(slots, pending, jobs)
        else:
            for i in pending:
                display, _, _, raw, parts = slots[i]
                try:
                    computed[i] = self.phase_one_record(raw, display, parts)
                except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
                    computed[i] = f"{display}: {exc}"
        records: List[Dict[str, Any]] = []
        for i, (display, digest, record, _, _) in enumerate(slots):
            if record is None:
                record = computed[i]
                if isinstance(record, str):  # error text from phase one
                    result.errors.append(record)
                    continue
                if cache is not None:
                    cache.store(display, digest, record)
            records.append(record)
            result.files_checked += 1
            result.findings.extend(
                Finding.from_dict(f) for f in record["findings"]
            )
            for line, text in record["noqa_problems"]:
                result.warnings.append(f"{display}:{line}: {text}")
        phase2_start = time.perf_counter()
        if self._project_rules and records:
            summaries = [
                ModuleSummary.from_dict(r["summary"]) for r in records
            ]
            noqa_by_path = {
                s.path: {
                    int(line): set(rules)
                    for line, rules in r["noqa"].items()
                }
                for s, r in zip(summaries, records)
            }
            project = Project(
                summaries,
                _reference_tokens(reference_roots, analysed=paths),
            )
            result.project = project
            for rule_cls in self._project_rules.values():
                for f in rule_cls(project).run():
                    if not _suppressed(f, noqa_by_path.get(f.path, {})):
                        result.findings.append(f)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        end = time.perf_counter()
        result.stats = {
            "files": len(slots),
            "cache_hits": hits,
            "cache_misses": len(pending),
            "jobs": jobs,
            "phase1_s": phase2_start - phase1_start,
            "phase2_s": end - phase2_start,
        }
        return result

    def _pool_phase_one(
        self,
        slots: Sequence[Tuple[str, str, Optional[Dict[str, Any]], bytes, Tuple[str, ...]]],
        pending: Sequence[int],
        jobs: int,
    ) -> Dict[int, Any]:
        """Run phase one for cache misses on a process pool.

        ``executor.map`` preserves input order, so the merge back into
        ``slots`` order is deterministic regardless of which worker
        finished first.  Falls back to serial execution when the
        platform cannot spawn processes (restricted sandboxes).
        """
        from concurrent.futures import ProcessPoolExecutor

        items = [
            (slots[i][0], slots[i][3], slots[i][4]) for i in pending
        ]
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(items)),
                initializer=_pool_init,
                initargs=(self._select_arg, self._ignore_arg),
            ) as pool:
                outputs = list(pool.map(_pool_run, items, chunksize=4))
        except (OSError, ValueError, RuntimeError):
            outputs = []
            for display, raw, parts in items:
                try:
                    outputs.append(self.phase_one_record(raw, display, parts))
                except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
                    outputs.append(f"{display}: {exc}")
        return dict(zip(pending, outputs))


#: Per-process engine for the --jobs pool, built once by the initializer
#: so each worker pays rule-registry setup a single time.
_POOL_ENGINE: Optional[Engine] = None


def _pool_init(select: Optional[List[str]], ignore: Optional[List[str]]) -> None:
    global _POOL_ENGINE
    _POOL_ENGINE = Engine(select=select, ignore=ignore)


def _pool_run(item: Tuple[str, bytes, Tuple[str, ...]]) -> Any:
    """Phase one in a worker: a record dict, or error text on failure."""
    display, raw, parts = item
    assert _POOL_ENGINE is not None
    try:
        return _POOL_ENGINE.phase_one_record(raw, display, parts)
    except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
        return f"{display}: {exc}"


def _suppressed(finding: Finding, noqa: Dict[int, Set[str]]) -> bool:
    rules = noqa.get(finding.line)
    if not rules:
        return False
    return _ALL_RULES in rules or finding.rule in rules


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
            )
        else:
            files.append(path)
    return files


def _reference_tokens(
    roots: Optional[Sequence[Path]], analysed: Sequence[Path]
) -> Set[str]:
    """Identifier tokens from reference trees (for COR005).

    A deliberately coarse textual scan: any identifier occurring in a
    test/script file counts as a reference, so dynamic access patterns
    (``getattr(mod, "poll")``) keep a function alive.  Trees already
    being analysed contribute AST-level references instead and are
    skipped here.
    """
    if roots is None:
        analysed_resolved = {p.resolve() for p in analysed}
        roots = [
            Path(name) for name in DEFAULT_REFERENCE_ROOTS
            if Path(name).is_dir() and Path(name).resolve() not in analysed_resolved
        ]
    tokens: Set[str] = set()
    for root in roots:
        for file in _collect_files([root]):
            try:
                text = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            tokens.update(_IDENT_RE.findall(text))
    return tokens

"""The rule engine: source loading, visitor dispatch, suppressions.

A :class:`Rule` is an :class:`ast.NodeVisitor` subclass instantiated
fresh for every analysed module; the :class:`Engine` parses each file
once and hands the tree to every enabled rule.  Findings carry a
``file:line:col`` anchor plus a line-independent *fingerprint* used by
the baseline machinery (see :mod:`repro.analysis.baseline`).

Inline suppression follows the codebase convention::

    t = time.time()  # repro: noqa[DET001] calibrating against the host clock

A bare ``# repro: noqa`` (no rule list) suppresses every rule on that
line.  Suppressions apply to the physical line the finding is anchored
to.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Matches ``# repro: noqa`` and ``# repro: noqa[RULE1,RULE2]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel meaning "every rule" in a noqa set.
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One diagnostic anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def anchor(self) -> str:
        """``path:line:col`` string for terminals and editors."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The canonical one-line human rendering."""
        return f"{self.anchor()}: {self.rule} {self.message}"


#: A line-independent identity for a finding: (rule, path, message,
#: occurrence index among identical triples, ordered by line).  Stable
#: across unrelated edits that merely shift line numbers.
Fingerprint = Tuple[str, str, str, int]


def fingerprint_findings(findings: Iterable[Finding]) -> List[Fingerprint]:
    """Fingerprints for ``findings``, occurrence-indexed in line order."""
    counts: Dict[Tuple[str, str, str], int] = {}
    prints: List[Fingerprint] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.message)
        index = counts.get(key, 0)
        counts[key] = index + 1
        prints.append((f.rule, f.path, f.message, index))
    return prints


@dataclass
class SourceModule:
    """A parsed source file plus the metadata rules need."""

    path: str                    # display path (as reported in findings)
    text: str
    tree: ast.Module
    module: Tuple[str, ...]      # dotted-module parts, e.g. ("repro", "ntp", "wire")
    noqa: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def is_init(self) -> bool:
        """Whether this file is a package ``__init__.py``."""
        return self.path.endswith("__init__.py")

    @property
    def package(self) -> Optional[str]:
        """Top-level sub-package under ``repro`` (e.g. ``"simcore"``)."""
        if len(self.module) >= 2 and self.module[0] == "repro":
            return self.module[1]
        return None

    def dotted(self) -> str:
        """The dotted module name (``repro.ntp.wire``)."""
        return ".".join(self.module)


def _parse_noqa(text: str) -> Dict[int, Set[str]]:
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = {_ALL_RULES}
        else:
            table[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return table


def module_parts_for(path: Path) -> Tuple[str, ...]:
    """Infer dotted-module parts from a filesystem path.

    The convention is that everything under a ``repro`` directory is the
    ``repro`` package (the repository keeps it under ``src/repro``).
    Files outside any ``repro`` directory get a single-part module name,
    which no package-scoped rule matches.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        mod = tuple(parts[parts.index("repro"):])
    else:
        mod = (parts[-1],) if parts else ()
    if mod and mod[-1] == "__init__":
        mod = mod[:-1] or ("repro",)
    return mod


def load_source(
    path: Path,
    display_path: Optional[str] = None,
    module: Optional[Tuple[str, ...]] = None,
) -> SourceModule:
    """Read and parse ``path``; raises ``SyntaxError`` / ``OSError``."""
    text = path.read_text(encoding="utf-8")
    display = display_path if display_path is not None else _display(path)
    tree = ast.parse(text, filename=display)
    mod = module if module is not None else module_parts_for(path)
    return SourceModule(
        path=display, text=text, tree=tree, module=mod, noqa=_parse_noqa(text)
    )


def _display(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


class Rule(ast.NodeVisitor):
    """Base class for analysis rules.

    Subclasses set :attr:`rule_id` and :attr:`summary`, then override
    ``visit_*`` methods (or :meth:`run` for whole-module checks) and call
    :meth:`report` for each diagnostic.
    """

    rule_id: str = ""
    summary: str = ""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        """Visit the module tree and return the findings."""
        self.visit(self.module.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                rule=self.rule_id,
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


@dataclass
class AnalysisResult:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)   # unreadable/unparsable files
    files_checked: int = 0


class Engine:
    """Runs a set of rules over files, applying noqa suppressions."""

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        from repro.analysis.rules import all_rules

        registry = all_rules()
        chosen = dict(registry)
        if select:
            wanted = {r.upper() for r in select}
            unknown = wanted - set(registry)
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            chosen = {rid: cls for rid, cls in registry.items() if rid in wanted}
        if ignore:
            dropped = {r.upper() for r in ignore}
            unknown = dropped - set(registry)
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            chosen = {rid: cls for rid, cls in chosen.items() if rid not in dropped}
        self._rules = chosen

    @property
    def rule_ids(self) -> List[str]:
        """Ids of the rules this engine runs, sorted."""
        return sorted(self._rules)

    def check_module(self, module: SourceModule) -> List[Finding]:
        """Run every enabled rule over one parsed module."""
        findings: List[Finding] = []
        for rule_cls in self._rules.values():
            findings.extend(rule_cls(module).run())
        return [f for f in findings if not _suppressed(f, module)]

    def check_source(
        self,
        text: str,
        *,
        path: str = "<memory>",
        module: str = "sample",
    ) -> List[Finding]:
        """Analyse a source string (test/fixture convenience)."""
        sm = SourceModule(
            path=path,
            text=text,
            tree=ast.parse(text, filename=path),
            module=tuple(module.split(".")),
            noqa=_parse_noqa(text),
        )
        return self.check_module(sm)

    def check_paths(self, paths: Sequence[Path]) -> AnalysisResult:
        """Analyse files and directories (recursed for ``*.py``)."""
        result = AnalysisResult()
        for path in _collect_files(paths):
            try:
                module = load_source(path)
            except (OSError, SyntaxError, UnicodeDecodeError) as exc:
                result.errors.append(f"{_display(path)}: {exc}")
                continue
            result.files_checked += 1
            result.findings.extend(self.check_module(module))
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result


def _suppressed(finding: Finding, module: SourceModule) -> bool:
    rules = module.noqa.get(finding.line)
    if not rules:
        return False
    return _ALL_RULES in rules or finding.rule in rules


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
            )
        else:
            files.append(path)
    return files

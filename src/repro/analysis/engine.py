"""The rule engine: source loading, visitor dispatch, suppressions.

A :class:`Rule` is an :class:`ast.NodeVisitor` subclass instantiated
fresh for every analysed module; the :class:`Engine` parses each file
once and hands the tree to every enabled per-file rule.  A
:class:`ProjectRule` runs in a second, whole-program phase over the
:class:`repro.analysis.flow.project.Project` built from every analysed
module's flow summary, so it can see across call and module boundaries.
Findings carry a ``file:line:col`` anchor plus a line-independent
*fingerprint* used by the baseline machinery (see
:mod:`repro.analysis.baseline`); cross-file findings additionally name
their far *endpoint* (``path::qualname``), which participates in the
fingerprint so either end moving invalidates a baseline entry.

Inline suppression follows the codebase convention::

    t = time.time()  # repro: noqa[DET001] calibrating against the host clock

A bare ``# repro: noqa`` (no rule list) suppresses every rule on that
line.  Suppressions apply to the physical line the finding is anchored
to.  A malformed rule list (unclosed bracket, empty brackets, stray
separators) suppresses *nothing* and is surfaced as a warning — a typo
must never silently widen a suppression.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Bumped whenever findings, summaries, or rule semantics change shape;
#: part of the incremental cache key so stale caches self-invalidate.
TOOL_VERSION = "2.0"

#: Matches ``# repro: noqa`` with an optional ``[RULE1,RULE2]`` list.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?P<rest>\[[^\]]*\])?")

#: A well-formed, non-empty rule list: ``[DET001]``, ``[A, B]``.
_NOQA_RULES_RE = re.compile(r"\[\s*[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*\s*\]")

#: Sentinel meaning "every rule" in a noqa set.
_ALL_RULES = "*"

#: Identifier tokens, for the cheap reference scan over test/script trees.
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Directories scanned for name references (COR005's "never tested")
#: when they exist under the working directory and are not analysed.
DEFAULT_REFERENCE_ROOTS = ("tests", "scripts", "benchmarks", "examples")


@dataclass(frozen=True)
class Finding:
    """One diagnostic anchored to a source location.

    ``endpoint`` is empty for single-file findings; interprocedural
    rules set it to ``path::qualname`` of the other end (the callee, or
    the function performing a transitive effect).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    endpoint: str = ""

    def anchor(self) -> str:
        """``path:line:col`` string for terminals and editors."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The canonical one-line human rendering."""
        text = f"{self.anchor()}: {self.rule} {self.message}"
        if self.endpoint:
            text += f" [-> {self.endpoint}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record / reports)."""
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message,
            "endpoint": self.endpoint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            rule=data["rule"], path=data["path"], line=data["line"],
            col=data["col"], message=data["message"],
            endpoint=data.get("endpoint", ""),
        )


#: A line-independent identity for a finding: (rule, path, message,
#: endpoint, occurrence index among identical tuples, ordered by line).
#: Stable across unrelated edits that merely shift line numbers.
Fingerprint = Tuple[str, str, str, str, int]


def fingerprint_findings(findings: Iterable[Finding]) -> List[Fingerprint]:
    """Fingerprints for ``findings``, occurrence-indexed in line order."""
    counts: Dict[Tuple[str, str, str, str], int] = {}
    prints: List[Fingerprint] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.message, f.endpoint)
        index = counts.get(key, 0)
        counts[key] = index + 1
        prints.append((f.rule, f.path, f.message, f.endpoint, index))
    return prints


@dataclass
class SourceModule:
    """A parsed source file plus the metadata rules need."""

    path: str                    # display path (as reported in findings)
    text: str
    tree: ast.Module
    module: Tuple[str, ...]      # dotted-module parts, e.g. ("repro", "ntp", "wire")
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    noqa_problems: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def is_init(self) -> bool:
        """Whether this file is a package ``__init__.py``."""
        return self.path.endswith("__init__.py")

    @property
    def package(self) -> Optional[str]:
        """Top-level sub-package under ``repro`` (e.g. ``"simcore"``)."""
        if len(self.module) >= 2 and self.module[0] == "repro":
            return self.module[1]
        return None

    def dotted(self) -> str:
        """The dotted module name (``repro.ntp.wire``)."""
        return ".".join(self.module)


def _parse_noqa(text: str) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Noqa table plus (line, description) pairs for malformed comments."""
    table: Dict[int, Set[str]] = {}
    problems: List[Tuple[int, str]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rest = match.group("rest")
        if rest is None:
            # Bare noqa — but an unterminated bracket right after it is
            # a typo'd rule list, not a deliberate suppress-everything.
            tail = line[match.end():].lstrip()
            if tail.startswith("["):
                problems.append(
                    (lineno,
                     "malformed noqa rule list (unclosed '['); nothing "
                     "is suppressed on this line")
                )
                continue
            table[lineno] = {_ALL_RULES}
            continue
        if not _NOQA_RULES_RE.fullmatch(rest):
            problems.append(
                (lineno,
                 f"malformed noqa rule list {rest!r}; nothing is "
                 "suppressed on this line")
            )
            continue
        rules = rest.strip("[]")
        table[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return table, problems


def module_parts_for(path: Path) -> Tuple[str, ...]:
    """Infer dotted-module parts from a filesystem path.

    The convention is that everything under a ``repro`` directory is the
    ``repro`` package (the repository keeps it under ``src/repro``), and
    everything under a ``tests`` directory is the test tree (which the
    determinism rules also police).  Files outside both get a
    single-part module name, which no package-scoped rule matches.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        mod = tuple(parts[parts.index("repro"):])
    elif "tests" in parts:
        mod = tuple(parts[parts.index("tests"):])
    else:
        mod = (parts[-1],) if parts else ()
    if mod and mod[-1] == "__init__":
        mod = mod[:-1] or ("repro",)
    return mod


def source_from_text(
    text: str, *, path: str, module: Tuple[str, ...]
) -> SourceModule:
    """Parse ``text`` into a SourceModule; raises ``SyntaxError``."""
    tree = ast.parse(text, filename=path)
    noqa, problems = _parse_noqa(text)
    return SourceModule(
        path=path, text=text, tree=tree, module=module,
        noqa=noqa, noqa_problems=problems,
    )


def load_source(
    path: Path,
    display_path: Optional[str] = None,
    module: Optional[Tuple[str, ...]] = None,
) -> SourceModule:
    """Read and parse ``path``; raises ``SyntaxError`` / ``OSError``."""
    text = path.read_text(encoding="utf-8")
    display = display_path if display_path is not None else _display(path)
    mod = module if module is not None else module_parts_for(path)
    return source_from_text(text, path=display, module=mod)


def _display(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


class Rule(ast.NodeVisitor):
    """Base class for per-file analysis rules.

    Subclasses set :attr:`rule_id` and :attr:`summary`, then override
    ``visit_*`` methods (or :meth:`run` for whole-module checks) and call
    :meth:`report` for each diagnostic.
    """

    rule_id: str = ""
    summary: str = ""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        """Visit the module tree and return the findings."""
        self.visit(self.module.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                rule=self.rule_id,
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


class ProjectRule:
    """Base class for whole-program (phase-two) rules.

    Subclasses set :attr:`rule_id` and :attr:`summary` and implement
    :meth:`run` over ``self.project``, a
    :class:`repro.analysis.flow.project.Project`.
    """

    rule_id: str = ""
    summary: str = ""

    def __init__(self, project: Any) -> None:
        self.project = project
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        """Analyse the project and return the findings."""
        raise NotImplementedError

    def report(
        self,
        *,
        path: str,
        lineno: int,
        col: int,
        message: str,
        endpoint: str = "",
    ) -> None:
        """Record a finding at an explicit location."""
        self.findings.append(
            Finding(
                rule=self.rule_id, path=path, line=lineno, col=col,
                message=message, endpoint=endpoint,
            )
        )


@dataclass
class AnalysisResult:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)   # unreadable/unparsable files
    warnings: List[str] = field(default_factory=list)  # e.g. malformed noqa
    files_checked: int = 0


class Engine:
    """Runs per-file rules then project rules, applying suppressions."""

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        from repro.analysis.rules import all_project_rules, all_rules

        registry = all_rules()
        project_registry = all_project_rules()
        known = set(registry) | set(project_registry)
        chosen = dict(registry)
        chosen_project = dict(project_registry)
        if select:
            wanted = {r.upper() for r in select}
            unknown = wanted - known
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            chosen = {rid: cls for rid, cls in registry.items() if rid in wanted}
            chosen_project = {
                rid: cls for rid, cls in project_registry.items()
                if rid in wanted
            }
        if ignore:
            dropped = {r.upper() for r in ignore}
            unknown = dropped - known
            if unknown:
                raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
            chosen = {rid: cls for rid, cls in chosen.items() if rid not in dropped}
            chosen_project = {
                rid: cls for rid, cls in chosen_project.items()
                if rid not in dropped
            }
        self._rules = chosen
        self._project_rules = chosen_project

    @property
    def rule_ids(self) -> List[str]:
        """Ids of the rules this engine runs, sorted."""
        return sorted(set(self._rules) | set(self._project_rules))

    def check_module(self, module: SourceModule) -> List[Finding]:
        """Run every enabled per-file rule over one parsed module."""
        findings: List[Finding] = []
        for rule_cls in self._rules.values():
            findings.extend(rule_cls(module).run())
        return [f for f in findings if not _suppressed(f, module.noqa)]

    def check_source(
        self,
        text: str,
        *,
        path: str = "<memory>",
        module: str = "sample",
        project: bool = False,
    ) -> List[Finding]:
        """Analyse a source string (test/fixture convenience).

        ``project=True`` additionally runs the interprocedural rules
        over the single module, which resolves intra-module calls.
        """
        sm = source_from_text(text, path=path, module=tuple(module.split(".")))
        findings = self.check_module(sm)
        if project and self._project_rules:
            from repro.analysis.flow import Project, summarize

            proj = Project([summarize(sm)])
            for rule_cls in self._project_rules.values():
                findings.extend(
                    f for f in rule_cls(proj).run()
                    if not _suppressed(f, sm.noqa)
                )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def check_paths(
        self,
        paths: Sequence[Path],
        *,
        cache: Optional[Any] = None,
        reference_roots: Optional[Sequence[Path]] = None,
    ) -> AnalysisResult:
        """Analyse files and directories (recursed for ``*.py``).

        ``cache`` is a :class:`repro.analysis.cache.LintCache` (duck
        typed: ``lookup(path, digest)`` / ``store(path, digest,
        record)``); cached files are not re-parsed.  ``reference_roots``
        override the directories scanned for name references by the
        dead-code rule (default: existing ``tests``/``scripts``/
        ``benchmarks``/``examples`` directories).
        """
        from repro.analysis.flow import ModuleSummary, Project, summarize

        result = AnalysisResult()
        records: List[Dict[str, Any]] = []
        for path in _collect_files(paths):
            try:
                raw = path.read_bytes()
            except OSError as exc:
                result.errors.append(f"{_display(path)}: {exc}")
                continue
            display = _display(path)
            digest = hashlib.sha256(raw).hexdigest()
            record = cache.lookup(display, digest) if cache is not None else None
            if record is None:
                try:
                    text = raw.decode("utf-8")
                    module = source_from_text(
                        text, path=display, module=module_parts_for(path)
                    )
                except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
                    result.errors.append(f"{display}: {exc}")
                    continue
                record = {
                    "findings": [
                        f.to_dict() for f in self.check_module(module)
                    ],
                    "summary": summarize(module).to_dict(),
                    "noqa": {
                        str(line): sorted(rules)
                        for line, rules in module.noqa.items()
                    },
                    "noqa_problems": [
                        [line, text] for line, text in module.noqa_problems
                    ],
                }
                if cache is not None:
                    cache.store(display, digest, record)
            records.append(record)
            result.files_checked += 1
            result.findings.extend(
                Finding.from_dict(f) for f in record["findings"]
            )
            for line, text in record["noqa_problems"]:
                result.warnings.append(f"{display}:{line}: {text}")
        if self._project_rules and records:
            summaries = [
                ModuleSummary.from_dict(r["summary"]) for r in records
            ]
            noqa_by_path = {
                s.path: {
                    int(line): set(rules)
                    for line, rules in r["noqa"].items()
                }
                for s, r in zip(summaries, records)
            }
            project = Project(
                summaries,
                _reference_tokens(reference_roots, analysed=paths),
            )
            for rule_cls in self._project_rules.values():
                for f in rule_cls(project).run():
                    if not _suppressed(f, noqa_by_path.get(f.path, {})):
                        result.findings.append(f)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result


def _suppressed(finding: Finding, noqa: Dict[int, Set[str]]) -> bool:
    rules = noqa.get(finding.line)
    if not rules:
        return False
    return _ALL_RULES in rules or finding.rule in rules


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
            )
        else:
            files.append(path)
    return files


def _reference_tokens(
    roots: Optional[Sequence[Path]], analysed: Sequence[Path]
) -> Set[str]:
    """Identifier tokens from reference trees (for COR005).

    A deliberately coarse textual scan: any identifier occurring in a
    test/script file counts as a reference, so dynamic access patterns
    (``getattr(mod, "poll")``) keep a function alive.  Trees already
    being analysed contribute AST-level references instead and are
    skipped here.
    """
    if roots is None:
        analysed_resolved = {p.resolve() for p in analysed}
        roots = [
            Path(name) for name in DEFAULT_REFERENCE_ROOTS
            if Path(name).is_dir() and Path(name).resolve() not in analysed_resolved
        ]
    tokens: Set[str] = set()
    for root in roots:
        for file in _collect_files([root]):
            try:
                text = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            tokens.update(_IDENT_RE.findall(text))
    return tokens

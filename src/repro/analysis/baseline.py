"""Baseline files: accepted pre-existing findings.

A baseline is a checked-in JSON list of finding fingerprints.  Findings
whose fingerprint appears in the baseline do not fail the lint run, so
a rule can be introduced (or tightened) without first fixing every
historical violation — while any *new* violation still fails CI.

Fingerprints deliberately exclude line numbers (see
:data:`repro.analysis.engine.Fingerprint`), so unrelated edits that
shift code do not invalidate the baseline; an *occurrence index*
disambiguates identical findings within one file.  Cross-file findings
from the interprocedural rules additionally carry an *endpoint*
(``path::qualname`` of the other end), so a baseline entry names both
ends of the edge it excuses and dies when either moves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Set

from repro.analysis.engine import Finding, Fingerprint, fingerprint_findings

BASELINE_VERSION = 2

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


@dataclass
class BaselineMatch:
    """Result of filtering findings through a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[Fingerprint] = field(default_factory=list)  # baseline entries no run reproduced


def load_baseline(path: Path) -> Set[Fingerprint]:
    """Load fingerprints from ``path``; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a version-{BASELINE_VERSION} analysis baseline"
        )
    prints: Set[Fingerprint] = set()
    for entry in data.get("entries", []):
        prints.add(
            (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry["message"]),
                str(entry.get("endpoint", "")),
                int(entry.get("occurrence", 0)),
            )
        )
    return prints


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the fingerprints of ``findings`` as a fresh baseline."""
    entries = [
        {"rule": rule, "path": file_path, "message": message,
         "endpoint": endpoint, "occurrence": occ}
        for rule, file_path, message, endpoint, occ in sorted(
            fingerprint_findings(findings)
        )
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def match_baseline(
    findings: Sequence[Finding], baseline: Set[Fingerprint]
) -> BaselineMatch:
    """Split ``findings`` into new vs baselined; report stale entries."""
    match = BaselineMatch()
    seen: Set[Fingerprint] = set()
    prints = fingerprint_findings(findings)
    by_print = dict(zip(prints, sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )))
    for fingerprint, finding in by_print.items():
        if fingerprint in baseline:
            match.baselined.append(finding)
            seen.add(fingerprint)
        else:
            match.new.append(finding)
    match.stale = sorted(baseline - seen)
    return match

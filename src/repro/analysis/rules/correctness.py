"""Generic correctness rules.

Not domain-specific to time synchronization, but each one guards a bug
class that has bitten timekeeping code in practice: float equality on
measured offsets, mutable default arguments acting as cross-run shared
state, public packages without an explicit ``__all__``, and imports
that quietly stop being used.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import register
from repro.analysis.rules.base import node_name, suffix_unit

#: Lower-case identifiers that denote measured float time quantities.
_TIME_QUANTITY_RE = re.compile(r"(offset|timestamp|drift|skew|rtt|rmse)")


def _is_float_time_quantity(node: ast.AST) -> bool:
    name = node_name(node)
    if name is None or name.isupper():
        # ALL_CAPS constants (e.g. the bytes sentinel ZERO_TIMESTAMP)
        # are compared by identity/value on purpose.
        return False
    return suffix_unit(name) is not None or bool(
        _TIME_QUANTITY_RE.search(name.lower())
    )


@register
class FloatEqualityRule(Rule):
    """Flag ``==``/``!=`` on offsets, timestamps, and suffixed quantities."""

    rule_id = "COR001"
    summary = (
        "no == / != on float time quantities (offsets, timestamps, "
        "*_s/_ms/... names); compare against a tolerance"
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag ==/!= where either side names a float time quantity."""
        operands = [node.left] + list(node.comparators)
        for (left, right), op in zip(zip(operands, operands[1:]), node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _constant_exempt(left) or _constant_exempt(right):
                continue
            quantity = next(
                (n for n in (left, right) if _is_float_time_quantity(n)), None
            )
            if quantity is not None:
                name = node_name(quantity)
                self.report(
                    node,
                    f"float equality on time quantity '{name}'; use a "
                    "tolerance (abs(a - b) < eps) or an integer key",
                )
        self.generic_visit(node)


def _constant_exempt(node: ast.AST) -> bool:
    """None / bool / string comparisons are not float-equality hazards."""
    if not isinstance(node, ast.Constant):
        return False
    return node.value is None or isinstance(node.value, (bool, str, bytes))


@register
class MutableDefaultRule(Rule):
    """Flag mutable default argument values."""

    rule_id = "COR002"
    summary = (
        "no mutable default arguments ([], {}, set(), ...); they persist "
        "across calls and leak state between experiments"
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def _check(self, node: ast.AST) -> None:
        """Flag mutable literals / constructor calls among defaults."""
        args = getattr(node, "args", None)
        if args is None:
            self.generic_visit(node)
            return
        for default in list(args.defaults) + list(args.kw_defaults):
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                self.report(default, "mutable default argument; use None "
                                     "and create inside the function")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            ):
                self.report(default, "mutable default argument "
                                     f"({default.func.id}()); use None and "
                                     "create inside the function")
        self.generic_visit(node)

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check


@register
class MissingAllRule(Rule):
    """Public package ``__init__`` files must declare ``__all__``."""

    rule_id = "COR003"
    summary = (
        "every repro package __init__.py that binds public names must "
        "declare __all__ so the public surface is explicit"
    )

    def run(self) -> List[Finding]:
        """Whole-module check: __init__.py files under repro only."""
        module = self.module
        if not module.is_init or not module.module or module.module[0] != "repro":
            return []
        has_all = False
        binds_names = False
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                ):
                    has_all = True
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id == "__all__":
                    has_all = True
            elif isinstance(stmt, (ast.Import, ast.ImportFrom,
                                   ast.FunctionDef, ast.ClassDef)):
                binds_names = True
        if binds_names and not has_all:
            self.report(
                module.tree.body[0] if module.tree.body else module.tree,
                f"package '{module.dotted()}' binds public names but "
                "declares no __all__",
            )
        return self.findings


@register
class UnusedImportRule(Rule):
    """Flag imports that are never referenced (and not re-exported)."""

    rule_id = "COR004"
    summary = (
        "no unused imports; in __init__.py a name counts as used when "
        "it is listed in __all__"
    )

    def run(self) -> List[Finding]:
        """Whole-module check: compare bound imports against uses."""
        tree = self.module.tree
        imported: Dict[str, ast.AST] = {}
        in_try = _nodes_inside_try(tree)
        for node in ast.walk(tree):
            if id(node) in in_try:
                continue  # optional-dependency guards
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    imported[local] = node
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported[alias.asname or alias.name] = node
        if not imported:
            return []

        used: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
        used.update(_dunder_all_names(tree))
        used.update(_string_annotation_names(tree))
        for local, node in imported.items():
            if local not in used:
                self.report(node, f"import '{local}' is never used")
        return self.findings


def _dunder_all_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            value = stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
    return names


_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _string_annotation_names(tree: ast.Module) -> Set[str]:
    """Identifiers inside quoted annotations (``x: "Dict[str, Rule]"``)."""
    names: Set[str] = set()
    annotations: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            annotations.append(node.annotation)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            annotations.append(node.annotation)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                annotations.append(node.returns)
    for annotation in annotations:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                names.update(_IDENTIFIER_RE.findall(sub.value))
    return names


def _nodes_inside_try(tree: ast.Module) -> Set[int]:
    """Ids of every node lexically inside a ``try`` statement."""
    inside: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Try):
            for child in ast.walk(node):
                if child is not node:
                    inside.add(id(child))
    return inside

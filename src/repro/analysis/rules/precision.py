"""PREC001-004: interval/value-range precision analysis over the CFG.

The UNIT rules check unit *names*; these rules check unit *values*.  A
per-function forward dataflow tracks an abstract value for each local:

* an interval ``[lo, hi]`` (seeded from unit suffixes — an ``_ns``
  quantity can legitimately reach ~4e18, a century in nanoseconds),
* whether the value is a float,
* the finest time *tier* it carries (``ns``/``us``/``ms``/``s``),
* whether a division chain has already *downscaled* it (truncated away
  sub-tier digits), and
* whether it is a raw NTP-era timestamp (eras wrap in 2036).

The four rules are the precision contracts the µs/ns scenario tier
(ROADMAP #4c) depends on:

* **PREC001** — an ``_ns``/``_us`` integer flows into float arithmetic
  while its range exceeds the 2^53 window where doubles are
  integer-exact; the low bits silently round away.
* **PREC002** — a µs/ns-tier value is routed through the NTP 16.16
  short format (``encode_short``), whose resolution floor is ~15.26 µs;
  everything below the µs tier truncates.  The codec home
  (``repro.ntp.timestamps``) is exempt — it *implements* the format.
* **PREC003** — raw NTP-era timestamps compared by magnitude
  (``a < b``); NTP time wraps eras in 2036, so ordering must go
  through a wrapped difference, not a direct compare.
* **PREC004** — a division chain collapses ``_ns`` precision before
  the final convert: a tier-coarsening floor-divide (or ``int()`` of a
  true divide) whose result is scaled back up or stored under a
  finer-tier suffix.  The truncation is permanent; convert once, at
  the end.

Like the RES rules, the pass runs per function CFG, is shared by all
four rule classes through a per-module cache, and skips generators and
async functions gracefully.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import Finding, Rule, SourceModule
from repro.analysis.flow.cfg import (
    CaseBind,
    ExceptBind,
    ForBind,
    WithEnter,
    WithExit,
    function_cfgs,
)
from repro.analysis.flow.dataflow import Analysis, each_item_state, solve_forward
from repro.analysis.rules import register
from repro.analysis.rules.base import ImportMap, suffix_unit

#: Doubles are integer-exact up to 2^53; an int beyond it loses low bits
#: the moment it touches float arithmetic.
_EXACT_WINDOW = float(2 ** 53)

_INF = float("inf")

#: Seed ranges per unit suffix: |value| <= ~a century expressed in that
#: unit.  Only ns and us exceed the 2^53 window.
_TIER_RANGE = {"ns": 4e18, "us": 4e15, "ms": 4e12, "s": 4e9}

#: Tier ordering, finest first.
_TIERS = ("ns", "us", "ms", "s")

#: Dotted targets whose result is a raw NTP-era timestamp.
_NTP_RAW_FUNCS = frozenset({
    "repro.ntp.timestamps.unix_to_ntp",
    "unix_to_ntp",
})

#: Dotted targets for the 16.16 short-format encoder.
_SHORT_ENCODERS = frozenset({
    "repro.ntp.timestamps.encode_short",
    "encode_short",
})

#: The module that implements the fixed-point codec (PREC002-exempt).
_CODEC_HOME = ("repro", "ntp", "timestamps")

_CACHE_ATTR = "_precision_findings_cache"


@dataclass(frozen=True)
class Val:
    """Abstract value: interval + precision taints."""

    lo: float = -_INF
    hi: float = _INF
    is_float: bool = False
    tier: Optional[str] = None
    downscaled: bool = False
    raw_ntp: bool = False

    def join(self, other: "Val") -> "Val":
        """Interval hull of two values; flags and tiers merge pessimistically."""
        return Val(
            lo=min(self.lo, other.lo),
            hi=max(self.hi, other.hi),
            is_float=self.is_float or other.is_float,
            tier=_finer(self.tier, other.tier),
            downscaled=self.downscaled or other.downscaled,
            raw_ntp=self.raw_ntp or other.raw_ntp,
        )

    def widened(self, other: "Val") -> "Val":
        """Join, with any still-growing bound snapped to infinity."""
        joined = self.join(other)
        lo = self.lo if joined.lo >= self.lo else -_INF
        hi = self.hi if joined.hi <= self.hi else _INF
        return replace(joined, lo=lo, hi=hi)

    def beyond_exact_window(self) -> bool:
        """True when the range can exceed 2**53, where floats drop integers."""
        return self.hi > _EXACT_WINDOW or self.lo < -_EXACT_WINDOW


def _finer(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None:
        return b
    if b is None:
        return a
    return a if _TIERS.index(a) <= _TIERS.index(b) else b


def _coarsen(tier: Optional[str], factor: float) -> Optional[str]:
    """Tier after dividing by ``factor`` (1000 steps one tier up)."""
    if tier is None or factor < 1000:
        return tier
    steps = 0
    while factor >= 1000 and steps < len(_TIERS):
        factor /= 1000.0
        steps += 1
    index = min(_TIERS.index(tier) + steps, len(_TIERS) - 1)
    return _TIERS[index]


def _seed(name: str) -> Optional[Val]:
    """Abstract value a bare name declares through its suffix."""
    if name.endswith("_ntp"):
        return Val(lo=0.0, hi=float(2 ** 32), is_float=True, raw_ntp=True)
    unit = suffix_unit(name)
    if unit is None:
        return None
    bound = _TIER_RANGE[unit]
    # The int-ns / float-s convention: ns and us quantities are integer
    # counters, ms and s are floats.
    return Val(lo=-bound, hi=bound, is_float=unit in ("ms", "s"), tier=unit)


class _PrecisionAnalysis(Analysis):
    """Forward interval analysis; state: local name -> :class:`Val`."""

    def __init__(self, module: SourceModule, imports: ImportMap,
                 qualname: str) -> None:
        self.module = module
        self.imports = imports
        self.qualname = qualname
        self.in_codec_home = module.module == _CODEC_HOME
        self.sink: Optional[List[Finding]] = None  # set during replay

    # -- lattice ------------------------------------------------------------

    def initial(self) -> Dict[str, Val]:
        return {}

    def join(self, a: Dict[str, Val], b: Dict[str, Val]) -> Dict[str, Val]:
        return {
            var: a[var].join(b[var]) for var in a.keys() & b.keys()
        }

    def widen(self, old: Dict[str, Val], new: Dict[str, Val]) -> Dict[str, Val]:
        return {
            var: old[var].widened(new[var]) for var in old.keys() & new.keys()
        }

    # -- transfer ------------------------------------------------------------

    def transfer(self, item: object, state: Dict[str, Val]) -> Dict[str, Val]:
        if isinstance(item, (WithEnter, ForBind, ExceptBind, CaseBind)):
            new = dict(state)
            for name in _bound_in(item):
                new.pop(name, None)
            return new
        if isinstance(item, WithExit) or not isinstance(item, ast.stmt):
            return state
        new = dict(state)
        if isinstance(item, ast.Assign):
            value = self._eval(item.value, new)
            for target in item.targets:
                if isinstance(target, ast.Name):
                    self._check_store(target, value)
                    if value is not None:
                        new[target.id] = value
                    else:
                        new.pop(target.id, None)
                else:
                    self._eval_only(target, new)
        elif isinstance(item, ast.AnnAssign):
            value = (
                self._eval(item.value, new) if item.value is not None else None
            )
            if isinstance(item.target, ast.Name):
                self._check_store(item.target, value)
                if value is not None:
                    new[item.target.id] = value
                else:
                    new.pop(item.target.id, None)
        elif isinstance(item, ast.AugAssign):
            synthetic = ast.BinOp(
                left=_load_copy(item.target), op=item.op, right=item.value
            )
            ast.copy_location(synthetic, item)
            ast.fix_missing_locations(synthetic)
            value = self._eval(synthetic, new)
            if isinstance(item.target, ast.Name):
                self._check_store(item.target, value)
                if value is not None:
                    new[item.target.id] = value
                else:
                    new.pop(item.target.id, None)
        elif isinstance(item, ast.Delete):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    new.pop(target.id, None)
        else:
            self._eval_only(item, new)
        return new

    # -- evaluation ----------------------------------------------------------

    def _eval_only(self, node: ast.AST, env: Dict[str, Val]) -> None:
        """Evaluate every expression under a statement for its reports."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)
            elif not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                        ast.ClassDef, ast.Lambda)):
                self._eval_only(child, env)

    def _eval(self, node: ast.expr, env: Dict[str, Val]) -> Optional[Val]:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return None
            return Val(lo=float(value), hi=float(value),
                       is_float=isinstance(value, float))
        if isinstance(node, ast.Name):
            return env.get(node.id) or _seed(node.id)
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env)
            return _seed(node.attr)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if operand is None or not isinstance(node.op, ast.USub):
                return None
            return replace(operand, lo=-operand.hi, hi=-operand.lo)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            body = self._eval(node.body, env)
            orelse = self._eval(node.orelse, env)
            if body is None or orelse is None:
                return body or orelse
            return body.join(orelse)
        if isinstance(node, ast.BoolOp):
            joined: Optional[Val] = None
            for value in node.values:
                got = self._eval(value, env)
                if got is not None:
                    joined = got if joined is None else joined.join(got)
            return joined
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._eval(element, env)
            return None
        if isinstance(node, ast.Dict):
            for part in (*node.keys, *node.values):
                if part is not None:
                    self._eval(part, env)
            return None
        if isinstance(node, ast.Subscript):
            self._eval(node.value, env)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice, env)
            return None
        if isinstance(node, (ast.Starred, ast.Await, ast.NamedExpr)):
            inner = getattr(node, "value", None)
            if isinstance(inner, ast.expr):
                return self._eval(inner, env)
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self._eval(part.value, env)
            return None
        return None

    def _eval_binop(self, node: ast.BinOp, env: Dict[str, Val]) -> Optional[Val]:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        op = node.op
        produces_float = (
            isinstance(op, ast.Div)
            or (left is not None and left.is_float)
            or (right is not None and right.is_float)
        )
        # PREC001: a wide ns/us int meets float arithmetic.
        if produces_float:
            for operand in (left, right):
                if (
                    operand is not None
                    and not operand.is_float
                    and operand.tier in ("ns", "us")
                    and operand.beyond_exact_window()
                ):
                    self._report(
                        node,
                        "PREC001",
                        f"_{operand.tier} integer enters float arithmetic "
                        f"with range beyond 2^53 (up to ~{operand.hi:.0e}); "
                        "doubles round away the low bits — do the "
                        "arithmetic in int and convert once at the end",
                    )
                    break
        if left is None or right is None:
            return None
        if isinstance(op, (ast.Add, ast.Sub)):
            if isinstance(op, ast.Add):
                lo, hi = left.lo + right.lo, left.hi + right.hi
            else:
                lo, hi = left.lo - right.hi, left.hi - right.lo
            return Val(
                lo=lo, hi=hi, is_float=produces_float,
                tier=_finer(left.tier, right.tier),
                downscaled=left.downscaled or right.downscaled,
                raw_ntp=left.raw_ntp or right.raw_ntp,
            )
        if isinstance(op, ast.Mult):
            corners = [left.lo * right.lo, left.lo * right.hi,
                       left.hi * right.lo, left.hi * right.hi]
            tier = _finer(left.tier, right.tier)
            # PREC004 (scale-back half): re-inflating an already
            # truncated value fabricates precision.
            for operand, factor in ((left, right), (right, left)):
                if (
                    operand.downscaled
                    and factor.lo == factor.hi
                    and factor.lo >= 1000
                ):
                    self._report(
                        node,
                        "PREC004",
                        "scaling a floor-divided time value back up "
                        "fabricates sub-tier digits that were already "
                        "truncated; keep the value in its original unit "
                        "until the final convert",
                    )
            return Val(
                lo=min(corners), hi=max(corners), is_float=produces_float,
                tier=tier,
                downscaled=left.downscaled or right.downscaled,
                raw_ntp=False,
            )
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            divisor: Optional[float] = None
            if right.lo == right.hi and right.lo > 0:
                divisor = right.lo
            if divisor:
                lo, hi = left.lo / divisor, left.hi / divisor
            else:
                lo, hi = -_INF, _INF
            tier = _coarsen(left.tier, divisor or 1.0)
            downscaled = left.downscaled or (
                isinstance(op, ast.FloorDiv)
                and divisor is not None
                and divisor >= 1000
                and left.tier is not None
            )
            return Val(
                lo=lo, hi=hi,
                is_float=isinstance(op, ast.Div),
                tier=tier, downscaled=downscaled, raw_ntp=False,
            )
        if isinstance(op, ast.Mod):
            # Python's % with a positive divisor lands in [0, k).
            if right.lo == right.hi and right.lo > 0:
                return Val(
                    lo=0.0, hi=right.lo, is_float=produces_float,
                    tier=left.tier, downscaled=left.downscaled,
                )
            return Val(is_float=produces_float, tier=left.tier,
                       downscaled=left.downscaled)
        if isinstance(op, (ast.LShift, ast.RShift)):
            # Fixed-point shifts stay exact in int.  A right shift
            # shrinks magnitude by 2^k; a left shift grows it, so it
            # widens.
            bound = max(abs(left.lo), abs(left.hi))
            if isinstance(op, ast.RShift):
                if right.lo == right.hi and 0 <= right.lo < 64:
                    bound = bound / (2.0 ** right.lo)
                lo, hi = -bound, bound
            else:
                lo, hi = -_INF, _INF
            return Val(
                lo=lo, hi=hi, is_float=False, tier=left.tier,
                downscaled=left.downscaled, raw_ntp=left.raw_ntp,
            )
        return None

    def _eval_call(self, node: ast.Call, env: Dict[str, Val]) -> Optional[Val]:
        args = [self._eval(arg, env) for arg in node.args]
        for keyword in node.keywords:
            self._eval(keyword.value, env)
        func = node.func
        dotted = self.imports.resolve(func)
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if not isinstance(func, (ast.Name, ast.Attribute)):
            self._eval(func, env) if isinstance(func, ast.expr) else None
        if name == "float" and dotted in (None, "float") and args:
            operand = args[0]
            if (
                operand is not None
                and not operand.is_float
                and operand.tier in ("ns", "us")
                and operand.beyond_exact_window()
            ):
                self._report(
                    node,
                    "PREC001",
                    f"float() of a _{operand.tier} integer whose range "
                    "exceeds 2^53 rounds away the low bits; keep it in "
                    "int until the final convert",
                )
            if operand is not None:
                return replace(operand, is_float=True)
            return None
        if name == "int" and dotted in (None, "int") and args:
            operand = args[0]
            if operand is None:
                return Val(is_float=False)
            # int() of a tier-coarsening true divide truncates like //.
            downscaled = operand.downscaled or (
                operand.is_float and operand.tier is not None
                and _divides_by_unit(node.args[0])
            )
            return replace(operand, is_float=False, downscaled=downscaled)
        if name == "abs" and args and args[0] is not None:
            operand = args[0]
            hi = max(abs(operand.lo), abs(operand.hi))
            return replace(operand, lo=0.0, hi=hi)
        if (dotted in _SHORT_ENCODERS or name == "encode_short") and args:
            operand = args[0]
            if (
                not self.in_codec_home
                and operand is not None
                and operand.tier in ("ns", "us")
            ):
                self._report(
                    node,
                    "PREC002",
                    "16.16 short-format encoding has a ~15.26 µs "
                    "resolution floor; a µs/ns-tier value loses "
                    "everything below it — use the 64-bit timestamp "
                    "format for sub-millisecond quantities",
                )
            return None
        if dotted in _NTP_RAW_FUNCS or name == "unix_to_ntp":
            return Val(lo=0.0, hi=float(2 ** 32), is_float=True,
                       raw_ntp=True)
        return None

    def _eval_compare(self, node: ast.Compare,
                      env: Dict[str, Val]) -> Optional[Val]:
        values = [self._eval(node.left, env)]
        values += [self._eval(comp, env) for comp in node.comparators]
        for op, left, right in zip(node.ops, values, values[1:]):
            if (
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                and left is not None and right is not None
                and left.raw_ntp and right.raw_ntp
            ):
                self._report(
                    node,
                    "PREC003",
                    "magnitude comparison of raw NTP-era timestamps is "
                    "rollover-unsafe (eras wrap in 2036); order via the "
                    "wrapped difference (sign of (a - b) mod 2^32) "
                    "instead",
                )
        return None

    def _check_store(self, target: ast.Name, value: Optional[Val]) -> None:
        """PREC004 (store half): finer-suffix store of a truncated value."""
        if value is None or not value.downscaled:
            return
        unit = suffix_unit(target.id)
        if unit is None or value.tier is None:
            return
        if _TIERS.index(unit) < _TIERS.index(value.tier):
            self._report(
                target,
                "PREC004",
                f"storing a value truncated to the {value.tier} tier "
                f"under an _{unit} suffix; the sub-{value.tier} digits "
                "were collapsed by an earlier division — convert once, "
                "at the end",
            )

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if self.sink is None:
            return
        self.sink.append(Finding(
            rule=rule,
            path=self.module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=f"{message} (in '{self.qualname}')",
        ))


def _divides_by_unit(node: ast.expr) -> bool:
    """Whether the expression is a divide by a unit-sized constant."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Div)
        and isinstance(node.right, ast.Constant)
        and isinstance(node.right.value, (int, float))
        and node.right.value >= 1000
    )


def _bound_in(item: object) -> List[str]:
    node = item.node  # type: ignore[attr-defined]
    names: List[str] = []
    if isinstance(item, ForBind):
        targets: List[ast.AST] = [node.target]
    elif isinstance(item, WithEnter):
        targets = [
            withitem.optional_vars for withitem in node.items
            if withitem.optional_vars is not None
        ]
    elif isinstance(item, ExceptBind):
        return [node.name] if node.name else []
    elif isinstance(item, CaseBind):
        for child in ast.walk(node.pattern):
            if isinstance(child, ast.MatchAs) and child.name:
                names.append(child.name)
            elif isinstance(child, ast.MatchStar) and child.name:
                names.append(child.name)
            elif isinstance(child, ast.MatchMapping) and child.rest:
                names.append(child.rest)
        return names
    else:
        return names
    for target in targets:
        for child in ast.walk(target):
            if isinstance(child, ast.Name):
                names.append(child.id)
    return names


def _load_copy(target: ast.expr) -> ast.expr:
    copied = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target
    )
    ast.fix_missing_locations(copied)
    return copied


def precision_findings(module: SourceModule) -> List[Finding]:
    """All PREC findings for one module (computed once, shared)."""
    cached = getattr(module, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    imports = ImportMap(module.tree)
    findings: List[Finding] = []
    for node, qualname, cfg in function_cfgs(module.tree):
        if cfg is None:
            continue  # generator/async: skipped gracefully
        analysis = _PrecisionAnalysis(module, imports, qualname)
        state_in = solve_forward(cfg, analysis)
        analysis.sink = findings
        # Replay once at the fixpoint so each site reports exactly once.
        for _block, _item, _state in each_item_state(cfg, analysis, state_in):
            pass
        analysis.sink = None
    # Replay evaluates some expressions through both the item walk and
    # nested statements; dedupe on the anchor.
    unique: Dict[Tuple[str, str, int, int, str], Finding] = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.col,
               finding.message)
        unique.setdefault(key, finding)
    out = sorted(unique.values(),
                 key=lambda f: (f.line, f.col, f.rule, f.message))
    setattr(module, _CACHE_ATTR, out)
    return out


class _PrecisionRule(Rule):
    """Base: filter the shared precision analysis down to one rule id."""

    def run(self) -> List[Finding]:
        return [
            f for f in precision_findings(self.module)
            if f.rule == self.rule_id
        ]


@register
class FloatWindowRule(_PrecisionRule):
    rule_id = "PREC001"
    summary = (
        "an _ns/_us integer with range beyond the 2^53 float-exact "
        "window must not enter float arithmetic; do integer arithmetic "
        "and convert once at the end"
    )
    rationale = (
        "Doubles represent integers exactly only up to 2^53 (~104 days "
        "in ns). An _ns counter beyond that window loses low bits the "
        "moment it touches float arithmetic — a silent sub-µs error "
        "that defeats the µs-tier sync targets. The check is "
        "value-range based: a value provably bounded below 2^53 "
        "(e.g. x_ns % 1000) is fine."
    )
    example = "elapsed_s = float(t_ns) / 1e9   # t_ns can exceed 2^53"
    fix_hint = (
        "Stay in int (//, %) for the arithmetic and convert the small "
        "remainder or final result once at the end."
    )


@register
class ShortFormatRule(_PrecisionRule):
    rule_id = "PREC002"
    summary = (
        "the NTP 16.16 short format floors resolution at ~15.26 µs; "
        "µs/ns-tier values must use the 64-bit timestamp format "
        "(codec home repro.ntp.timestamps is exempt)"
    )
    rationale = (
        "encode_short() packs a value into 16.16 fixed point whose "
        "quantum is 2^-16 s ≈ 15.26 µs; everything below that "
        "truncates. Routing a µs/ns-tier quantity through it destroys "
        "exactly the precision the µs scenario tier (ROADMAP #4c) is "
        "supposed to measure."
    )
    example = "wire = encode_short(delay_us)   # sub-15µs digits truncated"
    fix_hint = (
        "Use the 64-bit timestamp format (encode_timestamp) for "
        "sub-millisecond quantities; keep 16.16 for coarse dispersion "
        "fields."
    )


@register
class EraCompareRule(_PrecisionRule):
    rule_id = "PREC003"
    summary = (
        "raw NTP-era timestamps must not be ordered by magnitude "
        "comparison (eras wrap in 2036); use the wrapped difference"
    )
    rationale = (
        "NTP's 32-bit seconds field wraps in February 2036; two "
        "timestamps straddling the era boundary compare backwards "
        "under <. RFC 4330 orders them by the sign of the wrapped "
        "difference, which stays correct across the rollover."
    )
    example = (
        "a_ntp = unix_to_ntp(a)\n"
        "b_ntp = unix_to_ntp(b)\n"
        "if a_ntp < b_ntp:   # wrong across the 2036 era boundary\n"
        "    ..."
    )
    fix_hint = (
        "Order by the wrapped difference: treat ((a - b) mod 2^32) as "
        "a signed quantity and test its sign."
    )


@register
class DownscaleRule(_PrecisionRule):
    rule_id = "PREC004"
    summary = (
        "a division chain that truncates a time value to a coarser "
        "tier must not scale it back up or store it under a finer "
        "suffix; convert once, at the end"
    )
    rationale = (
        "t_ns // 1000 discards the sub-µs digits permanently; "
        "multiplying the result back by 1000 (or storing it under an "
        "_ns suffix) fabricates precision that is gone. The dataflow "
        "tracks the truncation through intermediate variables, so "
        "splitting the chain across lines does not hide it."
    )
    example = (
        "t_us = t_ns // 1000\n"
        "back_ns = t_us * 1000   # sub-µs digits are already gone"
    )
    fix_hint = (
        "Keep the value in its original unit through the computation "
        "and convert a single time, at the final use."
    )

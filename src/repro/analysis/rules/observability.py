"""Observability rules.

Library code must not talk to stdout directly: anything worth printing
is worth recording — as a metric, a span, or a trace record the
exporters in :mod:`repro.obs` can replay.  Bare ``print(`` calls in
library packages bypass that substrate and are invisible to telemetry
consumers, so :class:`BarePrintRule` flags them.  The CLI, the analysis
framework, and the text-rendering helpers are the repo's sanctioned
stdout surfaces and stay exempt.

Telemetry identifiers are contracts, too: the causal assembler, the
explain engine, and downstream dashboards key on span kinds and metric
names.  :class:`TaxonomyRule` keeps statically-known identifiers honest
— span kinds must be registered in :mod:`repro.obs.taxonomy` and metric
names must follow the Prometheus convention (``_total`` counters, a
unit suffix on gauges/histograms).  Dynamic names (variables,
f-string prefixes) are out of static reach and are skipped, except that
an f-string's literal tail still gets its suffix checked.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import register
from repro.obs.taxonomy import (
    METRIC_UNIT_SUFFIXES,
    span_kind_registered,
)

#: ``repro`` sub-packages whose whole purpose is terminal output.
STDOUT_PACKAGES = frozenset({"analysis", "reporting"})

#: Fully-dotted modules allowed to print (the CLI entry point).
STDOUT_MODULES = frozenset({"repro.cli"})


@register
class BarePrintRule(Rule):
    """Forbid bare ``print(`` in library packages."""

    rule_id = "OBS001"
    summary = (
        "no print() in library packages; emit a metric, span, or trace "
        "record (repro.obs) so output is structured and exportable"
    )

    def run(self) -> List[Finding]:
        """Only ``repro`` library modules are in scope.

        ``repro.cli``, ``repro.analysis`` and ``repro.reporting`` are
        the sanctioned stdout surfaces; scripts, tests and benchmarks
        live outside the ``repro`` package and are never matched.
        """
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        if self.module.package in STDOUT_PACKAGES:
            return []
        if self.module.dotted() in STDOUT_MODULES:
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Flag calls to the ``print`` builtin."""
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                f"print() in library module '{self.module.dotted()}'; "
                "route output through repro.obs telemetry or the CLI layer",
            )
        self.generic_visit(node)


def _receiver_named(node: ast.expr, name: str) -> bool:
    """Whether ``node`` is the attribute or variable ``name``."""
    if isinstance(node, ast.Attribute):
        return node.attr == name
    return isinstance(node, ast.Name) and node.id == name


def _literal_tail(node: ast.expr) -> Optional[str]:
    """The statically-known tail of a name expression.

    A plain string literal is returned whole; an f-string yields its
    trailing literal fragment (enough to check suffix conventions);
    anything else is dynamic and yields None.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        last = node.values[-1]
        if isinstance(last, ast.Constant) and isinstance(last.value, str):
            return last.value
    return None


@register
class TaxonomyRule(Rule):
    """Span kinds must be registered; metric names must carry their type.

    Checks ``<x>.spans.begin(...)`` / ``<x>.spans.span(...)`` first
    arguments against :data:`repro.obs.taxonomy.SPAN_KINDS`, and
    ``<x>.metrics.counter/gauge/histogram(...)`` first arguments against
    the Prometheus naming convention.  Only statically-known names are
    checked; fully dynamic kinds/names are skipped.
    """

    rule_id = "OBS002"
    summary = (
        "span kinds must be registered in repro.obs.taxonomy and metric "
        "names must follow the Prometheus convention (counters end in "
        "_total; gauges/histograms carry a unit suffix)"
    )

    #: SpanTracer entry points that take a span kind first.
    _SPAN_METHODS = frozenset({"begin", "span"})

    #: MetricsRegistry factories, mapped to the metric type they make.
    _METRIC_METHODS = {"counter": "counter", "gauge": "gauge",
                       "histogram": "histogram"}

    def run(self) -> List[Finding]:
        """Only ``repro`` library modules are in scope (like OBS001)."""
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Check span-tracer and metric-factory call sites."""
        func = node.func
        if isinstance(func, ast.Attribute) and node.args:
            if (
                func.attr in self._SPAN_METHODS
                and _receiver_named(func.value, "spans")
            ):
                self._check_span_kind(node)
            elif (
                func.attr in self._METRIC_METHODS
                and _receiver_named(func.value, "metrics")
            ):
                self._check_metric_name(node, self._METRIC_METHODS[func.attr])
        self.generic_visit(node)

    def _check_span_kind(self, node: ast.Call) -> None:
        arg = node.args[0]
        # Only whole literals identify a kind; f-strings are dynamic.
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return
        if not span_kind_registered(arg.value):
            self.report(
                arg,
                f"span kind '{arg.value}' is not registered in "
                "repro.obs.taxonomy.SPAN_KINDS; register it (and document "
                "it in docs/OBSERVABILITY.md) or fix the typo",
            )

    def _check_metric_name(self, node: ast.Call, metric_type: str) -> None:
        arg = node.args[0]
        tail = _literal_tail(arg)
        if tail is None:
            return
        if metric_type == "counter":
            if not tail.endswith("_total"):
                self.report(
                    arg,
                    f"counter name ending '...{tail}' must end in '_total' "
                    "(Prometheus convention)",
                )
            return
        if tail.endswith("_total"):
            self.report(
                arg,
                f"{metric_type} name ending '...{tail}' must not end in "
                "'_total' (reserved for counters)",
            )
        elif not tail.endswith(METRIC_UNIT_SUFFIXES):
            self.report(
                arg,
                f"{metric_type} name ending '...{tail}' must carry a unit "
                "suffix from repro.obs.taxonomy.METRIC_UNIT_SUFFIXES "
                "(e.g. _seconds, _ms, _ppm, _ratio)",
            )

"""Observability rules.

Library code must not talk to stdout directly: anything worth printing
is worth recording — as a metric, a span, or a trace record the
exporters in :mod:`repro.obs` can replay.  Bare ``print(`` calls in
library packages bypass that substrate and are invisible to telemetry
consumers, so :class:`BarePrintRule` flags them.  The CLI, the analysis
framework, and the text-rendering helpers are the repo's sanctioned
stdout surfaces and stay exempt.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import register

#: ``repro`` sub-packages whose whole purpose is terminal output.
STDOUT_PACKAGES = frozenset({"analysis", "reporting"})

#: Fully-dotted modules allowed to print (the CLI entry point).
STDOUT_MODULES = frozenset({"repro.cli"})


@register
class BarePrintRule(Rule):
    """Forbid bare ``print(`` in library packages."""

    rule_id = "OBS001"
    summary = (
        "no print() in library packages; emit a metric, span, or trace "
        "record (repro.obs) so output is structured and exportable"
    )

    def run(self) -> List[Finding]:
        """Only ``repro`` library modules are in scope.

        ``repro.cli``, ``repro.analysis`` and ``repro.reporting`` are
        the sanctioned stdout surfaces; scripts, tests and benchmarks
        live outside the ``repro`` package and are never matched.
        """
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        if self.module.package in STDOUT_PACKAGES:
            return []
        if self.module.dotted() in STDOUT_MODULES:
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Flag calls to the ``print`` builtin."""
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                f"print() in library module '{self.module.dotted()}'; "
                "route output through repro.obs telemetry or the CLI layer",
            )
        self.generic_visit(node)

"""Observability rules.

Library code must not talk to stdout directly: anything worth printing
is worth recording — as a metric, a span, or a trace record the
exporters in :mod:`repro.obs` can replay.  Bare ``print(`` calls in
library packages bypass that substrate and are invisible to telemetry
consumers, so :class:`BarePrintRule` flags them.  The CLI, the analysis
framework, and the text-rendering helpers are the repo's sanctioned
stdout surfaces and stay exempt.

Telemetry identifiers are contracts, too: the causal assembler, the
explain engine, and downstream dashboards key on span kinds and metric
names.  :class:`TaxonomyRule` keeps statically-known identifiers honest
— span kinds must be registered in :mod:`repro.obs.taxonomy` and metric
names must follow the Prometheus convention (``_total`` counters, a
unit suffix on gauges/histograms).  Dynamic names (variables,
f-string prefixes) are out of static reach and are skipped, except that
an f-string's literal tail still gets its suffix checked.

SLO thresholds are contracts of a third kind: the health monitor's
verdicts are only auditable if every threshold lives in the declarative
:class:`~repro.obs.health.SloSpec` (unit-suffixed, JSON-round-tripped,
archived with the run).  A magic number inlined into health-checking
code silently forks the spec, so :class:`SloLiteralRule` flags numeric
literals compared against unit-suffixed quantities in modules that do
health checking (``repro.obs.health`` itself plus any ``repro`` module
importing from it).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import register
from repro.obs.taxonomy import (
    METRIC_UNIT_SUFFIXES,
    span_kind_registered,
)

#: ``repro`` sub-packages whose whole purpose is terminal output.
STDOUT_PACKAGES = frozenset({"analysis", "reporting"})

#: Fully-dotted modules allowed to print (the CLI entry point).
STDOUT_MODULES = frozenset({"repro.cli"})


@register
class BarePrintRule(Rule):
    """Forbid bare ``print(`` in library packages."""

    rule_id = "OBS001"
    summary = (
        "no print() in library packages; emit a metric, span, or trace "
        "record (repro.obs) so output is structured and exportable"
    )

    def run(self) -> List[Finding]:
        """Only ``repro`` library modules are in scope.

        ``repro.cli``, ``repro.analysis`` and ``repro.reporting`` are
        the sanctioned stdout surfaces; scripts, tests and benchmarks
        live outside the ``repro`` package and are never matched.
        """
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        if self.module.package in STDOUT_PACKAGES:
            return []
        if self.module.dotted() in STDOUT_MODULES:
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Flag calls to the ``print`` builtin."""
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                f"print() in library module '{self.module.dotted()}'; "
                "route output through repro.obs telemetry or the CLI layer",
            )
        self.generic_visit(node)


def _receiver_named(node: ast.expr, name: str) -> bool:
    """Whether ``node`` is the attribute or variable ``name``."""
    if isinstance(node, ast.Attribute):
        return node.attr == name
    return isinstance(node, ast.Name) and node.id == name


def _literal_tail(node: ast.expr) -> Optional[str]:
    """The statically-known tail of a name expression.

    A plain string literal is returned whole; an f-string yields its
    trailing literal fragment (enough to check suffix conventions);
    anything else is dynamic and yields None.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        last = node.values[-1]
        if isinstance(last, ast.Constant) and isinstance(last.value, str):
            return last.value
    return None


@register
class TaxonomyRule(Rule):
    """Span kinds must be registered; metric names must carry their type.

    Checks ``<x>.spans.begin(...)`` / ``<x>.spans.span(...)`` first
    arguments against :data:`repro.obs.taxonomy.SPAN_KINDS`, and
    ``<x>.metrics.counter/gauge/histogram(...)`` first arguments against
    the Prometheus naming convention.  Only statically-known names are
    checked; fully dynamic kinds/names are skipped.
    """

    rule_id = "OBS002"
    summary = (
        "span kinds must be registered in repro.obs.taxonomy and metric "
        "names must follow the Prometheus convention (counters end in "
        "_total; gauges/histograms carry a unit suffix)"
    )

    #: SpanTracer entry points that take a span kind first.
    _SPAN_METHODS = frozenset({"begin", "span"})

    #: MetricsRegistry factories, mapped to the metric type they make.
    _METRIC_METHODS = {"counter": "counter", "gauge": "gauge",
                       "histogram": "histogram"}

    def run(self) -> List[Finding]:
        """Only ``repro`` library modules are in scope (like OBS001)."""
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Check span-tracer and metric-factory call sites."""
        func = node.func
        if isinstance(func, ast.Attribute) and node.args:
            if (
                func.attr in self._SPAN_METHODS
                and _receiver_named(func.value, "spans")
            ):
                self._check_span_kind(node)
            elif (
                func.attr in self._METRIC_METHODS
                and _receiver_named(func.value, "metrics")
            ):
                self._check_metric_name(node, self._METRIC_METHODS[func.attr])
        self.generic_visit(node)

    def _check_span_kind(self, node: ast.Call) -> None:
        arg = node.args[0]
        # Only whole literals identify a kind; f-strings are dynamic.
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return
        if not span_kind_registered(arg.value):
            self.report(
                arg,
                f"span kind '{arg.value}' is not registered in "
                "repro.obs.taxonomy.SPAN_KINDS; register it (and document "
                "it in docs/OBSERVABILITY.md) or fix the typo",
            )

    def _check_metric_name(self, node: ast.Call, metric_type: str) -> None:
        arg = node.args[0]
        tail = _literal_tail(arg)
        if tail is None:
            return
        if metric_type == "counter":
            if not tail.endswith("_total"):
                self.report(
                    arg,
                    f"counter name ending '...{tail}' must end in '_total' "
                    "(Prometheus convention)",
                )
            return
        if tail.endswith("_total"):
            self.report(
                arg,
                f"{metric_type} name ending '...{tail}' must not end in "
                "'_total' (reserved for counters)",
            )
        elif not tail.endswith(METRIC_UNIT_SUFFIXES):
            self.report(
                arg,
                f"{metric_type} name ending '...{tail}' must carry a unit "
                "suffix from repro.obs.taxonomy.METRIC_UNIT_SUFFIXES "
                "(e.g. _seconds, _ms, _ppm, _ratio)",
            )


#: The SLO-spec module; importing from it marks a module as
#: health-checking code and puts it in OBS004 scope.
_HEALTH_MODULE = "repro.obs.health"

#: Health names whose import (e.g. via the ``repro.obs`` facade) also
#: marks the importer as health-checking code.
_HEALTH_IMPORT_NAMES = frozenset({
    "SloSpec", "HealthMonitor", "smoke_spec", "replay_health",
    "recovered_transitions", "render_health_text",
})

#: Suffixes marking a name as carrying its unit — the SloSpec field
#: naming convention thresholds must be declared under.
SLO_UNIT_SUFFIXES = (
    "_s", "_ms", "_us", "_ns", "_ratio", "_percent", "_per_s",
)


def numeric_literal(node: ast.expr) -> Optional[float]:
    """The value of a numeric literal expression, else None.

    Handles a leading unary minus (``-5.0`` parses as ``USub`` over a
    constant); bools are constants too but are never thresholds.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = numeric_literal(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and not isinstance(node.value, bool) \
            and isinstance(node.value, (int, float)):
        return node.value
    return None


def unit_suffixed_name(node: ast.expr) -> Optional[str]:
    """The identifier carried by ``node`` when it has a unit suffix."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    return name if name.endswith(SLO_UNIT_SUFFIXES) else None


@register
class SloLiteralRule(Rule):
    """SLO thresholds must be SloSpec fields, not inline literals.

    Flags numeric literals (other than the structural constants 0, 1
    and -1) compared against a unit-suffixed name — ``window_s``,
    ``drop_rate_ratio``, ``p99_abs_error_ms`` — inside health-checking
    code.  Such a comparison is an SLO judgement, and its threshold
    belongs in a unit-suffixed :class:`~repro.obs.health.SloSpec` field
    where it is declared once, validated, JSON-round-tripped, and
    archived with the run's verdict.
    """

    rule_id = "OBS004"
    summary = (
        "SLO threshold literals in health-checking code must come from "
        "a unit-suffixed SloSpec field, not an inline magic number"
    )

    #: Structural constants (empty/disabled/sign checks), never SLOs.
    _EXEMPT = frozenset({0, 1, -1})

    def run(self) -> List[Finding]:
        """Scope: ``repro.obs.health`` plus repro modules importing it."""
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        if self.module.dotted() != _HEALTH_MODULE \
                and not self._imports_health():
            return []
        return super().run()

    def _imports_health(self) -> bool:
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == _HEALTH_MODULE:
                    return True
                if node.module in ("repro.obs", "repro.obs.health") and any(
                    alias.name in _HEALTH_IMPORT_NAMES
                    for alias in node.names
                ):
                    return True
            elif isinstance(node, ast.Import):
                if any(alias.name == _HEALTH_MODULE for alias in node.names):
                    return True
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag literal-vs-unit-suffixed-name comparison operands."""
        sides = [node.left, *node.comparators]
        for left, right in zip(sides, sides[1:]):
            for literal_node, other in ((left, right), (right, left)):
                value = numeric_literal(literal_node)
                if value is None or value in self._EXEMPT:
                    continue
                name = unit_suffixed_name(other)
                if name is None:
                    continue
                self.report(
                    literal_node,
                    f"threshold literal {value!r} compared against "
                    f"'{name}'; declare it as a unit-suffixed SloSpec "
                    "field so the SLO is archived with the run",
                )
        self.generic_visit(node)

"""Determinism rules.

Every experiment must be bit-for-bit reproducible from its root seed.
That breaks the moment simulation code reads the wall clock or draws
from a globally-seeded RNG, so these rules forbid both at the source
level — all randomness is required to flow through
:class:`repro.simcore.random.RngRegistry` named streams.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import register
from repro.analysis.rules.base import ImportMap

#: Sub-packages of ``repro`` that execute inside the simulator and must
#: never observe host time.
SIMULATION_PACKAGES = frozenset(
    {"simcore", "core", "ntp", "wireless", "clock", "obs"}
)

#: Canonical dotted names that read the host clock or block on it.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Legacy numpy global-state RNG entry points (seeded process-wide, so a
#: draw in one component perturbs every other component's sequence).
NUMPY_GLOBAL_RNG_CALLS = frozenset(
    {
        "numpy.random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.ranf",
        "numpy.random.sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.normal",
        "numpy.random.uniform",
        "numpy.random.exponential",
        "numpy.random.standard_normal",
        "numpy.random.get_state",
        "numpy.random.set_state",
    }
)

#: The one module allowed to construct RNG machinery directly.
RNG_HOME = ("repro", "simcore", "random")


class _ImportAwareRule(Rule):
    """A rule that resolves call targets through the module's imports."""

    def run(self) -> List[Finding]:
        """Collect the module's imports, then visit the tree."""
        self._imports = ImportMap(self.module.tree)
        self.visit(self.module.tree)
        return self.findings


@register
class WallClockRule(_ImportAwareRule):
    """Forbid host-clock reads inside simulation packages."""

    rule_id = "DET001"
    summary = (
        "no wall-clock reads (time.time/monotonic/sleep, datetime.now) in "
        "simulation packages or the tests tree; simulated time comes "
        "from Simulator.now"
    )

    def run(self) -> List[Finding]:
        """Simulation packages and the tests tree are in scope."""
        if (
            self.module.package not in SIMULATION_PACKAGES
            and self.module.module[:1] != ("tests",)
        ):
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Flag calls that resolve to a host-clock function."""
        dotted = self._imports.resolve(node.func)
        if dotted in WALL_CLOCK_CALLS:
            where = (
                f"simulation package '{self.module.package}'"
                if self.module.package in SIMULATION_PACKAGES
                else "the tests tree"
            )
            self.report(
                node,
                f"wall-clock call {dotted}() inside {where}; "
                "use the simulator's virtual time",
            )
        self.generic_visit(node)


@register
class StdlibRandomRule(_ImportAwareRule):
    """Forbid the globally-seeded stdlib ``random`` module everywhere."""

    rule_id = "DET002"
    summary = (
        "no stdlib random.* calls; draw from a named RngRegistry stream "
        "so runs stay seed-reproducible and streams stay isolated"
    )

    def run(self) -> List[Finding]:
        """Everywhere is in scope except RngRegistry's own module."""
        if self.module.module == RNG_HOME:
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Flag any call that resolves into the stdlib random module."""
        dotted = self._imports.resolve(node.func)
        if dotted is not None and (
            dotted == "random" or dotted.startswith("random.")
        ):
            self.report(
                node,
                f"stdlib random call {dotted}() uses hidden global state; "
                "use RngRegistry.stream(name) instead",
            )
        self.generic_visit(node)


@register
class NumpyGlobalRngRule(_ImportAwareRule):
    """Forbid numpy global-state RNG and unseeded ``default_rng()``."""

    rule_id = "DET003"
    summary = (
        "no numpy.random global-state calls and no unseeded "
        "default_rng(); RNG streams come from RngRegistry"
    )

    def run(self) -> List[Finding]:
        """Everywhere is in scope except RngRegistry's own module."""
        if self.module.module == RNG_HOME:
            return []
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Flag numpy global-state RNG and unseeded default_rng()."""
        dotted = self._imports.resolve(node.func)
        if dotted == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "unseeded numpy.random.default_rng() draws OS entropy; "
                    "seed it from an RngRegistry stream",
                )
        elif dotted in NUMPY_GLOBAL_RNG_CALLS:
            self.report(
                node,
                f"numpy global-state RNG call {dotted}(); "
                "use a Generator from RngRegistry.stream(name)",
            )
        self.generic_visit(node)

"""Helpers shared by the rule implementations.

Two pieces of shared machinery live here:

* :class:`ImportMap` — resolves a ``Name``/``Attribute`` call target to
  its canonical dotted path (``np.random.default_rng`` becomes
  ``numpy.random.default_rng``) by tracking the module's imports.
* unit inference — the codebase names every quantity of time with an
  explicit unit suffix (``period_s``, ``rmse_ms``, ``correction_ns``);
  :func:`suffix_unit` and :func:`expr_unit` recover the unit from a
  name or expression so the UNIT rules can compare them.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

#: Recognised time-unit suffixes (``skew_s_per_s`` ends in ``_s`` and is
#: therefore read as seconds, which matches the convention: the trailing
#: suffix states the unit of the stored value).
TIME_UNIT_SUFFIXES = ("s", "ms", "us", "ns")

#: Functions in :mod:`repro.ntp.timestamps` that return float seconds.
NTP_SECONDS_FUNCS = frozenset(
    {"decode_timestamp", "decode_short", "unix_to_ntp", "ntp_to_unix"}
)

#: Functions in :mod:`repro.ntp.timestamps` that return wire-format
#: fixed-point *bytes* (64-bit timestamp / 16.16 short format).
NTP_WIRE_FUNCS = frozenset({"encode_timestamp", "encode_short"})


class ImportMap:
    """Local name -> canonical dotted module path, from a module's imports."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hit stdlib/numpy
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of an expression, or None if untracked."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        canonical = self.aliases.get(node.id)
        if canonical is None:
            return None
        parts.append(canonical)
        return ".".join(reversed(parts))


def suffix_unit(name: str) -> Optional[str]:
    """The time unit a variable name declares via its suffix, if any."""
    if "_" not in name:
        return None
    suffix = name.lower().rsplit("_", 1)[1]
    return suffix if suffix in TIME_UNIT_SUFFIXES else None


def node_name(node: ast.AST) -> Optional[str]:
    """The identifier a Name/Attribute node refers to, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def call_func_name(node: ast.AST) -> Optional[str]:
    """The simple function name of a Call node, if any."""
    if isinstance(node, ast.Call):
        return node_name(node.func)
    return None


def expr_unit(node: ast.AST) -> Optional[str]:
    """Unit of an expression judged by its variable-name suffix alone."""
    name = node_name(node)
    if name is None:
        return None
    return suffix_unit(name)


def is_number_constant(node: ast.AST) -> bool:
    """Whether the node is a literal int/float (bools excluded)."""
    value = getattr(node, "value", None) if isinstance(node, ast.Constant) else None
    return isinstance(value, (int, float)) and not isinstance(value, bool)

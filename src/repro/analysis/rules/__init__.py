"""Rule registry.

Per-file rules register themselves with the :func:`register` decorator
at import time; whole-program rules use :func:`register_project`.
:func:`all_rules` / :func:`all_project_rules` import every rule module
exactly once and return the id -> class mappings the engine dispatches
from.
"""

from __future__ import annotations

from typing import Dict, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.engine import ProjectRule, Rule

_REGISTRY: Dict[str, "Type[Rule]"] = {}
_PROJECT_REGISTRY: Dict[str, "Type[ProjectRule]"] = {}
_LOADED = False


def register(rule_cls):
    """Class decorator adding a per-file rule to the registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def register_project(rule_cls):
    """Class decorator adding a whole-program rule to the registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY:
        raise ValueError(f"rule id {rule_id} already used by a per-file rule")
    if rule_id in _PROJECT_REGISTRY and _PROJECT_REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id}")
    _PROJECT_REGISTRY[rule_id] = rule_cls
    return rule_cls


def _load() -> None:
    global _LOADED
    if not _LOADED:
        # Imported for their registration side effect only.
        from repro.analysis.rules import correctness  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import determinism  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import observability  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import robustness  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import units  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import resources  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import precision  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.flow import rules as flow_rules  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.flow import perf as flow_perf  # noqa: F401  # repro: noqa[COR004]

        _LOADED = True


def all_rules() -> Dict[str, "Type[Rule]"]:
    """Id -> class for every shipped per-file rule."""
    _load()
    return dict(_REGISTRY)


def all_project_rules() -> Dict[str, "Type[ProjectRule]"]:
    """Id -> class for every shipped whole-program rule."""
    _load()
    return dict(_PROJECT_REGISTRY)


__all__ = ["register", "register_project", "all_rules", "all_project_rules"]

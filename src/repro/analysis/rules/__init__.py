"""Rule registry.

Rules register themselves with the :func:`register` decorator at import
time; :func:`all_rules` imports every rule module exactly once and
returns the id -> class mapping the engine dispatches from.
"""

from __future__ import annotations

from typing import Dict, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.engine import Rule

_REGISTRY: Dict[str, "Type[Rule]"] = {}
_LOADED = False


def register(rule_cls):
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, "Type[Rule]"]:
    """Id -> class for every shipped rule, loading rule modules lazily."""
    global _LOADED
    if not _LOADED:
        # Imported for their registration side effect only.
        from repro.analysis.rules import correctness  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import determinism  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import observability  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import robustness  # noqa: F401  # repro: noqa[COR004]
        from repro.analysis.rules import units  # noqa: F401  # repro: noqa[COR004]

        _LOADED = True
    return dict(_REGISTRY)


__all__ = ["register", "all_rules"]
